//! Seed-search utility: hunts for certified improvement/best-response
//! cycles on the paper's no-FIP instances (Figs. 5 and 8) and on random
//! p-norm point sets (Conjecture 1). The seeds baked into the test suite
//! and the experiment harness were located with this tool.
//!
//! ```text
//! cargo run --release -p gncg-constructions --example probe_cycles
//! ```

use gncg_constructions::br_cycles::{
    fig5_game, fig8_game, find_best_response_cycle, find_improving_move_cycle,
};
use gncg_constructions::conjectures::conjecture1_probe;
use gncg_metrics::euclidean::Norm;

fn main() {
    println!("— Fig. 5 (tree metric, Thm 14): improving-move cycles —");
    let g5 = fig5_game(1.0);
    for seed in 0..24u64 {
        if let Some(c) = find_improving_move_cycle(&g5, seed, 30_000) {
            println!("  seed {seed}: certified cycle of length {}", c.len());
            break;
        }
    }

    println!("— Fig. 8 (1-norm plane, Thm 17): best-response cycles —");
    let g8 = fig8_game(1.0);
    for seed in 0..8u64 {
        if let Some(c) = find_best_response_cycle(&g8, seed, 20_000) {
            println!("  seed {seed}: certified BR cycle of {} moves", c.len());
            break;
        }
    }

    println!("— Conjecture 1: cycles under p ≥ 2 norms on random points —");
    for (name, norm, alpha) in [
        ("L2", Norm::L2, 1.0),
        ("L3", Norm::Lp(3.0), 1.5),
        ("L∞", Norm::LInf, 1.0),
    ] {
        match conjecture1_probe(norm, 8, alpha, 0..16, 25_000) {
            Some((seed, c)) => println!(
                "  {name} (α={alpha}): certified cycle of length {} at seed {seed}",
                c.len()
            ),
            None => println!("  {name} (α={alpha}): none within budget"),
        }
    }
}
