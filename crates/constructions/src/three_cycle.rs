//! Theorem 20's closing example: the 3-node instance showing the
//! `((α+2)/2)²` technique is pairwise-tight but globally loose.
//!
//! Host: a triangle with weights `w(a,b) = 0`, `w(b,c) = 1`,
//! `w(a,c) = (α+2)/2` (non-metric for α > 0: the direct `a–c` edge is
//! longer than the `a–b–c` detour).
//!
//! * OPT — the path `{(a,b), (b,c)}` of weight 0 + 1,
//! * NE — the path `{(a,b), (a,c)}` of weight 0 + (α+2)/2, with `a`
//!   owning both edges,
//!
//! For the endpoints of the heavy edge the per-pair ratio σ of the
//! Theorem 20 proof equals `((α+2)/2)²`, yet the true cost ratio is only
//! `(α+2)/2` — supporting Conjecture 2 (the GNCG PoA should be `(α+2)/2`).

use gncg_core::{Game, Profile};
use gncg_graph::SymMatrix;

/// Node ids.
pub const A: u32 = 0;
/// Node `b` — the middle of the optimal path.
pub const B: u32 = 1;
/// Node `c` — the far endpoint.
pub const C: u32 = 2;

/// The host triangle for a given α.
pub fn host(alpha: f64) -> SymMatrix {
    let mut w = SymMatrix::zeros(3);
    w.set(A, B, 0.0);
    w.set(B, C, 1.0);
    w.set(A, C, (alpha + 2.0) / 2.0);
    w
}

/// The game.
pub fn game(alpha: f64) -> Game {
    Game::new(host(alpha), alpha)
}

/// OPT: the light path, owned by `a` and `b`.
pub fn opt_profile() -> Profile {
    Profile::from_owned_edges(3, &[(A, B), (B, C)])
}

/// NE: the heavy path, both edges owned by `a`.
pub fn ne_profile() -> Profile {
    Profile::from_owned_edges(3, &[(A, B), (A, C)])
}

/// The per-pair σ of the Theorem 20 proof for the heavy edge `(a, c)`:
/// `(α·w + 2w) / (2·d_OPT)` with `w = (α+2)/2`, `d_OPT(a,c) = 1`.
pub fn sigma(alpha: f64) -> f64 {
    let w = (alpha + 2.0) / 2.0;
    (alpha * w + 2.0 * w) / 2.0
}

/// The true social-cost ratio of the two profiles: `(α+2)/2`.
pub fn true_ratio(alpha: f64) -> f64 {
    (alpha + 2.0) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use gncg_core::cost::social_cost;
    use gncg_core::equilibrium::is_nash_equilibrium;

    #[test]
    fn host_is_nonmetric() {
        for alpha in [0.5, 1.0, 4.0] {
            assert!(!host(alpha).satisfies_triangle_inequality(), "α={alpha}");
        }
    }

    #[test]
    fn ne_profile_is_certified() {
        for alpha in [0.5, 1.0, 2.0, 7.0] {
            let g = game(alpha);
            assert!(is_nash_equilibrium(&g, &ne_profile()), "α={alpha}");
        }
    }

    #[test]
    fn opt_profile_is_exact_optimum() {
        for alpha in [0.5, 2.0, 5.0] {
            let g = game(alpha);
            let exact = gncg_solvers::opt_exact::social_optimum(&g);
            let path = social_cost(&g, &opt_profile());
            assert!(gncg_graph::approx_eq(exact.cost, path), "α={alpha}");
        }
    }

    #[test]
    fn measured_ratio_is_metric_bound_not_sigma() {
        for alpha in [0.5, 1.0, 3.0, 10.0] {
            let g = game(alpha);
            let r = social_cost(&g, &ne_profile()) / social_cost(&g, &opt_profile());
            assert!(
                (r - true_ratio(alpha)).abs() < 1e-9,
                "α={alpha}: measured {r} vs (α+2)/2 = {}",
                true_ratio(alpha)
            );
            // σ is genuinely quadratic: ((α+2)/2)².
            let expected_sigma = ((alpha + 2.0) / 2.0) * ((alpha + 2.0) / 2.0);
            assert!((sigma(alpha) - expected_sigma).abs() < 1e-9);
            assert!(sigma(alpha) > r, "σ must exceed the true ratio (α={alpha})");
        }
    }

    #[test]
    fn ratio_within_general_upper_bound() {
        for alpha in [0.5, 2.0, 9.0] {
            let g = game(alpha);
            let r = social_cost(&g, &ne_profile()) / social_cost(&g, &opt_profile());
            assert!(r <= gncg_core::poa::general_upper_bound(alpha) + 1e-9);
        }
    }
}
