//! Theorem 10: in the 1-2–GNCG every spanning star is a NE for `α ≥ 3`.
//!
//! The center owns all edges. A leaf's only possible improvement is an
//! edge addition; in the worst case (center 2 away from both leaves,
//! leaves 1 apart) an added edge saves distance 3 at price `α ≥ 3` — never
//! a strict improvement.

use gncg_core::{Game, Profile};
use gncg_graph::{NodeId, SymMatrix};

/// A center-owned spanning star profile on `n` nodes.
pub fn star_profile(n: usize, center: NodeId) -> Profile {
    Profile::star(n, center)
}

/// The game on a given 1-2 host.
///
/// # Panics
/// Panics if the host is not a 1-2 matrix.
pub fn game(host: SymMatrix, alpha: f64) -> Game {
    assert!(
        gncg_metrics::onetwo::is_one_two(&host),
        "Theorem 10 concerns 1-2 hosts"
    );
    Game::new(host, alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gncg_core::equilibrium::{is_greedy_equilibrium, is_nash_equilibrium};

    #[test]
    fn stars_are_ne_for_alpha_3_on_random_12_hosts() {
        for seed in 0..6u64 {
            let host = gncg_metrics::onetwo::random(7, 0.5, seed);
            let g = game(host, 3.0);
            for center in [0, 3] {
                assert!(
                    is_nash_equilibrium(&g, &star_profile(7, center)),
                    "seed {seed}, center {center}"
                );
            }
        }
    }

    #[test]
    fn stars_remain_ne_above_3() {
        let host = gncg_metrics::onetwo::random(6, 0.4, 1);
        for alpha in [3.0, 5.0, 50.0] {
            let g = game(host.clone(), alpha);
            assert!(is_nash_equilibrium(&g, &star_profile(6, 0)), "α = {alpha}");
        }
    }

    #[test]
    fn worst_case_witness_below_3() {
        // The theorem's threshold is witnessed: center 2-away from two
        // leaves that are 1 apart; for α < 3 buying the 1-edge saves 3 > α.
        let mut host = SymMatrix::filled(3, 2.0);
        host.set(1, 2, 1.0);
        let g = game(host, 2.5);
        assert!(!is_nash_equilibrium(&g, &star_profile(3, 0)));
        let g3 = g.with_alpha(3.0);
        assert!(is_nash_equilibrium(&g3, &star_profile(3, 0)));
    }

    #[test]
    fn star_ge_implies_the_cheaper_check_passes_too() {
        let host = gncg_metrics::onetwo::random(10, 0.5, 2);
        let g = game(host, 4.0);
        assert!(is_greedy_equilibrium(&g, &star_profile(10, 5)));
    }
}
