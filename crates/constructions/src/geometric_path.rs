//! Lemma 8 / Figure 9 and Theorem 18: the geometric path family.
//!
//! Points `v_0, …, v_n` on a line with `w(v_0, v_1) = 1` and
//! `w(v_{i−1}, v_i) = (2/α)(1 + 2/α)^{i−2}` for `i ≥ 2`; equivalently
//! `w(v_0, v_i) = (1 + 2/α)^{i−1}`. The path `P_{n+1}` is the social
//! optimum; the spanning star centered at `v_0` with *leaf-owned* edges is
//! a NE, and `cost(S)/cost(P) > 1` — the PoA of the `Rd–GNCG` exceeds 1
//! for every p-norm and every `d ≥ 1` (the points are collinear, so all
//! p-norms agree).
//!
//! Restricted to 4 nodes this is exactly Theorem 18's witness with ratio
//! `(3α³+24α²+40α+24)/(α³+10α²+32α+24)`.

use gncg_core::{Game, Profile};
use gncg_graph::NodeId;
use gncg_metrics::euclidean::PointSet;

/// Position of node `i` on the line: `0` for `v_0`, else `(1+2/α)^{i−1}`.
pub fn position(i: usize, alpha: f64) -> f64 {
    if i == 0 {
        0.0
    } else {
        (1.0 + 2.0 / alpha).powi(i as i32 - 1)
    }
}

/// The point set `v_0, …, v_n` (that is, `n + 1` points).
pub fn points(n: usize, alpha: f64) -> PointSet {
    PointSet::line(&(0..=n).map(|i| position(i, alpha)).collect::<Vec<_>>())
}

/// The game on `n + 1` collinear points (all p-norms coincide; the 1-norm
/// host matrix is used).
pub fn game(n: usize, alpha: f64) -> Game {
    Game::new(
        points(n, alpha).host_matrix(gncg_metrics::euclidean::Norm::L1),
        alpha,
    )
}

/// The social-optimum profile: the path, each edge owned by its left
/// endpoint.
pub fn path_profile(n: usize) -> Profile {
    let edges: Vec<(NodeId, NodeId)> = (0..n).map(|i| (i as NodeId, i as NodeId + 1)).collect();
    Profile::from_owned_edges(n + 1, &edges)
}

/// The NE profile: the star centered at `v_0` with **`v_0` owning every
/// edge** — the paper's "no deletions or swaps are possible" reading:
/// the center is adjacent to everyone (nothing to swap to) and deleting
/// disconnects (never profitable), so only leaf *additions* remain, and
/// those are priced out by the geometric weights.
pub fn star_profile(n: usize) -> Profile {
    Profile::star(n + 1, 0)
}

/// Closed-form NE star cost (proof of Lemma 8):
/// `(2n + α) · (α/2) · ((1 + 2/α)^n − 1)`.
pub fn star_cost_formula(n: usize, alpha: f64) -> f64 {
    (2.0 * n as f64 + alpha) * (alpha / 2.0) * ((1.0 + 2.0 / alpha).powi(n as i32) - 1.0)
}

/// Theorem 18's exact 4-node ratio.
pub fn theorem18_ratio(alpha: f64) -> f64 {
    gncg_core::poa::rd_pnorm_lower_bound(alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gncg_core::cost::social_cost;
    use gncg_core::equilibrium::is_nash_equilibrium;

    #[test]
    fn host_distances_are_geometric() {
        let alpha = 2.0;
        let g = game(4, alpha);
        // w(v0, vi) = (1+2/α)^{i-1} = 2^{i-1} for α = 2.
        for i in 1..=4u32 {
            assert!(gncg_graph::approx_eq(g.w(0, i), 2f64.powi(i as i32 - 1)));
        }
        // Consecutive gaps: (2/α)(1+2/α)^{i-2} = 2^{i-2}.
        assert!(gncg_graph::approx_eq(g.w(1, 2), 1.0));
        assert!(gncg_graph::approx_eq(g.w(2, 3), 2.0));
    }

    #[test]
    fn star_is_certified_ne() {
        for n in [3, 5, 7] {
            for alpha in [0.5, 1.0, 2.0, 6.0] {
                let g = game(n, alpha);
                assert!(
                    is_nash_equilibrium(&g, &star_profile(n)),
                    "star must be NE (n={n}, α={alpha})"
                );
            }
        }
    }

    #[test]
    fn star_cost_matches_formula() {
        for n in [3, 5] {
            for alpha in [1.0, 2.0, 4.0] {
                let g = game(n, alpha);
                let measured = social_cost(&g, &star_profile(n));
                assert!(
                    gncg_graph::approx_eq(measured, star_cost_formula(n, alpha)),
                    "n={n} α={alpha}: {measured} vs {}",
                    star_cost_formula(n, alpha)
                );
            }
        }
    }

    #[test]
    fn path_is_social_optimum_small() {
        for alpha in [1.0, 3.0] {
            let g = game(4, alpha); // 5 nodes
            let exact = gncg_solvers::opt_exact::social_optimum(&g);
            let path_cost = social_cost(&g, &path_profile(4));
            assert!(
                gncg_graph::approx_eq(exact.cost, path_cost),
                "path not optimal at α={alpha}: {path_cost} vs {}",
                exact.cost
            );
        }
    }

    #[test]
    fn ratio_exceeds_one() {
        for n in [4, 6] {
            for alpha in [0.5, 1.0, 2.0, 8.0] {
                let g = game(n, alpha);
                let r = social_cost(&g, &star_profile(n)) / social_cost(&g, &path_profile(n));
                assert!(r > 1.0, "n={n} α={alpha}: ratio {r}");
            }
        }
    }

    #[test]
    fn theorem18_ratio_matches_measured_4_nodes() {
        for alpha in [0.5, 1.0, 2.0, 5.0, 10.0] {
            let g = game(3, alpha); // v0..v3 — 4 nodes
            let measured = social_cost(&g, &star_profile(3)) / social_cost(&g, &path_profile(3));
            let formula = theorem18_ratio(alpha);
            assert!(
                (measured - formula).abs() < 1e-9,
                "α={alpha}: measured {measured} vs formula {formula}"
            );
        }
    }
}
