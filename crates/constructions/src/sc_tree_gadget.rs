//! Theorem 13 / Figure 4: best response in the T–GNCG ≡ Minimum Set Cover.
//!
//! Given a set-cover instance (universe `U` of `k` elements, `m` subsets
//! `X_i`), build the weighted tree (with `α = 1`, `L ≫ ε`,
//! `L/3 > β > kε`):
//!
//! * `(c, u)` of weight `L − ε`,
//! * `(u, b_i)` of weight `(L − β)/2` for every subset,
//! * `(c, a_i)` of weight `ε` for every subset,
//! * `(a_i, p_j)` of weight `L` for the one subset each element is
//!   attached to in the tree.
//!
//! The strategy profile: `c` and every `b_i` own their edge to `u`;
//! additionally the network contains `(b_i, a_i)` (owned by `b_i`) and
//! `(a_i, p_j)` for every `p_j ∈ X_i` (owned by `a_i`); `u` owns nothing.
//! Agent `u`'s best response buys exactly the set nodes of a minimum set
//! cover.

use gncg_core::{Game, Profile};
use gncg_graph::{NodeId, SymMatrix, WeightedTree};
use gncg_solvers::set_cover::SetCoverInstance;

/// Gadget parameters (`L ≫ ε`, `L/3 > β > kε`).
#[derive(Clone, Copy, Debug)]
pub struct GadgetParams {
    /// The large scale `L`.
    pub l: f64,
    /// The tiny scale `ε`.
    pub eps: f64,
    /// The separation `β`.
    pub beta: f64,
}

impl GadgetParams {
    /// Sensible defaults for a universe of size `k`: `L = 100`,
    /// `ε = 0.01`, `β = 1`.
    pub fn default_for(k: usize) -> Self {
        let p = GadgetParams {
            l: 100.0,
            eps: 0.01,
            beta: 1.0,
        };
        p.validate(k);
        p
    }

    /// Validates the parameter constraints of the reduction.
    pub fn validate(&self, k: usize) {
        assert!(self.l > 0.0 && self.eps > 0.0 && self.beta > 0.0);
        assert!(
            self.beta > k as f64 * self.eps,
            "need β > kε for the reduction"
        );
        assert!(self.beta < self.l / 3.0, "need β < L/3");
        assert!(self.l > 10.0 * self.eps, "need L >> ε");
    }
}

/// The Theorem 13 gadget.
#[derive(Clone, Debug)]
pub struct ScTreeGadget {
    /// The set-cover instance.
    pub instance: SetCoverInstance,
    /// Scales.
    pub params: GadgetParams,
}

impl ScTreeGadget {
    /// Builds the gadget.
    pub fn new(instance: SetCoverInstance, params: GadgetParams) -> Self {
        params.validate(instance.universe);
        ScTreeGadget { instance, params }
    }

    /// Number of subsets `m`.
    pub fn m(&self) -> usize {
        self.instance.sets.len()
    }

    /// Universe size `k`.
    pub fn k(&self) -> usize {
        self.instance.universe
    }

    /// Total nodes: `u, c, a_1..a_m, b_1..b_m, p_1..p_k`.
    pub fn nodes(&self) -> usize {
        2 + 2 * self.m() + self.k()
    }

    /// Node id of `u`.
    pub fn u(&self) -> NodeId {
        0
    }

    /// Node id of `c`.
    pub fn c(&self) -> NodeId {
        1
    }

    /// Node id of set node `a_i`.
    pub fn a(&self, i: usize) -> NodeId {
        assert!(i < self.m());
        (2 + i) as NodeId
    }

    /// Node id of `b_i`.
    pub fn b(&self, i: usize) -> NodeId {
        assert!(i < self.m());
        (2 + self.m() + i) as NodeId
    }

    /// Node id of element node `p_j`.
    pub fn p(&self, j: usize) -> NodeId {
        assert!(j < self.k());
        (2 + 2 * self.m() + j) as NodeId
    }

    /// The set node each element is attached to in the tree (the first
    /// subset containing it).
    pub fn attachment(&self, j: usize) -> usize {
        self.instance
            .sets
            .iter()
            .position(|s| s.contains(&j))
            .expect("instance covers the universe")
    }

    /// The defining weighted tree.
    pub fn tree(&self) -> WeightedTree {
        let GadgetParams { l, eps, beta } = self.params;
        let mut edges = vec![(self.c(), self.u(), l - eps)];
        for i in 0..self.m() {
            edges.push((self.u(), self.b(i), (l - beta) / 2.0));
            edges.push((self.c(), self.a(i), eps));
        }
        for j in 0..self.k() {
            edges.push((self.a(self.attachment(j)), self.p(j), l));
        }
        WeightedTree::new(self.nodes(), edges)
    }

    /// The host matrix (metric closure of the tree).
    pub fn host(&self) -> SymMatrix {
        self.tree().metric_closure()
    }

    /// The game (`α = 1` per the reduction).
    pub fn game(&self) -> Game {
        Game::new(self.host(), 1.0)
    }

    /// The reduction's strategy profile (u owns nothing).
    pub fn profile(&self) -> Profile {
        let mut p = Profile::empty(self.nodes());
        p.buy(self.c(), self.u());
        for i in 0..self.m() {
            p.buy(self.b(i), self.u());
            p.buy(self.b(i), self.a(i));
        }
        for j in 0..self.k() {
            for (i, s) in self.instance.sets.iter().enumerate() {
                if s.contains(&j) {
                    p.buy(self.a(i), self.p(j));
                }
            }
        }
        p
    }

    /// Extracts the set-cover choice encoded by a strategy of `u`
    /// (indices of bought set nodes).
    pub fn cover_of(&self, strategy: &std::collections::BTreeSet<NodeId>) -> Vec<usize> {
        (0..self.m())
            .filter(|&i| strategy.contains(&self.a(i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gncg_core::response::exact_best_response;
    use gncg_solvers::set_cover::exact_min_cover;

    fn instance() -> SetCoverInstance {
        // U = {0,1,2}; X1 = {0,1}, X2 = {1,2}, X3 = {2}. Min cover = {X1, X2}.
        SetCoverInstance::new(3, vec![vec![0, 1], vec![1, 2], vec![2]])
    }

    fn gadget() -> ScTreeGadget {
        ScTreeGadget::new(instance(), GadgetParams::default_for(3))
    }

    #[test]
    fn layout_and_distances() {
        let g = gadget();
        assert_eq!(g.nodes(), 2 + 6 + 3);
        let host = g.host();
        let GadgetParams { l, eps, beta } = g.params;
        // w(u, a_i) = (L−ε) + ε = L.
        assert!(gncg_graph::approx_eq(host.get(g.u(), g.a(0)), l));
        // w(u, p_j) = L + L = 2L (via c and the attachment set node).
        assert!(gncg_graph::approx_eq(host.get(g.u(), g.p(0)), 2.0 * l));
        // w(b_i, a_i) = (L−β)/2 + L.
        assert!(gncg_graph::approx_eq(
            host.get(g.b(0), g.a(0)),
            (l - beta) / 2.0 + l
        ));
        // Set nodes are 2ε apart.
        assert!(gncg_graph::approx_eq(host.get(g.a(0), g.a(1)), 2.0 * eps));
    }

    #[test]
    fn baseline_distances_in_profile_network() {
        let g = gadget();
        let game = g.game();
        let net = g.profile().build_network(&game);
        let d = gncg_graph::dijkstra::dijkstra(&net, g.u());
        let GadgetParams { l, beta, .. } = g.params;
        // d_G(u, a_i) = 2L − β (via b_i).
        assert!(gncg_graph::approx_eq(d[g.a(0) as usize], 2.0 * l - beta));
        // d_G(u, p_j) = 3L − β.
        assert!(gncg_graph::approx_eq(d[g.p(0) as usize], 3.0 * l - beta));
    }

    #[test]
    fn best_response_of_u_is_minimum_set_cover() {
        let g = gadget();
        let game = g.game();
        let p = g.profile();
        let br = exact_best_response(&game, &p, g.u());
        assert!(br.improves(), "u must profit from buying set edges");
        // Strategy consists solely of set nodes.
        assert!(
            br.strategy
                .iter()
                .all(|&v| (2..2 + g.m() as NodeId).contains(&v)),
            "BR must buy set nodes only, got {:?}",
            br.strategy
        );
        let cover = g.cover_of(&br.strategy);
        assert!(g.instance.is_cover(&cover), "BR must encode a cover");
        let min_size = exact_min_cover(&g.instance).len();
        assert_eq!(
            cover.len(),
            min_size,
            "BR must encode a *minimum* cover (got {cover:?})"
        );
    }

    #[test]
    fn larger_cover_strategies_cost_more() {
        let g = gadget();
        let game = g.game();
        let p = g.profile();
        let base = gncg_core::cost::base_graph_without(&game, &p, g.u());
        // Cover {X1, X2} (min) vs cover {X1, X2, X3}.
        let small: std::collections::BTreeSet<NodeId> = [g.a(0), g.a(1)].into_iter().collect();
        let large: std::collections::BTreeSet<NodeId> =
            [g.a(0), g.a(1), g.a(2)].into_iter().collect();
        let cs = gncg_core::cost::candidate_cost(&game, &base, g.u(), &small).total();
        let cl = gncg_core::cost::candidate_cost(&game, &base, g.u(), &large).total();
        assert!(cs < cl, "smaller cover must be cheaper: {cs} vs {cl}");
    }

    #[test]
    fn non_cover_strategies_are_improvable() {
        // Buying only X3 = {2} leaves elements 0, 1 uncovered; the BR from
        // that state must improve.
        let g = gadget();
        let game = g.game();
        let mut p = g.profile();
        p.buy(g.u(), g.a(2));
        let br = exact_best_response(&game, &p, g.u());
        assert!(br.improves());
    }

    #[test]
    #[should_panic]
    fn bad_params_rejected() {
        // β < kε violates the reduction constraint.
        ScTreeGadget::new(
            instance(),
            GadgetParams {
                l: 100.0,
                eps: 1.0,
                beta: 2.0,
            },
        );
    }
}
