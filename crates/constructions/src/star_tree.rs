//! Theorem 15 / Figure 6: the tree-metric star family.
//!
//! The defining tree `S*_n` is a star with center `u` (node 0), `n−2` leaf
//! edges of weight `2/α` (nodes 2..n) and one special edge `(u, v)` of
//! weight 1 (`v` = node 1). The social optimum is `S*_n` itself
//! (Corollary 3) with
//!
//! ```text
//! cost(S*_n) = (2n + α − 2) · ((n−2)·2/α + 1).
//! ```
//!
//! The spanning star `S_n` centered at `v` — one edge of weight 1 to `u`
//! and `n−2` edges of weight `1 + 2/α` to the leaves, all owned by `v` —
//! is a Nash Equilibrium with
//!
//! ```text
//! cost(S_n) = (2n + α − 2) · ((n−2)(1 + 2/α) + 1),
//! ```
//!
//! so `cost(S_n)/cost(S*_n) → (α+2)/2` as `n → ∞`, matching the Theorem 1
//! upper bound: the M–GNCG PoA bound is tight already on tree metrics.

use gncg_core::{Game, Profile};
use gncg_graph::{NodeId, WeightedTree};

/// Node index of the star center `u` of the defining tree.
pub const U: NodeId = 0;
/// Node index of the special neighbor `v` (the NE star center).
pub const V: NodeId = 1;

/// The defining weighted tree `S*_n` (requires `n >= 3`).
pub fn defining_tree(n: usize, alpha: f64) -> WeightedTree {
    assert!(n >= 3, "the family needs n >= 3");
    assert!(alpha > 0.0);
    let mut edges = vec![(U, V, 1.0)];
    for leaf in 2..n as NodeId {
        edges.push((U, leaf, 2.0 / alpha));
    }
    WeightedTree::new(n, edges)
}

/// The game on the metric closure of the defining tree.
pub fn game(n: usize, alpha: f64) -> Game {
    Game::new(defining_tree(n, alpha).metric_closure(), alpha)
}

/// The social-optimum profile: the defining tree, edges owned by `u`
/// (ownership is irrelevant for social cost).
pub fn opt_profile(n: usize) -> Profile {
    Profile::star(n, U)
}

/// The NE profile: the spanning star centered at `v`, all edges owned by
/// `v`.
pub fn ne_profile(n: usize) -> Profile {
    Profile::star(n, V)
}

/// Closed-form social cost of the optimum (paper, proof of Thm 15).
pub fn opt_cost_formula(n: usize, alpha: f64) -> f64 {
    let nn = n as f64;
    (2.0 * nn + alpha - 2.0) * ((nn - 2.0) * 2.0 / alpha + 1.0)
}

/// Closed-form social cost of the NE star (paper, proof of Thm 15).
pub fn ne_cost_formula(n: usize, alpha: f64) -> f64 {
    let nn = n as f64;
    (2.0 * nn + alpha - 2.0) * ((nn - 2.0) * (1.0 + 2.0 / alpha) + 1.0)
}

/// The ratio of the two closed forms (approaches `(α+2)/2` as `n → ∞`).
pub fn ratio_formula(n: usize, alpha: f64) -> f64 {
    ne_cost_formula(n, alpha) / opt_cost_formula(n, alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gncg_core::cost::social_cost;
    use gncg_core::equilibrium::is_nash_equilibrium;

    #[test]
    fn measured_costs_match_formulas() {
        for n in [3, 5, 8] {
            for alpha in [0.5, 1.0, 2.0, 5.0] {
                let g = game(n, alpha);
                let opt = social_cost(&g, &opt_profile(n));
                let ne = social_cost(&g, &ne_profile(n));
                assert!(
                    gncg_graph::approx_eq(opt, opt_cost_formula(n, alpha)),
                    "opt n={n} α={alpha}: {opt} vs {}",
                    opt_cost_formula(n, alpha)
                );
                assert!(
                    gncg_graph::approx_eq(ne, ne_cost_formula(n, alpha)),
                    "ne n={n} α={alpha}: {ne} vs {}",
                    ne_cost_formula(n, alpha)
                );
            }
        }
    }

    #[test]
    fn ne_profile_is_certified_nash() {
        for n in [4, 6, 8] {
            for alpha in [0.5, 1.0, 3.0] {
                let g = game(n, alpha);
                assert!(
                    is_nash_equilibrium(&g, &ne_profile(n)),
                    "star at v must be NE (n={n}, α={alpha})"
                );
            }
        }
    }

    #[test]
    fn opt_is_exact_social_optimum_small() {
        for alpha in [0.8, 2.0] {
            let g = game(5, alpha);
            let exact = gncg_solvers::opt_exact::social_optimum(&g);
            let tree_cost = social_cost(&g, &opt_profile(5));
            assert!(gncg_graph::approx_eq(exact.cost, tree_cost));
        }
    }

    #[test]
    fn ratio_approaches_metric_bound() {
        let alpha = 4.0;
        let bound = gncg_core::poa::metric_upper_bound(alpha);
        let r_small = ratio_formula(5, alpha);
        let r_big = ratio_formula(100_000, alpha);
        assert!(r_small < r_big);
        assert!(r_big < bound);
        assert!(bound - r_big < 1e-3, "ratio must approach (α+2)/2");
    }

    #[test]
    fn ratio_never_exceeds_upper_bound() {
        for n in [3, 10, 100, 10_000] {
            for alpha in [0.25, 1.0, 7.0, 40.0] {
                assert!(
                    ratio_formula(n, alpha) <= gncg_core::poa::metric_upper_bound(alpha) + 1e-12
                );
            }
        }
    }
}
