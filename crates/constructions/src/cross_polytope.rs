//! Theorem 19 / Figure 10: the 1-norm cross-polytope family.
//!
//! `n = 2d + 1` points in `R^d`: the origin `v_0`, the unit point
//! `v_1 = (1, 0, …, 0)`, its antipode `v_2 = (−2/α, 0, …, 0)`, and
//! `±(2/α)·e_i` for the remaining axes. Under the 1-norm,
//!
//! * the star `S*` centered at the origin is the social optimum, and
//! * the star `S` centered at `v_1` with all edges owned by `v_1` is a NE
//!   (the 1-norm turns this into exactly the Theorem 15 construction),
//!
//! giving `PoA ≥ 1 + α/(2 + α/(2d−1))`, which approaches the tight metric
//! bound `(α+2)/2` as `d → ∞`.

use gncg_core::{Game, Profile};
use gncg_metrics::euclidean::{Norm, PointSet};

/// The `2d + 1` points of the family.
pub fn points(d: usize, alpha: f64) -> PointSet {
    assert!(d >= 1);
    assert!(alpha > 0.0);
    let r = 2.0 / alpha;
    let mut pts: Vec<Vec<f64>> = Vec::with_capacity(2 * d + 1);
    pts.push(vec![0.0; d]); // v_0
    let mut v1 = vec![0.0; d];
    v1[0] = 1.0;
    pts.push(v1); // v_1
    let mut v2 = vec![0.0; d];
    v2[0] = -r;
    pts.push(v2); // v_2
    for axis in 1..d {
        let mut plus = vec![0.0; d];
        plus[axis] = r;
        pts.push(plus);
        let mut minus = vec![0.0; d];
        minus[axis] = -r;
        pts.push(minus);
    }
    PointSet::new(pts)
}

/// The game under the 1-norm.
pub fn game(d: usize, alpha: f64) -> Game {
    Game::new(points(d, alpha).host_matrix(Norm::L1), alpha)
}

/// Number of agents, `2d + 1`.
pub fn nodes(d: usize) -> usize {
    2 * d + 1
}

/// The social-optimum profile: the star centered at the origin.
pub fn opt_profile(d: usize) -> Profile {
    Profile::star(nodes(d), 0)
}

/// The NE profile: the star centered at `v_1`, all edges owned by `v_1`.
pub fn ne_profile(d: usize) -> Profile {
    Profile::star(nodes(d), 1)
}

/// The closed-form PoA lower bound `1 + α/(2 + α/(2d−1))`.
pub fn ratio_formula(d: usize, alpha: f64) -> f64 {
    gncg_core::poa::l1_lower_bound(alpha, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gncg_core::cost::social_cost;
    use gncg_core::equilibrium::is_nash_equilibrium;

    #[test]
    fn geometry_under_l1() {
        let alpha = 2.0; // r = 1
        let g = game(3, alpha);
        // v0 to all satellites: r = 1; v0 to v1: 1.
        for v in 1..7u32 {
            assert!(gncg_graph::approx_eq(g.w(0, v), 1.0));
        }
        // v1 to v2: 1 + r = 2 (collinear, opposite sides).
        assert!(gncg_graph::approx_eq(g.w(1, 2), 2.0));
        // v1 to an off-axis satellite: 1 + r = 2 under L1.
        assert!(gncg_graph::approx_eq(g.w(1, 3), 2.0));
        // Two off-axis satellites on different axes: 2r.
        assert!(gncg_graph::approx_eq(g.w(3, 5), 2.0));
    }

    #[test]
    fn ne_star_certified() {
        for d in [1, 2, 3] {
            for alpha in [0.5, 1.0, 2.0, 5.0] {
                let g = game(d, alpha);
                assert!(
                    is_nash_equilibrium(&g, &ne_profile(d)),
                    "v1-star must be NE (d={d}, α={alpha})"
                );
            }
        }
    }

    #[test]
    fn measured_ratio_matches_formula() {
        for d in [1, 2, 3] {
            for alpha in [0.5, 1.0, 3.0, 8.0] {
                let g = game(d, alpha);
                let measured = social_cost(&g, &ne_profile(d)) / social_cost(&g, &opt_profile(d));
                let formula = ratio_formula(d, alpha);
                assert!(
                    (measured - formula).abs() < 1e-9,
                    "d={d} α={alpha}: measured {measured} vs formula {formula}"
                );
            }
        }
    }

    #[test]
    fn origin_star_is_social_optimum_small() {
        for alpha in [1.0, 4.0] {
            let g = game(2, alpha); // 5 nodes
            let exact = gncg_solvers::opt_exact::social_optimum(&g);
            let star_cost = social_cost(&g, &opt_profile(2));
            assert!(
                gncg_graph::approx_eq(exact.cost, star_cost),
                "origin star not optimal (α={alpha}): {star_cost} vs {}",
                exact.cost
            );
        }
    }

    #[test]
    fn ratio_increases_with_dimension() {
        let alpha = 6.0;
        let mut prev = 0.0;
        for d in [1, 2, 4, 8] {
            let r = ratio_formula(d, alpha);
            assert!(r > prev);
            prev = r;
        }
        assert!(prev < gncg_core::poa::metric_upper_bound(alpha));
    }
}
