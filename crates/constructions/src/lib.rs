//! # gncg-constructions
//!
//! Faithful builds of every explicit construction in *Geometric Network
//! Creation Games*:
//!
//! * [`star_tree`] — Theorem 15 / Fig. 6: the tree-metric star family
//!   witnessing PoA ≥ (α+2)/2 − ε,
//! * [`clique_of_stars`] — Theorem 8 / Fig. 3: 1-2 lower bounds for
//!   `1/2 ≤ α ≤ 1`,
//! * [`star_12`] — Theorem 10: stars are NE in 1-2 graphs for α ≥ 3,
//! * [`geometric_path`] — Lemma 8 / Fig. 9 and Theorem 18: the geometric
//!   path family (PoA > 1 for every p-norm; explicit 4-node bound),
//! * [`cross_polytope`] — Theorem 19 / Fig. 10: 1-norm `R^d` family with
//!   PoA ≥ 1 + α/(2 + α/(2d−1)),
//! * [`three_cycle`] — Theorem 20's closing example: the 3-node instance
//!   where the proof's pairwise bound σ is quadratically loose,
//! * [`br_cycles`] — Theorems 14 & 17 / Figs. 5 & 8: instances without the
//!   finite improvement property, plus a certified best-response-cycle
//!   finder,
//! * [`vc_gadget`] — Theorem 4 / Fig. 2: NE-decision ≡ Vertex Cover,
//! * [`sc_tree_gadget`] — Theorem 13 / Fig. 4: tree-metric best response
//!   ≡ Set Cover,
//! * [`sc_rd_gadget`] — Theorem 16 / Fig. 7: planar Euclidean best
//!   response ≡ Set Cover.

pub mod br_cycles;
pub mod clique_of_stars;
pub mod conjectures;
pub mod cross_polytope;
pub mod geometric_path;
pub mod ne_oracle;
pub mod sc_rd_gadget;
pub mod sc_tree_gadget;
pub mod star_12;
pub mod star_tree;
pub mod three_cycle;
pub mod vc_gadget;
