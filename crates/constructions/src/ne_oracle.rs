//! Lemma 4 in executable form: computing a minimum vertex cover **using
//! only NE-decision queries** on GNCG instances.
//!
//! The paper proves Theorem 4 (NE-decision is NP-hard) via Lemma 4: a
//! polynomial-time oracle that, given a graph `G` and a vertex cover of
//! size `k`, decides whether a cover of size `k−1` exists would let one
//! *compute* a minimum vertex cover in polynomial time. Here we implement
//! both directions concretely:
//!
//! * the **oracle** is the Theorem 4 gadget itself — "does agent `u` have
//!   an improving deviation" (an NE-decision query) answers "does a
//!   smaller cover exist";
//! * the **Lemma 4 algorithm** drives that oracle to construct a minimum
//!   cover: repeatedly shrink the incumbent cover by one, locating a
//!   shrinkable vertex via `oracle(G − v, C − v)` queries and recursing,
//!   with the lemma's `V(G) \ C` fallback when every per-vertex query
//!   answers no.
//!
//! The tests verify the pipeline end-to-end against the exact solver.

use gncg_core::response::exact_best_response;
use gncg_solvers::vertex_cover::CoverGraph;

use crate::vc_gadget::VcGadget;

/// Statistics of a Lemma 4 run.
#[derive(Clone, Debug, Default)]
pub struct OracleStats {
    /// NE-decision queries issued.
    pub queries: usize,
}

/// The NE-decision oracle of Theorem 4: given `g` and a vertex cover
/// `cover`, decides whether `g` admits a cover of size `|cover| − 1`, by
/// building the gadget and asking whether agent `u` can improve.
///
/// # Panics
/// Panics if `cover` is not a vertex cover of `g`.
pub fn smaller_cover_exists(g: &CoverGraph, cover: &[usize], stats: &mut OracleStats) -> bool {
    assert!(g.is_cover(cover), "oracle needs a valid cover");
    stats.queries += 1;
    if g.edges.is_empty() {
        // The empty set covers an edgeless graph; a smaller cover exists
        // iff the given one is non-empty.
        return !cover.is_empty();
    }
    if cover.is_empty() {
        return false;
    }
    let gadget = VcGadget::new(g.clone());
    let game = gadget.game();
    let profile = gadget.profile_with_cover(cover);
    // NE-decision on agent u: by Theorem 4, u improves iff a smaller
    // cover exists.
    exact_best_response(&game, &profile, gadget.u()).improves()
}

/// Computes a **minimum** vertex cover of `g` using only the NE-decision
/// oracle (plus the trivial 2-approximation as the starting incumbent) —
/// the Lemma 4 reduction, executable.
pub fn min_cover_via_ne_oracle(g: &CoverGraph) -> (Vec<usize>, OracleStats) {
    min_cover_via_ne_oracle_from(
        g,
        g.prune_cover(&gncg_solvers::vertex_cover::two_approx_cover(g)),
    )
}

/// Lemma 4 driven from an explicit starting cover (e.g. the full vertex
/// set, to exercise the whole shrinking loop).
///
/// # Panics
/// Panics if `start` is not a vertex cover of `g`.
pub fn min_cover_via_ne_oracle_from(
    g: &CoverGraph,
    start: Vec<usize>,
) -> (Vec<usize>, OracleStats) {
    assert!(g.is_cover(&start), "starting set must be a cover");
    let mut stats = OracleStats::default();
    let mut cover = start;
    while smaller_cover_exists(g, &cover, &mut stats) {
        cover = find_smaller(g, &cover, &mut stats);
    }
    (cover, stats)
}

/// Given that a cover of size `|cover| − 1` exists, finds one (Lemma 4's
/// inner routine).
fn find_smaller(g: &CoverGraph, cover: &[usize], stats: &mut OracleStats) -> Vec<usize> {
    debug_assert!(g.is_cover(cover));
    if g.edges.is_empty() {
        return Vec::new();
    }
    for (i, &v) in cover.iter().enumerate() {
        let g_minus = g.remove_vertex(v);
        let mut c_minus: Vec<usize> = cover.to_vec();
        c_minus.remove(i);
        // C − v covers G − v; ask whether G − v has a cover of size
        // |C| − 2, i.e. strictly smaller than |C − v|.
        let shrinkable = if g_minus.edges.is_empty() {
            !c_minus.is_empty()
        } else {
            smaller_cover_exists(&g_minus, &c_minus, stats)
        };
        if shrinkable {
            // v belongs to some (|C|−1)-cover: recurse on G − v for a
            // (|C|−2)-cover and add v back.
            let smaller_rest = if g_minus.edges.is_empty() {
                Vec::new()
            } else {
                find_smaller(&g_minus, &c_minus, stats)
            };
            let mut out = smaller_rest;
            out.push(v);
            out.sort_unstable();
            debug_assert!(g.is_cover(&out));
            debug_assert!(out.len() < cover.len());
            return out;
        }
    }
    // Lemma 4's fallback: every "no" answer certifies that some
    // (|C|−1)-cover avoids all of C, hence lives inside V \ C — so V \ C
    // is itself a cover; prune it greedily.
    let complement: Vec<usize> = (0..g.n).filter(|x| !cover.contains(x)).collect();
    let pruned = g.prune_cover(&complement);
    assert!(
        g.is_cover(&pruned) && pruned.len() < cover.len(),
        "Lemma 4 fallback must produce a smaller cover"
    );
    pruned
}

#[cfg(test)]
mod tests {
    use super::*;
    use gncg_solvers::vertex_cover::exact_min_cover;

    fn check(g: &CoverGraph) -> OracleStats {
        let (cover, stats) = min_cover_via_ne_oracle(g);
        assert!(g.is_cover(&cover));
        let opt = exact_min_cover(g);
        assert_eq!(
            cover.len(),
            opt.len(),
            "oracle pipeline must reach the minimum (got {cover:?}, opt {opt:?})"
        );
        stats
    }

    #[test]
    fn path_graphs() {
        check(&CoverGraph::new(3, &[(0, 1), (1, 2)]));
        check(&CoverGraph::new(4, &[(0, 1), (1, 2), (2, 3)]));
    }

    #[test]
    fn cycle_graph() {
        let stats = check(&CoverGraph::new(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]));
        assert!(stats.queries >= 1);
    }

    #[test]
    fn star_graph() {
        check(&CoverGraph::new(4, &[(0, 1), (0, 2), (0, 3)]));
    }

    #[test]
    fn triangle() {
        check(&CoverGraph::new(3, &[(0, 1), (1, 2), (2, 0)]));
    }

    #[test]
    fn edgeless_graph() {
        let g = CoverGraph::new(3, &[]);
        let (cover, _) = min_cover_via_ne_oracle(&g);
        assert!(cover.is_empty());
    }

    #[test]
    fn full_vertex_start_exercises_shrinking_loop() {
        // Starting from the full vertex set forces several shrink rounds.
        let g = CoverGraph::new(4, &[(0, 1), (1, 2), (2, 3)]);
        let (cover, stats) = min_cover_via_ne_oracle_from(&g, (0..4).collect());
        assert!(g.is_cover(&cover));
        assert_eq!(cover.len(), exact_min_cover(&g).len());
        assert!(
            stats.queries >= 3,
            "shrinking from n to 2 should need several queries, got {}",
            stats.queries
        );
    }

    #[test]
    #[should_panic]
    fn non_cover_start_rejected() {
        let g = CoverGraph::new(3, &[(0, 1), (1, 2)]);
        min_cover_via_ne_oracle_from(&g, vec![0]);
    }

    #[test]
    fn oracle_answers_match_ground_truth() {
        let g = CoverGraph::new(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut stats = OracleStats::default();
        // Min cover is 2 ({1, 2}); from a 3-cover a smaller one exists.
        assert!(smaller_cover_exists(&g, &[0, 1, 2], &mut stats));
        // From a minimum cover, none does.
        assert!(!smaller_cover_exists(&g, &[1, 2], &mut stats));
        assert_eq!(stats.queries, 2);
    }
}
