//! Probes for the paper's two open conjectures.
//!
//! * **Conjecture 1** — the `Rd–GNCG` with *any* p-norm lacks the finite
//!   improvement property (the paper proves it for the 1-norm,
//!   Theorem 17). We search random point sets under p ∈ {2, 3, ∞} for
//!   certified improving-move / best-response cycles.
//! * **Conjecture 2** — the PoA of the *general* (non-metric) GNCG equals
//!   the metric bound `(α+2)/2`, not the proven `((α+2)/2)²`
//!   (Theorem 20). Using exhaustive equilibrium enumeration
//!   ([`gncg_solvers::stability`]) we compute the **exact** PoA of random
//!   non-metric instances and compare against both bounds.

use gncg_core::{poa, Game};
use gncg_metrics::euclidean::{Norm, PointSet};

use crate::br_cycles::{certify_improving_cycle, find_improving_move_cycle, ImprovingMoveCycle};

/// Searches for an FIP violation under `norm` on random planar point sets
/// (Conjecture 1). Returns the first certified improving-move cycle.
pub fn conjecture1_probe(
    norm: Norm,
    n_points: usize,
    alpha: f64,
    seeds: std::ops::Range<u64>,
    budget_per_seed: usize,
) -> Option<(u64, ImprovingMoveCycle)> {
    for seed in seeds {
        let points = PointSet::random(n_points, 2, 4.0, seed);
        let game = Game::new(points.host_matrix(norm), alpha);
        if let Some(cycle) = find_improving_move_cycle(&game, seed, budget_per_seed) {
            if certify_improving_cycle(&game, &cycle) {
                return Some((seed, cycle));
            }
        }
    }
    None
}

/// One data point of the Conjecture 2 probe.
#[derive(Clone, Debug)]
pub struct Conjecture2Point {
    /// Instance seed.
    pub seed: u64,
    /// The α used.
    pub alpha: f64,
    /// Exact PoA of the instance (None when the instance admits no pure
    /// NE).
    pub exact_poa: Option<f64>,
    /// Exact PoS of the instance.
    pub exact_pos: Option<f64>,
    /// `exact_poa / ((α+2)/2)` — Conjecture 2 predicts ≤ 1.
    pub normalized: Option<f64>,
}

/// Computes the exact PoA of random **non-metric** instances on `n ≤ 5`
/// agents via exhaustive equilibrium enumeration and normalizes by the
/// conjectured bound `(α+2)/2`.
pub fn conjecture2_probe(
    n: usize,
    alphas: &[f64],
    seeds: std::ops::Range<u64>,
) -> Vec<Conjecture2Point> {
    assert!(n <= 5, "exact enumeration probe limited to n ≤ 5");
    let mut out = Vec::new();
    for seed in seeds {
        let host = gncg_metrics::arbitrary::random(n, 0.2, 8.0, seed);
        for &alpha in alphas {
            let game = Game::new(host.clone(), alpha);
            let land = gncg_solvers::stability::enumerate_equilibria(&game);
            let opt = gncg_solvers::opt_exact::social_optimum(&game);
            let exact_poa = land.price_of_anarchy(opt.cost);
            let exact_pos = land.price_of_stability(opt.cost);
            out.push(Conjecture2Point {
                seed,
                alpha,
                exact_poa,
                exact_pos,
                normalized: exact_poa.map(|p| p / poa::metric_upper_bound(alpha)),
            });
        }
    }
    out
}

/// The worst normalized PoA over a probe batch (`> 1` would refute
/// Conjecture 2 with a concrete counterexample).
pub fn worst_normalized(points: &[Conjecture2Point]) -> f64 {
    points
        .iter()
        .filter_map(|p| p.normalized)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjecture2_probe_small_batch() {
        let points = conjecture2_probe(4, &[1.0, 3.0], 0..4);
        assert_eq!(points.len(), 8);
        // Equilibria exist on most sampled instances; PoS ≤ PoA where both
        // exist.
        for p in &points {
            if let (Some(pos), Some(poa)) = (p.exact_pos, p.exact_poa) {
                assert!(pos <= poa + 1e-9);
                assert!(pos >= 1.0 - 1e-9);
            }
        }
        // Conjecture 2 on the sampled batch.
        let worst = worst_normalized(&points);
        assert!(
            worst <= 1.0 + 1e-9,
            "Conjecture 2 refuted on sample?! normalized = {worst}"
        );
    }

    #[test]
    fn conjecture2_never_exceeds_proven_bound() {
        // The proven Theorem 20 bound must hold unconditionally.
        let points = conjecture2_probe(4, &[0.5, 2.0], 4..8);
        for p in &points {
            if let Some(exact) = p.exact_poa {
                let proven = poa::general_upper_bound(p.alpha);
                let opt_rel = exact / proven;
                assert!(opt_rel <= 1.0 + 1e-9, "seed {} α {}", p.seed, p.alpha);
            }
        }
    }

    #[test]
    fn conjecture1_probe_interface() {
        // Smoke-test with a tiny budget: no crash; a found cycle certifies.
        if let Some((seed, cycle)) = conjecture1_probe(Norm::L2, 6, 1.0, 0..2, 2_000) {
            let points = PointSet::random(6, 2, 4.0, seed);
            let game = Game::new(points.host_matrix(Norm::L2), 1.0);
            assert!(certify_improving_cycle(&game, &cycle));
        }
    }
}
