//! Theorem 16 / Figure 7: best response in the `Rd–GNCG` ≡ Minimum Set
//! Cover, for any p-norm.
//!
//! Planar embedding (`α = 1`, `L ≫ ε`, `L/3 > β > kε`):
//!
//! * `u` at the origin,
//! * set nodes `a_i` on the radius-`L` circle, packed into an arc of
//!   length `ε`,
//! * element nodes `p_j` on the radius-`2L` circle, packed into an arc of
//!   length `ε`,
//! * `b_i` on the line through `u` and `a_i`, on the *opposite* side of
//!   `u` at distance `(L−β)/2` — so `u, b_i, a_i` are collinear with
//!   `w(b_i, a_i) = (L−β)/2 + L`.
//!
//! Network edges: `(b_i, u)` and `(b_i, a_i)` owned by `b_i`, and
//! `(a_i, p_j)` for every `p_j ∈ X_i` owned by `a_i`; `u` owns nothing.
//! Agent `u`'s best response buys exactly a minimum set cover's set nodes.

use gncg_core::{Game, Profile};
use gncg_graph::NodeId;
use gncg_metrics::euclidean::{Norm, PointSet};
use gncg_solvers::set_cover::SetCoverInstance;

pub use crate::sc_tree_gadget::GadgetParams;

/// The Theorem 16 planar gadget.
#[derive(Clone, Debug)]
pub struct ScRdGadget {
    /// The set-cover instance.
    pub instance: SetCoverInstance,
    /// Scales.
    pub params: GadgetParams,
}

impl ScRdGadget {
    /// Builds the gadget.
    pub fn new(instance: SetCoverInstance, params: GadgetParams) -> Self {
        params.validate(instance.universe);
        ScRdGadget { instance, params }
    }

    /// Number of subsets `m`.
    pub fn m(&self) -> usize {
        self.instance.sets.len()
    }

    /// Universe size `k`.
    pub fn k(&self) -> usize {
        self.instance.universe
    }

    /// Total nodes: `u, a_1..a_m, b_1..b_m, p_1..p_k`.
    pub fn nodes(&self) -> usize {
        1 + 2 * self.m() + self.k()
    }

    /// Node id of `u`.
    pub fn u(&self) -> NodeId {
        0
    }

    /// Node id of set node `a_i`.
    pub fn a(&self, i: usize) -> NodeId {
        assert!(i < self.m());
        (1 + i) as NodeId
    }

    /// Node id of `b_i`.
    pub fn b(&self, i: usize) -> NodeId {
        assert!(i < self.m());
        (1 + self.m() + i) as NodeId
    }

    /// Node id of element node `p_j`.
    pub fn p(&self, j: usize) -> NodeId {
        assert!(j < self.k());
        (1 + 2 * self.m() + j) as NodeId
    }

    /// Angle of set node `a_i` (radians): the `a`-nodes span an arc of
    /// length `ε` on the radius-`L` circle.
    fn a_angle(&self, i: usize) -> f64 {
        let m = self.m().max(2) as f64;
        (i as f64 / (m - 1.0)) * (self.params.eps / self.params.l)
    }

    /// Angle of element node `p_j`: arc of length `ε` on radius `2L`.
    fn p_angle(&self, j: usize) -> f64 {
        let k = self.k().max(2) as f64;
        (j as f64 / (k - 1.0)) * (self.params.eps / (2.0 * self.params.l))
    }

    /// The planar point set in node-id order.
    pub fn points(&self) -> PointSet {
        let GadgetParams { l, beta, .. } = self.params;
        let mut pts: Vec<Vec<f64>> = Vec::with_capacity(self.nodes());
        pts.push(vec![0.0, 0.0]); // u
        for i in 0..self.m() {
            let t = self.a_angle(i);
            pts.push(vec![l * t.cos(), l * t.sin()]);
        }
        for i in 0..self.m() {
            let t = self.a_angle(i);
            let r = (l - beta) / 2.0;
            pts.push(vec![-r * t.cos(), -r * t.sin()]);
        }
        for j in 0..self.k() {
            let t = self.p_angle(j);
            pts.push(vec![2.0 * l * t.cos(), 2.0 * l * t.sin()]);
        }
        PointSet::new(pts)
    }

    /// The game under `norm` (`α = 1` per the reduction).
    pub fn game(&self, norm: Norm) -> Game {
        Game::new(self.points().host_matrix(norm), 1.0)
    }

    /// The reduction's strategy profile (`u` owns nothing).
    pub fn profile(&self) -> Profile {
        let mut p = Profile::empty(self.nodes());
        for i in 0..self.m() {
            p.buy(self.b(i), self.u());
            p.buy(self.b(i), self.a(i));
        }
        for (i, s) in self.instance.sets.iter().enumerate() {
            for &j in s {
                p.buy(self.a(i), self.p(j));
            }
        }
        p
    }

    /// Extracts the set-cover choice encoded by a strategy of `u`.
    pub fn cover_of(&self, strategy: &std::collections::BTreeSet<NodeId>) -> Vec<usize> {
        (0..self.m())
            .filter(|&i| strategy.contains(&self.a(i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gncg_core::response::exact_best_response;
    use gncg_solvers::set_cover::exact_min_cover;

    fn instance() -> SetCoverInstance {
        SetCoverInstance::new(3, vec![vec![0, 1], vec![1, 2], vec![2]])
    }

    fn gadget() -> ScRdGadget {
        ScRdGadget::new(instance(), GadgetParams::default_for(3))
    }

    #[test]
    fn geometry() {
        let g = gadget();
        let game = g.game(Norm::L2);
        let GadgetParams { l, eps, beta } = g.params;
        // u–a_i distance L; u–p_j distance 2L; u–b_i distance (L−β)/2.
        for i in 0..g.m() {
            assert!((game.w(g.u(), g.a(i)) - l).abs() < 1e-9);
            assert!((game.w(g.u(), g.b(i)) - (l - beta) / 2.0).abs() < 1e-9);
        }
        for j in 0..g.k() {
            assert!((game.w(g.u(), g.p(j)) - 2.0 * l).abs() < 1e-9);
        }
        // Collinearity: w(b_i, a_i) = (L−β)/2 + L.
        for i in 0..g.m() {
            assert!((game.w(g.b(i), g.a(i)) - ((l - beta) / 2.0 + l)).abs() < 1e-9);
        }
        // Set nodes packed within ε of each other.
        assert!(game.w(g.a(0), g.a(g.m() - 1)) <= eps + 1e-9);
    }

    #[test]
    fn baseline_network_distances() {
        let g = gadget();
        let game = g.game(Norm::L2);
        let net = g.profile().build_network(&game);
        let d = gncg_graph::dijkstra::dijkstra(&net, g.u());
        let GadgetParams { l, beta, .. } = g.params;
        assert!((d[g.a(0) as usize] - (2.0 * l - beta)).abs() < 1e-9);
        assert!((d[g.p(0) as usize] - (3.0 * l - beta)).abs() < 1e-6);
    }

    #[test]
    fn best_response_of_u_is_minimum_set_cover_l2() {
        run_br_check(Norm::L2);
    }

    #[test]
    fn best_response_of_u_is_minimum_set_cover_other_norms() {
        // The reduction works for any p-norm (Theorem 16).
        run_br_check(Norm::L1);
        run_br_check(Norm::Lp(3.0));
    }

    fn run_br_check(norm: Norm) {
        let g = gadget();
        let game = g.game(norm);
        let p = g.profile();
        let br = exact_best_response(&game, &p, g.u());
        assert!(br.improves(), "u must profit ({norm:?})");
        assert!(
            br.strategy
                .iter()
                .all(|&v| (1..1 + g.m() as NodeId).contains(&v)),
            "BR must buy set nodes only under {norm:?}, got {:?}",
            br.strategy
        );
        let cover = g.cover_of(&br.strategy);
        assert!(g.instance.is_cover(&cover));
        assert_eq!(cover.len(), exact_min_cover(&g.instance).len(), "{norm:?}");
    }

    #[test]
    fn host_is_metric() {
        let g = gadget();
        for norm in [Norm::L1, Norm::L2, Norm::LInf] {
            assert!(g.points().host_matrix(norm).satisfies_triangle_inequality());
        }
    }
}
