//! Theorem 8 / Figure 3: 1-2 lower-bound families for `1/2 ≤ α ≤ 1`.
//!
//! Construction: a clique `K` of `N` vertices joined by 1-edges; each
//! clique vertex is the center of a star of `N` fresh leaves (1-edges); a
//! special vertex `u`. For the `α = 1` family `u` has a 1-edge to *every*
//! other vertex; for the `1/2 ≤ α < 1` family `u` has 1-edges only to the
//! clique vertices. All remaining pairs are 2-edges.
//!
//! * optimum: (a superset of) the 1-edge subgraph — social cost
//!   `≈ (α+2)·stuff` with leading term `2N⁴` (α = 1) / `(α+2)N⁴` (α < 1),
//! * NE: all 1-edges except those between `u` and star leaves — social
//!   cost `3N⁴ − Θ(N³)`,
//!
//! driving the ratio to `3/2 − ε` (α = 1) and `3/(α+2) − ε`
//! (`1/2 ≤ α < 1`), which matches the Theorem 7 upper bound.

use gncg_core::{Game, Profile};
use gncg_graph::{NodeId, SymMatrix};
use gncg_metrics::onetwo;

/// Node layout of the family.
#[derive(Clone, Debug)]
pub struct CliqueOfStars {
    /// Star/clique parameter `N`.
    pub n_param: usize,
    /// Whether `u` has 1-edges to the leaves too (the `α = 1` variant).
    pub u_adjacent_to_leaves: bool,
}

impl CliqueOfStars {
    /// The `α = 1` family (Fig. 3 right: `u` 1-adjacent to everyone).
    pub fn alpha_one(n_param: usize) -> Self {
        CliqueOfStars {
            n_param,
            u_adjacent_to_leaves: true,
        }
    }

    /// The `1/2 ≤ α < 1` family (Fig. 3 left: `u` 1-adjacent to the clique
    /// only).
    pub fn alpha_below_one(n_param: usize) -> Self {
        CliqueOfStars {
            n_param,
            u_adjacent_to_leaves: false,
        }
    }

    /// Total vertices: `N` clique + `N²` leaves + `u`.
    pub fn nodes(&self) -> usize {
        self.n_param * self.n_param + self.n_param + 1
    }

    /// Id of clique vertex `i` (`0 ≤ i < N`).
    pub fn clique(&self, i: usize) -> NodeId {
        assert!(i < self.n_param);
        i as NodeId
    }

    /// Id of leaf `j` of the star centered at clique vertex `i`.
    pub fn leaf(&self, i: usize, j: usize) -> NodeId {
        assert!(i < self.n_param && j < self.n_param);
        (self.n_param + i * self.n_param + j) as NodeId
    }

    /// Id of the special vertex `u`.
    pub fn u(&self) -> NodeId {
        (self.nodes() - 1) as NodeId
    }

    /// The 1-edges of the host.
    pub fn one_edges(&self) -> Vec<(NodeId, NodeId)> {
        let nq = self.n_param;
        let mut edges = Vec::new();
        for i in 0..nq {
            for k in (i + 1)..nq {
                edges.push((self.clique(i), self.clique(k)));
            }
            for j in 0..nq {
                edges.push((self.clique(i), self.leaf(i, j)));
            }
        }
        let u = self.u();
        for i in 0..nq {
            edges.push((self.clique(i), u));
        }
        if self.u_adjacent_to_leaves {
            for i in 0..nq {
                for j in 0..nq {
                    edges.push((self.leaf(i, j), u));
                }
            }
        }
        edges
    }

    /// The 1-2 host matrix.
    pub fn host(&self) -> SymMatrix {
        onetwo::from_one_edges(self.nodes(), &self.one_edges())
    }

    /// The game at `α`.
    pub fn game(&self, alpha: f64) -> Game {
        Game::new(self.host(), alpha)
    }

    /// The NE profile: all 1-edges *except* `u`–leaf edges, each bought by
    /// a canonical endpoint (clique vertices buy their star and clique
    /// edges; `u`'s edges to clique vertices are bought by `u`).
    pub fn ne_profile(&self) -> Profile {
        let nq = self.n_param;
        let mut p = Profile::empty(self.nodes());
        for i in 0..nq {
            for k in (i + 1)..nq {
                p.buy(self.clique(i), self.clique(k));
            }
            for j in 0..nq {
                p.buy(self.clique(i), self.leaf(i, j));
            }
        }
        for i in 0..nq {
            p.buy(self.u(), self.clique(i));
        }
        p
    }

    /// The optimum reference profile.
    ///
    /// For the `α = 1` family the 1-edge subgraph is the social optimum.
    /// For the `1/2 ≤ α < 1` family the paper upper-bounds the optimum by
    /// the cost of the **entire host graph** (`(α+2)N⁴ + Θ(N²)`) — for
    /// `α < 1` diameter-2 networks with 2-edges beat the diameter-3
    /// 1-edge subgraph. Either way the returned profile's cost
    /// upper-bounds OPT, so measured NE/OPT ratios are valid PoA *lower*
    /// bounds.
    pub fn opt_profile(&self) -> Profile {
        if self.u_adjacent_to_leaves {
            Profile::from_owned_edges(self.nodes(), &self.one_edges())
        } else {
            let n = self.nodes();
            let mut p = Profile::empty(n);
            for u in 0..n as NodeId {
                for v in (u + 1)..n as NodeId {
                    p.buy(u, v);
                }
            }
            p
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gncg_core::cost::social_cost;
    use gncg_core::equilibrium::{is_greedy_equilibrium, is_nash_equilibrium};

    #[test]
    fn layout_and_host() {
        let c = CliqueOfStars::alpha_one(2);
        assert_eq!(c.nodes(), 7);
        let host = c.host();
        assert!(gncg_metrics::onetwo::is_one_two(&host));
        // u adjacent to everyone with 1-edges.
        let u = c.u();
        for v in 0..6 {
            assert_eq!(host.get(u, v), 1.0);
        }
        // Leaves of different stars are 2 apart.
        assert_eq!(host.get(c.leaf(0, 0), c.leaf(1, 0)), 2.0);
    }

    #[test]
    fn ne_certified_alpha_one_small() {
        // N = 2 → n = 7: exact NE check is feasible.
        let c = CliqueOfStars::alpha_one(2);
        let game = c.game(1.0);
        assert!(is_nash_equilibrium(&game, &c.ne_profile()));
    }

    #[test]
    fn ne_certified_alpha_below_one_small() {
        let c = CliqueOfStars::alpha_below_one(2);
        for alpha in [0.5, 0.75, 0.99] {
            let game = c.game(alpha);
            assert!(is_nash_equilibrium(&game, &c.ne_profile()), "α = {alpha}");
        }
    }

    #[test]
    fn ne_greedy_stable_larger() {
        // N = 3 → n = 13: greedy certification is cheap.
        let c = CliqueOfStars::alpha_one(3);
        let game = c.game(1.0);
        assert!(is_greedy_equilibrium(&game, &c.ne_profile()));
    }

    #[test]
    fn ratio_grows_towards_three_halves_alpha_one() {
        // The ratio NE/OPT must increase with N towards 3/2.
        let mut prev = 0.0;
        for n_param in [2, 3, 4] {
            let c = CliqueOfStars::alpha_one(n_param);
            let game = c.game(1.0);
            let r = social_cost(&game, &c.ne_profile()) / social_cost(&game, &c.opt_profile());
            assert!(r > prev, "ratio should grow with N (N={n_param}, r={r})");
            assert!(r < 1.5);
            prev = r;
        }
        assert!(prev > 1.2, "by N = 4 the ratio should be well above 1");
    }

    #[test]
    fn ratio_below_bound_alpha_below_one() {
        // The family converges to 3/(α+2) from below as N → ∞ (Thm 8);
        // low-order Θ(N³) terms keep small N below 1 for α close to 1, so
        // we assert the bound, monotone growth, and (at α = 0.5, where the
        // gap is widest) crossing 1 already at N = 4. The bench harness
        // sweeps larger N.
        for alpha in [0.5, 0.75] {
            let bound = 3.0 / (alpha + 2.0);
            let mut prev = 0.0;
            for n_param in [2, 3, 4] {
                let c = CliqueOfStars::alpha_below_one(n_param);
                let game = c.game(alpha);
                let r = social_cost(&game, &c.ne_profile()) / social_cost(&game, &c.opt_profile());
                assert!(
                    r < bound + 1e-9,
                    "α={alpha} N={n_param}: {r} vs bound {bound}"
                );
                assert!(r > prev, "ratio must grow with N (α={alpha}, N={n_param})");
                prev = r;
            }
        }
        let c = CliqueOfStars::alpha_below_one(4);
        let game = c.game(0.5);
        let r = social_cost(&game, &c.ne_profile()) / social_cost(&game, &c.opt_profile());
        assert!(r > 1.0, "α=0.5, N=4 must already beat 1, got {r}");
    }

    #[test]
    fn opt_profile_has_diameter_2_when_u_adjacent() {
        let c = CliqueOfStars::alpha_one(3);
        let game = c.game(1.0);
        let g = c.opt_profile().build_network(&game);
        let d = gncg_graph::apsp::apsp_parallel(&g);
        assert!(d.diameter() <= 2.0 + 1e-12);
    }

    #[test]
    fn ne_profile_has_diameter_3() {
        let c = CliqueOfStars::alpha_one(3);
        let game = c.game(1.0);
        let g = c.ne_profile().build_network(&game);
        let d = gncg_graph::apsp::apsp_parallel(&g);
        assert!(gncg_graph::approx_eq(d.diameter(), 3.0));
    }
}
