//! Theorem 4 / Figure 2: deciding NE membership is NP-hard — the Vertex
//! Cover gadget.
//!
//! Given a (subcubic) Vertex Cover instance with `N` vertices and `m`
//! edges, build a 1-2 host at `α = 1`:
//!
//! * a *vertex node* `a_i` per VC vertex,
//! * two *edge nodes* `p_j, p'_j` per VC edge,
//! * one special node `u`.
//!
//! 1-edges: `a_i ↔ p_j, p'_j` iff `v_i` is an endpoint of `e_j`, and all
//! pairs of vertex nodes. Everything else (including every `u`-edge) has
//! weight 2.
//!
//! In the profile where all 1-edges are bought (one owner each) and `u`
//! buys 2-edges to the vertex nodes of a vertex cover of size `k`, agent
//! `u`'s cost is `3N + 6m + k'` for any deviation to a cover of size
//! `k'` — so `u`'s best response *is* a minimum vertex cover, and deciding
//! whether the profile is a NE decides whether a smaller cover exists.

use gncg_core::{Game, Profile};
use gncg_graph::{NodeId, SymMatrix};
use gncg_metrics::onetwo;
use gncg_solvers::vertex_cover::CoverGraph;

/// The Theorem 4 gadget built from a Vertex Cover instance.
#[derive(Clone, Debug)]
pub struct VcGadget {
    /// The underlying VC instance.
    pub instance: CoverGraph,
}

impl VcGadget {
    /// Wraps an instance.
    pub fn new(instance: CoverGraph) -> Self {
        VcGadget { instance }
    }

    /// Number of VC vertices `N`.
    pub fn n_vertices(&self) -> usize {
        self.instance.n
    }

    /// Number of VC edges `m`.
    pub fn m_edges(&self) -> usize {
        self.instance.edges.len()
    }

    /// Total gadget nodes: `N + 2m + 1`.
    pub fn nodes(&self) -> usize {
        self.n_vertices() + 2 * self.m_edges() + 1
    }

    /// Id of vertex node `a_i`.
    pub fn vertex_node(&self, i: usize) -> NodeId {
        assert!(i < self.n_vertices());
        i as NodeId
    }

    /// Id of edge node `p_j`.
    pub fn edge_node(&self, j: usize) -> NodeId {
        assert!(j < self.m_edges());
        (self.n_vertices() + 2 * j) as NodeId
    }

    /// Id of edge node `p'_j`.
    pub fn edge_node_prime(&self, j: usize) -> NodeId {
        assert!(j < self.m_edges());
        (self.n_vertices() + 2 * j + 1) as NodeId
    }

    /// Id of the special node `u`.
    pub fn u(&self) -> NodeId {
        (self.nodes() - 1) as NodeId
    }

    /// The gadget's 1-edges.
    pub fn one_edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut edges = Vec::new();
        let nv = self.n_vertices();
        for i in 0..nv {
            for k in (i + 1)..nv {
                edges.push((self.vertex_node(i), self.vertex_node(k)));
            }
        }
        for (j, &(x, y)) in self.instance.edges.iter().enumerate() {
            for endpoint in [x, y] {
                edges.push((self.vertex_node(endpoint), self.edge_node(j)));
                edges.push((self.vertex_node(endpoint), self.edge_node_prime(j)));
            }
        }
        edges
    }

    /// The 1-2 host matrix.
    pub fn host(&self) -> SymMatrix {
        onetwo::from_one_edges(self.nodes(), &self.one_edges())
    }

    /// The game (always `α = 1` per the reduction).
    pub fn game(&self) -> Game {
        Game::new(self.host(), 1.0)
    }

    /// The reduction's profile: every 1-edge bought by its smaller
    /// endpoint; `u` buys 2-edges towards the vertex nodes in `cover`.
    ///
    /// # Panics
    /// Panics if `cover` is not a vertex cover of the instance.
    pub fn profile_with_cover(&self, cover: &[usize]) -> Profile {
        assert!(
            self.instance.is_cover(cover),
            "u's strategy must correspond to a vertex cover"
        );
        let mut p = Profile::from_owned_edges(self.nodes(), &self.one_edges());
        for &i in cover {
            p.buy(self.u(), self.vertex_node(i));
        }
        p
    }

    /// The size of the cover encoded by `u`'s strategy in a profile
    /// (counts bought vertex nodes).
    pub fn cover_of_u(&self, profile: &Profile) -> Vec<usize> {
        profile
            .strategy(self.u())
            .iter()
            .filter(|&&v| (v as usize) < self.n_vertices())
            .map(|&v| v as usize)
            .collect()
    }

    /// The paper's cost formula for `u` when playing a cover of size `k'`:
    /// `3N + 6m + k'`.
    pub fn u_cost_formula(&self, k: usize) -> f64 {
        (3 * self.n_vertices() + 6 * self.m_edges() + k) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gncg_core::response::exact_best_response;
    use gncg_solvers::vertex_cover::exact_min_cover;

    /// Path graph v0 - v1 - v2: minimum cover = {v1}.
    fn p3() -> VcGadget {
        VcGadget::new(CoverGraph::new(3, &[(0, 1), (1, 2)]))
    }

    #[test]
    fn layout() {
        let g = p3();
        assert_eq!(g.nodes(), 3 + 4 + 1);
        assert_eq!(g.u(), 7);
        let host = g.host();
        assert!(gncg_metrics::onetwo::is_one_two(&host));
        // u has no 1-edges.
        for v in 0..7 {
            assert_eq!(host.get(7, v), 2.0);
        }
        // a1 (cover vertex) 1-adjacent to all edge nodes.
        for j in 0..2 {
            assert_eq!(host.get(1, g.edge_node(j)), 1.0);
            assert_eq!(host.get(1, g.edge_node_prime(j)), 1.0);
        }
        // a0 only 1-adjacent to edge 0's nodes.
        assert_eq!(host.get(0, g.edge_node(0)), 1.0);
        assert_eq!(host.get(0, g.edge_node(1)), 2.0);
    }

    #[test]
    fn u_cost_matches_formula() {
        let gadget = p3();
        let game = gadget.game();
        // Optimal cover {1}: cost = 3·3 + 6·2 + 1 = 22.
        let p = gadget.profile_with_cover(&[1]);
        let c = gncg_core::cost::agent_cost(&game, &p, gadget.u()).total();
        assert!(gncg_graph::approx_eq(c, gadget.u_cost_formula(1)));
        // Suboptimal cover {0, 2}: cost = 22 + 1 = 23... formula with k=2.
        let p2 = gadget.profile_with_cover(&[0, 2]);
        let c2 = gncg_core::cost::agent_cost(&game, &p2, gadget.u()).total();
        assert!(gncg_graph::approx_eq(c2, gadget.u_cost_formula(2)));
    }

    #[test]
    fn best_response_of_u_is_minimum_cover() {
        let gadget = p3();
        let game = gadget.game();
        // Start u from the suboptimal cover {0, 2}.
        let p = gadget.profile_with_cover(&[0, 2]);
        let br = exact_best_response(&game, &p, gadget.u());
        assert!(br.improves());
        // The best response must cost exactly formula(min cover size).
        let min_k = exact_min_cover(&gadget.instance).len();
        assert_eq!(min_k, 1);
        assert!(gncg_graph::approx_eq(br.cost, gadget.u_cost_formula(min_k)));
        // And the strategy is exactly a minimum vertex cover of vertex nodes.
        let bought: Vec<usize> = br.strategy.iter().map(|&v| v as usize).collect();
        assert!(bought.iter().all(|&v| v < gadget.n_vertices()));
        assert!(gadget.instance.is_cover(&bought));
        assert_eq!(bought.len(), min_k);
    }

    #[test]
    fn minimum_cover_profile_is_stable_for_u() {
        let gadget = p3();
        let game = gadget.game();
        let p = gadget.profile_with_cover(&[1]);
        let br = exact_best_response(&game, &p, gadget.u());
        assert!(
            !br.improves(),
            "with a minimum cover u must have no improving deviation"
        );
    }

    #[test]
    fn ne_decision_equals_minimality() {
        // The full NE-decision equivalence on a 4-cycle: min cover = 2.
        let gadget = VcGadget::new(CoverGraph::new(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]));
        let game = gadget.game();
        let min_cover = exact_min_cover(&gadget.instance);
        assert_eq!(min_cover.len(), 2);
        // u playing a minimum cover: no improving move.
        let stable = gadget.profile_with_cover(&min_cover);
        assert!(!exact_best_response(&game, &stable, gadget.u()).improves());
        // u playing a size-3 cover: improving move exists.
        let slack = gadget.profile_with_cover(&[0, 1, 2]);
        assert!(exact_best_response(&game, &slack, gadget.u()).improves());
    }

    #[test]
    fn other_agents_are_stable_in_reduction_profile() {
        // The reduction requires every agent except u to already play a
        // best response.
        let gadget = p3();
        let game = gadget.game();
        let p = gadget.profile_with_cover(&[1]);
        for agent in 0..gadget.nodes() as NodeId - 1 {
            let br = exact_best_response(&game, &p, agent);
            assert!(
                !br.improves(),
                "agent {agent} should be stable in the gadget profile"
            );
        }
    }
}
