//! Theorems 14 and 17 / Figures 5 and 8: instances without the finite
//! improvement property, and a certified best-response-cycle finder.
//!
//! A *best-response cycle* is a sequence of best-response improving moves
//! that returns to its starting strategy vector; its existence proves the
//! game is not a potential game. The paper exhibits such cycles on
//!
//! * the 10-node weighted tree of Figure 5 (tree metric, Theorem 14), and
//! * the 10-point 1-norm plane configuration of Figure 8 (Theorem 17).
//!
//! The precise move sequences live in the figures; rather than transcribe
//! pixel coordinates we *search*: run exact best-response dynamics under
//! randomized activation until a profile recurs. Any recurrence under
//! best-response moves **is** a best-response cycle, and
//! [`certify_cycle`] re-verifies every transition independently (each move
//! strictly improves and lands on an exact best response).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gncg_core::response::exact_best_response;
use gncg_core::{Game, NodeId, Profile};
use gncg_graph::WeightedTree;
use gncg_metrics::euclidean::{Norm, PointSet};

/// The Figure 5 weighted tree (nodes `a_0 … a_9`).
pub fn fig5_tree() -> WeightedTree {
    WeightedTree::new(
        10,
        vec![
            (6, 3, 3.0),
            (3, 4, 7.0),
            (3, 5, 2.0),
            (3, 2, 5.0),
            (2, 0, 12.0),
            (0, 7, 9.0),
            (7, 1, 11.0),
            (7, 8, 2.0),
            (8, 9, 10.0),
        ],
    )
}

/// The Figure 8 point configuration (1-norm plane).
pub fn fig8_points() -> PointSet {
    PointSet::planar(&[
        (3.0, 0.0), // a0
        (0.0, 3.0), // a1
        (2.0, 2.0), // a2
        (0.0, 2.0), // a3
        (1.0, 1.0), // a4
        (4.0, 3.0), // a5
        (2.0, 0.0), // a6
        (4.0, 1.0), // a7
        (1.0, 4.0), // a8
        (1.0, 0.0), // a9
    ])
}

/// The Theorem 14 game: metric closure of the Figure 5 tree (α = 1 as in
/// the paper's dynamics discussion).
pub fn fig5_game(alpha: f64) -> Game {
    Game::new(fig5_tree().metric_closure(), alpha)
}

/// The Theorem 17 game: Figure 8 points under the 1-norm.
pub fn fig8_game(alpha: f64) -> Game {
    Game::new(fig8_points().host_matrix(Norm::L1), alpha)
}

/// One certified step of a best-response cycle.
#[derive(Clone, Debug)]
pub struct CycleStep {
    /// The moving agent.
    pub agent: NodeId,
    /// The profile *before* the move.
    pub before: Profile,
    /// Agent cost before.
    pub cost_before: f64,
    /// Agent cost after (strictly smaller).
    pub cost_after: f64,
}

/// A certified best-response cycle: applying the steps in order returns to
/// `steps[0].before`.
#[derive(Clone, Debug)]
pub struct BestResponseCycle {
    /// The steps of the cycle.
    pub steps: Vec<CycleStep>,
}

impl BestResponseCycle {
    /// Cycle length (number of moves).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the cycle is empty (never true for found cycles).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Searches for a best-response cycle on `game` by running exact
/// best-response dynamics under seeded random activation from random
/// spanning-tree starting profiles. Returns the first certified cycle.
///
/// `budget` bounds the total number of best-response moves tried across
/// restarts.
pub fn find_best_response_cycle(
    game: &Game,
    seed: u64,
    budget: usize,
) -> Option<BestResponseCycle> {
    let n = game.n();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut spent = 0usize;
    while spent < budget {
        // Random spanning tree with random ownership as the start.
        let mut profile = random_tree_profile(n, &mut rng);
        let mut history: Vec<(Profile, NodeId)> = Vec::new();
        let mut seen: std::collections::HashMap<Profile, usize> = std::collections::HashMap::new();
        seen.insert(profile.clone(), 0);
        // Random activation until silence, recurrence, or local budget.
        let mut idle = 0usize;
        while spent < budget && idle < 4 * n {
            let u = rng.gen_range(0..n) as NodeId;
            let br = exact_best_response(game, &profile, u);
            spent += 1;
            if !br.improves() {
                idle += 1;
                continue;
            }
            idle = 0;
            history.push((profile.clone(), u));
            let mut next = profile.clone();
            next.set_strategy(u, br.strategy);
            if let Some(&first) = seen.get(&next) {
                // Recurrence: the moves from step `first` onward form a cycle.
                let steps = history[first..]
                    .iter()
                    .map(|(p, agent)| {
                        let br = exact_best_response(game, p, *agent);
                        CycleStep {
                            agent: *agent,
                            before: p.clone(),
                            cost_before: br.current_cost,
                            cost_after: br.cost,
                        }
                    })
                    .collect();
                let cycle = BestResponseCycle { steps };
                if certify_cycle(game, &cycle) {
                    return Some(cycle);
                }
            }
            seen.insert(next.clone(), history.len());
            profile = next;
        }
    }
    None
}

/// Independently re-verifies a cycle: every step's move is a strictly
/// improving exact best response, consecutive profiles chain correctly,
/// and the last step returns to the first profile.
pub fn certify_cycle(game: &Game, cycle: &BestResponseCycle) -> bool {
    if cycle.is_empty() {
        return false;
    }
    let k = cycle.len();
    for (i, step) in cycle.steps.iter().enumerate() {
        let br = exact_best_response(game, &step.before, step.agent);
        if !br.improves() {
            return false;
        }
        // The applied strategy must be *a* best response (cost-equal).
        let mut after = step.before.clone();
        after.set_strategy(step.agent, br.strategy);
        let next = &cycle.steps[(i + 1) % k].before;
        // Chain: the state after this move is the next step's before-state
        // (for the last step: the first state — closing the cycle). Because
        // best responses can tie, we require cost-equality of the move
        // actually chaining the cycle.
        let chained_cost = {
            let mut p = step.before.clone();
            p.set_strategy(step.agent, next.strategy(step.agent).clone());
            gncg_core::cost::agent_cost(game, &p, step.agent).total()
        };
        if !gncg_graph::approx_eq(chained_cost, br.cost) {
            return false;
        }
        // And all *other* agents' strategies must be unchanged.
        for v in 0..game.n() as NodeId {
            if v != step.agent && step.before.strategy(v) != next.strategy(v) {
                return false;
            }
        }
        let _ = after;
    }
    true
}

/// Searches for an **improving-move cycle**: a sequence of strictly
/// improving *greedy* moves (single add / delete / swap) that returns to
/// its starting profile. Any such cycle violates the finite improvement
/// property just as a best-response cycle does (FIP quantifies over *all*
/// improving-move sequences), which is what Theorem 14 / Corollary 1
/// assert. The walk picks uniformly among each activated agent's improving
/// greedy moves, so it explores move combinations a deterministic
/// best-response rule never visits.
pub fn find_improving_move_cycle(
    game: &Game,
    seed: u64,
    budget: usize,
) -> Option<ImprovingMoveCycle> {
    use gncg_core::cost::{base_graph_without, candidate_cost};
    use gncg_core::Move;
    let n = game.n();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut spent = 0usize;
    while spent < budget {
        let mut profile = random_tree_profile(n, &mut rng);
        let mut history: Vec<(Profile, NodeId, Profile)> = Vec::new();
        let mut seen: std::collections::HashMap<Profile, usize> = std::collections::HashMap::new();
        seen.insert(profile.clone(), 0);
        let mut idle = 0usize;
        while spent < budget && idle < 6 * n {
            let u = rng.gen_range(0..n) as NodeId;
            spent += 1;
            // All strictly improving greedy moves of u.
            let network = profile.build_network(game);
            let current = gncg_core::cost::agent_cost_in(game, &profile, &network, u).total();
            let base = base_graph_without(game, &profile, u);
            let own = profile.strategy(u);
            let improving: Vec<std::collections::BTreeSet<NodeId>> =
                Move::greedy_moves(&profile, u)
                    .into_iter()
                    .map(|m| m.apply(u, own))
                    .filter(|cand| {
                        gncg_graph::strictly_less(
                            candidate_cost(game, &base, u, cand).total(),
                            current,
                        )
                    })
                    .collect();
            if improving.is_empty() {
                idle += 1;
                continue;
            }
            idle = 0;
            let choice = improving[rng.gen_range(0..improving.len())].clone();
            let mut next = profile.clone();
            next.set_strategy(u, choice);
            history.push((profile.clone(), u, next.clone()));
            if let Some(&first) = seen.get(&next) {
                let steps: Vec<ImprovingStep> = history[first..]
                    .iter()
                    .map(|(before, agent, after)| ImprovingStep {
                        agent: *agent,
                        before: before.clone(),
                        after: after.clone(),
                    })
                    .collect();
                let cycle = ImprovingMoveCycle { steps };
                if certify_improving_cycle(game, &cycle) {
                    return Some(cycle);
                }
            }
            seen.insert(next.clone(), history.len());
            profile = next;
        }
    }
    None
}

/// One step of an improving-move cycle.
#[derive(Clone, Debug)]
pub struct ImprovingStep {
    /// The moving agent.
    pub agent: NodeId,
    /// Profile before the move.
    pub before: Profile,
    /// Profile after the move (differs only in `agent`'s strategy).
    pub after: Profile,
}

/// A certified improving-move cycle.
#[derive(Clone, Debug)]
pub struct ImprovingMoveCycle {
    /// The steps; applying them in order returns to `steps[0].before`.
    pub steps: Vec<ImprovingStep>,
}

impl ImprovingMoveCycle {
    /// Number of moves in the cycle.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the cycle is empty (never true for found cycles).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Independently re-verifies an improving-move cycle: each step changes
/// exactly one agent's strategy, strictly improves that agent, chains to
/// the next step, and the last step closes the loop.
pub fn certify_improving_cycle(game: &Game, cycle: &ImprovingMoveCycle) -> bool {
    if cycle.is_empty() {
        return false;
    }
    let k = cycle.len();
    for (i, step) in cycle.steps.iter().enumerate() {
        // Chain integrity.
        let next_before = &cycle.steps[(i + 1) % k].before;
        if &step.after != next_before {
            return false;
        }
        // Single-agent change.
        for v in 0..game.n() as NodeId {
            if v != step.agent && step.before.strategy(v) != step.after.strategy(v) {
                return false;
            }
        }
        // Strict improvement.
        let before_cost = gncg_core::cost::agent_cost(game, &step.before, step.agent).total();
        let after_cost = gncg_core::cost::agent_cost(game, &step.after, step.agent).total();
        if !gncg_graph::strictly_less(after_cost, before_cost) {
            return false;
        }
    }
    true
}

fn random_tree_profile(n: usize, rng: &mut StdRng) -> Profile {
    let mut p = Profile::empty(n);
    for v in 1..n as NodeId {
        let parent = rng.gen_range(0..v);
        if rng.gen_bool(0.5) {
            p.buy(parent, v);
        } else {
            p.buy(v, parent);
        }
    }
    // Sprinkle a few extra edges: the paper's cycles live on profiles that
    // are not spanning trees, so pure-tree starts can miss the cycling
    // region of the profile space.
    let extras = rng.gen_range(0..=n / 3);
    for _ in 0..extras {
        let u = rng.gen_range(0..n) as NodeId;
        let v = rng.gen_range(0..n) as NodeId;
        if u != v && !p.has_edge(u, v) {
            p.buy(u, v);
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_tree_shape() {
        let t = fig5_tree();
        assert_eq!(t.n(), 10);
        assert!(t.as_graph().is_tree());
        let w = t.metric_closure();
        assert!(w.satisfies_triangle_inequality());
    }

    #[test]
    fn fig8_point_distances() {
        let ps = fig8_points();
        let w = ps.host_matrix(Norm::L1);
        // a0 = (3,0), a4 = (1,1): L1 distance 3.
        assert_eq!(w.get(0, 4), 3.0);
        // a1 = (0,3), a8 = (1,4): 2.
        assert_eq!(w.get(1, 8), 2.0);
        assert!(w.satisfies_triangle_inequality());
    }

    #[test]
    fn certify_rejects_empty_and_garbage() {
        let game = fig5_game(1.0);
        assert!(!certify_cycle(&game, &BestResponseCycle { steps: vec![] }));
        // A non-improving fake step must be rejected.
        let p = Profile::star(10, 0);
        let fake = BestResponseCycle {
            steps: vec![CycleStep {
                agent: 0,
                before: p,
                cost_before: 1.0,
                cost_after: 0.5,
            }],
        };
        assert!(!certify_cycle(&game, &fake));
    }

    // The cycle *search* tests live in the integration suite (they are
    // heavier); here we only smoke-test the machinery on a tiny budget.
    #[test]
    fn search_smoke_runs_within_budget() {
        let game = fig5_game(1.0);
        let _ = find_best_response_cycle(&game, 1, 50);
    }
}
