//! The protocol client: a blocking line-oriented wrapper around one TCP
//! connection, used by the `gncg submit`/`status`/`shutdown` subcommands,
//! the integration tests, and the `service_roundtrip` benchmark.
//!
//! # Error taxonomy and retries
//!
//! Client errors stay plain `String`s, but **transport** failures —
//! connect refused, timeouts, the daemon vanishing mid-response — are
//! tagged with a `transport:` prefix ([`is_transport_error`]). The
//! distinction is what makes retrying safe to automate: a transport
//! error means the *channel* failed and the operation may be retried
//! against a (possibly restarted) daemon, while an untagged error is the
//! daemon *answering* with a refusal — retrying would just repeat it.
//!
//! [`RetryPolicy`] packages the loop: reconnect per attempt, jittered
//! exponential backoff between attempts, retry only on transport
//! errors. Every protocol op is idempotent under it: `ping`/`status`
//! trivially, `stream`/`tail` because results are immutable once
//! recorded, and `submit` because `cell_digest`
//! (`gncg_suite::scenario::cell_digest`) dedupes re-submitted cells via
//! the result cache (a retried submit re-acknowledges cheaply and
//! byte-identically).

use std::io::{BufRead as _, BufReader, BufWriter, Write};
use std::net::TcpStream;

use gncg_suite::scenario::ScenarioSpec;

use crate::json::{parse, Value};
use crate::protocol::{is_control_line, Request};

/// Whether a client error is a transport failure (connection, timeout,
/// torn response) — retryable — as opposed to a daemon refusal, which
/// retrying would only repeat.
pub fn is_transport_error(err: &str) -> bool {
    err.starts_with("transport:")
}

/// Acknowledgement of a `submit`.
#[derive(Clone, Copy, Debug)]
pub struct SubmitAck {
    /// The assigned job id.
    pub job: u64,
    /// Cells the job expands to.
    pub cells: usize,
}

/// One job's status snapshot.
#[derive(Clone, Debug)]
pub struct JobStatus {
    /// The job id.
    pub job: u64,
    /// `queued`, `running`, `done`, or `canceled`.
    pub state: String,
    /// Cells finished.
    pub done: usize,
    /// Cells total.
    pub total: usize,
    /// Finished cells served from the result cache.
    pub cache_hits: usize,
    /// Finished cells actually simulated.
    pub simulated: usize,
}

/// Daemon-wide status snapshot.
#[derive(Clone, Debug)]
pub struct DaemonStatus {
    /// Milliseconds since the daemon started.
    pub uptime_ms: u64,
    /// Jobs currently in the table (active + retained finished).
    pub jobs: usize,
    /// Jobs queued or running.
    pub active: usize,
    /// Of the active jobs, how many are still queued (no cell has
    /// started).
    pub queued: usize,
    /// Jobs completed since startup.
    pub done: u64,
    /// Jobs canceled since startup.
    pub canceled: u64,
    /// Jobs expired (deadline exceeded) since startup.
    pub expired: u64,
    /// Result-cache entries held.
    pub cache_entries: usize,
    /// Cache lookups that hit, since startup.
    pub cache_hits: u64,
    /// Cache lookups that missed, since startup.
    pub cache_misses: u64,
    /// Whether the result cache lost its backing file to a disk-append
    /// failure and now serves from memory only.
    pub cache_degraded: bool,
    /// Cache disk-append failures since startup.
    pub cache_errors: u64,
    /// Journal append failures since startup (non-zero means accepted
    /// jobs are no longer crash-durable).
    pub journal_errors: u64,
    /// Whether the daemon is draining (`shutdown --drain` received;
    /// active jobs finishing, new submits refused).
    pub draining: bool,
    /// Worker threads.
    pub workers: usize,
    /// Compute-pool threads (the rayon shim's within-cell fan-out).
    pub threads: usize,
    /// Active-job cap.
    pub queue_cap: usize,
}

/// Result of draining one `stream` response.
#[derive(Clone, Copy, Debug)]
pub struct StreamSummary {
    /// Cell lines received.
    pub cells: usize,
    /// Of those, how many the daemon served from its cache.
    pub cache_hits: usize,
    /// Of those, how many the daemon simulated.
    pub simulated: usize,
}

/// A connected protocol client.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a daemon.
    pub fn connect(addr: &str) -> Result<Client, String> {
        Client::connect_with(addr, None)
    }

    /// Connects with an optional per-read timeout. The timeout is
    /// opt-in because `stream`/`tail` responses legitimately block for
    /// as long as the job computes — set it for control-plane calls (or
    /// pass a bound generous enough for the expected compute).
    ///
    /// Writes always carry a generous timeout: a client write only
    /// blocks when the daemon has stopped reading entirely, and hanging
    /// forever on a dead peer is the failure mode this PR removes.
    pub fn connect_with(addr: &str, read_timeout_ms: Option<u64>) -> Result<Client, String> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| format!("transport: cannot connect to {addr}: {e}"))?;
        // See the accept loop: line-oriented RPC needs TCP_NODELAY or
        // Nagle + delayed ACK costs ~40 ms per consecutive small write.
        let _ = stream.set_nodelay(true);
        if let Some(ms) = read_timeout_ms.filter(|&ms| ms > 0) {
            let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(ms)));
        }
        let _ = stream.set_write_timeout(Some(std::time::Duration::from_secs(60)));
        let read_half = stream
            .try_clone()
            .map_err(|e| format!("transport: cannot clone connection: {e}"))?;
        Ok(Client {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
        })
    }

    fn send(&mut self, req: &Request) -> Result<(), String> {
        writeln!(self.writer, "{}", req.to_line())
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("transport: send failed: {e}"))
    }

    fn read_raw_line(&mut self) -> Result<String, String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Err("transport: connection closed by daemon".into()),
            Ok(_) => Ok(line.trim_end_matches(['\n', '\r']).to_string()),
            Err(e) => Err(format!("transport: read failed: {e}")),
        }
    }

    /// Reads one *control* line and returns its object if `ok`.
    fn read_control(&mut self) -> Result<Value, String> {
        let line = self.read_raw_line()?;
        let v = parse(&line).map_err(|e| format!("bad control line '{line}': {e}"))?;
        match v.get("ok").and_then(Value::as_bool) {
            Some(true) => Ok(v),
            Some(false) => Err(v
                .get("error")
                .and_then(Value::as_str)
                .unwrap_or("unspecified daemon error")
                .to_string()),
            None => Err(format!("line without ok member: {line}")),
        }
    }

    fn roundtrip(&mut self, req: &Request) -> Result<Value, String> {
        self.send(req)?;
        self.read_control()
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), String> {
        self.roundtrip(&Request::Ping).map(|_| ())
    }

    /// Submits a grid; the daemon starts executing immediately.
    pub fn submit(&mut self, spec: &ScenarioSpec) -> Result<SubmitAck, String> {
        self.submit_with_deadline(spec, None)
    }

    /// Submits a grid with an optional wall-clock deadline (milliseconds
    /// from acceptance): the daemon expires the job — state `expired`,
    /// streams receive an error footer — if it overruns.
    pub fn submit_with_deadline(
        &mut self,
        spec: &ScenarioSpec,
        deadline_ms: Option<u64>,
    ) -> Result<SubmitAck, String> {
        let v = self.roundtrip(&Request::Submit {
            spec: spec.clone(),
            deadline_ms,
        })?;
        Ok(SubmitAck {
            job: need_u64(&v, "job")?,
            cells: need_u64(&v, "cells")? as usize,
        })
    }

    /// One job's status.
    pub fn job_status(&mut self, job: u64) -> Result<JobStatus, String> {
        let v = self.roundtrip(&Request::Status { job: Some(job) })?;
        Ok(JobStatus {
            job,
            state: v
                .get("state")
                .and_then(Value::as_str)
                .unwrap_or("unknown")
                .to_string(),
            done: need_u64(&v, "done")? as usize,
            total: need_u64(&v, "total")? as usize,
            cache_hits: need_u64(&v, "cache_hits")? as usize,
            simulated: need_u64(&v, "simulated")? as usize,
        })
    }

    /// Daemon-wide status.
    pub fn daemon_status(&mut self) -> Result<DaemonStatus, String> {
        let v = self.roundtrip(&Request::Status { job: None })?;
        Ok(DaemonStatus {
            uptime_ms: need_u64(&v, "uptime_ms")?,
            jobs: need_u64(&v, "jobs")? as usize,
            active: need_u64(&v, "active")? as usize,
            queued: need_u64(&v, "queued")? as usize,
            done: need_u64(&v, "done")?,
            canceled: need_u64(&v, "canceled")?,
            expired: need_u64(&v, "expired")?,
            cache_entries: need_u64(&v, "cache_entries")? as usize,
            cache_hits: need_u64(&v, "cache_hits")?,
            cache_misses: need_u64(&v, "cache_misses")?,
            cache_degraded: need_bool(&v, "cache_degraded")?,
            cache_errors: need_u64(&v, "cache_errors")?,
            journal_errors: need_u64(&v, "journal_errors")?,
            draining: need_bool(&v, "draining")?,
            workers: need_u64(&v, "workers")? as usize,
            threads: need_u64(&v, "threads")? as usize,
            queue_cap: need_u64(&v, "queue_cap")? as usize,
        })
    }

    /// Fetches one finished cell's result line (the exact bytes `stream`
    /// would carry for it) — the `gncg explore` primitive. Errors on
    /// unknown jobs, out-of-range indices, and unfinished cells.
    pub fn explore(&mut self, job: u64, cell: u64) -> Result<String, String> {
        let v = self.roundtrip(&Request::Explore { job, cell })?;
        v.get("line")
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| "daemon response missing \"line\"".to_string())
    }

    /// Fetches the daemon's runtime metrics snapshot as its parsed JSON
    /// object (see [`crate::metrics`] for the members).
    pub fn metrics(&mut self) -> Result<Value, String> {
        let v = self.roundtrip(&Request::Metrics)?;
        v.get("metrics")
            .cloned()
            .ok_or_else(|| "daemon response missing \"metrics\"".to_string())
    }

    /// Cancels a job; returns its resulting state.
    pub fn cancel(&mut self, job: u64) -> Result<String, String> {
        let v = self.roundtrip(&Request::Cancel { job })?;
        Ok(v.get("state")
            .and_then(Value::as_str)
            .unwrap_or("unknown")
            .to_string())
    }

    /// Streams a job's cell lines into `out` (each line `\n`-terminated —
    /// the file `out` accumulates is byte-identical to the offline
    /// `gncg grid` output for the same spec), blocking until the job
    /// finishes or fails.
    pub fn stream_to(&mut self, job: u64, out: &mut dyn Write) -> Result<StreamSummary, String> {
        self.send(&Request::Stream { job })?;
        let header = self.read_control()?;
        let expected = need_u64(&header, "cells")? as usize;
        let mut cells = 0usize;
        loop {
            let line = self.read_raw_line()?;
            if is_control_line(&line) {
                let v = parse(&line).map_err(|e| format!("bad control line: {e}"))?;
                if v.get("ok").and_then(Value::as_bool) == Some(false) {
                    return Err(v
                        .get("error")
                        .and_then(Value::as_str)
                        .unwrap_or("stream aborted")
                        .to_string());
                }
                if cells != expected {
                    return Err(format!("stream ended after {cells}/{expected} cells"));
                }
                return Ok(StreamSummary {
                    cells,
                    cache_hits: need_u64(&v, "cache_hits")? as usize,
                    simulated: need_u64(&v, "simulated")? as usize,
                });
            }
            writeln!(out, "{line}").map_err(|e| format!("cannot write cell line: {e}"))?;
            cells += 1;
        }
    }

    /// Drains one `tail` response into `out`: cell lines arrive in
    /// **completion order** (whatever order the daemon's workers finish
    /// them in) and are re-sorted by their `cell` index on receipt, so
    /// the file `out` accumulates is byte-identical to what
    /// [`Client::stream_to`] produces. The contiguous cell-order prefix
    /// is written as it forms — `out` grows while a wide grid lands
    /// across many workers, and client memory is bounded by the
    /// out-of-order window, not the job.
    pub fn tail_to(&mut self, job: u64, out: &mut dyn Write) -> Result<StreamSummary, String> {
        use std::cmp::Reverse;
        self.send(&Request::Tail { job })?;
        let header = self.read_control()?;
        let expected = need_u64(&header, "cells")? as usize;
        let mut pending: std::collections::BinaryHeap<Reverse<(usize, String)>> =
            std::collections::BinaryHeap::new();
        let mut next = 0usize;
        let mut received = 0usize;
        loop {
            let line = self.read_raw_line()?;
            if is_control_line(&line) {
                let v = parse(&line).map_err(|e| format!("bad control line: {e}"))?;
                if v.get("ok").and_then(Value::as_bool) == Some(false) {
                    return Err(v
                        .get("error")
                        .and_then(Value::as_str)
                        .unwrap_or("tail aborted")
                        .to_string());
                }
                if received != expected || next != expected {
                    return Err(format!(
                        "tail ended after {received}/{expected} cells ({next} written)"
                    ));
                }
                return Ok(StreamSummary {
                    cells: received,
                    cache_hits: need_u64(&v, "cache_hits")? as usize,
                    simulated: need_u64(&v, "simulated")? as usize,
                });
            }
            let idx = gncg_suite::scenario::CellResult::cell_index_of_line(&line)
                .ok_or_else(|| format!("tail line without a cell index: {line}"))?;
            received += 1;
            pending.push(Reverse((idx, line)));
            while pending.peek().is_some_and(|Reverse((idx, _))| *idx == next) {
                let Reverse((_, l)) = pending.pop().expect("peeked entry");
                writeln!(out, "{l}").map_err(|e| format!("cannot write cell line: {e}"))?;
                next += 1;
            }
        }
    }

    /// Submits and streams in one call — the `gncg submit` command.
    pub fn submit_and_stream(
        &mut self,
        spec: &ScenarioSpec,
        out: &mut dyn Write,
    ) -> Result<(SubmitAck, StreamSummary), String> {
        let ack = self.submit(spec)?;
        let summary = self.stream_to(ack.job, out)?;
        Ok((ack, summary))
    }

    /// Asks the daemon to shut down after in-flight cells settle
    /// (queued work is dropped; journaled jobs replay on restart).
    pub fn shutdown(&mut self) -> Result<(), String> {
        self.roundtrip(&Request::Shutdown { drain: false })
            .map(|_| ())
    }

    /// Asks the daemon to drain: finish every active job (each bounded
    /// by its own deadline) and then exit, refusing new submits in the
    /// meantime. Returns how many jobs were active when draining began.
    pub fn shutdown_drain(&mut self) -> Result<u64, String> {
        let v = self.roundtrip(&Request::Shutdown { drain: true })?;
        need_u64(&v, "active")
    }
}

/// Polls `addr` until the daemon answers a ping or `wait_ms` elapses —
/// the `gncg ping --wait-ms` primitive scripts use instead of racing a
/// freshly spawned `serve` with sleeps.
pub fn wait_for_daemon(addr: &str, wait_ms: u64) -> Result<(), String> {
    let deadline = std::time::Instant::now() + std::time::Duration::from_millis(wait_ms);
    loop {
        let err = match Client::connect(addr).and_then(|mut c| c.ping()) {
            Ok(()) => return Ok(()),
            Err(e) => e,
        };
        if std::time::Instant::now() >= deadline {
            return Err(format!(
                "daemon at {addr} not up within {wait_ms} ms: {err}"
            ));
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
}

/// The retry loop for idempotent operations: reconnect per attempt,
/// jittered exponential backoff between attempts, retry only on
/// [`is_transport_error`] failures (daemon refusals surface
/// immediately).
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Additional attempts after the first (0 = one attempt, no retry).
    pub retries: u32,
    /// Base backoff; attempt `k` sleeps `base << k` (capped at 5 s)
    /// plus up to half that again in deterministic jitter, so a fleet
    /// of clients retrying the same dead daemon doesn't reconnect in
    /// lockstep.
    pub backoff_base_ms: u64,
    /// Per-read timeout for each attempt's connection (`None` = block;
    /// see [`Client::connect_with`]).
    pub timeout_ms: Option<u64>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            retries: 0,
            backoff_base_ms: 100,
            timeout_ms: None,
        }
    }
}

impl RetryPolicy {
    /// Runs `op` against a fresh connection to `addr`, retrying
    /// transport failures up to `retries` times. `op` must be
    /// idempotent — every protocol op is (see the module docs) —
    /// because a transport error leaves unknown how much of the
    /// previous attempt the daemon processed.
    pub fn run<T>(
        &self,
        addr: &str,
        mut op: impl FnMut(&mut Client) -> Result<T, String>,
    ) -> Result<T, String> {
        let mut attempt = 0u32;
        loop {
            let err = match Client::connect_with(addr, self.timeout_ms) {
                Ok(mut client) => match op(&mut client) {
                    Ok(v) => return Ok(v),
                    Err(e) if is_transport_error(&e) => e,
                    Err(e) => return Err(e),
                },
                Err(e) => e,
            };
            if attempt >= self.retries {
                return Err(if self.retries > 0 {
                    format!("{err} (after {} attempts)", self.retries + 1)
                } else {
                    err
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(self.backoff_ms(attempt)));
            attempt += 1;
        }
    }

    /// Backoff for attempt `k`: exponential, capped, plus deterministic
    /// splitmix jitter in `[0, delay/2)`.
    fn backoff_ms(&self, attempt: u32) -> u64 {
        let base = self
            .backoff_base_ms
            .saturating_mul(1u64 << attempt.min(16))
            .min(5_000);
        let jitter_span = (base / 2).max(1);
        let seed = u64::from(std::process::id()) ^ (u64::from(attempt) << 32);
        base + splitmix64(seed) % jitter_span
    }
}

/// The same mixer the scenario layer seeds cells with — enough entropy
/// to decorrelate retry storms without a rand dependency.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn need_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("daemon response missing \"{key}\""))
}

fn need_bool(v: &Value, key: &str) -> Result<bool, String> {
    v.get(key)
        .and_then(Value::as_bool)
        .ok_or_else(|| format!("daemon response missing \"{key}\""))
}
