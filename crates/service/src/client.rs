//! The protocol client: a blocking line-oriented wrapper around one TCP
//! connection, used by the `gncg submit`/`status`/`shutdown` subcommands,
//! the integration tests, and the `service_roundtrip` benchmark.

use std::io::{BufRead as _, BufReader, BufWriter, Write};
use std::net::TcpStream;

use gncg_suite::scenario::ScenarioSpec;

use crate::json::{parse, Value};
use crate::protocol::{is_control_line, Request};

/// Acknowledgement of a `submit`.
#[derive(Clone, Copy, Debug)]
pub struct SubmitAck {
    /// The assigned job id.
    pub job: u64,
    /// Cells the job expands to.
    pub cells: usize,
}

/// One job's status snapshot.
#[derive(Clone, Debug)]
pub struct JobStatus {
    /// The job id.
    pub job: u64,
    /// `queued`, `running`, `done`, or `canceled`.
    pub state: String,
    /// Cells finished.
    pub done: usize,
    /// Cells total.
    pub total: usize,
    /// Finished cells served from the result cache.
    pub cache_hits: usize,
    /// Finished cells actually simulated.
    pub simulated: usize,
}

/// Daemon-wide status snapshot.
#[derive(Clone, Debug)]
pub struct DaemonStatus {
    /// Jobs currently in the table (active + retained finished).
    pub jobs: usize,
    /// Jobs queued or running.
    pub active: usize,
    /// Jobs completed since startup.
    pub done: u64,
    /// Jobs canceled since startup.
    pub canceled: u64,
    /// Result-cache entries held.
    pub cache_entries: usize,
    /// Cache lookups that hit, since startup.
    pub cache_hits: u64,
    /// Cache lookups that missed, since startup.
    pub cache_misses: u64,
    /// Worker threads.
    pub workers: usize,
    /// Active-job cap.
    pub queue_cap: usize,
}

/// Result of draining one `stream` response.
#[derive(Clone, Copy, Debug)]
pub struct StreamSummary {
    /// Cell lines received.
    pub cells: usize,
    /// Of those, how many the daemon served from its cache.
    pub cache_hits: usize,
    /// Of those, how many the daemon simulated.
    pub simulated: usize,
}

/// A connected protocol client.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a daemon.
    pub fn connect(addr: &str) -> Result<Client, String> {
        let stream =
            TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        // See the accept loop: line-oriented RPC needs TCP_NODELAY or
        // Nagle + delayed ACK costs ~40 ms per consecutive small write.
        let _ = stream.set_nodelay(true);
        let read_half = stream
            .try_clone()
            .map_err(|e| format!("cannot clone connection: {e}"))?;
        Ok(Client {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
        })
    }

    fn send(&mut self, req: &Request) -> Result<(), String> {
        writeln!(self.writer, "{}", req.to_line())
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("send failed: {e}"))
    }

    fn read_raw_line(&mut self) -> Result<String, String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Err("connection closed by daemon".into()),
            Ok(_) => Ok(line.trim_end_matches(['\n', '\r']).to_string()),
            Err(e) => Err(format!("read failed: {e}")),
        }
    }

    /// Reads one *control* line and returns its object if `ok`.
    fn read_control(&mut self) -> Result<Value, String> {
        let line = self.read_raw_line()?;
        let v = parse(&line).map_err(|e| format!("bad control line '{line}': {e}"))?;
        match v.get("ok").and_then(Value::as_bool) {
            Some(true) => Ok(v),
            Some(false) => Err(v
                .get("error")
                .and_then(Value::as_str)
                .unwrap_or("unspecified daemon error")
                .to_string()),
            None => Err(format!("line without ok member: {line}")),
        }
    }

    fn roundtrip(&mut self, req: &Request) -> Result<Value, String> {
        self.send(req)?;
        self.read_control()
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), String> {
        self.roundtrip(&Request::Ping).map(|_| ())
    }

    /// Submits a grid; the daemon starts executing immediately.
    pub fn submit(&mut self, spec: &ScenarioSpec) -> Result<SubmitAck, String> {
        let v = self.roundtrip(&Request::Submit(spec.clone()))?;
        Ok(SubmitAck {
            job: need_u64(&v, "job")?,
            cells: need_u64(&v, "cells")? as usize,
        })
    }

    /// One job's status.
    pub fn job_status(&mut self, job: u64) -> Result<JobStatus, String> {
        let v = self.roundtrip(&Request::Status { job: Some(job) })?;
        Ok(JobStatus {
            job,
            state: v
                .get("state")
                .and_then(Value::as_str)
                .unwrap_or("unknown")
                .to_string(),
            done: need_u64(&v, "done")? as usize,
            total: need_u64(&v, "total")? as usize,
            cache_hits: need_u64(&v, "cache_hits")? as usize,
            simulated: need_u64(&v, "simulated")? as usize,
        })
    }

    /// Daemon-wide status.
    pub fn daemon_status(&mut self) -> Result<DaemonStatus, String> {
        let v = self.roundtrip(&Request::Status { job: None })?;
        Ok(DaemonStatus {
            jobs: need_u64(&v, "jobs")? as usize,
            active: need_u64(&v, "active")? as usize,
            done: need_u64(&v, "done")?,
            canceled: need_u64(&v, "canceled")?,
            cache_entries: need_u64(&v, "cache_entries")? as usize,
            cache_hits: need_u64(&v, "cache_hits")?,
            cache_misses: need_u64(&v, "cache_misses")?,
            workers: need_u64(&v, "workers")? as usize,
            queue_cap: need_u64(&v, "queue_cap")? as usize,
        })
    }

    /// Cancels a job; returns its resulting state.
    pub fn cancel(&mut self, job: u64) -> Result<String, String> {
        let v = self.roundtrip(&Request::Cancel { job })?;
        Ok(v.get("state")
            .and_then(Value::as_str)
            .unwrap_or("unknown")
            .to_string())
    }

    /// Streams a job's cell lines into `out` (each line `\n`-terminated —
    /// the file `out` accumulates is byte-identical to the offline
    /// `gncg grid` output for the same spec), blocking until the job
    /// finishes or fails.
    pub fn stream_to(&mut self, job: u64, out: &mut dyn Write) -> Result<StreamSummary, String> {
        self.send(&Request::Stream { job })?;
        let header = self.read_control()?;
        let expected = need_u64(&header, "cells")? as usize;
        let mut cells = 0usize;
        loop {
            let line = self.read_raw_line()?;
            if is_control_line(&line) {
                let v = parse(&line).map_err(|e| format!("bad control line: {e}"))?;
                if v.get("ok").and_then(Value::as_bool) == Some(false) {
                    return Err(v
                        .get("error")
                        .and_then(Value::as_str)
                        .unwrap_or("stream aborted")
                        .to_string());
                }
                if cells != expected {
                    return Err(format!("stream ended after {cells}/{expected} cells"));
                }
                return Ok(StreamSummary {
                    cells,
                    cache_hits: need_u64(&v, "cache_hits")? as usize,
                    simulated: need_u64(&v, "simulated")? as usize,
                });
            }
            writeln!(out, "{line}").map_err(|e| format!("cannot write cell line: {e}"))?;
            cells += 1;
        }
    }

    /// Drains one `tail` response into `out`: cell lines arrive in
    /// **completion order** (whatever order the daemon's workers finish
    /// them in) and are re-sorted by their `cell` index on receipt, so
    /// the file `out` accumulates is byte-identical to what
    /// [`Client::stream_to`] produces. The contiguous cell-order prefix
    /// is written as it forms — `out` grows while a wide grid lands
    /// across many workers, and client memory is bounded by the
    /// out-of-order window, not the job.
    pub fn tail_to(&mut self, job: u64, out: &mut dyn Write) -> Result<StreamSummary, String> {
        use std::cmp::Reverse;
        self.send(&Request::Tail { job })?;
        let header = self.read_control()?;
        let expected = need_u64(&header, "cells")? as usize;
        let mut pending: std::collections::BinaryHeap<Reverse<(usize, String)>> =
            std::collections::BinaryHeap::new();
        let mut next = 0usize;
        let mut received = 0usize;
        loop {
            let line = self.read_raw_line()?;
            if is_control_line(&line) {
                let v = parse(&line).map_err(|e| format!("bad control line: {e}"))?;
                if v.get("ok").and_then(Value::as_bool) == Some(false) {
                    return Err(v
                        .get("error")
                        .and_then(Value::as_str)
                        .unwrap_or("tail aborted")
                        .to_string());
                }
                if received != expected || next != expected {
                    return Err(format!(
                        "tail ended after {received}/{expected} cells ({next} written)"
                    ));
                }
                return Ok(StreamSummary {
                    cells: received,
                    cache_hits: need_u64(&v, "cache_hits")? as usize,
                    simulated: need_u64(&v, "simulated")? as usize,
                });
            }
            let idx = gncg_suite::scenario::CellResult::cell_index_of_line(&line)
                .ok_or_else(|| format!("tail line without a cell index: {line}"))?;
            received += 1;
            pending.push(Reverse((idx, line)));
            while pending.peek().is_some_and(|Reverse((idx, _))| *idx == next) {
                let Reverse((_, l)) = pending.pop().expect("peeked entry");
                writeln!(out, "{l}").map_err(|e| format!("cannot write cell line: {e}"))?;
                next += 1;
            }
        }
    }

    /// Submits and streams in one call — the `gncg submit` command.
    pub fn submit_and_stream(
        &mut self,
        spec: &ScenarioSpec,
        out: &mut dyn Write,
    ) -> Result<(SubmitAck, StreamSummary), String> {
        let ack = self.submit(spec)?;
        let summary = self.stream_to(ack.job, out)?;
        Ok((ack, summary))
    }

    /// Asks the daemon to shut down.
    pub fn shutdown(&mut self) -> Result<(), String> {
        self.roundtrip(&Request::Shutdown).map(|_| ())
    }
}

fn need_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("daemon response missing \"{key}\""))
}
