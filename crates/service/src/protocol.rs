//! The wire protocol: newline-delimited JSON over TCP.
//!
//! # Framing
//!
//! Every request and every control response is **one JSON object per
//! line**. Control lines always carry an `"ok"` member; the only
//! non-control lines a server ever sends are the raw
//! [`CellResult::to_jsonl`](gncg_suite::scenario::CellResult::to_jsonl)
//! lines inside a `stream` response, which always begin with
//! `{"cell":` — so the two kinds are distinguishable by their first
//! member, and the cell lines are byte-identical to what the offline
//! `gncg grid` command writes to disk.
//!
//! # Requests
//!
//! ```json
//! {"op":"submit","spec":{"name":"g","hosts":["unit"],"ns":[6],"alphas":[1.0],
//!  "rules":["greedy"],"schedulers":["rr"],"seeds":[0],"max_rounds":200,
//!  "base_seed":0,"certify":"full"}}
//! {"op":"status"}
//! {"op":"status","job":1}
//! {"op":"stream","job":1}
//! {"op":"tail","job":1}
//! {"op":"cancel","job":1}
//! {"op":"explore","job":1,"cell":0}
//! {"op":"metrics"}
//! {"op":"ping"}
//! {"op":"shutdown"}
//! {"op":"shutdown","drain":true}
//! ```
//!
//! Spec members mirror [`ScenarioSpec`]; absent members take the spec
//! defaults ([`ScenarioSpec::default`]), so `{"op":"submit","spec":{}}`
//! is a valid one-cell submission. A submit may additionally carry
//! `"deadline_ms":N` — a wall-clock budget for the whole job, after
//! which the daemon expires it (state `"expired"`, streams receive an
//! error footer). The deadline lives in the *protocol*, not the spec:
//! it does not participate in `cell_digest`
//! (`gncg_suite::scenario::cell_digest`), manifests, or result bytes.
//!
//! `shutdown` with `"drain":true` finishes the active jobs (each still
//! bounded by its own deadline) before exiting, refusing new submits in
//! the meantime; without it the daemon stops after in-flight cells only.
//!
//! # Responses
//!
//! ```json
//! {"ok":true,"job":1,"cells":8}                      // submit
//! {"ok":true,"job":1,"state":"running","done":3,"total":8,
//!  "cache_hits":1,"simulated":2}                     // status (job)
//! {"ok":true,"jobs":4,"active":1,"done":3,"canceled":0,
//!  "cache_entries":96,"cache_hits":40,"cache_misses":96,
//!  "workers":2,"queue_cap":64}                       // status (daemon)
//! {"ok":true,"job":1,"cells":8}                      // stream header,
//!                                                    // then 8 raw cell lines,
//! {"ok":true,"done":true,"cache_hits":8,"simulated":0} // stream footer
//! {"ok":true,"job":1,"state":"canceled"}             // cancel
//! {"ok":true,"job":1,"cell":0,"line":"{\"cell\":0,…}"} // explore
//! {"ok":true,"metrics":{…}}                          // metrics
//! {"ok":true,"pong":true}                            // ping
//! {"ok":true,"shutdown":true}                        // shutdown
//! {"ok":false,"error":"..."}                         // any failure
//! ```
//!
//! `explore` fetches one **finished** cell's result line (the same bytes
//! a `stream` would carry for it) as an escaped string inside a control
//! line — the random-access twin of `stream` that the `gncg explore`
//! checkpoint inspector is built on. `metrics` returns the daemon's
//! runtime metrics registry snapshot ([`crate::metrics`]).
//!
//! `tail` shares `stream`'s framing (header, raw cell lines, footer) but
//! sends each cell line **as soon as it finishes**, in completion order
//! rather than cell order — the op for watching a wide grid land across
//! many workers. Every cell line carries its `"cell"` index, so clients
//! re-sort on receipt; the re-sorted bytes equal a `stream` response's.

use gncg_suite::scenario::{CertifyMode, RuleSpec, ScenarioSpec, SchedSpec};

use crate::json::{escape, parse, Value};

/// A parsed client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Submit a scenario grid as a new job.
    Submit {
        /// The grid to run.
        spec: ScenarioSpec,
        /// Optional wall-clock budget for the whole job, in
        /// milliseconds from acceptance; overrunning jobs are expired.
        deadline_ms: Option<u64>,
    },
    /// Job status (`job` set) or daemon-wide status (`job` absent).
    Status {
        /// The job to report on, if any.
        job: Option<u64>,
    },
    /// Stream a job's cell results in cell order.
    Stream {
        /// The job to stream.
        job: u64,
    },
    /// Stream a job's cell results as they finish (completion order; the
    /// client re-sorts by each line's `cell` index).
    Tail {
        /// The job to tail.
        job: u64,
    },
    /// Cancel a job (pending cells are discarded; completed cells stay
    /// cached).
    Cancel {
        /// The job to cancel.
        job: u64,
    },
    /// Fetch one finished cell's result line by (job, cell index).
    Explore {
        /// The job holding the cell.
        job: u64,
        /// The cell index within the job's expansion.
        cell: u64,
    },
    /// Daemon runtime metrics snapshot.
    Metrics,
    /// Liveness probe.
    Ping,
    /// Stop accepting connections and exit once in-flight work settles.
    Shutdown {
        /// With `drain`, finish every active job (bounded by job
        /// deadlines) before exiting instead of dropping the queue; new
        /// submits are refused while draining.
        drain: bool,
    },
}

impl Request {
    /// Parses one request line.
    pub fn parse_line(line: &str) -> Result<Request, String> {
        let v = parse(line)?;
        let op = v
            .get("op")
            .and_then(Value::as_str)
            .ok_or("request must carry a string \"op\" member")?;
        let job = |required: bool| -> Result<Option<u64>, String> {
            match v.get("job") {
                Some(j) => Ok(Some(j.as_u64().ok_or("\"job\" must be a u64")?)),
                None if required => Err("missing \"job\" member".into()),
                None => Ok(None),
            }
        };
        match op {
            "submit" => {
                let spec = v.get("spec").ok_or("submit requires a \"spec\" member")?;
                let deadline_ms = match v.get("deadline_ms") {
                    Some(d) => Some(d.as_u64().ok_or("\"deadline_ms\" must be a u64")?),
                    None => None,
                };
                Ok(Request::Submit {
                    spec: spec_from_value(spec)?,
                    deadline_ms,
                })
            }
            "status" => Ok(Request::Status { job: job(false)? }),
            "stream" => Ok(Request::Stream {
                job: job(true)?.unwrap(),
            }),
            "tail" => Ok(Request::Tail {
                job: job(true)?.unwrap(),
            }),
            "cancel" => Ok(Request::Cancel {
                job: job(true)?.unwrap(),
            }),
            "explore" => Ok(Request::Explore {
                job: job(true)?.unwrap(),
                cell: v
                    .get("cell")
                    .ok_or("explore requires a \"cell\" member")?
                    .as_u64()
                    .ok_or("\"cell\" must be a u64")?,
            }),
            "metrics" => Ok(Request::Metrics),
            "ping" => Ok(Request::Ping),
            "shutdown" => {
                let drain = match v.get("drain") {
                    Some(d) => d.as_bool().ok_or("\"drain\" must be a boolean")?,
                    None => false,
                };
                Ok(Request::Shutdown { drain })
            }
            other => Err(format!("unknown op '{other}'")),
        }
    }

    /// Serializes the request as its wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            Request::Submit {
                spec,
                deadline_ms: None,
            } => {
                format!("{{\"op\":\"submit\",\"spec\":{}}}", spec_to_json(spec))
            }
            Request::Submit {
                spec,
                deadline_ms: Some(ms),
            } => format!(
                "{{\"op\":\"submit\",\"spec\":{},\"deadline_ms\":{ms}}}",
                spec_to_json(spec)
            ),
            Request::Status { job: Some(j) } => format!("{{\"op\":\"status\",\"job\":{j}}}"),
            Request::Status { job: None } => "{\"op\":\"status\"}".into(),
            Request::Stream { job } => format!("{{\"op\":\"stream\",\"job\":{job}}}"),
            Request::Tail { job } => format!("{{\"op\":\"tail\",\"job\":{job}}}"),
            Request::Cancel { job } => format!("{{\"op\":\"cancel\",\"job\":{job}}}"),
            Request::Explore { job, cell } => {
                format!("{{\"op\":\"explore\",\"job\":{job},\"cell\":{cell}}}")
            }
            Request::Metrics => "{\"op\":\"metrics\"}".into(),
            Request::Ping => "{\"op\":\"ping\"}".into(),
            Request::Shutdown { drain: false } => "{\"op\":\"shutdown\"}".into(),
            Request::Shutdown { drain: true } => "{\"op\":\"shutdown\",\"drain\":true}".into(),
        }
    }
}

/// Serializes a spec as the protocol's `"spec"` object (round-trips
/// exactly through [`spec_from_value`]).
pub fn spec_to_json(spec: &ScenarioSpec) -> String {
    let strings = |xs: &[String]| -> String {
        let quoted: Vec<String> = xs.iter().map(|s| format!("\"{}\"", escape(s))).collect();
        format!("[{}]", quoted.join(","))
    };
    let mut base = format!(
        "{{\"name\":\"{}\",\"hosts\":{},\"ns\":[{}],\"alphas\":[{}],\"rules\":{},\"schedulers\":{},\"seeds\":[{}],\"max_rounds\":{},\"base_seed\":{},\"certify\":\"{}\"}}",
        escape(&spec.name),
        strings(&spec.hosts),
        spec.ns
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(","),
        spec.alphas
            .iter()
            .map(|a| format!("{a:?}"))
            .collect::<Vec<_>>()
            .join(","),
        strings(&spec.rules.iter().map(|r| r.key().to_string()).collect::<Vec<_>>()),
        strings(
            &spec
                .schedulers
                .iter()
                .map(|s| s.key().to_string())
                .collect::<Vec<_>>()
        ),
        spec.seeds
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(","),
        spec.max_rounds,
        spec.base_seed,
        spec.certify.key(),
    );
    // Opt-in members ride along only when non-default, so default
    // submits keep their historical wire bytes (mirrors the manifest's
    // schema gating).
    if spec.observability_on() || spec.horizon_pricing {
        base.truncate(base.len() - 1);
        if spec.regret_meter {
            base.push_str(",\"regret_meter\":true");
        }
        if spec.checkpoint_every != 0 {
            base.push_str(&format!(",\"checkpoint_every\":{}", spec.checkpoint_every));
        }
        if spec.horizon_pricing {
            base.push_str(",\"horizon_pricing\":true");
        }
        base.push('}');
    }
    base
}

/// Builds a [`ScenarioSpec`] from the protocol's `"spec"` object. Absent
/// members keep the [`ScenarioSpec::default`] values; the result is
/// validated exactly as the offline pipeline validates it.
pub fn spec_from_value(v: &Value) -> Result<ScenarioSpec, String> {
    if !matches!(v, Value::Obj(_)) {
        return Err("\"spec\" must be an object".into());
    }
    let mut spec = ScenarioSpec::default();
    let list = |v: &Value, what: &str| -> Result<Vec<Value>, String> {
        v.as_arr()
            .map(<[Value]>::to_vec)
            .ok_or(format!("\"{what}\" must be an array"))
    };
    if let Some(x) = v.get("name") {
        spec.name = x.as_str().ok_or("\"name\" must be a string")?.to_string();
    }
    if let Some(x) = v.get("hosts") {
        spec.hosts = list(x, "hosts")?
            .iter()
            .map(|h| {
                h.as_str()
                    .map(str::to_string)
                    .ok_or("host keys must be strings".to_string())
            })
            .collect::<Result<_, _>>()?;
    }
    if let Some(x) = v.get("ns") {
        spec.ns = list(x, "ns")?
            .iter()
            .map(|n| n.as_usize().ok_or("\"ns\" entries must be integers"))
            .collect::<Result<_, _>>()?;
    }
    if let Some(x) = v.get("alphas") {
        spec.alphas = list(x, "alphas")?
            .iter()
            .map(|a| a.as_f64().ok_or("\"alphas\" entries must be numbers"))
            .collect::<Result<_, _>>()?;
    }
    if let Some(x) = v.get("rules") {
        spec.rules = list(x, "rules")?
            .iter()
            .map(|r| RuleSpec::parse(r.as_str().ok_or("rules must be strings")?))
            .collect::<Result<_, _>>()?;
    }
    if let Some(x) = v.get("schedulers") {
        spec.schedulers = list(x, "schedulers")?
            .iter()
            .map(|s| SchedSpec::parse(s.as_str().ok_or("schedulers must be strings")?))
            .collect::<Result<_, _>>()?;
    }
    if let Some(x) = v.get("seeds") {
        spec.seeds = list(x, "seeds")?
            .iter()
            .map(|s| s.as_u64().ok_or("\"seeds\" entries must be u64"))
            .collect::<Result<_, _>>()?;
    }
    if let Some(x) = v.get("max_rounds") {
        spec.max_rounds = x.as_usize().ok_or("\"max_rounds\" must be an integer")?;
    }
    if let Some(x) = v.get("base_seed") {
        spec.base_seed = x.as_u64().ok_or("\"base_seed\" must be a u64")?;
    }
    if let Some(x) = v.get("certify") {
        spec.certify = CertifyMode::parse(x.as_str().ok_or("\"certify\" must be a string")?)?;
    }
    if let Some(x) = v.get("regret_meter") {
        spec.regret_meter = x.as_bool().ok_or("\"regret_meter\" must be a boolean")?;
    }
    if let Some(x) = v.get("checkpoint_every") {
        spec.checkpoint_every = x
            .as_usize()
            .ok_or("\"checkpoint_every\" must be an integer")?;
    }
    if let Some(x) = v.get("horizon_pricing") {
        spec.horizon_pricing = x.as_bool().ok_or("\"horizon_pricing\" must be a boolean")?;
    }
    spec.validate()?;
    Ok(spec)
}

/// Builds the standard error line.
pub fn error_line(msg: &str) -> String {
    format!("{{\"ok\":false,\"error\":\"{}\"}}", escape(msg))
}

/// Whether a received line is a control line (vs a raw streamed cell
/// line). Control lines lead with the `"ok"` member; cell lines lead
/// with `"cell"`.
pub fn is_control_line(line: &str) -> bool {
    line.starts_with("{\"ok\":")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "wire \"quoted\"\nname".into(),
            hosts: vec!["unit".into(), "onetwo".into()],
            ns: vec![5, 7],
            alphas: vec![0.5, 2.25],
            rules: vec![RuleSpec::Greedy, RuleSpec::Br],
            schedulers: vec![SchedSpec::RoundRobin, SchedSpec::MaxGain],
            seeds: vec![0, u64::MAX],
            max_rounds: 250,
            base_seed: 17,
            certify: CertifyMode::Sampled,
            ..ScenarioSpec::default()
        }
    }

    #[test]
    fn submit_round_trips_exactly() {
        let s = spec();
        // Name with quotes/newline: manifest would reject it, so use a
        // manifest-legal name for the validated round trip…
        let mut legal = s.clone();
        legal.name = "wire name".into();
        for deadline_ms in [None, Some(1500u64), Some(u64::MAX)] {
            let line = Request::Submit {
                spec: legal.clone(),
                deadline_ms,
            }
            .to_line();
            match Request::parse_line(&line).unwrap() {
                Request::Submit {
                    spec: back,
                    deadline_ms: back_deadline,
                } => {
                    assert_eq!(back, legal);
                    assert_eq!(back_deadline, deadline_ms);
                }
                other => panic!("wrong request {other:?}"),
            }
        }
        // …and check raw escaping survives parse → spec (validation
        // rejects the newline, which is itself the right behavior).
        let raw = Request::Submit {
            spec: s,
            deadline_ms: None,
        }
        .to_line();
        assert!(Request::parse_line(&raw).is_err(), "newline names invalid");
    }

    #[test]
    fn sparse_spec_takes_defaults() {
        let line = r#"{"op":"submit","spec":{"hosts":["unit"],"ns":[4]}}"#;
        match Request::parse_line(line).unwrap() {
            Request::Submit {
                spec,
                deadline_ms: None,
            } => {
                assert_eq!(spec.hosts, vec!["unit".to_string()]);
                assert_eq!(spec.ns, vec![4]);
                let d = ScenarioSpec::default();
                assert_eq!(spec.alphas, d.alphas);
                assert_eq!(spec.max_rounds, d.max_rounds);
                assert_eq!(spec.certify, d.certify);
            }
            other => panic!("wrong request {other:?}"),
        }
    }

    #[test]
    fn control_requests_round_trip() {
        for req in [
            Request::Status { job: None },
            Request::Status { job: Some(3) },
            Request::Stream { job: 9 },
            Request::Tail { job: 9 },
            Request::Cancel { job: u64::MAX },
            Request::Explore { job: 2, cell: 17 },
            Request::Metrics,
            Request::Ping,
            Request::Shutdown { drain: false },
            Request::Shutdown { drain: true },
        ] {
            assert_eq!(Request::parse_line(&req.to_line()).unwrap(), req);
        }
    }

    #[test]
    fn invalid_requests_are_rejected() {
        for bad in [
            "",
            "not json",
            "{}",
            r#"{"op":"frobnicate"}"#,
            r#"{"op":"stream"}"#,
            r#"{"op":"tail"}"#,
            r#"{"op":"cancel","job":"one"}"#,
            r#"{"op":"explore"}"#,
            r#"{"op":"explore","job":1}"#,
            r#"{"op":"explore","job":1,"cell":"zero"}"#,
            r#"{"op":"submit"}"#,
            r#"{"op":"submit","spec":{"hosts":["bogus-factory"]}}"#,
            r#"{"op":"submit","spec":{"ns":[0]}}"#,
            r#"{"op":"submit","spec":{"alphas":[]}}"#,
            r#"{"op":"submit","spec":{},"deadline_ms":"soon"}"#,
            r#"{"op":"submit","spec":{},"deadline_ms":-5}"#,
            r#"{"op":"shutdown","drain":"yes"}"#,
        ] {
            assert!(Request::parse_line(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn observability_members_round_trip_and_stay_off_the_default_wire() {
        // Default (meter-off) specs keep their historical wire bytes.
        let off = spec_to_json(&ScenarioSpec::default());
        assert!(!off.contains("regret_meter"));
        assert!(!off.contains("checkpoint_every"));
        assert!(!off.contains("horizon_pricing"));
        // Meter-on specs round-trip through submit exactly.
        let mut on = spec();
        on.name = "wire name".into();
        on.regret_meter = true;
        on.checkpoint_every = 25;
        on.horizon_pricing = true;
        let line = Request::Submit {
            spec: on.clone(),
            deadline_ms: None,
        }
        .to_line();
        match Request::parse_line(&line).unwrap() {
            Request::Submit { spec: back, .. } => assert_eq!(back, on),
            other => panic!("wrong request {other:?}"),
        }
    }

    #[test]
    fn horizon_pricing_rides_the_wire_without_observability() {
        // Regression: a horizon-on spec with the observability members
        // off must still carry the flag, or the daemon silently prices
        // the whole grid under full sums.
        let mut on = spec();
        on.name = "wire name".into();
        on.horizon_pricing = true;
        assert!(!on.observability_on());
        assert!(spec_to_json(&on).contains("\"horizon_pricing\":true"));
        let line = Request::Submit {
            spec: on.clone(),
            deadline_ms: None,
        }
        .to_line();
        match Request::parse_line(&line).unwrap() {
            Request::Submit { spec: back, .. } => assert_eq!(back, on),
            other => panic!("wrong request {other:?}"),
        }
    }

    #[test]
    fn control_lines_are_distinguishable_from_cell_lines() {
        assert!(is_control_line(&error_line("boom")));
        assert!(is_control_line("{\"ok\":true,\"job\":1}"));
        assert!(!is_control_line("{\"cell\":0,\"host\":\"unit\"}"));
    }
}
