//! The job journal: a write-ahead log that makes accepted jobs survive a
//! daemon crash.
//!
//! Each accepted `submit` appends one record — the job id, its optional
//! deadline, and the full spec JSON — and is **fsync'd before the client
//! sees the acknowledgement**, so an acknowledged job is durable: after a
//! `kill -9`, restarting with the same `--journal` path replays the log
//! and re-enqueues every job that had not finished. Terminal transitions
//! (`done`, `cancel`, `expire`) are appended flushed-but-not-synced: the
//! worst a lost terminal record costs is re-running a job whose cells the
//! result cache already holds — cheap by design, and byte-identical by
//! the determinism contract.
//!
//! # Record framing
//!
//! The same line-per-record, skip-what-you-can't-parse scheme as the
//! result cache's `g1` records, tagged `jl1`:
//!
//! ```text
//! jl1 submit <job> <deadline_ms|-> <spec-json> ;
//! jl1 done <job> ;
//! jl1 cancel <job> ;
//! jl1 expire <job> ;
//! ```
//!
//! Every record ends with the ` ;` marker. A torn tail (the record being
//! written when the process died) lacks it and is skipped on replay —
//! the marker also defeats the subtler tear where a *prefix* of a record
//! is itself parseable (`jl1 done 12` torn from `jl1 done 123`).
//!
//! # Startup compaction
//!
//! Replay rebuilds the pending set (submits without a terminal record);
//! if anything would be dropped — settled pairs, torn tails, foreign
//! lines — the journal is rewritten atomically (temp file + rename) to
//! just the pending submits, so the log stays proportional to the live
//! job set, not daemon lifetime.
//!
//! # Degradation
//!
//! An append failure (volume full, file deleted) is counted, reported
//! once, and drops the backing file: the daemon keeps serving with
//! journaling disabled rather than refusing work, and `status` surfaces
//! `journal_errors` so operators notice (see the README's failure-mode
//! matrix).

use std::collections::BTreeMap;
use std::fs;
use std::io::{BufWriter, Write as _};
use std::path::Path;

use gncg_suite::scenario::ScenarioSpec;

use crate::failpoint;
use crate::json::parse;
use crate::protocol::{spec_from_value, spec_to_json};

/// On-disk record tag (bumped if the record format ever changes).
const TAG: &str = "jl1";

/// Record terminator: a record without it is a torn tail and is skipped.
const MARK: &str = " ;";

/// A job reconstructed from the journal at startup: it was accepted (and
/// acknowledged) but had not reached a terminal state when the daemon
/// died, so the server re-enqueues it under its **original id** — a
/// client retrying `tail --job N` after the crash finds its job again.
#[derive(Clone, Debug)]
pub struct ReplayedJob {
    /// The job id the dead daemon assigned (preserved across restart).
    pub job: u64,
    /// The deadline the submit carried, if any. Wall-clock budgets are
    /// re-armed from restart time — the original start time died with
    /// the process, and a fresh budget errs toward completing the work.
    pub deadline_ms: Option<u64>,
    /// The submitted spec, re-validated on replay.
    pub spec: ScenarioSpec,
}

/// The append handle plus degradation counters. Replay state lives in
/// the server's job table; the journal itself holds nothing in memory.
#[derive(Debug, Default)]
pub struct Journal {
    file: Option<BufWriter<fs::File>>,
    append_errors: u64,
}

impl Journal {
    /// A disabled journal (no `--journal` flag): every append is a no-op.
    pub fn disabled() -> Journal {
        Journal::default()
    }

    /// Opens (or creates) the journal at `path`: replays existing
    /// records into the pending job list, compacts the file if anything
    /// settled or tore, and returns the append handle plus the jobs to
    /// re-enqueue (in submit order) and the largest job id ever seen
    /// (so the server's id counter never reuses one).
    pub fn open(path: &Path) -> Result<(Journal, Vec<ReplayedJob>, u64), String> {
        let mut pending: BTreeMap<u64, ReplayedJob> = BTreeMap::new();
        let mut max_job = 0u64;
        let mut raw_lines = 0usize;
        match fs::read_to_string(path) {
            Ok(text) => {
                for line in text.lines() {
                    raw_lines += 1;
                    // Torn tail or foreign line: skip, never fail startup.
                    let Some(body) = line.strip_suffix(MARK).and_then(|l| {
                        l.strip_prefix(TAG)
                            .and_then(|l| l.strip_prefix(' '))
                            .map(str::trim_end)
                    }) else {
                        continue;
                    };
                    let (op, rest) = match body.split_once(' ') {
                        Some(split) => split,
                        None => continue,
                    };
                    match op {
                        "submit" => {
                            let mut parts = rest.splitn(3, ' ');
                            let (Some(job), Some(deadline), Some(spec_json)) =
                                (parts.next(), parts.next(), parts.next())
                            else {
                                continue;
                            };
                            let Ok(job) = job.parse::<u64>() else {
                                continue;
                            };
                            let deadline_ms = match deadline {
                                "-" => None,
                                ms => match ms.parse::<u64>() {
                                    Ok(ms) => Some(ms),
                                    Err(_) => continue,
                                },
                            };
                            // The spec is re-validated exactly as a live
                            // submit would be; a record that no longer
                            // parses is dropped rather than wedging
                            // startup.
                            let Ok(spec) = parse(spec_json).and_then(|v| spec_from_value(&v))
                            else {
                                continue;
                            };
                            max_job = max_job.max(job);
                            pending.insert(
                                job,
                                ReplayedJob {
                                    job,
                                    deadline_ms,
                                    spec,
                                },
                            );
                        }
                        "done" | "cancel" | "expire" => {
                            let Ok(job) = rest.trim().parse::<u64>() else {
                                continue;
                            };
                            max_job = max_job.max(job);
                            pending.remove(&job);
                        }
                        _ => continue,
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(format!("cannot read journal {}: {e}", path.display())),
        }
        // Compact: rewrite only when something would be dropped (settled
        // jobs, torn tails, foreign lines) so clean startups touch
        // nothing.
        if pending.len() < raw_lines {
            let tmp = path.with_extension("compact.tmp");
            {
                let f = fs::File::create(&tmp)
                    .map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
                let mut w = BufWriter::new(f);
                for job in pending.values() {
                    writeln!(w, "{}", submit_record(job.job, job.deadline_ms, &job.spec))
                        .map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
                }
                w.flush()
                    .map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
            }
            fs::rename(&tmp, path)
                .map_err(|e| format!("cannot replace journal {}: {e}", path.display()))?;
        }
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| format!("cannot open journal {}: {e}", path.display()))?;
        Ok((
            Journal {
                file: Some(BufWriter::new(file)),
                append_errors: 0,
            },
            pending.into_values().collect(),
            max_job,
        ))
    }

    /// Records an accepted submit, fsync'd — the record is on disk (not
    /// just in the page cache) before this returns, so the submit may be
    /// acknowledged. Durability failures degrade (see [`Journal`]).
    pub fn record_submit(&mut self, job: u64, deadline_ms: Option<u64>, spec: &ScenarioSpec) {
        self.append(&submit_record(job, deadline_ms, spec), true);
    }

    /// Records a job completing (flushed, not synced — replaying a lost
    /// `done` only re-runs a fully cached job).
    pub fn record_done(&mut self, job: u64) {
        self.append(&format!("{TAG} done {job}{MARK}"), false);
    }

    /// Records a cancellation.
    pub fn record_cancel(&mut self, job: u64) {
        self.append(&format!("{TAG} cancel {job}{MARK}"), false);
    }

    /// Records a deadline expiry.
    pub fn record_expire(&mut self, job: u64) {
        self.append(&format!("{TAG} expire {job}{MARK}"), false);
    }

    fn append(&mut self, record: &str, sync: bool) {
        let Some(f) = self.file.as_mut() else {
            return;
        };
        let written = failpoint::check("journal.append")
            .and_then(|()| writeln!(f, "{record}"))
            .and_then(|()| f.flush())
            .and_then(|()| {
                if sync {
                    f.get_ref().sync_data()
                } else {
                    Ok(())
                }
            });
        if let Err(e) = written {
            eprintln!("gncg_service: journal append failed ({e}); continuing without journaling");
            self.file = None;
            self.append_errors += 1;
        }
    }

    /// Whether the journal lost its backing file to an append failure.
    pub fn degraded(&self) -> bool {
        self.append_errors > 0
    }

    /// Append failures so far (0 or 1 today: the first failure drops the
    /// file; kept as a counter so `status` stays stable if that changes).
    pub fn append_errors(&self) -> u64 {
        self.append_errors
    }
}

fn submit_record(job: u64, deadline_ms: Option<u64>, spec: &ScenarioSpec) -> String {
    let deadline = deadline_ms.map_or_else(|| "-".to_string(), |ms| ms.to_string());
    format!("{TAG} submit {job} {deadline} {}{MARK}", spec_to_json(spec))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("gncg-journal-tests-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn spec() -> ScenarioSpec {
        ScenarioSpec {
            ns: vec![5],
            alphas: vec![1.0, 2.0],
            ..ScenarioSpec::default()
        }
    }

    #[test]
    fn pending_jobs_replay_and_settled_jobs_compact_away() {
        let path = tmp("replay.journal");
        let _ = fs::remove_file(&path);
        {
            let (mut j, replayed, max) = Journal::open(&path).unwrap();
            assert!(replayed.is_empty());
            assert_eq!(max, 0);
            j.record_submit(1, None, &spec());
            j.record_submit(2, Some(5000), &spec());
            j.record_submit(3, None, &spec());
            j.record_done(1);
            j.record_cancel(3);
        }
        let (j, replayed, max) = Journal::open(&path).unwrap();
        assert!(!j.degraded());
        assert_eq!(max, 3);
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0].job, 2);
        assert_eq!(replayed[0].deadline_ms, Some(5000));
        assert_eq!(replayed[0].spec, spec());
        // Compacted to exactly the one pending submit record.
        let text = fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.starts_with("jl1 submit 2 5000 {"), "{text}");
        // A further reopen replays the compacted file and leaves it alone.
        let (_, again, _) = Journal::open(&path).unwrap();
        assert_eq!(again.len(), 1);
        assert_eq!(fs::read_to_string(&path).unwrap(), text);
    }

    #[test]
    fn torn_tail_and_foreign_lines_are_skipped() {
        let path = tmp("torn.journal");
        let _ = fs::remove_file(&path);
        {
            let (mut j, _, _) = Journal::open(&path).unwrap();
            j.record_submit(7, None, &spec());
            j.record_submit(12, None, &spec());
            j.record_done(12);
        }
        let mut text = fs::read_to_string(&path).unwrap();
        // A torn submit (no ` ;` marker), a torn terminal whose prefix is
        // itself numeric, and an unrelated line.
        text.push_str("jl1 submit 99 - {\"name\"\njl1 done 1\nnot a record\n");
        fs::write(&path, &text).unwrap();
        let (_, replayed, max) = Journal::open(&path).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0].job, 7);
        assert_eq!(max, 12);
        // The tears were compacted away.
        assert_eq!(fs::read_to_string(&path).unwrap().lines().count(), 1);
    }

    #[test]
    fn submit_records_survive_without_terminal_sync() {
        // Only the submit is fsync'd; this asserts the record *format*
        // round-trips with every deadline shape.
        let path = tmp("roundtrip.journal");
        let _ = fs::remove_file(&path);
        {
            let (mut j, _, _) = Journal::open(&path).unwrap();
            j.record_submit(1, None, &spec());
            j.record_submit(2, Some(1), &spec());
            j.record_submit(3, Some(u64::MAX), &spec());
        }
        let (_, replayed, _) = Journal::open(&path).unwrap();
        let deadlines: Vec<_> = replayed.iter().map(|r| r.deadline_ms).collect();
        assert_eq!(deadlines, vec![None, Some(1), Some(u64::MAX)]);
        assert!(replayed.iter().all(|r| r.spec == spec()));
    }

    #[test]
    fn disabled_journal_is_inert() {
        let mut j = Journal::disabled();
        j.record_submit(1, None, &spec());
        j.record_done(1);
        assert!(!j.degraded());
        assert_eq!(j.append_errors(), 0);
    }

    #[test]
    fn append_failure_degrades_and_counts() {
        let path = tmp("degrade.journal");
        let _ = fs::remove_file(&path);
        let (mut j, _, _) = Journal::open(&path).unwrap();
        crate::failpoint::arm("journal.append", crate::failpoint::Action::Err, 1);
        j.record_submit(1, None, &spec());
        crate::failpoint::disarm("journal.append");
        assert!(j.degraded());
        assert_eq!(j.append_errors(), 1);
        // Subsequent appends are silently dropped, not re-counted.
        j.record_submit(2, None, &spec());
        assert_eq!(j.append_errors(), 1);
        let (_, replayed, _) = Journal::open(&path).unwrap();
        assert!(replayed.is_empty(), "failed append left no record");
    }
}
