//! A minimal JSON layer for the wire protocol — hermetic (std only, no
//! serde), covering exactly the slice the protocol needs.
//!
//! Numbers are kept as their **raw token text** and parsed on access:
//! seeds are `u64` (values above 2⁵³ would be mangled by an `f64`
//! round-trip) and αs are `f64` (re-emitted via the same shortest
//! round-trip `{:?}` formatting the JSONL schema uses), so neither loses
//! precision crossing the wire.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as its raw unparsed token (see module docs).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Key order is not significant to the protocol; a map
    /// keeps duplicate-key handling well-defined (last wins).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on an object (`None` for absent keys or non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number parsed as `u64` (exact; rejects floats and negatives).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number parsed as `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number parsed as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }
}

/// Escapes `s` as the *interior* of a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Parses one JSON document; trailing non-whitespace is an error (the
/// protocol is one document per line).
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

/// Nesting depth cap: the protocol needs 3 levels; 32 tolerates foreign
/// clients while keeping recursion bounded.
const MAX_DEPTH: usize = 32;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
        ) {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        // Validate: must at least parse as f64 (u64-ness is decided at
        // access time from the raw token).
        raw.parse::<f64>()
            .map_err(|_| format!("bad number '{raw}' at byte {start}"))?;
        Ok(Value::Num(raw.to_string()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not needed by the
                            // protocol (escape() never emits them); map
                            // lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!("bad escape {:?}", other.map(|c| c as char)));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so this is
                    // always well-formed).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let c = rest.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err("raw control character in string".into());
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ));
                }
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_protocol_shaped_documents() {
        let v = parse(
            r#"{"op":"submit","spec":{"name":"g","hosts":["unit","r2"],"ns":[6],"alphas":[0.5,2.0],"seeds":[0,18446744073709551615],"max_rounds":200}}"#,
        )
        .unwrap();
        assert_eq!(v.get("op").and_then(Value::as_str), Some("submit"));
        let spec = v.get("spec").unwrap();
        assert_eq!(spec.get("hosts").unwrap().as_arr().unwrap().len(), 2);
        // u64::MAX survives exactly (f64 would round it).
        assert_eq!(
            spec.get("seeds").unwrap().as_arr().unwrap()[1].as_u64(),
            Some(u64::MAX)
        );
        assert_eq!(
            spec.get("alphas").unwrap().as_arr().unwrap()[0].as_f64(),
            Some(0.5)
        );
        assert_eq!(spec.get("max_rounds").unwrap().as_usize(), Some(200));
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "line1\nline2\t\"quoted\" back\\slash \u{1} héllo";
        let doc = format!("{{\"s\":\"{}\"}}", escape(nasty));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("s").and_then(Value::as_str), Some(nasty));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "{\"a\":1,}",
            "[1 2]",
            "{\"a\":1} trailing",
            "\"unterminated",
            "{\"a\":+}",
            "nulll",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn depth_cap_rejects_bombs() {
        let bomb = "[".repeat(64) + &"]".repeat(64);
        assert!(parse(&bomb).is_err());
        let ok = "[".repeat(8) + &"]".repeat(8);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let v = parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(2));
    }
}
