//! Zero-dependency runtime metrics for the daemon.
//!
//! A tiny registry in the std-only spirit of the rest of the service: no
//! metrics crate, no exporter thread — just atomics the hot paths bump
//! without taking the state lock, snapshotted on demand into one JSON
//! object by the protocol's `metrics` op (`gncg metrics` pretty-prints
//! it).
//!
//! Three shapes:
//!
//! * **Counters** — monotone event totals ([`Counter`]): submits, cells
//!   simulated, cells served from cache, worker busy-time.
//! * **Histograms** — power-of-two microsecond buckets ([`Histogram`]):
//!   per-job wall time and journal fsync latency. Bucket `i` counts
//!   observations in `(2^(i-1), 2^i]` µs, so the full `u64` range fits in
//!   [`Histogram::BUCKETS`] slots and recording is a couple of atomic
//!   adds — cheap enough for the submit path that fsyncs under the state
//!   lock.
//! * **Gauges** — instantaneous values (queue depth, active jobs, cache
//!   ratio, busy fraction) that already live in the daemon's state; the
//!   snapshot computes them at read time instead of duplicating them
//!   here ([`Metrics::snapshot_json`] takes them as [`Gauges`]).
//!
//! None of this participates in result bytes: metrics are process-local
//! wall-clock observations, exactly the data the JSONL determinism
//! contract keeps *out* of cell lines.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotone event counter. Relaxed ordering throughout: totals are
/// read for reporting, never for synchronization.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` events.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A high-water-mark gauge: records the maximum value ever observed
/// (`fetch_max`, relaxed — reporting only, like [`Counter`]). Used for
/// the warm-vector resident-bytes peak: at n = 4096 the warm distance
/// vectors are the daemon's dominant allocation, and the peak is the
/// number capacity planning needs.
#[derive(Debug, Default)]
pub struct Peak(AtomicU64);

impl Peak {
    /// Folds one observation into the running maximum.
    pub fn record(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// The largest value recorded so far (0 before any observation).
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A latency histogram over power-of-two microsecond buckets.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum_us: AtomicU64,
    buckets: [AtomicU64; Histogram::BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// Bucket count: bucket `i` spans `(2^(i-1), 2^i]` µs (bucket 0 is
    /// `[0, 1]` µs), and 2^63 µs is ~292k years — the last bucket is an
    /// overflow catch-all in name only.
    pub const BUCKETS: usize = 64;

    /// Records one observation of `us` microseconds.
    pub fn observe_us(&self, us: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        // ceil(log2(us)) puts us exactly in the (2^(i-1), 2^i] bucket.
        let idx = match us {
            0 | 1 => 0,
            _ => (u64::BITS - (us - 1).leading_zeros()) as usize,
        };
        self.buckets[idx.min(Histogram::BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records an elapsed [`std::time::Duration`].
    pub fn observe(&self, elapsed: std::time::Duration) {
        self.observe_us(u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX));
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, in microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Upper bound (µs) of the bucket holding quantile `q` (in `[0, 1]`)
    /// — an over-estimate by at most 2×, which is the resolution latency
    /// reporting needs. `0` when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return if i == 0 {
                    1
                } else {
                    1u64 << (i - 1).min(62) << 1
                };
            }
        }
        u64::MAX
    }

    /// The non-empty buckets as `(upper_bound_us, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| {
                    let le = if i == 0 {
                        1
                    } else {
                        1u64 << (i - 1).min(62) << 1
                    };
                    (le, n)
                })
            })
            .collect()
    }

    /// One JSON object: count, sum, quantile estimates, and the
    /// non-empty `[upper_bound_us, count]` buckets.
    pub fn to_json(&self) -> String {
        let buckets: Vec<String> = self
            .nonzero_buckets()
            .into_iter()
            .map(|(le, n)| format!("[{le},{n}]"))
            .collect();
        format!(
            "{{\"count\":{},\"sum_us\":{},\"p50_us\":{},\"p99_us\":{},\"buckets\":[{}]}}",
            self.count(),
            self.sum_us(),
            self.quantile_us(0.50),
            self.quantile_us(0.99),
            buckets.join(","),
        )
    }
}

/// The daemon's metric set. One instance per [`crate::server::Server`]
/// (never a global static: loopback tests run several daemons in one
/// process, and their numbers must not bleed into each other).
#[derive(Debug, Default)]
pub struct Metrics {
    /// Jobs accepted by `submit` (journal replays included).
    pub jobs_submitted: Counter,
    /// Cells actually simulated by a worker.
    pub cells_simulated: Counter,
    /// Cells served from the result cache.
    pub cells_from_cache: Counter,
    /// Microseconds workers spent simulating cells (the busy-fraction
    /// numerator; the denominator is `uptime × workers`).
    pub worker_busy_us: Counter,
    /// Wall time from job acceptance to its last cell landing.
    pub job_wall: Histogram,
    /// Journal fsync latency on the submit path.
    pub journal_fsync: Histogram,
    /// Peak bytes resident in any worker engine's warm distance vectors
    /// after a cell (per-worker peak, not a sum — workers don't share
    /// engines, and the largest single engine bounds per-worker memory).
    pub warm_resident_bytes: Peak,
}

/// Instantaneous values owned by the daemon state, passed in at snapshot
/// time.
#[derive(Clone, Copy, Debug, Default)]
pub struct Gauges {
    /// Process uptime, in milliseconds.
    pub uptime_ms: u64,
    /// Cells currently waiting in the work queue.
    pub queue_depth: usize,
    /// Jobs queued or running.
    pub active_jobs: usize,
    /// Worker-pool size.
    pub workers: usize,
    /// Result-cache entries held.
    pub cache_entries: usize,
    /// Result-cache lookup hits.
    pub cache_hits: u64,
    /// Result-cache lookup misses.
    pub cache_misses: u64,
}

impl Metrics {
    /// The registry snapshot as one JSON object (the `metrics` op's
    /// `"metrics"` member). Key order is fixed; ratios are rounded to
    /// stay shortest-form floats.
    pub fn snapshot_json(&self, g: &Gauges) -> String {
        let ratio = |num: u64, den: u64| -> f64 {
            if den == 0 {
                0.0
            } else {
                (num as f64 / den as f64 * 1e4).round() / 1e4
            }
        };
        let lookups = g.cache_hits + g.cache_misses;
        let busy_budget_us = g.uptime_ms.saturating_mul(1_000) * g.workers.max(1) as u64;
        format!(
            "{{\"uptime_ms\":{},\"queue_depth\":{},\"active_jobs\":{},\"workers\":{},\"jobs_submitted\":{},\"cells_simulated\":{},\"cells_from_cache\":{},\"worker_busy_fraction\":{:?},\"cache_entries\":{},\"cache_hits\":{},\"cache_misses\":{},\"cache_hit_ratio\":{:?},\"job_wall_us\":{},\"journal_fsync_us\":{},\"warm_resident_bytes_peak\":{}}}",
            g.uptime_ms,
            g.queue_depth,
            g.active_jobs,
            g.workers,
            self.jobs_submitted.get(),
            self.cells_simulated.get(),
            self.cells_from_cache.get(),
            ratio(self.worker_busy_us.get().min(busy_budget_us), busy_budget_us),
            g.cache_entries,
            g.cache_hits,
            g.cache_misses,
            ratio(g.cache_hits, lookups),
            self.job_wall.to_json(),
            self.journal_fsync.to_json(),
            self.warm_resident_bytes.get(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let c = Counter::default();
        assert_eq!(c.get(), 0);
        c.add(3);
        c.add(4);
        assert_eq!(c.get(), 7);
    }

    #[test]
    fn histogram_buckets_are_power_of_two_upper_bounds() {
        let h = Histogram::default();
        for us in [0, 1, 2, 3, 4, 100, 1_000_000] {
            h.observe_us(us);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum_us(), 1_000_110);
        let buckets = h.nonzero_buckets();
        // 0 and 1 land in le=1; 2 in le=2; 3 and 4 in le=4; 100 in
        // le=128; 1_000_000 in le=2^20.
        assert_eq!(
            buckets,
            vec![(1, 2), (2, 1), (4, 2), (128, 1), (1 << 20, 1)]
        );
        // Quantiles report bucket upper bounds: p50 (4th of 7) is le=4.
        assert_eq!(h.quantile_us(0.5), 4);
        assert_eq!(h.quantile_us(1.0), 1 << 20);
        assert_eq!(Histogram::default().quantile_us(0.5), 0);
    }

    #[test]
    fn extreme_observations_stay_in_range() {
        let h = Histogram::default();
        h.observe_us(u64::MAX);
        assert_eq!(h.count(), 1);
        assert_eq!(h.nonzero_buckets().len(), 1);
        assert!(h.quantile_us(0.5) > 0);
    }

    #[test]
    fn peak_keeps_the_maximum() {
        let p = Peak::default();
        assert_eq!(p.get(), 0);
        p.record(10);
        p.record(3);
        assert_eq!(p.get(), 10);
        p.record(11);
        assert_eq!(p.get(), 11);
    }

    #[test]
    fn snapshot_is_valid_json_with_fixed_keys() {
        let m = Metrics::default();
        m.jobs_submitted.add(2);
        m.cells_simulated.add(5);
        m.job_wall.observe_us(1500);
        m.warm_resident_bytes.record(4096);
        let g = Gauges {
            uptime_ms: 10_000,
            queue_depth: 3,
            active_jobs: 1,
            workers: 2,
            cache_entries: 7,
            cache_hits: 3,
            cache_misses: 9,
        };
        let json = m.snapshot_json(&g);
        let v = crate::json::parse(&json).expect("snapshot must be parseable");
        assert_eq!(
            v.get("uptime_ms").and_then(crate::json::Value::as_u64),
            Some(10_000)
        );
        assert_eq!(
            v.get("queue_depth").and_then(crate::json::Value::as_u64),
            Some(3)
        );
        assert_eq!(
            v.get("jobs_submitted").and_then(crate::json::Value::as_u64),
            Some(2)
        );
        assert_eq!(
            v.get("cache_hit_ratio")
                .and_then(crate::json::Value::as_f64),
            Some(0.25)
        );
        let wall = v.get("job_wall_us").expect("histogram member");
        assert_eq!(
            wall.get("count").and_then(crate::json::Value::as_u64),
            Some(1)
        );
        assert_eq!(
            wall.get("p50_us").and_then(crate::json::Value::as_u64),
            Some(2048)
        );
        // An idle daemon reports a zero busy fraction, not NaN.
        assert_eq!(
            v.get("worker_busy_fraction")
                .and_then(crate::json::Value::as_f64),
            Some(0.0)
        );
        assert_eq!(
            v.get("warm_resident_bytes_peak")
                .and_then(crate::json::Value::as_u64),
            Some(4096)
        );
    }
}
