//! Deterministic fault injection for the chaos suite.
//!
//! A **failpoint** is a named site in the daemon's hot paths (accept
//! loop, worker loop, cache/journal appends, stream writer) where a test
//! can inject a fault *on the k-th hit, exactly once* — an I/O error, a
//! delay, or an immediate process abort (the deterministic stand-in for
//! `kill -9`). Sites are armed programmatically (`arm`) or from the
//! environment (`GNCG_FAILPOINTS`, parsed once on first hit), so a
//! spawned `gncg serve` subprocess can be told to die mid-job without
//! any test-only protocol surface.
//!
//! The real implementation is compiled only under
//! `cfg(any(test, feature = "failpoints"))`; every other build gets the
//! no-op stub below — an `#[inline(always)]` `Ok(())` the optimizer
//! erases, so production binaries carry no registry, no parsing, and no
//! atomics on any hot path.
//!
//! # `GNCG_FAILPOINTS` syntax
//!
//! Comma-separated `site=action@k` triples; `k` is the 1-based hit at
//! which the action fires (every other hit is a no-op):
//!
//! ```text
//! GNCG_FAILPOINTS="worker.cell=abort@3,cache.append=err@1,stream.write=delay:50@2"
//! ```
//!
//! Actions: `err` (the site reports an injected [`std::io::Error`]),
//! `delay:<ms>` (the site sleeps, then proceeds), `abort` (the process
//! dies on the spot via [`std::process::abort`]).
//!
//! # Sites
//!
//! | site             | where                                             |
//! |------------------|---------------------------------------------------|
//! | `accept.conn`    | accept loop, per accepted connection              |
//! | `worker.cell`    | worker loop, per *simulated* cell (not cache hits)|
//! | `cache.append`   | result-cache disk append, per fresh record        |
//! | `journal.append` | job-journal disk append, per record               |
//! | `stream.write`   | stream/tail writer, per cell line sent            |

#[cfg(any(test, feature = "failpoints"))]
pub use real::{arm, check, disarm, hits, reset, Action};

#[cfg(any(test, feature = "failpoints"))]
mod real {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};

    /// What an armed site does on its trigger hit.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum Action {
        /// Report an injected I/O error from the site.
        Err,
        /// Sleep this many milliseconds, then proceed normally.
        Delay(u64),
        /// Abort the process immediately (no unwinding, no cleanup) —
        /// the deterministic `kill -9`.
        Abort,
    }

    #[derive(Debug)]
    struct Site {
        action: Action,
        /// 1-based hit number at which `action` fires.
        at: u64,
        hits: u64,
    }

    fn sites() -> &'static Mutex<HashMap<String, Site>> {
        static SITES: OnceLock<Mutex<HashMap<String, Site>>> = OnceLock::new();
        SITES.get_or_init(|| {
            let mut map = HashMap::new();
            if let Ok(raw) = std::env::var("GNCG_FAILPOINTS") {
                for entry in raw.split(',').filter(|e| !e.trim().is_empty()) {
                    match parse_entry(entry.trim()) {
                        Ok((site, action, at)) => {
                            map.insert(
                                site,
                                Site {
                                    action,
                                    at,
                                    hits: 0,
                                },
                            );
                        }
                        Err(e) => eprintln!("gncg_service: ignoring failpoint '{entry}': {e}"),
                    }
                }
            }
            Mutex::new(map)
        })
    }

    /// Parses one `site=action@k` environment entry.
    fn parse_entry(entry: &str) -> Result<(String, Action, u64), String> {
        let (site, rest) = entry
            .split_once('=')
            .ok_or("expected site=action@k".to_string())?;
        let (action, at) = rest
            .split_once('@')
            .ok_or("expected action@k".to_string())?;
        let at: u64 = at.parse().map_err(|_| format!("bad hit count '{at}'"))?;
        if at == 0 {
            return Err("hit count is 1-based".into());
        }
        let action = match action {
            "err" => Action::Err,
            "abort" => Action::Abort,
            other => match other.strip_prefix("delay:") {
                Some(ms) => Action::Delay(ms.parse().map_err(|_| format!("bad delay '{ms}'"))?),
                None => return Err(format!("unknown action '{other}' (err|delay:<ms>|abort)")),
            },
        };
        Ok((site.to_string(), action, at))
    }

    /// Arms `site` to perform `action` on its `at`-th hit (1-based),
    /// resetting the site's hit counter.
    pub fn arm(site: &str, action: Action, at: u64) {
        sites().lock().unwrap().insert(
            site.to_string(),
            Site {
                action,
                at: at.max(1),
                hits: 0,
            },
        );
    }

    /// Disarms one site (its hit history is discarded).
    pub fn disarm(site: &str) {
        sites().lock().unwrap().remove(site);
    }

    /// Disarms every site.
    pub fn reset() {
        sites().lock().unwrap().clear();
    }

    /// Hits recorded at `site` so far (0 when not armed).
    pub fn hits(site: &str) -> u64 {
        sites().lock().unwrap().get(site).map_or(0, |s| s.hits)
    }

    /// Records one hit at `site` and performs the armed action if this is
    /// the trigger hit. Unarmed sites cost one mutex lock and return
    /// `Ok(())`.
    pub fn check(site: &str) -> std::io::Result<()> {
        let fired = {
            let mut g = sites().lock().unwrap();
            match g.get_mut(site) {
                None => return Ok(()),
                Some(s) => {
                    s.hits += 1;
                    (s.hits == s.at).then_some(s.action)
                }
            }
        };
        match fired {
            None => Ok(()),
            Some(Action::Err) => Err(std::io::Error::other(format!(
                "failpoint '{site}' injected error"
            ))),
            Some(Action::Delay(ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                Ok(())
            }
            Some(Action::Abort) => {
                eprintln!("gncg_service: failpoint '{site}' aborting process");
                std::process::abort();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fires_exactly_on_the_kth_hit() {
            arm("fp.test.kth", Action::Err, 3);
            assert!(check("fp.test.kth").is_ok());
            assert!(check("fp.test.kth").is_ok());
            let err = check("fp.test.kth").unwrap_err();
            assert!(err.to_string().contains("fp.test.kth"), "{err}");
            // Hits past the trigger are clean again (fires once).
            assert!(check("fp.test.kth").is_ok());
            assert_eq!(hits("fp.test.kth"), 4);
            disarm("fp.test.kth");
            assert!(check("fp.test.kth").is_ok());
            assert_eq!(hits("fp.test.kth"), 0);
        }

        #[test]
        fn delay_proceeds_after_sleeping() {
            arm("fp.test.delay", Action::Delay(10), 1);
            let started = std::time::Instant::now();
            assert!(check("fp.test.delay").is_ok());
            assert!(started.elapsed() >= std::time::Duration::from_millis(10));
            disarm("fp.test.delay");
        }

        #[test]
        fn env_entries_parse() {
            assert_eq!(
                parse_entry("worker.cell=abort@3").unwrap(),
                ("worker.cell".into(), Action::Abort, 3)
            );
            assert_eq!(
                parse_entry("a=delay:250@1").unwrap(),
                ("a".into(), Action::Delay(250), 1)
            );
            assert_eq!(
                parse_entry("a=err@9").unwrap(),
                ("a".into(), Action::Err, 9)
            );
            for bad in ["", "a", "a=b", "a=err", "a=err@0", "a=err@x", "a=delay:@1"] {
                assert!(parse_entry(bad).is_err(), "{bad:?}");
            }
        }
    }
}

/// No-op stub: without `cfg(any(test, feature = "failpoints"))` every
/// site compiles to an always-inlined `Ok(())`.
#[cfg(not(any(test, feature = "failpoints")))]
#[inline(always)]
pub fn check(_site: &str) -> std::io::Result<()> {
    Ok(())
}
