//! The batch-experiment daemon.
//!
//! Std-only by design (a `TcpListener`, an accept thread, one handler
//! thread per connection, a fixed worker pool — no async runtime, no new
//! dependencies, consistent with the `crates/compat` shim policy):
//!
//! * **Job queue** — `submit` expands a validated [`ScenarioSpec`] into
//!   its deterministic cells and enqueues one work item per cell. The
//!   queue is bounded in *jobs*: at most `queue_cap` jobs may be active
//!   (queued or running) at once; further submissions are refused with an
//!   error response instead of buffering without limit.
//! * **Worker pool** — `workers` threads, each owning one engine-reusing
//!   [`Runner`] for its entire lifetime, so scratch (cached network, warm
//!   distance vectors, cycle-detector map) stays hot **across jobs**, not
//!   just across the cells of one batch ([`Runner::recycle`] drops
//!   references into a finished job's data at job boundaries without
//!   releasing the allocations). Within a cell, the engine's own fan-out
//!   (APSP, MaxGain scans, BnB splits) runs on the shared rayon-shim
//!   compute pool (`--threads` / `GNCG_THREADS`) — workers scale across
//!   cells, the pool scales inside one, and both produce byte-identical
//!   results at any setting.
//! * **Result cache** — before simulating, a worker looks the cell up by
//!   its content digest ([`cell_digest`]); hits are served from the
//!   [`ResultCache`] (memory, optionally disk-backed) and re-stamped with
//!   the job's cell index. Determinism makes a hit byte-identical to a
//!   re-simulation, which the loopback integration tests assert.
//! * **Streaming** — `stream` sends a job's results as raw JSONL lines in
//!   cell order (blocking on not-yet-finished cells), framed by control
//!   lines; the cell bytes equal the offline `gncg grid` file bytes.
//!
//! Completed jobs are retained for `retain` further completions and then
//! pruned oldest-first (streams in progress pin their job), so a
//! long-running daemon's job table stays bounded; the result cache is
//! what persists.

use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead as _, BufReader, BufWriter, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

use gncg_suite::scenario::{cell_digest, Cell, Runner, ScenarioSpec};
use gncg_suite::sink::JsonlSink;

use crate::cache::{stamp_line, ResultCache};
use crate::failpoint;
use crate::journal::Journal;
use crate::metrics::{Gauges, Metrics};
use crate::protocol::{error_line, Request};

/// Daemon tuning knobs.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads (0 → one per available core). Workers parallelize
    /// *across* cells; `threads` parallelizes *within* one (both draw on
    /// the same cores, so on a saturated daemon prefer many workers over
    /// many pool threads).
    pub workers: usize,
    /// Compute-pool threads for the rayon shim (the within-cell fan-out:
    /// APSP, MaxGain scans, BnB splits). 0 → leave the pool at its
    /// `GNCG_THREADS` / available-core default. Results are
    /// bitwise-identical at every setting; this is a throughput knob.
    pub threads: usize,
    /// Maximum jobs active (queued or running) at once; submissions
    /// beyond the cap are refused.
    pub queue_cap: usize,
    /// Finished jobs retained (oldest pruned first).
    pub retain: usize,
    /// Maximum cells a single submitted grid may expand to; larger (or
    /// overflowing) specs are refused before anything is allocated.
    pub max_job_cells: usize,
    /// Optional persistent cache file.
    pub cache_path: Option<PathBuf>,
    /// Maximum result-cache entries held in memory (`None` = unbounded).
    /// When set, least-recently-used entries are evicted and the disk
    /// file (if any) is compacted to the cap at startup.
    pub cache_max: Option<usize>,
    /// Optional job journal (write-ahead log): accepted submits are
    /// fsync'd here before acknowledgement and unfinished jobs are
    /// replayed (re-enqueued under their original ids) on restart.
    pub journal_path: Option<PathBuf>,
    /// Per-connection read timeout in milliseconds (0 = none). This is
    /// an *idle* bound — a client that sends nothing for this long (or
    /// a half-open connection whose peer silently died) is dropped; it
    /// never interrupts an in-progress stream, where the server only
    /// writes.
    pub read_timeout_ms: u64,
    /// Per-connection write timeout in milliseconds (0 = none). Bounds
    /// how long one blocked write to a slow (or stalled) reader may
    /// hold a handler thread and its pinned job.
    pub write_timeout_ms: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 0,
            threads: 0,
            queue_cap: 64,
            retain: 256,
            max_job_cells: 1 << 20,
            cache_path: None,
            cache_max: None,
            journal_path: None,
            read_timeout_ms: 600_000,
            write_timeout_ms: 60_000,
        }
    }
}

/// A job's lifecycle state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum JobState {
    Queued,
    Running,
    Done,
    Canceled,
    /// The job's wall-clock deadline passed before it finished.
    Expired,
}

impl JobState {
    fn key(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Canceled => "canceled",
            JobState::Expired => "expired",
        }
    }

    fn finished(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Canceled | JobState::Expired
        )
    }

    /// The error message streams report when a job ends in this state
    /// without delivering every cell.
    fn abort_reason(self) -> &'static str {
        match self {
            JobState::Canceled => "job canceled",
            JobState::Expired => "job deadline exceeded",
            _ => "job aborted",
        }
    }
}

#[derive(Debug)]
struct Job {
    cells: Vec<Cell>,
    /// Finished lines, in cell order (`None` until the cell lands).
    lines: Vec<Option<String>>,
    /// Cell indices in **completion order** — what `tail` streams drain
    /// (each tail keeps a cursor into this log, so a wakeup costs only
    /// the newly landed cells, never a rescan of the whole job).
    finished: Vec<usize>,
    state: JobState,
    done: usize,
    cache_hits: usize,
    simulated: usize,
    /// Streams currently reading this job (pinned jobs are never pruned).
    pinned: usize,
    /// Wall-clock instant after which the job expires (`None` = no
    /// deadline). Checked lazily at worker pops, stream waits, and
    /// status calls — cells are never interrupted mid-simulation.
    deadline: Option<std::time::Instant>,
    /// Acceptance instant — the job wall-time histogram's start mark.
    created: std::time::Instant,
}

#[derive(Debug, Default)]
struct Counters {
    done_jobs: u64,
    canceled_jobs: u64,
    expired_jobs: u64,
}

#[derive(Debug)]
struct Inner {
    jobs: BTreeMap<u64, Job>,
    queue: VecDeque<(u64, usize)>,
    next_job: u64,
    active_jobs: usize,
    /// Active jobs carrying a deadline — the lazy expiry scan early-outs
    /// when this is zero, so deadline-free workloads pay nothing.
    deadline_jobs: usize,
    cache: ResultCache,
    journal: Journal,
    counters: Counters,
    shutting_down: bool,
    /// Draining (`shutdown --drain`): active jobs run to completion
    /// (bounded by their deadlines) but new submits are refused; the
    /// last job to finish initiates the actual shutdown.
    draining: bool,
}

#[derive(Debug)]
struct Shared {
    inner: Mutex<Inner>,
    /// Signals workers: queue non-empty or shutdown.
    work: Condvar,
    /// Signals streamers/waiters: a result landed or a job changed state.
    progress: Condvar,
    cfg: ServiceConfig,
    workers: usize,
    addr: SocketAddr,
    /// Daemon start instant (status `uptime_ms`, busy-fraction budget).
    started: std::time::Instant,
    /// Runtime metrics registry (per-daemon, never global: loopback
    /// tests run several daemons in one process).
    metrics: Metrics,
}

/// A running daemon (listener + workers). Dropping the handle does *not*
/// stop the daemon; call [`Server::shutdown`] (or send the protocol
/// `shutdown` op) and then [`Server::wait`].
#[derive(Debug)]
pub struct Server {
    shared: Arc<Shared>,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// the accept loop and worker pool.
    pub fn start(addr: &str, cfg: ServiceConfig) -> Result<Server, String> {
        if cfg.threads > 0 {
            // Must win the race against any earlier pool use: the global
            // thread count is fixed at first resolution.
            rayon::configure_num_threads(cfg.threads)
                .map_err(|e| format!("cannot apply --threads: {e}"))?;
        }
        let listener = TcpListener::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
        let local = listener
            .local_addr()
            .map_err(|e| format!("cannot read bound address: {e}"))?;
        let workers = if cfg.workers > 0 {
            cfg.workers
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        };
        let cache = match &cfg.cache_path {
            Some(p) => ResultCache::open_with(p, cfg.cache_max)?,
            None => ResultCache::in_memory_with(cfg.cache_max),
        };
        let (journal, replayed, max_journal_job) = match &cfg.journal_path {
            Some(p) => Journal::open(p)?,
            None => (Journal::disabled(), Vec::new(), 0),
        };
        let mut inner = Inner {
            jobs: BTreeMap::new(),
            queue: VecDeque::new(),
            next_job: max_journal_job + 1,
            active_jobs: 0,
            deadline_jobs: 0,
            cache,
            journal,
            counters: Counters::default(),
            shutting_down: false,
            draining: false,
        };
        // Re-enqueue journaled jobs that never reached a terminal state,
        // under their original ids — a client whose `tail --job N`
        // connection died with the old process reconnects and finds its
        // job again. Replay happens before the workers spawn, so the
        // replayed queue order (submit order) is what they see first.
        let replayed_count = replayed.len();
        for job in replayed {
            let total = match job.spec.checked_cell_count() {
                Some(t) if t <= cfg.max_job_cells => t,
                // The cell cap shrank across the restart: drop the job
                // (recording the drop so the next replay skips it too)
                // rather than refusing to start.
                _ => {
                    eprintln!(
                        "gncg_service: journaled job {} exceeds the {}-cell cap; dropping",
                        job.job, cfg.max_job_cells
                    );
                    inner.journal.record_cancel(job.job);
                    continue;
                }
            };
            let cells = job.spec.expand();
            let deadline = arm_deadline(job.deadline_ms);
            if deadline.is_some() {
                inner.deadline_jobs += 1;
            }
            inner.jobs.insert(
                job.job,
                Job {
                    lines: vec![None; total],
                    finished: Vec::with_capacity(total),
                    cells,
                    state: JobState::Queued,
                    done: 0,
                    cache_hits: 0,
                    simulated: 0,
                    pinned: 0,
                    deadline,
                    created: std::time::Instant::now(),
                },
            );
            inner.active_jobs += 1;
            for idx in 0..total {
                inner.queue.push_back((job.job, idx));
            }
        }
        if replayed_count > 0 {
            eprintln!("gncg_service: replayed {replayed_count} unfinished job(s) from the journal");
        }
        let shared = Arc::new(Shared {
            inner: Mutex::new(inner),
            work: Condvar::new(),
            progress: Condvar::new(),
            cfg,
            workers,
            addr: local,
            started: std::time::Instant::now(),
            metrics: Metrics::default(),
        });
        shared.metrics.jobs_submitted.add(replayed_count as u64);

        let worker_handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("gncg-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .map_err(|e| format!("cannot spawn worker: {e}"))
            })
            .collect::<Result<Vec<_>, _>>()?;

        let accept_shared = Arc::clone(&shared);
        let accept_handle = std::thread::Builder::new()
            .name("gncg-accept".into())
            .spawn(move || accept_loop(&listener, &accept_shared))
            .map_err(|e| format!("cannot spawn accept loop: {e}"))?;

        Ok(Server {
            shared,
            accept_handle: Some(accept_handle),
            worker_handles,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Initiates shutdown: stop accepting, wake every waiter, let
    /// workers finish their in-flight cell and exit. Idempotent.
    pub fn shutdown(&self) {
        initiate_shutdown(&self.shared);
    }

    /// Blocks until the accept loop and every worker have exited
    /// (i.e. until a shutdown — via [`Server::shutdown`] or the protocol
    /// op — has completed).
    pub fn wait(mut self) {
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        for h in self.worker_handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Converts a submit's millisecond budget into the absolute expiry
/// instant. A budget too large to represent is no deadline at all.
fn arm_deadline(deadline_ms: Option<u64>) -> Option<std::time::Instant> {
    deadline_ms
        .and_then(|ms| std::time::Instant::now().checked_add(std::time::Duration::from_millis(ms)))
}

fn initiate_shutdown(shared: &Shared) {
    let mut g = shared.inner.lock().unwrap();
    initiate_shutdown_locked(&mut g, shared);
}

/// The body of shutdown initiation, callable with the state lock held
/// (drain completion discovers "last job finished" under the lock).
/// Idempotent.
fn initiate_shutdown_locked(g: &mut Inner, shared: &Shared) {
    if g.shutting_down {
        return;
    }
    g.shutting_down = true;
    shared.work.notify_all();
    shared.progress.notify_all();
    // Unblock the accept loop with a throwaway connection. A wildcard
    // bind (0.0.0.0 / ::) is not itself connectable on every platform —
    // poke the loopback of the same family instead. (Safe under the
    // lock: the TCP handshake completes in the kernel's backlog without
    // the accept thread running, so this never waits on a thread that
    // could be waiting on us.)
    let mut poke = shared.addr;
    if poke.ip().is_unspecified() {
        poke.set_ip(match poke.ip() {
            std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
            std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
        });
    }
    let _ = TcpStream::connect_timeout(&poke, std::time::Duration::from_secs(1));
}

/// If draining and the last active job just finished, shut down.
fn check_drain(g: &mut Inner, shared: &Shared) {
    if g.draining && g.active_jobs == 0 {
        initiate_shutdown_locked(g, shared);
    }
}

/// Expires every active job whose deadline has passed: the job's queued
/// cells are discarded, streams are woken to report the expiry, and the
/// journal records it. Cells already being simulated are never
/// interrupted (their results land in the cache; the job stays expired).
fn expire_overdue(g: &mut Inner, shared: &Shared) {
    if g.deadline_jobs == 0 {
        return;
    }
    let now = std::time::Instant::now();
    let overdue: Vec<u64> = g
        .jobs
        .iter()
        .filter(|(_, j)| !j.state.finished() && j.deadline.is_some_and(|d| d <= now))
        .map(|(&id, _)| id)
        .collect();
    for id in overdue {
        let job = g.jobs.get_mut(&id).expect("collected above");
        job.state = JobState::Expired;
        g.queue.retain(|&(j, _)| j != id);
        g.active_jobs -= 1;
        g.deadline_jobs -= 1;
        g.counters.expired_jobs += 1;
        g.journal.record_expire(id);
        shared.progress.notify_all();
    }
    check_drain(g, shared);
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let conn = listener.accept();
        if shared.inner.lock().unwrap().shutting_down {
            return;
        }
        match conn {
            Ok((stream, _)) => {
                // Injected accept-time failure: the client sees an
                // immediate disconnect — the shape a crash between
                // accept and first read leaves behind.
                if failpoint::check("accept.conn").is_err() {
                    continue;
                }
                // Request/response lines are tiny; without TCP_NODELAY the
                // Nagle/delayed-ACK interaction stalls every second small
                // write by ~40 ms, dwarfing the actual request cost (the
                // `service_roundtrip` bench guards this).
                let _ = stream.set_nodelay(true);
                // Hang protection on both directions (see the config
                // docs: read = idle/half-open bound, write = slow-reader
                // bound; neither interrupts a healthy stream).
                if shared.cfg.read_timeout_ms > 0 {
                    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(
                        shared.cfg.read_timeout_ms,
                    )));
                }
                if shared.cfg.write_timeout_ms > 0 {
                    let _ = stream.set_write_timeout(Some(std::time::Duration::from_millis(
                        shared.cfg.write_timeout_ms,
                    )));
                }
                let shared = Arc::clone(shared);
                // Handler threads are detached: they end when their client
                // disconnects (or after serving `shutdown`), and the shared
                // state is kept alive by their Arc.
                let _ = std::thread::Builder::new()
                    .name("gncg-conn".into())
                    .spawn(move || handle_connection(stream, &shared));
            }
            Err(_) => {
                // Transient accept failure (fd exhaustion, aborted
                // handshake): back off briefly instead of spinning a core
                // on the immediate retry.
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
        }
    }
}

// ---- worker pool --------------------------------------------------------

fn worker_loop(shared: &Shared) {
    let mut runner = Runner::new();
    let mut last_job: Option<u64> = None;
    let mut g = shared.inner.lock().unwrap();
    loop {
        // Pop the next runnable item (skipping canceled jobs), serving
        // cache hits inline under the lock — a hit is a map lookup plus a
        // string stamp, far cheaper than a wake cycle. A long run of hits
        // (a big fully-cached job being replayed) periodically releases
        // the mutex so submit/status/stream calls stay responsive.
        let mut inline_hits = 0usize;
        let (job_id, idx, cell) = loop {
            if g.shutting_down {
                return;
            }
            if inline_hits >= 128 {
                inline_hits = 0;
                drop(g);
                g = shared.inner.lock().unwrap();
            }
            expire_overdue(&mut g, shared);
            match g.queue.pop_front() {
                Some((job_id, idx)) => {
                    let Some(job) = g.jobs.get(&job_id) else {
                        continue;
                    };
                    if job.state.finished() {
                        // Canceled or expired while queued: skip.
                        continue;
                    }
                    let cell = job.cells[idx].clone();
                    let digest = cell_digest(&cell);
                    if let Some(rest) = g.cache.lookup(digest) {
                        shared.metrics.cells_from_cache.add(1);
                        record_line(&mut g, shared, job_id, idx, stamp_line(idx, &rest), true);
                        check_drain(&mut g, shared);
                        inline_hits += 1;
                        continue;
                    }
                    let job = g.jobs.get_mut(&job_id).expect("checked above");
                    job.state = JobState::Running;
                    break (job_id, idx, cell);
                }
                None => g = shared.work.wait(g).unwrap(),
            }
        };
        drop(g);

        if last_job.is_some_and(|j| j != job_id) {
            // Job boundary: release the previous job's data, keep scratch.
            runner.recycle();
        }
        last_job = Some(job_id);
        // `worker.cell` is the per-simulated-cell injection site: `abort`
        // here is the canonical kill-mid-job (the chaos suite's crash
        // scenario); an injected error or delay just perturbs timing —
        // the cell still runs, because cells cannot fail.
        let _ = failpoint::check("worker.cell");
        let busy = std::time::Instant::now();
        let result = runner.run_cell(&cell);
        shared
            .metrics
            .worker_busy_us
            .add(u64::try_from(busy.elapsed().as_micros()).unwrap_or(u64::MAX));
        shared.metrics.cells_simulated.add(1);
        shared
            .metrics
            .warm_resident_bytes
            .record(runner.warm_resident_bytes() as u64);

        g = shared.inner.lock().unwrap();
        let _ = g.cache.insert(cell_digest(&cell), &result);
        // The job may have been canceled/expired (or pruned) while we
        // simulated; the cache insert above still makes the work
        // reusable.
        if g.jobs.get(&job_id).is_some_and(|j| !j.state.finished()) {
            record_line(&mut g, shared, job_id, idx, result.to_jsonl(), false);
            check_drain(&mut g, shared);
        }
    }
}

/// Records a finished line into its job slot, updating completion
/// bookkeeping and waking streamers. Callers follow up with
/// [`check_drain`] — a completion here may have been the drain's last.
fn record_line(
    g: &mut MutexGuard<'_, Inner>,
    shared: &Shared,
    job_id: u64,
    idx: usize,
    line: String,
    from_cache: bool,
) {
    let Some(job) = g.jobs.get_mut(&job_id) else {
        return;
    };
    debug_assert!(job.lines[idx].is_none(), "cell {idx} recorded twice");
    job.lines[idx] = Some(line);
    job.finished.push(idx);
    job.done += 1;
    if from_cache {
        job.cache_hits += 1;
    } else {
        job.simulated += 1;
    }
    if job.done == job.cells.len() {
        job.state = JobState::Done;
        shared.metrics.job_wall.observe(job.created.elapsed());
        let had_deadline = job.deadline.is_some();
        g.active_jobs -= 1;
        if had_deadline {
            g.deadline_jobs -= 1;
        }
        g.counters.done_jobs += 1;
        g.journal.record_done(job_id);
    }
    shared.progress.notify_all();
}

// ---- connection handling ------------------------------------------------

/// Longest accepted request line. Real requests are well under 1 MiB
/// (the spec object is the only unbounded member); the cap keeps one
/// misbehaving client from growing the line buffer without limit.
const MAX_REQUEST_LINE: u64 = 1 << 20;

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        // Bounded read: Take caps how much one line may buffer. A line
        // that fills the cap without a newline is oversized — reject and
        // drop the connection (resynchronizing mid-stream is hopeless).
        match std::io::Read::take(&mut reader, MAX_REQUEST_LINE).read_line(&mut line) {
            Ok(0) | Err(_) => return, // client gone
            Ok(n) => {
                if n as u64 == MAX_REQUEST_LINE && !line.ends_with('\n') {
                    let _ = write_line(&mut writer, &error_line("request line too long"));
                    return;
                }
            }
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let reply_and_continue = match Request::parse_line(trimmed) {
            Err(e) => write_line(&mut writer, &error_line(&e)),
            Ok(Request::Ping) => write_line(&mut writer, "{\"ok\":true,\"pong\":true}"),
            Ok(Request::Submit { spec, deadline_ms }) => {
                let resp = submit(shared, spec, deadline_ms);
                write_line(&mut writer, &resp)
            }
            Ok(Request::Status { job }) => {
                let resp = status(shared, job);
                write_line(&mut writer, &resp)
            }
            Ok(Request::Cancel { job }) => {
                let resp = cancel(shared, job);
                write_line(&mut writer, &resp)
            }
            Ok(Request::Explore { job, cell }) => {
                let resp = explore(shared, job, cell);
                write_line(&mut writer, &resp)
            }
            Ok(Request::Metrics) => {
                let resp = metrics_snapshot(shared);
                write_line(&mut writer, &resp)
            }
            Ok(Request::Stream { job }) => stream_job(shared, &mut writer, job, false),
            Ok(Request::Tail { job }) => stream_job(shared, &mut writer, job, true),
            Ok(Request::Shutdown { drain: false }) => {
                let _ = write_line(&mut writer, "{\"ok\":true,\"shutdown\":true}");
                initiate_shutdown(shared);
                return;
            }
            Ok(Request::Shutdown { drain: true }) => {
                let active = {
                    let mut g = shared.inner.lock().unwrap();
                    g.draining = true;
                    g.active_jobs
                };
                // Reply *before* checking for drain completion: at zero
                // active jobs check_drain shuts the process down, and an
                // exiting process races this (detached) handler thread's
                // reply flush.
                let _ = write_line(
                    &mut writer,
                    &format!(
                        "{{\"ok\":true,\"shutdown\":true,\"draining\":true,\"active\":{active}}}"
                    ),
                );
                let mut g = shared.inner.lock().unwrap();
                check_drain(&mut g, shared);
                return;
            }
        };
        if reply_and_continue.is_err() {
            return; // write side gone
        }
    }
}

fn write_line(writer: &mut impl std::io::Write, line: &str) -> Result<(), ()> {
    writeln!(writer, "{line}")
        .and_then(|()| writer.flush())
        .map_err(|_| ())
}

fn submit(shared: &Shared, spec: ScenarioSpec, deadline_ms: Option<u64>) -> String {
    // Size-check the grid *before* expanding anything: specs arrive from
    // the network, and an overflowing or absurd cross product must be
    // refused, not allocated (MAX_REQUEST_LINE bounds bytes; this bounds
    // the multiplicative blow-up a small request can describe).
    let total = match spec.checked_cell_count() {
        Some(t) if t <= shared.cfg.max_job_cells => t,
        _ => {
            return error_line(&format!(
                "job too large (spec expands beyond the {}-cell cap)",
                shared.cfg.max_job_cells
            ));
        }
    };
    let cells = spec.expand();
    debug_assert_eq!(cells.len(), total);
    let mut g = shared.inner.lock().unwrap();
    if g.shutting_down {
        return error_line("daemon is shutting down");
    }
    if g.draining {
        return error_line("daemon is draining (shutdown in progress)");
    }
    if g.active_jobs >= shared.cfg.queue_cap {
        return error_line(&format!(
            "job queue full ({} active jobs, cap {})",
            g.active_jobs, shared.cfg.queue_cap
        ));
    }
    prune_finished(&mut g, shared.cfg.retain);
    let job_id = g.next_job;
    g.next_job += 1;
    // Write-ahead: the submit record is fsync'd *before* the client sees
    // the acknowledgement, so every acknowledged job survives a crash.
    // (The fsync runs under the state lock — submits are rare next to
    // cell completions, and ordering the journal identically to the job
    // table is what makes replay trivially correct.)
    let fsync = std::time::Instant::now();
    g.journal.record_submit(job_id, deadline_ms, &spec);
    shared.metrics.journal_fsync.observe(fsync.elapsed());
    shared.metrics.jobs_submitted.add(1);
    let deadline = arm_deadline(deadline_ms);
    g.jobs.insert(
        job_id,
        Job {
            lines: vec![None; total],
            finished: Vec::with_capacity(total),
            cells,
            state: JobState::Queued,
            done: 0,
            cache_hits: 0,
            simulated: 0,
            pinned: 0,
            deadline,
            created: std::time::Instant::now(),
        },
    );
    g.active_jobs += 1;
    if deadline.is_some() {
        g.deadline_jobs += 1;
    }
    for idx in 0..total {
        g.queue.push_back((job_id, idx));
    }
    drop(g);
    shared.work.notify_all();
    format!("{{\"ok\":true,\"job\":{job_id},\"cells\":{total}}}")
}

/// Drops the oldest finished, unpinned jobs once more than `retain`
/// finished jobs are held (active jobs never count against the cap and
/// are never pruned).
fn prune_finished(g: &mut MutexGuard<'_, Inner>, retain: usize) {
    let mut finished = g.jobs.values().filter(|j| j.state.finished()).count();
    while finished > retain {
        let victim = g
            .jobs
            .iter()
            .find(|(_, j)| j.state.finished() && j.pinned == 0)
            .map(|(&id, _)| id);
        match victim {
            Some(id) => {
                g.jobs.remove(&id);
                finished -= 1;
            }
            None => return,
        }
    }
}

fn status(shared: &Shared, job: Option<u64>) -> String {
    let mut g = shared.inner.lock().unwrap();
    // Lazy expiry: a status probe observes deadlines promptly even when
    // every worker is deep in a long simulation.
    expire_overdue(&mut g, shared);
    match job {
        Some(id) => match g.jobs.get(&id) {
            None => error_line(&format!("unknown job {id}")),
            Some(j) => format!(
                "{{\"ok\":true,\"job\":{id},\"state\":\"{}\",\"done\":{},\"total\":{},\"cache_hits\":{},\"simulated\":{}}}",
                j.state.key(),
                j.done,
                j.cells.len(),
                j.cache_hits,
                j.simulated,
            ),
        },
        None => format!(
            "{{\"ok\":true,\"uptime_ms\":{},\"jobs\":{},\"active\":{},\"queued\":{},\"done\":{},\"canceled\":{},\"expired\":{},\"cache_entries\":{},\"cache_hits\":{},\"cache_misses\":{},\"cache_degraded\":{},\"cache_errors\":{},\"journal_errors\":{},\"draining\":{},\"workers\":{},\"threads\":{},\"queue_cap\":{}}}",
            uptime_ms(shared),
            g.jobs.len(),
            g.active_jobs,
            g.jobs
                .values()
                .filter(|j| j.state == JobState::Queued)
                .count(),
            g.counters.done_jobs,
            g.counters.canceled_jobs,
            g.counters.expired_jobs,
            g.cache.len(),
            g.cache.hits(),
            g.cache.misses(),
            g.cache.degraded(),
            g.cache.append_errors(),
            g.journal.append_errors(),
            g.draining,
            shared.workers,
            rayon::current_num_threads(),
            shared.cfg.queue_cap,
        ),
    }
}

/// Milliseconds since the daemon started.
fn uptime_ms(shared: &Shared) -> u64 {
    u64::try_from(shared.started.elapsed().as_millis()).unwrap_or(u64::MAX)
}

/// The `explore` op: fetch one finished cell's result line — the same
/// bytes `stream` would carry for it — escaped into a control line. The
/// random-access read under `gncg explore`'s checkpoint inspection;
/// unfinished cells are an error rather than a blocking wait (explore is
/// for poking at results, not for following a live job).
fn explore(shared: &Shared, job_id: u64, cell: u64) -> String {
    let g = shared.inner.lock().unwrap();
    let Some(job) = g.jobs.get(&job_id) else {
        return error_line(&format!("unknown job {job_id}"));
    };
    let Ok(idx) = usize::try_from(cell) else {
        return error_line(&format!("cell {cell} out of range"));
    };
    match job.lines.get(idx) {
        None => error_line(&format!(
            "cell {cell} out of range (job {job_id} has {} cells)",
            job.lines.len()
        )),
        Some(None) => error_line(&format!(
            "cell {cell} of job {job_id} has not finished (job is {})",
            job.state.key()
        )),
        Some(Some(line)) => format!(
            "{{\"ok\":true,\"job\":{job_id},\"cell\":{cell},\"line\":\"{}\"}}",
            crate::json::escape(line)
        ),
    }
}

/// The `metrics` op: snapshot the registry plus the state-owned gauges.
fn metrics_snapshot(shared: &Shared) -> String {
    let mut g = shared.inner.lock().unwrap();
    expire_overdue(&mut g, shared);
    let gauges = Gauges {
        uptime_ms: uptime_ms(shared),
        queue_depth: g.queue.len(),
        active_jobs: g.active_jobs,
        workers: shared.workers,
        cache_entries: g.cache.len(),
        cache_hits: g.cache.hits(),
        cache_misses: g.cache.misses(),
    };
    drop(g);
    format!(
        "{{\"ok\":true,\"metrics\":{}}}",
        shared.metrics.snapshot_json(&gauges)
    )
}

fn cancel(shared: &Shared, job_id: u64) -> String {
    let mut g = shared.inner.lock().unwrap();
    let Some(job) = g.jobs.get_mut(&job_id) else {
        return error_line(&format!("unknown job {job_id}"));
    };
    let state = if job.state.finished() {
        job.state // terminal: cancel is a no-op
    } else {
        job.state = JobState::Canceled;
        let had_deadline = job.deadline.is_some();
        g.queue.retain(|&(j, _)| j != job_id);
        g.active_jobs -= 1;
        if had_deadline {
            g.deadline_jobs -= 1;
        }
        g.counters.canceled_jobs += 1;
        g.journal.record_cancel(job_id);
        shared.progress.notify_all();
        // Canceling the drain's last active job completes the drain.
        check_drain(&mut g, shared);
        JobState::Canceled
    };
    format!(
        "{{\"ok\":true,\"job\":{job_id},\"state\":\"{}\"}}",
        state.key()
    )
}

/// Streams a job's cell lines — in cell order (`stream`, blocking on
/// unfinished cells) or in completion order (`tail`, each line sent as
/// soon as it lands; clients re-sort by the line's `cell` index). Both
/// use the shared [`JsonlSink`] byte layer, so streamed cell bytes are
/// defined by the same code path as the offline grid file's.
fn stream_job(
    shared: &Shared,
    writer: &mut BufWriter<TcpStream>,
    job_id: u64,
    tail: bool,
) -> Result<(), ()> {
    let total = {
        let mut g = shared.inner.lock().unwrap();
        match g.jobs.get_mut(&job_id) {
            None => {
                return write_line(writer, &error_line(&format!("unknown job {job_id}")));
            }
            Some(j) => {
                j.pinned += 1;
                j.cells.len()
            }
        }
    };
    let result = if tail {
        tail_pinned(shared, writer, job_id, total)
    } else {
        stream_pinned(shared, writer, job_id, total)
    };
    let mut g = shared.inner.lock().unwrap();
    if let Some(j) = g.jobs.get_mut(&job_id) {
        j.pinned -= 1;
    }
    result
}

fn stream_pinned(
    shared: &Shared,
    writer: &mut BufWriter<TcpStream>,
    job_id: u64,
    total: usize,
) -> Result<(), ()> {
    write_line(
        writer,
        &format!("{{\"ok\":true,\"job\":{job_id},\"cells\":{total}}}"),
    )?;
    for idx in 0..total {
        let line = {
            let mut g = shared.inner.lock().unwrap();
            let mut waited = false;
            loop {
                let Some(job) = g.jobs.get(&job_id) else {
                    drop(g);
                    return write_line(writer, &error_line("job pruned mid-stream"));
                };
                if let Some(line) = &job.lines[idx] {
                    break line.clone();
                }
                if matches!(job.state, JobState::Canceled | JobState::Expired) {
                    let reason = job.state.abort_reason();
                    drop(g);
                    return write_line(writer, &error_line(reason));
                }
                if g.shutting_down {
                    drop(g);
                    return write_line(writer, &error_line("daemon is shutting down"));
                }
                if !waited {
                    // About to block on an unfinished cell: push the lines
                    // buffered so far to the client first, so progress is
                    // visible while the job computes. Already-available
                    // lines are *not* flushed per line — a finished or
                    // cached job streams in one buffered burst (the footer
                    // write flushes) instead of one syscall per cell.
                    waited = true;
                    drop(g);
                    if writer.flush().is_err() {
                        return Err(());
                    }
                    g = shared.inner.lock().unwrap();
                    continue;
                }
                // A bounded wait (not a bare block): the periodic wakeup
                // runs the lazy deadline scan, so an overrunning job
                // expires even while every worker simulates elsewhere.
                g = shared
                    .progress
                    .wait_timeout(g, std::time::Duration::from_millis(100))
                    .unwrap()
                    .0;
                expire_overdue(&mut g, shared);
            }
        };
        // A fresh zero-cost sink wrapper per line: the byte format stays
        // single-sourced in `JsonlSink` without holding a borrow across
        // the control-line early returns above. The `stream.write`
        // failpoint stands in for a write that times out on a stalled
        // reader: the handler gives up and drops the connection.
        if failpoint::check("stream.write").is_err()
            || JsonlSink::new(&mut *writer).emit_line(&line).is_err()
        {
            return Err(());
        }
    }
    let (hits, simulated) = {
        let g = shared.inner.lock().unwrap();
        match g.jobs.get(&job_id) {
            Some(j) => (j.cache_hits, j.simulated),
            None => (0, 0),
        }
    };
    write_line(
        writer,
        &format!("{{\"ok\":true,\"done\":true,\"cache_hits\":{hits},\"simulated\":{simulated}}}"),
    )
}

/// The `tail` body: drains the job's completion-order log from a
/// per-stream cursor — each wakeup clones only the newly landed lines
/// (never a rescan of the whole job) — and flushes per batch, blocking
/// on the progress condvar while nothing new is available. Wide grids on
/// many workers thus become visible as they complete instead of
/// head-of-line blocking on cell 0.
fn tail_pinned(
    shared: &Shared,
    writer: &mut BufWriter<TcpStream>,
    job_id: u64,
    total: usize,
) -> Result<(), ()> {
    write_line(
        writer,
        &format!("{{\"ok\":true,\"job\":{job_id},\"cells\":{total}}}"),
    )?;
    let mut cursor = 0usize;
    while cursor < total {
        // Collect the next batch of fresh lines under the lock; emit and
        // flush outside it.
        let batch: Vec<String> = {
            let mut g = shared.inner.lock().unwrap();
            loop {
                let Some(job) = g.jobs.get(&job_id) else {
                    drop(g);
                    return write_line(writer, &error_line("job pruned mid-stream"));
                };
                // Drain landed lines before reporting cancellation, so a
                // canceled job yields everything it finished — the same
                // deliver-then-error behavior `stream` has.
                if cursor < job.finished.len() {
                    break job.finished[cursor..]
                        .iter()
                        .map(|&idx| {
                            job.lines[idx]
                                .clone()
                                .expect("completion log entries always have a line")
                        })
                        .collect();
                }
                if matches!(job.state, JobState::Canceled | JobState::Expired) {
                    let reason = job.state.abort_reason();
                    drop(g);
                    return write_line(writer, &error_line(reason));
                }
                if g.shutting_down {
                    drop(g);
                    return write_line(writer, &error_line("daemon is shutting down"));
                }
                // Bounded wait; see `stream_pinned` — the wakeup drives
                // the lazy deadline scan.
                g = shared
                    .progress
                    .wait_timeout(g, std::time::Duration::from_millis(100))
                    .unwrap()
                    .0;
                expire_overdue(&mut g, shared);
            }
        };
        for line in &batch {
            if failpoint::check("stream.write").is_err()
                || JsonlSink::new(&mut *writer).emit_line(line).is_err()
            {
                return Err(());
            }
        }
        cursor += batch.len();
        // Flush per batch: tailing exists to show progress while the job
        // computes, so lines must not sit in the buffer until the footer.
        if writer.flush().is_err() {
            return Err(());
        }
    }
    let (hits, simulated) = {
        let g = shared.inner.lock().unwrap();
        match g.jobs.get(&job_id) {
            Some(j) => (j.cache_hits, j.simulated),
            None => (0, 0),
        }
    };
    write_line(
        writer,
        &format!("{{\"ok\":true,\"done\":true,\"cache_hits\":{hits},\"simulated\":{simulated}}}"),
    )
}
