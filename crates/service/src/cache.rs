//! The content-addressed result cache.
//!
//! Keyed by [`cell_digest`](gncg_suite::scenario::cell_digest) — the
//! splitmix64 digest over every result-determining cell field — the cache
//! stores each cell's JSONL line with its positional `cell` index
//! stripped, so the same simulated cell can be served into *any* job at
//! *any* position by re-stamping the index. Because cell runs are
//! deterministic, a cache hit is byte-identical to a re-simulation.
//!
//! With a backing file the cache is also persistent: every insert appends
//! one `g1 <16-hex-digest> <line-rest>` record (flushed immediately — a
//! killed daemon loses at most the entry being written), and startup
//! replays the file into memory, skipping torn or foreign lines the same
//! way the grid resume scanner does.

use std::collections::HashMap;
use std::fs;
use std::io::{BufWriter, Write as _};
use std::path::Path;

use gncg_suite::scenario::CellResult;

/// On-disk record tag (bumped if the record format ever changes).
const TAG: &str = "g1";

/// A memory (and optionally disk) result cache.
#[derive(Debug, Default)]
pub struct ResultCache {
    map: HashMap<u64, String>,
    file: Option<BufWriter<fs::File>>,
    hits: u64,
    misses: u64,
}

/// Splits a [`CellResult::to_jsonl`] line into its positional prefix and
/// its content rest: `{"cell":17,"host":…}` → rest `,"host":…}`. The rest
/// is what the cache stores.
pub fn line_rest(line: &str) -> Result<&str, String> {
    let comma = line
        .find(',')
        .ok_or_else(|| format!("not a cell line: {line}"))?;
    if !line.starts_with("{\"cell\":") {
        return Err(format!("not a cell line: {line}"));
    }
    Ok(&line[comma..])
}

/// Re-stamps a stored rest with a positional index — the exact inverse of
/// [`line_rest`].
pub fn stamp_line(index: usize, rest: &str) -> String {
    format!("{{\"cell\":{index}{rest}")
}

impl ResultCache {
    /// An in-memory cache.
    pub fn in_memory() -> Self {
        ResultCache::default()
    }

    /// A cache backed by `path`: existing records are replayed into
    /// memory, new inserts are appended.
    pub fn open(path: &Path) -> Result<Self, String> {
        let mut map = HashMap::new();
        match fs::read_to_string(path) {
            Ok(text) => {
                for line in text.lines() {
                    // Torn tail or foreign line: skip, never fail startup.
                    let mut parts = line.splitn(3, ' ');
                    let (tag, digest, rest) = (parts.next(), parts.next(), parts.next());
                    if tag != Some(TAG) {
                        continue;
                    }
                    if let (Some(digest), Some(rest)) = (digest, rest) {
                        if let Ok(d) = u64::from_str_radix(digest, 16) {
                            if rest.starts_with(',') && rest.ends_with('}') {
                                map.insert(d, rest.to_string());
                            }
                        }
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(format!("cannot read cache {}: {e}", path.display())),
        }
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| format!("cannot open cache {}: {e}", path.display()))?;
        Ok(ResultCache {
            map,
            file: Some(BufWriter::new(file)),
            hits: 0,
            misses: 0,
        })
    }

    /// Looks up a digest, counting the hit/miss. A hit returns the stored
    /// line rest (see [`stamp_line`]).
    pub fn lookup(&mut self, digest: u64) -> Option<String> {
        match self.map.get(&digest) {
            Some(rest) => {
                self.hits += 1;
                Some(rest.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a freshly simulated result under `digest` (appending to
    /// the backing file, if any). Re-inserting an existing digest is a
    /// no-op: determinism makes both values byte-identical.
    ///
    /// The memory entry always lands. A disk-append failure (volume
    /// full, file deleted) must not disable caching: it is reported once
    /// and the backing file is dropped — the daemon degrades to a
    /// memory-only cache instead of silently re-simulating everything.
    pub fn insert(&mut self, digest: u64, result: &CellResult) -> Result<(), String> {
        let line = result.to_jsonl();
        let rest = line_rest(&line)?;
        if self.map.contains_key(&digest) {
            return Ok(());
        }
        self.map.insert(digest, rest.to_string());
        if let Some(f) = self.file.as_mut() {
            if let Err(e) = writeln!(f, "{TAG} {digest:016x} {rest}").and_then(|()| f.flush()) {
                eprintln!("gncg_service: cache file append failed ({e}); continuing memory-only");
                self.file = None;
            }
        }
        Ok(())
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lookups served from memory so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that missed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gncg_suite::scenario::{cell_digest, Runner, ScenarioSpec};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("gncg-cache-tests-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn stamp_inverts_rest() {
        let spec = ScenarioSpec::default();
        let cell = &spec.expand()[0];
        let line = Runner::new().run_cell(cell).to_jsonl();
        let rest = line_rest(&line).unwrap();
        assert_eq!(stamp_line(cell.index, rest), line);
        assert!(stamp_line(999, rest).starts_with("{\"cell\":999,"));
    }

    #[test]
    fn memory_cache_hits_after_insert() {
        let spec = ScenarioSpec::default();
        let cell = &spec.expand()[0];
        let result = Runner::new().run_cell(cell);
        let d = cell_digest(cell);
        let mut cache = ResultCache::in_memory();
        assert!(cache.lookup(d).is_none());
        cache.insert(d, &result).unwrap();
        let rest = cache.lookup(d).unwrap();
        assert_eq!(stamp_line(cell.index, &rest), result.to_jsonl());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn disk_cache_survives_reopen_and_skips_torn_tail() {
        let path = tmp("persist.cache");
        let _ = fs::remove_file(&path);
        let spec = ScenarioSpec {
            alphas: vec![0.5, 2.0],
            ..ScenarioSpec::default()
        };
        let cells = spec.expand();
        let mut runner = Runner::new();
        let results: Vec<_> = cells.iter().map(|c| runner.run_cell(c)).collect();
        {
            let mut cache = ResultCache::open(&path).unwrap();
            for (c, r) in cells.iter().zip(&results) {
                cache.insert(cell_digest(c), r).unwrap();
            }
        }
        // Simulate a kill mid-append: add a torn record.
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str("g1 00ff");
        fs::write(&path, &text).unwrap();
        let mut cache = ResultCache::open(&path).unwrap();
        assert_eq!(cache.len(), cells.len());
        for (c, r) in cells.iter().zip(&results) {
            let rest = cache.lookup(cell_digest(c)).expect("replayed entry");
            assert_eq!(stamp_line(c.index, &rest), r.to_jsonl());
        }
    }
}
