//! The content-addressed result cache.
//!
//! Keyed by [`cell_digest`](gncg_suite::scenario::cell_digest) — the
//! splitmix64 digest over every result-determining cell field — the cache
//! stores each cell's JSONL line with its positional `cell` index
//! stripped, so the same simulated cell can be served into *any* job at
//! *any* position by re-stamping the index. Because cell runs are
//! deterministic, a cache hit is byte-identical to a re-simulation.
//!
//! With a backing file the cache is also persistent: every insert appends
//! one `g1 <16-hex-digest> <line-rest>` record (flushed immediately — a
//! killed daemon loses at most the entry being written), and startup
//! replays the file into memory, skipping torn or foreign lines the same
//! way the grid resume scanner does.
//!
//! The memory map is optionally **bounded** (`--cache-max`): when a cap
//! is set, the cache evicts least-recently-used entries (lookup hits and
//! inserts both count as uses) so a long-lived daemon's memory stays
//! bounded. The disk file stays append-only at runtime — evicted records
//! linger there until the next startup, which **compacts** the file:
//! duplicate digests, torn tails, and records beyond the cap (oldest
//! first) are dropped and the survivors are rewritten atomically
//! (temp file + rename) in recency order, so replay re-establishes the
//! LRU order exactly.

use std::collections::{BTreeMap, HashMap};
use std::fs;
use std::io::{BufWriter, Write as _};
use std::path::Path;

use gncg_suite::scenario::CellResult;

/// On-disk record tag (bumped if the record format ever changes).
const TAG: &str = "g1";

/// A cached line rest plus its recency stamp.
#[derive(Debug)]
struct Entry {
    rest: String,
    tick: u64,
}

/// A memory (and optionally disk) result cache, optionally LRU-bounded.
#[derive(Debug, Default)]
pub struct ResultCache {
    map: HashMap<u64, Entry>,
    /// Recency index: tick → digest. Ticks are unique (monotone counter),
    /// so the first entry is always the least recently used.
    recency: BTreeMap<u64, u64>,
    tick: u64,
    /// Maximum entries held in memory (`None` = unbounded).
    max_entries: Option<usize>,
    file: Option<BufWriter<fs::File>>,
    hits: u64,
    misses: u64,
    /// Disk appends that failed (each drops the backing file — see
    /// [`ResultCache::insert`] — so today this is 0 or 1; kept as a
    /// counter so `status` reporting stays stable if that changes).
    append_errors: u64,
}

/// Splits a [`CellResult::to_jsonl`] line into its positional prefix and
/// its content rest: `{"cell":17,"host":…}` → rest `,"host":…}`. The rest
/// is what the cache stores.
pub fn line_rest(line: &str) -> Result<&str, String> {
    let comma = line
        .find(',')
        .ok_or_else(|| format!("not a cell line: {line}"))?;
    if !line.starts_with("{\"cell\":") {
        return Err(format!("not a cell line: {line}"));
    }
    Ok(&line[comma..])
}

/// Re-stamps a stored rest with a positional index — the exact inverse of
/// [`line_rest`].
pub fn stamp_line(index: usize, rest: &str) -> String {
    format!("{{\"cell\":{index}{rest}")
}

impl ResultCache {
    /// An unbounded in-memory cache.
    pub fn in_memory() -> Self {
        ResultCache::default()
    }

    /// An in-memory cache holding at most `max_entries` entries
    /// (least-recently-used evicted first; `None` = unbounded; a cap of
    /// `0` is treated as `1` — the cache always retains the newest
    /// entry, and the CLI rejects `--cache-max 0` outright).
    pub fn in_memory_with(max_entries: Option<usize>) -> Self {
        ResultCache {
            max_entries,
            ..ResultCache::default()
        }
    }

    /// [`ResultCache::open_with`] without a cap.
    pub fn open(path: &Path) -> Result<Self, String> {
        ResultCache::open_with(path, None)
    }

    /// A cache backed by `path`, optionally capped at `max_entries`:
    /// existing records are replayed into memory (file order = recency
    /// order), the cap is applied (oldest evicted), and the file is
    /// **compacted** — duplicate digests, torn/foreign lines, and evicted
    /// records are dropped by atomically rewriting the survivors — before
    /// new inserts start appending.
    pub fn open_with(path: &Path, max_entries: Option<usize>) -> Result<Self, String> {
        let mut cache = ResultCache::in_memory_with(max_entries);
        let mut raw_lines = 0usize;
        match fs::read_to_string(path) {
            Ok(text) => {
                for line in text.lines() {
                    raw_lines += 1;
                    // Torn tail or foreign line: skip, never fail startup.
                    let mut parts = line.splitn(3, ' ');
                    let (tag, digest, rest) = (parts.next(), parts.next(), parts.next());
                    if tag != Some(TAG) {
                        continue;
                    }
                    if let (Some(digest), Some(rest)) = (digest, rest) {
                        if let Ok(d) = u64::from_str_radix(digest, 16) {
                            if rest.starts_with(',') && rest.ends_with('}') {
                                // Replay through the LRU path: a repeated
                                // digest refreshes recency (last write in
                                // the file wins), the cap evicts oldest.
                                cache.store(d, rest.to_string());
                            }
                        }
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(format!("cannot read cache {}: {e}", path.display())),
        }
        // Compact: rewrite only when something would be dropped (dupes,
        // torn lines, evictions) so clean startups touch nothing.
        if cache.map.len() < raw_lines {
            let tmp = path.with_extension("compact.tmp");
            {
                let f = fs::File::create(&tmp)
                    .map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
                let mut w = BufWriter::new(f);
                for digest in cache.recency.values() {
                    let rest = &cache.map[digest].rest;
                    writeln!(w, "{TAG} {digest:016x} {rest}")
                        .map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
                }
                w.flush()
                    .map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
            }
            fs::rename(&tmp, path)
                .map_err(|e| format!("cannot replace cache {}: {e}", path.display()))?;
        }
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| format!("cannot open cache {}: {e}", path.display()))?;
        cache.file = Some(BufWriter::new(file));
        Ok(cache)
    }

    /// Puts `(digest, rest)` into the memory map, refreshing recency and
    /// evicting the least-recently-used entries beyond the cap. Disk is
    /// untouched (callers append/compact as appropriate).
    fn store(&mut self, digest: u64, rest: String) {
        self.tick += 1;
        if let Some(old) = self.map.insert(
            digest,
            Entry {
                rest,
                tick: self.tick,
            },
        ) {
            self.recency.remove(&old.tick);
        }
        self.recency.insert(self.tick, digest);
        if let Some(max) = self.max_entries {
            while self.map.len() > max.max(1) {
                let (_, oldest) = self.recency.pop_first().expect("recency tracks map");
                self.map.remove(&oldest);
            }
        }
    }

    /// Looks up a digest, counting the hit/miss. A hit returns the stored
    /// line rest (see [`stamp_line`]) and refreshes the entry's recency.
    pub fn lookup(&mut self, digest: u64) -> Option<String> {
        match self.map.get_mut(&digest) {
            Some(entry) => {
                self.hits += 1;
                self.tick += 1;
                self.recency.remove(&entry.tick);
                entry.tick = self.tick;
                self.recency.insert(self.tick, digest);
                Some(entry.rest.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a freshly simulated result under `digest` (appending to
    /// the backing file, if any). Re-inserting an existing digest only
    /// refreshes its recency: determinism makes both values
    /// byte-identical.
    ///
    /// The memory entry always lands (evicting the least-recently-used
    /// entry when a cap is set; evicted records stay in the append-only
    /// disk file until the next startup compaction). A disk-append
    /// failure (volume full, file deleted) must not disable caching: it
    /// is reported once and the backing file is dropped — the daemon
    /// degrades to a memory-only cache instead of silently re-simulating
    /// everything.
    pub fn insert(&mut self, digest: u64, result: &CellResult) -> Result<(), String> {
        let line = result.to_jsonl();
        let rest = line_rest(&line)?;
        let fresh = !self.map.contains_key(&digest);
        self.store(digest, rest.to_string());
        if !fresh {
            return Ok(());
        }
        if let Some(f) = self.file.as_mut() {
            let written = crate::failpoint::check("cache.append")
                .and_then(|()| writeln!(f, "{TAG} {digest:016x} {rest}"))
                .and_then(|()| f.flush());
            if let Err(e) = written {
                eprintln!("gncg_service: cache file append failed ({e}); continuing memory-only");
                self.file = None;
                self.append_errors += 1;
            }
        }
        Ok(())
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lookups served from memory so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that missed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Whether the cache lost its backing file to a disk-append failure
    /// and is now serving from memory only (`status` reports this as
    /// `cache_degraded`).
    pub fn degraded(&self) -> bool {
        self.append_errors > 0
    }

    /// Disk-append failures so far.
    pub fn append_errors(&self) -> u64 {
        self.append_errors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gncg_suite::scenario::{cell_digest, Runner, ScenarioSpec};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("gncg-cache-tests-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn stamp_inverts_rest() {
        let spec = ScenarioSpec::default();
        let cell = &spec.expand()[0];
        let line = Runner::new().run_cell(cell).to_jsonl();
        let rest = line_rest(&line).unwrap();
        assert_eq!(stamp_line(cell.index, rest), line);
        assert!(stamp_line(999, rest).starts_with("{\"cell\":999,"));
    }

    #[test]
    fn memory_cache_hits_after_insert() {
        let spec = ScenarioSpec::default();
        let cell = &spec.expand()[0];
        let result = Runner::new().run_cell(cell);
        let d = cell_digest(cell);
        let mut cache = ResultCache::in_memory();
        assert!(cache.lookup(d).is_none());
        cache.insert(d, &result).unwrap();
        let rest = cache.lookup(d).unwrap();
        assert_eq!(stamp_line(cell.index, &rest), result.to_jsonl());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    /// Distinct cells (and their results) from a small grid.
    fn cells_and_results(count: usize) -> Vec<(u64, usize, CellResult)> {
        let spec = ScenarioSpec {
            alphas: vec![0.5, 1.0, 1.5, 2.0],
            seeds: vec![0, 1],
            ..ScenarioSpec::default()
        };
        let cells = spec.expand();
        assert!(cells.len() >= count);
        let mut runner = Runner::new();
        cells[..count]
            .iter()
            .map(|c| (cell_digest(c), c.index, runner.run_cell(c)))
            .collect()
    }

    #[test]
    fn lru_cap_evicts_least_recently_used() {
        let items = cells_and_results(4);
        let mut cache = ResultCache::in_memory_with(Some(3));
        for (d, _, r) in &items[..3] {
            cache.insert(*d, r).unwrap();
        }
        // Touch the oldest entry so the middle one becomes LRU.
        assert!(cache.lookup(items[0].0).is_some());
        cache.insert(items[3].0, &items[3].2).unwrap();
        assert_eq!(cache.len(), 3);
        assert!(cache.lookup(items[1].0).is_none(), "LRU entry evicted");
        assert!(cache.lookup(items[0].0).is_some(), "touched entry survives");
        assert!(cache.lookup(items[2].0).is_some());
        assert!(cache.lookup(items[3].0).is_some());
    }

    #[test]
    fn uncapped_cache_never_evicts() {
        let items = cells_and_results(4);
        let mut cache = ResultCache::in_memory();
        for (d, _, r) in &items {
            cache.insert(*d, r).unwrap();
        }
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn startup_compaction_drops_evicted_duplicate_and_torn_records() {
        let path = tmp("compact.cache");
        let _ = fs::remove_file(&path);
        let items = cells_and_results(4);
        {
            let mut cache = ResultCache::open(&path).unwrap();
            for (d, _, r) in &items {
                cache.insert(*d, r).unwrap();
            }
        }
        // Corrupt the file: duplicate the first record and tear the tail.
        let mut text = fs::read_to_string(&path).unwrap();
        let first = text.lines().next().unwrap().to_string();
        text.push_str(&format!("{first}\ng1 00ff"));
        fs::write(&path, &text).unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap().lines().count(), 6);
        // Reopen capped at 2: items[1] and the re-appended duplicate of
        // items[0] are the most recent records; items[2..] evict... file
        // order is items[0..4] then items[0] again, so survivors are
        // items[3] and items[0] (refreshed by its duplicate).
        let mut cache = ResultCache::open_with(&path, Some(2)).unwrap();
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(items[0].0).is_some());
        assert!(cache.lookup(items[3].0).is_some());
        assert!(cache.lookup(items[1].0).is_none());
        // The file was compacted to exactly the two surviving records.
        let compacted = fs::read_to_string(&path).unwrap();
        assert_eq!(compacted.lines().count(), 2);
        // A further reopen replays the compacted file cleanly and leaves
        // it untouched (nothing to drop).
        let mut again = ResultCache::open_with(&path, Some(2)).unwrap();
        assert_eq!(again.len(), 2);
        assert!(again.lookup(items[0].0).is_some());
        assert_eq!(fs::read_to_string(&path).unwrap(), compacted);
    }

    #[test]
    fn disk_append_failure_degrades_to_memory_only() {
        let path = tmp("degrade.cache");
        let _ = fs::remove_file(&path);
        let items = cells_and_results(2);
        let mut cache = ResultCache::open(&path).unwrap();
        assert!(!cache.degraded());
        crate::failpoint::arm("cache.append", crate::failpoint::Action::Err, 1);
        cache.insert(items[0].0, &items[0].2).unwrap();
        crate::failpoint::disarm("cache.append");
        assert!(cache.degraded());
        assert_eq!(cache.append_errors(), 1);
        // Memory still serves, and later inserts neither write nor
        // re-count.
        assert!(cache.lookup(items[0].0).is_some());
        cache.insert(items[1].0, &items[1].2).unwrap();
        assert_eq!(cache.append_errors(), 1);
        assert_eq!(fs::read_to_string(&path).unwrap(), "");
    }

    #[test]
    fn disk_cache_survives_reopen_and_skips_torn_tail() {
        let path = tmp("persist.cache");
        let _ = fs::remove_file(&path);
        let spec = ScenarioSpec {
            alphas: vec![0.5, 2.0],
            ..ScenarioSpec::default()
        };
        let cells = spec.expand();
        let mut runner = Runner::new();
        let results: Vec<_> = cells.iter().map(|c| runner.run_cell(c)).collect();
        {
            let mut cache = ResultCache::open(&path).unwrap();
            for (c, r) in cells.iter().zip(&results) {
                cache.insert(cell_digest(c), r).unwrap();
            }
        }
        // Simulate a kill mid-append: add a torn record.
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str("g1 00ff");
        fs::write(&path, &text).unwrap();
        let mut cache = ResultCache::open(&path).unwrap();
        assert_eq!(cache.len(), cells.len());
        for (c, r) in cells.iter().zip(&results) {
            let rest = cache.lookup(cell_digest(c)).expect("replayed entry");
            assert_eq!(stamp_line(c.index, &rest), r.to_jsonl());
        }
    }
}
