//! `gncg` — command-line front end for the library and the service.
//!
//! ```text
//! gncg simulate  --host <key> --n <n> --alpha <α> [--seed <s>] [--rule br|greedy|add] [--max-rounds <r>]
//! gncg poa       --host <key> --n <n> --alpha <α> [--seed <s>]
//! gncg opt       --host <key> --n <n> --alpha <α> [--seed <s>]
//! gncg landscape --host <key> --n <n> --alpha <α> [--seed <s>]
//! gncg analyze   --host <key> --n <n> --alpha <α> [--seed <s>]
//! gncg grid      --out <file.jsonl> [--name <s>] [--hosts k1,k2] [--n n1,n2]
//!                [--alpha a1,a2] [--rules r1,r2] [--scheds s1,s2]
//!                [--seeds s1,s2 | --seed-count k] [--max-rounds <r>] [--base-seed <s>]
//!                [--preset swap-heavy|large-n|br-grid] [--certify full|sampled|off] [--horizon]
//!                [--regret-meter] [--checkpoint-every <k>] [--threads <k>]
//! gncg resume    --out <file.jsonl> [--threads <k>]
//! gncg serve     [--addr host:port] [--workers k] [--threads k] [--queue-cap n] [--cache <file>]
//!                [--cache-max <entries>] [--journal <file>] [--read-timeout-ms <ms>] [--write-timeout-ms <ms>]
//! gncg submit    --addr host:port --out <file.jsonl> [grid flags as above]
//!                [--deadline-ms <ms>] [--retries <k>] [--timeout-ms <ms>]
//! gncg tail      --addr host:port --job <id> --out <file.jsonl> [--retries <k>] [--timeout-ms <ms>]
//! gncg ping      [--addr host:port] [--wait-ms <ms>]
//! gncg status    --addr host:port [--job <id>]
//! gncg explore   --addr host:port --job <id> [--cell <c>] [--round <r>] [--diff <r2>]
//! gncg metrics   [--addr host:port]
//! gncg cancel    --addr host:port --job <id>
//! gncg shutdown  --addr host:port [--drain]
//! gncg list-factories
//! ```
//!
//! Host keys come from the `gncg_metrics::factory` registry
//! (`gncg list-factories` prints them). The service commands speak the
//! newline-delimited JSON protocol documented in `gncg_service::protocol`
//! (and README.md); `gncg submit` writes JSONL byte-identical to what the
//! offline `gncg grid` writes for the same spec. Exit codes: `0` success,
//! `1` non-convergence (so dynamics commands are scriptable from CI), `2`
//! invalid arguments, I/O failure, or a daemon-reported error.

use gncg_core::{Game, Profile};
use gncg_dynamics::{DynamicsConfig, ResponseRule, Scheduler};
use gncg_graph::SymMatrix;
use gncg_service::json::Value;
use gncg_service::{Client, RetryPolicy, Server, ServiceConfig};
use gncg_suite::grid::{manifest_path, run_grid, GridSummary};
use gncg_suite::scenario::{CertifyMode, RuleSpec, ScenarioSpec, SchedSpec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage_and_exit();
    }
    let cmd = args[0].clone();
    match cmd.as_str() {
        "list-factories" => list_factories(),
        "grid" => grid_cmd(&args[1..]),
        "resume" => resume_cmd(&args[1..]),
        "serve" => serve_cmd(&args[1..]),
        "submit" => submit_cmd(&args[1..]),
        "tail" => tail_cmd(&args[1..]),
        "ping" => ping_cmd(&args[1..]),
        "status" => status_cmd(&args[1..]),
        "explore" => explore_cmd(&args[1..]),
        "metrics" => metrics_cmd(&args[1..]),
        "cancel" => cancel_cmd(&args[1..]),
        "shutdown" => shutdown_cmd(&args[1..]),
        "simulate" | "poa" | "opt" | "landscape" | "analyze" => {
            let opts = Options::parse(&args[1..]);
            let host = opts.build_host();
            let game = Game::new(host, opts.alpha);
            match cmd.as_str() {
                "simulate" => simulate(&game, &opts),
                "poa" => poa_cmd(&game),
                "opt" => opt_cmd(&game),
                "landscape" => landscape_cmd(&game),
                "analyze" => analyze_cmd(&game, &opts),
                _ => unreachable!(),
            }
        }
        other => {
            eprintln!("unknown command: {other}");
            usage_and_exit();
        }
    }
}

fn invalid(msg: impl std::fmt::Display) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

/// Parses a flag value, exiting 2 with a message instead of panicking.
fn parse_or_exit<T: std::str::FromStr>(value: &str, what: &str) -> T {
    value
        .parse()
        .unwrap_or_else(|_| invalid(format_args!("{what} (got '{value}')")))
}

struct Options {
    host: String,
    n: usize,
    alpha: f64,
    seed: u64,
    rule: ResponseRule,
    max_rounds: usize,
}

impl Options {
    fn parse(args: &[String]) -> Options {
        let mut o = Options {
            host: "r2".into(),
            n: 8,
            alpha: 1.0,
            seed: 42,
            rule: ResponseRule::BestGreedyMove,
            max_rounds: 1_000,
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = || {
                it.next()
                    .unwrap_or_else(|| invalid(format_args!("missing value for {flag}")))
                    .clone()
            };
            match flag.as_str() {
                "--host" => o.host = value(),
                "--n" => o.n = parse_or_exit(&value(), "--n takes an integer"),
                "--alpha" => o.alpha = parse_or_exit(&value(), "--alpha takes a float"),
                "--seed" => o.seed = parse_or_exit(&value(), "--seed takes an integer"),
                "--max-rounds" => {
                    o.max_rounds = parse_or_exit(&value(), "--max-rounds takes an integer")
                }
                "--rule" => {
                    o.rule = RuleSpec::parse(&value())
                        .unwrap_or_else(|e| invalid(e))
                        .rule()
                }
                other => invalid(format_args!("unknown flag: {other}")),
            }
        }
        o
    }

    fn build_host(&self) -> SymMatrix {
        gncg_metrics::factory::build_host(&self.host, self.n, self.seed)
            .unwrap_or_else(|e| invalid(e))
    }
}

fn list_factories() {
    println!("registered host factories (gncg_metrics::factory):");
    for f in gncg_metrics::factory::registry() {
        println!(
            "  {:10} {} [{}]",
            f.key(),
            f.describe(),
            if f.metric() { "metric" } else { "non-metric" }
        );
    }
}

/// Parsed `gncg grid` / `gncg submit` arguments: the spec, the output
/// path, and — for the service-backed `submit` form — the daemon
/// address plus the deadline/retry knobs.
struct GridCli {
    spec: ScenarioSpec,
    out: std::path::PathBuf,
    addr: Option<String>,
    /// `--deadline-ms`: wall-clock budget the daemon enforces on the job.
    deadline_ms: Option<u64>,
    /// `--retries`: additional attempts after a transport failure.
    retries: u32,
    /// `--timeout-ms`: per-read timeout on each attempt's connection.
    timeout_ms: Option<u64>,
    /// `--threads` (local `grid` form only): compute-pool size.
    threads: Option<usize>,
}

/// Applies `--threads` before any parallel work resolves the pool size.
/// Results are bitwise-identical at every thread count, so this is purely
/// a throughput knob; it overrides `GNCG_THREADS`.
fn apply_threads(threads: Option<usize>) {
    if let Some(t) = threads {
        rayon::configure_num_threads(t)
            .unwrap_or_else(|e| invalid(format_args!("cannot apply --threads: {e}")));
    }
}

/// Parses `gncg grid` / `gncg submit` flags (the service-only flags are
/// accepted only when `allow_addr` — the `submit` form).
fn parse_grid_spec(args: &[String], allow_addr: bool) -> GridCli {
    let mut spec = ScenarioSpec::default();
    let mut out: Option<std::path::PathBuf> = None;
    let mut addr: Option<String> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut retries: u32 = 0;
    let mut timeout_ms: Option<u64> = None;
    let mut threads: Option<usize> = None;
    fn split_list<T>(value: &str, parse: impl Fn(&str) -> T) -> Vec<T> {
        value
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|s| parse(s.trim()))
            .collect()
    }
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| invalid(format_args!("missing value for {flag}")))
                .clone()
        };
        match flag.as_str() {
            "--addr" if allow_addr => addr = Some(value()),
            "--deadline-ms" if allow_addr => {
                deadline_ms = Some(parse_or_exit(&value(), "--deadline-ms takes milliseconds"))
            }
            "--retries" if allow_addr => {
                retries = parse_or_exit(&value(), "--retries takes an integer")
            }
            "--timeout-ms" if allow_addr => {
                timeout_ms = Some(parse_or_exit(&value(), "--timeout-ms takes milliseconds"))
            }
            // Local compute only: a submitted grid runs on the daemon,
            // whose pool is sized by `serve --threads`.
            "--threads" if !allow_addr => {
                threads = Some(parse_or_exit(&value(), "--threads takes a thread count"))
            }
            "--out" => out = Some(value().into()),
            "--name" => spec.name = value(),
            "--hosts" => spec.hosts = split_list(&value(), str::to_string),
            "--n" => spec.ns = split_list(&value(), |s| parse_or_exit(s, "--n takes integers")),
            "--alpha" => {
                spec.alphas = split_list(&value(), |s| parse_or_exit(s, "--alpha takes floats"))
            }
            "--rules" => {
                spec.rules = split_list(&value(), |s| {
                    RuleSpec::parse(s).unwrap_or_else(|e| invalid(e))
                })
            }
            "--scheds" => {
                spec.schedulers = split_list(&value(), |s| {
                    SchedSpec::parse(s).unwrap_or_else(|e| invalid(e))
                })
            }
            "--seeds" => {
                spec.seeds = split_list(&value(), |s| parse_or_exit(s, "--seeds takes integers"))
            }
            "--seed-count" => {
                let k: u64 = parse_or_exit(&value(), "--seed-count takes an integer");
                spec.seeds = (0..k).collect();
            }
            "--max-rounds" => {
                spec.max_rounds = parse_or_exit(&value(), "--max-rounds takes an integer")
            }
            "--base-seed" => {
                spec.base_seed = parse_or_exit(&value(), "--base-seed takes an integer")
            }
            // Presets replace the whole spec, so they belong *before* any
            // per-axis override on the command line.
            "--preset" => {
                spec = match value().as_str() {
                    "swap-heavy" => ScenarioSpec::swap_heavy(),
                    "large-n" => ScenarioSpec::large_n(),
                    "br-grid" => ScenarioSpec::br_grid(),
                    other => invalid(format_args!(
                        "unknown preset '{other}' (use swap-heavy|large-n|br-grid)"
                    )),
                }
            }
            "--certify" => {
                spec.certify = CertifyMode::parse(&value()).unwrap_or_else(|e| invalid(e))
            }
            "--horizon" => spec.horizon_pricing = true,
            "--regret-meter" => spec.regret_meter = true,
            "--checkpoint-every" => {
                spec.checkpoint_every =
                    parse_or_exit(&value(), "--checkpoint-every takes a round count")
            }
            other => invalid(format_args!("unknown flag: {other}")),
        }
    }
    let out = out.unwrap_or_else(|| invalid("grid/submit require --out <file.jsonl>"));
    if let Err(e) = spec.validate() {
        invalid(e);
    }
    GridCli {
        spec,
        out,
        addr,
        deadline_ms,
        retries,
        timeout_ms,
        threads,
    }
}

fn print_summary(s: &GridSummary) {
    println!(
        "grid: {} cells ({} resumed from disk, {} run, {} of those converged) in {:.2}s",
        s.total, s.skipped, s.ran, s.converged, s.wall_secs
    );
    println!("results: {}", s.out.display());
    println!("manifest: {}", manifest_path(&s.out).display());
}

fn grid_cmd(args: &[String]) {
    let GridCli {
        spec, out, threads, ..
    } = parse_grid_spec(args, false);
    apply_threads(threads);
    match run_grid(&spec, &out, false) {
        Ok(summary) => print_summary(&summary),
        Err(e) => invalid(e),
    }
}

fn resume_cmd(args: &[String]) {
    let mut out: Option<std::path::PathBuf> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| invalid(format_args!("missing value for {flag}")))
                .clone()
        };
        match flag.as_str() {
            "--out" => out = Some(value().into()),
            "--threads" => apply_threads(Some(parse_or_exit(
                &value(),
                "--threads takes a thread count",
            ))),
            other => invalid(format_args!("unknown flag: {other}")),
        }
    }
    let out = out.unwrap_or_else(|| invalid("resume requires --out <file.jsonl>"));
    let manifest = manifest_path(&out);
    let text = std::fs::read_to_string(&manifest)
        .unwrap_or_else(|e| invalid(format_args!("cannot read {}: {e}", manifest.display())));
    let spec = ScenarioSpec::from_manifest(&text).unwrap_or_else(|e| invalid(e));
    match run_grid(&spec, &out, true) {
        Ok(summary) => print_summary(&summary),
        Err(e) => invalid(e),
    }
}

// ---- service commands ---------------------------------------------------

/// Default daemon address for the service subcommands.
const DEFAULT_ADDR: &str = "127.0.0.1:7421";

/// Parses `--addr`/`--job` style flags shared by the thin service
/// commands (`status`, `cancel`, `shutdown`, `serve` extras).
struct ServiceFlags {
    addr: String,
    job: Option<u64>,
    out: Option<std::path::PathBuf>,
    workers: usize,
    threads: usize,
    queue_cap: usize,
    cache: Option<std::path::PathBuf>,
    cache_max: Option<usize>,
    journal: Option<std::path::PathBuf>,
    read_timeout_ms: u64,
    write_timeout_ms: u64,
    wait_ms: Option<u64>,
    retries: u32,
    timeout_ms: Option<u64>,
    drain: bool,
    cell: Option<u64>,
    round: Option<usize>,
    diff: Option<usize>,
}

impl ServiceFlags {
    /// Parses the flags in `allowed` (every other flag — including the
    /// ones *other* service commands take — exits 2, matching the strict
    /// flag handling of the rest of the CLI).
    fn parse(args: &[String], allowed: &[&str]) -> ServiceFlags {
        let defaults = ServiceConfig::default();
        let mut f = ServiceFlags {
            addr: DEFAULT_ADDR.into(),
            job: None,
            out: None,
            workers: 0,
            threads: 0,
            queue_cap: defaults.queue_cap,
            cache: None,
            cache_max: None,
            journal: None,
            read_timeout_ms: defaults.read_timeout_ms,
            write_timeout_ms: defaults.write_timeout_ms,
            wait_ms: None,
            retries: 0,
            timeout_ms: None,
            drain: false,
            cell: None,
            round: None,
            diff: None,
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = || {
                it.next()
                    .unwrap_or_else(|| invalid(format_args!("missing value for {flag}")))
                    .clone()
            };
            if !allowed.contains(&flag.as_str()) {
                invalid(format_args!("unknown flag: {flag}"));
            }
            match flag.as_str() {
                "--addr" => f.addr = value(),
                "--drain" => f.drain = true,
                "--journal" => f.journal = Some(value().into()),
                "--read-timeout-ms" => {
                    f.read_timeout_ms =
                        parse_or_exit(&value(), "--read-timeout-ms takes milliseconds (0 = none)")
                }
                "--write-timeout-ms" => {
                    f.write_timeout_ms =
                        parse_or_exit(&value(), "--write-timeout-ms takes milliseconds (0 = none)")
                }
                "--wait-ms" => {
                    f.wait_ms = Some(parse_or_exit(&value(), "--wait-ms takes milliseconds"))
                }
                "--retries" => f.retries = parse_or_exit(&value(), "--retries takes an integer"),
                "--timeout-ms" => {
                    f.timeout_ms = Some(parse_or_exit(&value(), "--timeout-ms takes milliseconds"))
                }
                "--job" => f.job = Some(parse_or_exit(&value(), "--job takes an integer")),
                "--cell" => f.cell = Some(parse_or_exit(&value(), "--cell takes a cell index")),
                "--round" => f.round = Some(parse_or_exit(&value(), "--round takes a round")),
                "--diff" => f.diff = Some(parse_or_exit(&value(), "--diff takes a round")),
                "--out" => f.out = Some(value().into()),
                "--workers" => f.workers = parse_or_exit(&value(), "--workers takes an integer"),
                "--threads" => {
                    f.threads = parse_or_exit(&value(), "--threads takes a thread count")
                }
                "--queue-cap" => {
                    f.queue_cap = parse_or_exit(&value(), "--queue-cap takes an integer")
                }
                "--cache" => f.cache = Some(value().into()),
                "--cache-max" => {
                    let max: usize = parse_or_exit(&value(), "--cache-max takes an entry count");
                    if max == 0 {
                        invalid(
                            "--cache-max must be at least 1 (omit the flag for an unbounded cache)",
                        );
                    }
                    f.cache_max = Some(max);
                }
                other => invalid(format_args!("unknown flag: {other}")),
            }
        }
        f
    }
}

fn connect_or_exit(addr: &str) -> Client {
    Client::connect(addr).unwrap_or_else(|e| invalid(e))
}

fn serve_cmd(args: &[String]) {
    let f = ServiceFlags::parse(
        args,
        &[
            "--addr",
            "--workers",
            "--threads",
            "--queue-cap",
            "--cache",
            "--cache-max",
            "--journal",
            "--read-timeout-ms",
            "--write-timeout-ms",
        ],
    );
    let server = Server::start(
        &f.addr,
        ServiceConfig {
            workers: f.workers,
            threads: f.threads,
            queue_cap: f.queue_cap,
            cache_path: f.cache,
            cache_max: f.cache_max,
            journal_path: f.journal,
            read_timeout_ms: f.read_timeout_ms,
            write_timeout_ms: f.write_timeout_ms,
            ..ServiceConfig::default()
        },
    )
    .unwrap_or_else(|e| invalid(e));
    // The "listening" line is the readiness signal scripts wait for.
    println!("gncg_service listening on {}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.wait();
    println!("gncg_service stopped");
}

/// Streams daemon results into `out` **atomically and with retries**:
/// each attempt connects fresh, writes to a sibling `.partial` temp file
/// (truncated per attempt, so a torn earlier attempt never leaks bytes
/// into a later one), and only a fully successful attempt is renamed
/// into place — neither a refused submission nor a mid-stream failure
/// (cancel, daemon crash, network drop) may destroy an existing results
/// file. Shared by the `submit` and `tail` commands so the write and
/// retry disciplines stay single-sourced; exits 2 once the policy is
/// exhausted.
fn stream_results_atomically<T>(
    out: &std::path::Path,
    addr: &str,
    policy: RetryPolicy,
    mut produce: impl FnMut(&mut Client, &mut dyn std::io::Write) -> Result<T, String>,
) -> T {
    let tmp = out.with_extension("jsonl.partial");
    let result = policy.run(addr, |client| {
        use std::io::Write as _;
        // Local filesystem failures are not transport errors: they
        // abort the retry loop immediately.
        let file = std::fs::File::create(&tmp)
            .map_err(|e| format!("cannot create {}: {e}", tmp.display()))?;
        let mut writer = std::io::BufWriter::new(file);
        let value = produce(client, &mut writer)?;
        writer
            .flush()
            .map_err(|e| format!("cannot flush {}: {e}", tmp.display()))?;
        Ok(value)
    });
    match result {
        Ok(value) => {
            std::fs::rename(&tmp, out).unwrap_or_else(|e| {
                invalid(format_args!(
                    "cannot move {} into place: {e}",
                    tmp.display()
                ))
            });
            value
        }
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            invalid(e);
        }
    }
}

fn submit_cmd(args: &[String]) {
    let cli = parse_grid_spec(args, true);
    let addr = cli.addr.clone().unwrap_or_else(|| DEFAULT_ADDR.into());
    let policy = RetryPolicy {
        retries: cli.retries,
        timeout_ms: cli.timeout_ms,
        ..RetryPolicy::default()
    };
    let started = std::time::Instant::now();
    // Submit and stream are retried as one unit: re-submitting after a
    // transport failure is safe because the daemon dedupes every cell by
    // content digest — the retry re-acknowledges (a new job id, the same
    // bytes) instead of re-simulating.
    let (ack, summary) = stream_results_atomically(&cli.out, &addr, policy, |client, w| {
        let ack = client.submit_with_deadline(&cli.spec, cli.deadline_ms)?;
        let summary = client.stream_to(ack.job, w)?;
        Ok((ack, summary))
    });
    println!(
        "submit: job {} on {addr}: {} cells ({} cache hits, {} simulated) in {:.2}s",
        ack.job,
        summary.cells,
        summary.cache_hits,
        summary.simulated,
        started.elapsed().as_secs_f64()
    );
    println!("results: {}", cli.out.display());
}

fn tail_cmd(args: &[String]) {
    let f = ServiceFlags::parse(
        args,
        &["--addr", "--job", "--out", "--retries", "--timeout-ms"],
    );
    let job = f.job.unwrap_or_else(|| invalid("tail requires --job <id>"));
    let out = f
        .out
        .unwrap_or_else(|| invalid("tail requires --out <file.jsonl>"));
    let policy = RetryPolicy {
        retries: f.retries,
        timeout_ms: f.timeout_ms,
        ..RetryPolicy::default()
    };
    let started = std::time::Instant::now();
    // The client re-sorts on receipt, so the renamed file is in cell
    // order, byte-identical to a `stream`. Tail retries reconnect and
    // re-tail from the start — results are immutable once recorded, so
    // a retried tail returns the same bytes (and a journal-replaying
    // daemon keeps the job id across restarts).
    let summary =
        stream_results_atomically(&out, &f.addr, policy, |client, w| client.tail_to(job, w));
    println!(
        "tail: job {job} on {}: {} cells ({} cache hits, {} simulated) in {:.2}s",
        f.addr,
        summary.cells,
        summary.cache_hits,
        summary.simulated,
        started.elapsed().as_secs_f64()
    );
    println!("results: {}", out.display());
}

fn ping_cmd(args: &[String]) {
    let f = ServiceFlags::parse(args, &["--addr", "--wait-ms"]);
    match f.wait_ms {
        // `--wait-ms N`: poll until the daemon answers — the readiness
        // gate scripts use after spawning `serve` instead of sleeping.
        Some(wait_ms) => {
            gncg_service::client::wait_for_daemon(&f.addr, wait_ms).unwrap_or_else(|e| invalid(e))
        }
        None => connect_or_exit(&f.addr)
            .ping()
            .unwrap_or_else(|e| invalid(e)),
    }
    println!("daemon {} is up", f.addr);
}

fn status_cmd(args: &[String]) {
    let f = ServiceFlags::parse(args, &["--addr", "--job"]);
    let mut client = connect_or_exit(&f.addr);
    match f.job {
        Some(job) => {
            let s = client.job_status(job).unwrap_or_else(|e| invalid(e));
            println!(
                "job {}: {} ({}/{} cells, {} cache hits, {} simulated)",
                s.job, s.state, s.done, s.total, s.cache_hits, s.simulated
            );
        }
        None => {
            let s = client.daemon_status().unwrap_or_else(|e| invalid(e));
            // One line on a healthy daemon: uptime, then every job state.
            println!(
                "daemon {}: up {:.1}s{}, {} jobs held ({} queued, {} running), {} done / {} canceled / {} expired since start, cache {} entries ({} hits, {} misses), {} workers",
                f.addr,
                s.uptime_ms as f64 / 1000.0,
                if s.draining { " (draining)" } else { "" },
                s.jobs,
                s.queued,
                s.active.saturating_sub(s.queued),
                s.done,
                s.canceled,
                s.expired,
                s.cache_entries,
                s.cache_hits,
                s.cache_misses,
                s.workers,
            );
            if s.cache_degraded {
                println!(
                    "cache: DEGRADED ({} disk errors, memory-only)",
                    s.cache_errors
                );
            }
            if s.journal_errors > 0 {
                println!(
                    "journal: DEGRADED ({} append errors; accepted jobs no longer crash-durable)",
                    s.journal_errors
                );
            }
        }
    }
}

/// One checkpoint frame parsed back out of a cell's JSONL line. Costs
/// and regrets may be `null` on the wire (infinite while the network is
/// still disconnected); those parse to `f64::INFINITY`.
struct Frame {
    round: usize,
    strategies: Vec<Vec<usize>>,
    costs: Vec<f64>,
    regrets: Vec<f64>,
}

impl Frame {
    fn from_json(v: &Value) -> Option<Frame> {
        let nums = |key: &str| -> Option<Vec<f64>> {
            Some(
                v.get(key)?
                    .as_arr()?
                    .iter()
                    .map(|x| x.as_f64().unwrap_or(f64::INFINITY))
                    .collect(),
            )
        };
        Some(Frame {
            round: v.get("round")?.as_usize()?,
            strategies: v
                .get("strategies")?
                .as_arr()?
                .iter()
                .map(|s| Some(s.as_arr()?.iter().filter_map(Value::as_usize).collect()))
                .collect::<Option<_>>()?,
            costs: nums("costs")?,
            regrets: nums("regrets")?,
        })
    }
}

/// `inf` for absent/non-finite values (JSONL encodes them as `null`).
fn fmt_cost(x: Option<f64>) -> String {
    match x {
        Some(v) if v.is_finite() => format!("{v:.4}"),
        _ => "inf".into(),
    }
}

fn explore_cmd(args: &[String]) {
    let f = ServiceFlags::parse(args, &["--addr", "--job", "--cell", "--round", "--diff"]);
    let job = f
        .job
        .unwrap_or_else(|| invalid("explore requires --job <id>"));
    let cell = f.cell.unwrap_or(0);
    let mut client = connect_or_exit(&f.addr);
    let line = client.explore(job, cell).unwrap_or_else(|e| invalid(e));
    let v = gncg_service::json::parse(&line).unwrap_or_else(|e| {
        invalid(format_args!(
            "daemon returned an unparseable cell line: {e}"
        ))
    });
    let text = |k: &str| v.get(k).and_then(Value::as_str).unwrap_or("?").to_string();
    let num = |k: &str| v.get(k).and_then(Value::as_u64).unwrap_or(0);
    println!(
        "job {job} cell {cell}: {} n={} alpha={} rule={} sched={} seed={} -> {} in {} rounds ({} moves)",
        text("host"),
        num("n"),
        fmt_cost(v.get("alpha").and_then(Value::as_f64)),
        text("rule"),
        text("scheduler"),
        num("seed"),
        text("outcome"),
        num("rounds"),
        num("moves"),
    );
    if let Some(series) = v.get("max_regret").and_then(Value::as_arr) {
        println!(
            "max-regret series: {} rounds metered, final {}",
            series.len(),
            fmt_cost(series.last().and_then(Value::as_f64)),
        );
    }
    let frames: Vec<Frame> = match v.get("checkpoints").and_then(Value::as_arr) {
        Some(arr) => arr.iter().filter_map(Frame::from_json).collect(),
        None => invalid(format_args!(
            "job {job} cell {cell} recorded no checkpoints — submit with --checkpoint-every <k>"
        )),
    };
    let pick = |want: usize| -> &Frame {
        frames
            .iter()
            .find(|fr| fr.round == want)
            .unwrap_or_else(|| {
                let avail: Vec<String> = frames.iter().map(|fr| fr.round.to_string()).collect();
                invalid(format_args!(
                    "no checkpoint at round {want}; available rounds: {}",
                    avail.join(", ")
                ))
            })
    };
    let frame = match f.round {
        Some(r) => pick(r),
        None => frames
            .last()
            .unwrap_or_else(|| invalid("cell recorded an empty checkpoint list")),
    };
    println!(
        "round {} ({} agents, max regret {}):",
        frame.round,
        frame.strategies.len(),
        fmt_cost(Some(frame.regrets.iter().copied().fold(0.0, f64::max))),
    );
    println!("  agent        cost      regret  strategy");
    for (a, s) in frame.strategies.iter().enumerate() {
        println!(
            "  {:>5}  {:>10}  {:>10}  {:?}",
            a,
            fmt_cost(frame.costs.get(a).copied()),
            fmt_cost(frame.regrets.get(a).copied()),
            s,
        );
    }
    if let Some(r2) = f.diff {
        let to = pick(r2);
        println!(
            "strategy diff, round {} -> round {}:",
            frame.round, to.round
        );
        let mut changed = 0;
        for a in 0..frame.strategies.len().min(to.strategies.len()) {
            let before = &frame.strategies[a];
            let after = &to.strategies[a];
            let added: Vec<usize> = after
                .iter()
                .copied()
                .filter(|x| !before.contains(x))
                .collect();
            let dropped: Vec<usize> = before
                .iter()
                .copied()
                .filter(|x| !after.contains(x))
                .collect();
            if added.is_empty() && dropped.is_empty() {
                continue;
            }
            changed += 1;
            println!("  agent {a}: buys {added:?}, drops {dropped:?}");
        }
        if changed == 0 {
            println!("  (no agent changed its strategy)");
        }
    }
}

fn metrics_cmd(args: &[String]) {
    let f = ServiceFlags::parse(args, &["--addr"]);
    let mut client = connect_or_exit(&f.addr);
    let m = client.metrics().unwrap_or_else(|e| invalid(e));
    let num = |k: &str| m.get(k).and_then(Value::as_u64).unwrap_or(0);
    let ratio = |k: &str| m.get(k).and_then(Value::as_f64).unwrap_or(0.0);
    println!(
        "daemon {}: up {:.1}s, {} workers ({:.1}% busy), queue depth {}, {} active jobs",
        f.addr,
        num("uptime_ms") as f64 / 1000.0,
        num("workers"),
        ratio("worker_busy_fraction") * 100.0,
        num("queue_depth"),
        num("active_jobs"),
    );
    println!(
        "work: {} jobs submitted, {} cells simulated, {} cells from cache",
        num("jobs_submitted"),
        num("cells_simulated"),
        num("cells_from_cache"),
    );
    println!(
        "cache: {} entries, {} hits, {} misses (hit ratio {:.2})",
        num("cache_entries"),
        num("cache_hits"),
        num("cache_misses"),
        ratio("cache_hit_ratio"),
    );
    let histogram = |key: &str, label: &str| {
        if let Some(h) = m.get(key) {
            let hnum = |k: &str| h.get(k).and_then(Value::as_u64).unwrap_or(0);
            println!(
                "{label}: {} observed, p50 <= {}us, p99 <= {}us",
                hnum("count"),
                hnum("p50_us"),
                hnum("p99_us"),
            );
        }
    };
    histogram("job_wall_us", "job wall time");
    histogram("journal_fsync_us", "journal fsync");
    println!(
        "warm vectors: peak {} bytes resident per worker engine",
        num("warm_resident_bytes_peak"),
    );
}

fn cancel_cmd(args: &[String]) {
    let f = ServiceFlags::parse(args, &["--addr", "--job"]);
    let job = f
        .job
        .unwrap_or_else(|| invalid("cancel requires --job <id>"));
    let mut client = connect_or_exit(&f.addr);
    let state = client.cancel(job).unwrap_or_else(|e| invalid(e));
    println!("job {job}: {state}");
}

fn shutdown_cmd(args: &[String]) {
    let f = ServiceFlags::parse(args, &["--addr", "--drain"]);
    let mut client = connect_or_exit(&f.addr);
    if f.drain {
        let active = client.shutdown_drain().unwrap_or_else(|e| invalid(e));
        println!(
            "daemon {} draining ({active} active job{} to finish)",
            f.addr,
            if active == 1 { "" } else { "s" }
        );
    } else {
        client.shutdown().unwrap_or_else(|e| invalid(e));
        println!("daemon {} shutting down", f.addr);
    }
}

fn simulate(game: &Game, opts: &Options) {
    let result = gncg_dynamics::run(
        game,
        Profile::star(game.n(), 0),
        &DynamicsConfig {
            rule: opts.rule,
            scheduler: Scheduler::RoundRobin,
            max_rounds: opts.max_rounds,
            ..DynamicsConfig::default()
        },
    );
    println!("outcome: {:?}", result.outcome);
    println!("moves:   {}", result.moves);
    let g = result.profile.build_network(game);
    println!("edges:   {}", g.m());
    println!(
        "diam:    {:.4}",
        gncg_graph::apsp::apsp_parallel(&g).diameter()
    );
    println!(
        "cost:    {:.4}",
        gncg_core::cost::social_cost(game, &result.profile)
    );
    if !result.converged() {
        eprintln!("non-convergence: no equilibrium certified within the round cap");
        std::process::exit(1);
    }
}

fn poa_cmd(game: &Game) {
    let run = gncg_dynamics::run(
        game,
        Profile::star(game.n(), 0),
        &DynamicsConfig {
            rule: ResponseRule::BestGreedyMove,
            scheduler: Scheduler::RoundRobin,
            max_rounds: 1000,
            ..DynamicsConfig::default()
        },
    );
    if !run.converged() {
        eprintln!("dynamics did not converge (no FIP — try another seed)");
        std::process::exit(1);
    }
    let eq = gncg_core::cost::social_cost(game, &run.profile);
    let opt = if game.n() <= 7 {
        gncg_solvers::opt_exact::social_optimum(game).cost
    } else {
        gncg_solvers::opt_heuristic::social_optimum_heuristic(game, 40).cost
    };
    println!("equilibrium cost: {eq:.4}");
    println!(
        "optimum cost:     {opt:.4} ({})",
        if game.n() <= 7 {
            "exact"
        } else {
            "heuristic upper bound"
        }
    );
    println!("ratio:            {:.4}", eq / opt);
    println!(
        "(α+2)/2 bound:    {:.4}",
        gncg_core::poa::metric_upper_bound(game.alpha())
    );
}

fn opt_cmd(game: &Game) {
    if game.n() <= 7 {
        let opt = gncg_solvers::opt_exact::social_optimum(game);
        println!("exact optimum cost: {:.4}", opt.cost);
        println!("edges: {:?}", opt.edges);
    } else {
        let opt = gncg_solvers::opt_heuristic::social_optimum_heuristic(game, 60);
        println!(
            "heuristic optimum cost: {:.4} ({} rounds)",
            opt.cost, opt.rounds
        );
        println!("edges: {:?}", opt.edges);
    }
}

fn landscape_cmd(game: &Game) {
    if game.n() > 6 {
        invalid("landscape enumeration needs --n ≤ 6");
    }
    let land = gncg_solvers::stability::enumerate_equilibria(game);
    let opt = gncg_solvers::opt_exact::social_optimum(game);
    println!("connected networks inspected: {}", land.networks);
    println!("networks admitting a NE:      {}", land.count);
    match (
        land.price_of_stability(opt.cost),
        land.price_of_anarchy(opt.cost),
    ) {
        (Some(pos), Some(poa)) => {
            println!("exact PoS: {pos:.4}");
            println!("exact PoA: {poa:.4}");
            println!(
                "(α+2)/2:   {:.4}",
                gncg_core::poa::metric_upper_bound(game.alpha())
            );
        }
        _ => println!("no pure Nash equilibrium exists on this instance"),
    }
}

fn analyze_cmd(game: &Game, opts: &Options) {
    let run = gncg_dynamics::run(
        game,
        Profile::star(game.n(), 0),
        &DynamicsConfig {
            rule: opts.rule,
            scheduler: Scheduler::RoundRobin,
            max_rounds: opts.max_rounds,
            ..DynamicsConfig::default()
        },
    );
    let report = gncg_core::analysis::analyze(game, &run.profile);
    println!("social cost:      {:.4}", report.social_cost);
    println!("edge-cost share:  {:.4}", report.edge_cost_share());
    println!("free riders:      {}", report.free_riders);
    println!("cost spread:      {:.4}", report.cost_spread);
    println!(
        "biggest builder:  agent {} ({} edges)",
        report.biggest_builder().agent,
        report.biggest_builder().edges_bought
    );
    println!("worst off:        agent {}", report.worst_off().agent);
    println!("\nper-agent:");
    for a in &report.agents {
        println!(
            "  {:>3}: edge {:>9.3}  dist {:>9.3}  total {:>9.3}  bought {:>2}  deg {:>2}",
            a.agent,
            a.cost.edge_cost,
            a.cost.distance_cost,
            a.cost.total(),
            a.edges_bought,
            a.degree
        );
    }
}

fn usage_and_exit() -> ! {
    eprintln!(
        "usage: gncg <simulate|poa|opt|landscape|analyze|grid|resume|serve|submit|tail|status|explore|metrics|cancel|shutdown|list-factories>\n\
         \n\
         instance commands: [--host <key>] [--n N] [--alpha A] [--seed S]\n\
         \x20                  [--rule br|greedy|add] [--max-rounds R]\n\
         grid:  --out results.jsonl [--hosts k1,k2] [--n n1,n2] [--alpha a1,a2]\n\
         \x20      [--rules r1,r2] [--scheds rr,random,maxgain]\n\
         \x20      [--seeds s1,s2 | --seed-count K] [--max-rounds R] [--base-seed S]\n\
         \x20      [--preset swap-heavy|large-n|br-grid] [--certify full|sampled|off] [--horizon]\n\
         \x20      [--regret-meter] [--checkpoint-every K] [--threads K]\n\
         resume: --out results.jsonl [--threads K]   (spec is read back from the manifest)\n\
         \n\
         service (newline-delimited JSON over TCP, see README):\n\
         serve:    [--addr 127.0.0.1:7421] [--workers K] [--threads K] [--queue-cap N]\n\
         \x20         [--cache file] [--cache-max E] [--journal file]\n\
         \x20         [--read-timeout-ms MS] [--write-timeout-ms MS]\n\
         submit:   --addr host:port --out results.jsonl [grid flags]\n\
         \x20         [--deadline-ms MS] [--retries K] [--timeout-ms MS]\n\
         tail:     --addr host:port --job ID --out results.jsonl [--retries K] [--timeout-ms MS]\n\
         ping:     [--addr host:port] [--wait-ms MS]  (poll until the daemon is up)\n\
         status:   --addr host:port [--job ID]\n\
         explore:  --addr host:port --job ID [--cell C] [--round R] [--diff R2]\n\
         \x20         (replay a checkpoint: per-agent cost/regret, strategy diffs)\n\
         metrics:  [--addr host:port]  (runtime counters, gauges, latency histograms)\n\
         cancel:   --addr host:port --job ID\n\
         shutdown: --addr host:port [--drain]  (--drain: finish active jobs first)\n\
         \n\
         host keys: `gncg list-factories`"
    );
    std::process::exit(2);
}
