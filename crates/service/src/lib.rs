//! # gncg-service
//!
//! The batch-experiment service: a hermetic, std-only daemon (TCP +
//! threads, no new dependencies) that accepts, schedules, caches, and
//! streams GNCG scenario-grid jobs, plus the line-protocol client the
//! `gncg` CLI's `serve`/`submit`/`status`/`shutdown` subcommands speak.
//!
//! * [`protocol`] — the newline-delimited JSON wire format (request
//!   grammar, framing, spec serialization),
//! * [`server`] — the daemon: bounded job queue, worker pool of
//!   engine-reusing [`gncg_suite::scenario::Runner`]s (scratch hot across
//!   jobs), ordered streaming,
//! * [`cache`] — the content-addressed result cache (splitmix64 cell
//!   digests → JSONL line rests; memory, optionally disk-backed),
//! * [`journal`] — the job write-ahead log: accepted submits are fsync'd
//!   before acknowledgement and replayed after a crash,
//! * [`client`] — the blocking client, with a retry/backoff layer for
//!   idempotent operations ([`RetryPolicy`]),
//! * [`metrics`] — the zero-dependency runtime metrics registry
//!   (counters, gauges, power-of-two latency histograms) behind the
//!   `metrics` op,
//! * [`failpoint`] — deterministic fault injection for the chaos suite
//!   (compiled to nothing without the `failpoints` feature),
//! * [`json`] — the minimal JSON layer everything above parses with.
//!
//! The determinism contract the whole stack inherits from
//! [`gncg_suite::scenario`]: for the same
//! [`ScenarioSpec`](gncg_suite::scenario::ScenarioSpec), streaming a
//! submitted job
//! yields bytes identical to the offline `gncg grid` file, and
//! re-submitting completes entirely from cache — asserted end-to-end by
//! `tests/loopback.rs`.

pub mod cache;
pub mod client;
pub mod failpoint;
pub mod journal;
pub mod json;
pub mod metrics;
pub mod protocol;
pub mod server;

pub use client::{Client, DaemonStatus, JobStatus, RetryPolicy, StreamSummary, SubmitAck};
pub use server::{Server, ServiceConfig};
