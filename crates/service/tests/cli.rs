//! The `gncg` CLI's contract: grid/resume round trips, scriptable exit
//! codes, and the certify flag (moved here from the repo-level suite when
//! the binary moved into the service crate).

use std::fs;
use std::path::PathBuf;
use std::process::Command;

use gncg_suite::grid::{manifest_path, run_grid};
use gncg_suite::scenario::{CertifyMode, RuleSpec, ScenarioSpec, SchedSpec};

fn tmp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gncg-cli-tests-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn golden_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "golden".into(),
        hosts: vec!["unit".into(), "onetwo".into(), "tree".into(), "r2".into()],
        ns: vec![6],
        alphas: vec![0.5, 2.0],
        rules: vec![RuleSpec::Greedy, RuleSpec::Add],
        schedulers: vec![SchedSpec::RoundRobin, SchedSpec::Random],
        seeds: vec![0, 1],
        max_rounds: 300,
        base_seed: 99,
        certify: CertifyMode::Full,
        ..ScenarioSpec::default()
    }
}

fn gncg() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gncg"))
}

#[test]
fn cli_grid_then_resume_round_trips() {
    let dir = tmp_dir();
    let out = dir.join("cli.jsonl");
    let status = gncg()
        .args([
            "grid",
            "--out",
            out.to_str().unwrap(),
            "--hosts",
            "unit,onetwo",
            "--n",
            "6",
            "--alpha",
            "1.0,2.0",
            "--rules",
            "greedy",
            "--seed-count",
            "2",
            "--max-rounds",
            "200",
        ])
        .status()
        .unwrap();
    assert!(status.success());
    let text = fs::read_to_string(&out).unwrap();
    assert_eq!(text.lines().count(), 8);
    assert!(manifest_path(&out).exists());

    // Truncate to a prefix and resume via the CLI: identical final bytes.
    let cut: usize = text.lines().take(3).map(|l| l.len() + 1).sum();
    fs::OpenOptions::new()
        .write(true)
        .open(&out)
        .and_then(|f| f.set_len(cut as u64))
        .unwrap();
    let status = gncg()
        .args(["resume", "--out", out.to_str().unwrap()])
        .status()
        .unwrap();
    assert!(status.success());
    assert_eq!(fs::read_to_string(&out).unwrap(), text);
}

#[test]
fn cli_certify_flag_lands_in_manifest_and_output() {
    let dir = tmp_dir();
    let full = dir.join("certify-full.jsonl");
    let off = dir.join("certify-off.jsonl");
    for (out, mode) in [(&full, "full"), (&off, "off")] {
        let status = gncg()
            .args([
                "grid",
                "--out",
                out.to_str().unwrap(),
                "--hosts",
                "unit",
                "--n",
                "6",
                "--alpha",
                "2.0",
                "--rules",
                "greedy",
                "--seed-count",
                "1",
                "--max-rounds",
                "200",
                "--certify",
                mode,
            ])
            .status()
            .unwrap();
        assert!(status.success());
        let manifest = fs::read_to_string(manifest_path(out)).unwrap();
        assert!(manifest.contains(&format!("certify={mode}")), "{manifest}");
    }
    let full_text = fs::read_to_string(&full).unwrap();
    let off_text = fs::read_to_string(&off).unwrap();
    assert!(full_text.contains("\"certified\":true"));
    assert!(off_text.contains("\"certified\":false"));
    // The certify axis changes only the certified field.
    assert_eq!(
        full_text.replace("\"certified\":true", "\"certified\":false"),
        off_text
    );
    // An invalid mode is a usage error.
    let out_cmd = gncg()
        .args(["grid", "--out", "/dev/null", "--certify", "bogus"])
        .output()
        .unwrap();
    assert_eq!(out_cmd.status.code(), Some(2));
}

#[test]
fn cli_exit_codes_are_scriptable() {
    // Invalid args → 2.
    for args in [
        vec!["simulate", "--host", "bogus"],
        vec!["simulate", "--n", "not-a-number"],
        vec!["simulate", "--unknown-flag"],
        vec!["frobnicate"],
        vec!["grid", "--hosts", "unit"], // missing --out
        vec!["grid", "--out", "x.jsonl", "--addr", "127.0.0.1:1"], // --addr is submit-only
        vec!["submit", "--out", "x.jsonl", "--addr", "127.0.0.1:1"], // nothing listening
        vec!["status", "--addr", "127.0.0.1:1"], // nothing listening
        vec!["cancel", "--addr", "127.0.0.1:1"], // missing --job (checked first)
        vec!["tail", "--addr", "127.0.0.1:1", "--out", "x.jsonl"], // missing --job
        vec!["tail", "--addr", "127.0.0.1:1", "--job", "1"], // missing --out
        vec![],
    ] {
        let out = gncg().args(&args).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
    }
    // Non-convergence → 1 (α < 1 unit dynamics cannot finish in 1 round).
    let out = gncg()
        .args([
            "simulate",
            "--host",
            "unit",
            "--n",
            "6",
            "--alpha",
            "0.4",
            "--max-rounds",
            "1",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    // Convergence → 0.
    let out = gncg()
        .args(["simulate", "--host", "unit", "--n", "6", "--alpha", "2.0"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    // list-factories prints every registry key.
    let out = gncg().arg("list-factories").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for key in gncg_metrics::factory::keys() {
        assert!(text.contains(key), "missing factory {key}");
    }
}

#[test]
fn cli_tail_writes_cell_ordered_bytes() {
    // `gncg tail` against a live daemon: the re-sorted file must equal
    // the offline grid bytes for the same spec.
    use gncg_service::{Client, Server, ServiceConfig};
    let dir = tmp_dir();
    let spec = golden_spec();
    let offline = dir.join("tail-offline.jsonl");
    run_grid(&spec, &offline, false).unwrap();

    let server = Server::start(
        "127.0.0.1:0",
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    let ack = client.submit(&spec).unwrap();

    let out = dir.join("tail-cli.jsonl");
    let _ = fs::remove_file(&out);
    let run = gncg()
        .args([
            "tail",
            "--addr",
            &addr,
            "--job",
            &ack.job.to_string(),
            "--out",
            out.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(run.status.success(), "{run:?}");
    assert_eq!(
        fs::read_to_string(&out).unwrap(),
        fs::read_to_string(&offline).unwrap(),
        "tailed bytes must equal the offline grid file after re-sorting"
    );

    client.shutdown().unwrap();
    server.wait();
}

#[test]
fn cli_resume_refuses_broken_manifest() {
    // The CLI rebuilds the spec from the manifest, so a *valid* edited
    // manifest is (by construction) self-consistent; the mismatch guard
    // for explicit specs is covered at the library level. What the CLI
    // must catch is an unparsable or missing manifest: exit 2.
    let dir = tmp_dir();
    let out = dir.join("foreign.jsonl");
    run_grid(&golden_spec(), &out, false).unwrap();
    let manifest = manifest_path(&out);
    let mut text = fs::read_to_string(&manifest).unwrap();
    text = text.replace("max_rounds=", "max_rounds=not-a-number; was ");
    fs::write(&manifest, text).unwrap();
    let out_cmd = gncg()
        .args(["resume", "--out", out.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out_cmd.status.code(), Some(2));

    let missing = dir.join("never-ran.jsonl");
    let out_cmd = gncg()
        .args(["resume", "--out", missing.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out_cmd.status.code(), Some(2));
}
