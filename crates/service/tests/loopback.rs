//! Loopback integration tests: a real daemon on an ephemeral port, real
//! protocol clients, and the two determinism guarantees the service
//! inherits from the scenario pipeline —
//!
//! 1. streaming a submitted grid is **byte-identical** to the offline
//!    `gncg grid` JSONL file for the same spec, and
//! 2. re-submitting the same grid completes entirely from the result
//!    cache (zero new cells simulated) with, again, identical bytes.

use std::fs;
use std::path::PathBuf;

use gncg_service::{Client, Server, ServiceConfig};
use gncg_suite::grid::run_grid;
use gncg_suite::scenario::{CertifyMode, RuleSpec, ScenarioSpec, SchedSpec};

fn tmp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gncg-loopback-tests-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "loopback".into(),
        hosts: vec!["unit".into(), "onetwo".into(), "r2".into()],
        ns: vec![5, 6],
        alphas: vec![0.5, 2.0],
        rules: vec![RuleSpec::Greedy],
        schedulers: vec![SchedSpec::RoundRobin, SchedSpec::Random],
        seeds: vec![0, 1],
        max_rounds: 200,
        base_seed: 11,
        certify: CertifyMode::Full,
        ..ScenarioSpec::default()
    }
}

fn start_server(cfg: ServiceConfig) -> (Server, String) {
    let server = Server::start("127.0.0.1:0", cfg).expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    (server, addr)
}

#[test]
fn submit_matches_offline_grid_and_resubmit_is_all_cache_hits() {
    let (server, addr) = start_server(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    let s = spec();
    let total = s.cell_count();
    assert!(total >= 48, "spec must be a real grid, got {total}");

    // Offline reference bytes.
    let offline = tmp_dir().join("offline.jsonl");
    run_grid(&s, &offline, false).unwrap();
    let reference = fs::read_to_string(&offline).unwrap();

    // First submission: everything is simulated, bytes match offline.
    let mut client = Client::connect(&addr).unwrap();
    let mut first = Vec::new();
    let (ack1, sum1) = client.submit_and_stream(&s, &mut first).unwrap();
    assert_eq!(ack1.cells, total);
    assert_eq!(sum1.cells, total);
    assert_eq!(sum1.cache_hits + sum1.simulated, total);
    assert_eq!(sum1.simulated, total, "cold cache simulates every cell");
    assert_eq!(
        String::from_utf8(first).unwrap(),
        reference,
        "streamed bytes must equal the offline grid file"
    );

    // Second submission (fresh connection): 100% cache hits, same bytes.
    let mut client2 = Client::connect(&addr).unwrap();
    let mut second = Vec::new();
    let (ack2, sum2) = client2.submit_and_stream(&s, &mut second).unwrap();
    assert_ne!(ack2.job, ack1.job);
    assert_eq!(sum2.cache_hits, total, "warm cache serves every cell");
    assert_eq!(sum2.simulated, 0, "no new cells simulated on re-submission");
    assert_eq!(String::from_utf8(second).unwrap(), reference);

    // Job status agrees with the stream summaries.
    let st = client.job_status(ack2.job).unwrap();
    assert_eq!(st.state, "done");
    assert_eq!((st.done, st.total), (total, total));
    assert_eq!((st.cache_hits, st.simulated), (total, 0));

    client.shutdown().unwrap();
    server.wait();
}

#[test]
fn tail_resorts_to_stream_identical_bytes() {
    let (server, addr) = start_server(ServiceConfig {
        workers: 4,
        ..ServiceConfig::default()
    });
    let s = spec();
    let total = s.cell_count();

    // Offline reference bytes.
    let offline = tmp_dir().join("tail-offline.jsonl");
    run_grid(&s, &offline, false).unwrap();
    let reference = fs::read_to_string(&offline).unwrap();

    // Tail a job submitted moments earlier: lines arrive as workers
    // finish them (any order), the client re-sorts — final bytes equal
    // the in-order stream's, which equal the offline grid file's.
    let mut client = Client::connect(&addr).unwrap();
    let ack = client.submit(&s).unwrap();
    let mut tailed = Vec::new();
    let sum = client.tail_to(ack.job, &mut tailed).unwrap();
    assert_eq!(sum.cells, total);
    assert_eq!(sum.cache_hits + sum.simulated, total);
    assert_eq!(String::from_utf8(tailed).unwrap(), reference);

    // Tailing the finished job again replays every line (already landed,
    // one burst) with identical bytes; so does a plain stream.
    let mut again = Vec::new();
    client.tail_to(ack.job, &mut again).unwrap();
    assert_eq!(String::from_utf8(again).unwrap(), reference);
    let mut streamed = Vec::new();
    client.stream_to(ack.job, &mut streamed).unwrap();
    assert_eq!(String::from_utf8(streamed).unwrap(), reference);

    // Unknown jobs get a clean protocol error.
    let mut sink = Vec::new();
    assert!(client.tail_to(999, &mut sink).is_err());

    client.shutdown().unwrap();
    server.wait();
}

#[test]
fn cache_counters_accumulate_for_the_daemon_lifetime() {
    let (server, addr) = start_server(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    let mut client = Client::connect(&addr).unwrap();
    let small = ScenarioSpec {
        hosts: vec!["unit".into()],
        ns: vec![5],
        alphas: vec![0.5, 2.0],
        schedulers: vec![SchedSpec::RoundRobin],
        seeds: vec![0, 1],
        ..spec()
    };
    let total = small.cell_count();

    // Cold daemon: every lookup misses.
    let mut sink = Vec::new();
    client.submit_and_stream(&small, &mut sink).unwrap();
    let st1 = client.daemon_status().unwrap();
    assert_eq!(st1.cache_hits, 0, "cold cache cannot hit");
    assert_eq!(st1.cache_misses, total as u64);
    assert_eq!(st1.cache_entries, total);

    // Re-submission: the same lookups now hit; both counters keep
    // accumulating across jobs — they are daemon-lifetime, not per-job.
    let mut sink = Vec::new();
    client.submit_and_stream(&small, &mut sink).unwrap();
    let st2 = client.daemon_status().unwrap();
    assert_eq!(st2.cache_hits, total as u64);
    assert_eq!(st2.cache_misses, total as u64, "misses never reset");

    client.shutdown().unwrap();
    server.wait();
}

#[test]
fn overlapping_grids_share_the_cache() {
    let (server, addr) = start_server(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    let mut client = Client::connect(&addr).unwrap();
    let small = ScenarioSpec {
        alphas: vec![2.0],
        seeds: vec![0, 1],
        ..spec()
    };
    let mut sink = Vec::new();
    let (_, cold) = client.submit_and_stream(&small, &mut sink).unwrap();
    assert_eq!(cold.simulated, small.cell_count());

    // A superset grid: the α=2.0 half is already cached; only the α=0.5
    // half is new work. (Cell seeds are index-based, so the shared cells
    // must occupy the same expansion positions for digests to coincide —
    // they do here because α is the innermost *shared* axis prefix.)
    let sup = ScenarioSpec {
        alphas: vec![2.0],
        seeds: vec![0, 1, 2, 3],
        ..spec()
    };
    let mut sink2 = Vec::new();
    let (_, warm) = client.submit_and_stream(&sup, &mut sink2).unwrap();
    assert_eq!(warm.cells, sup.cell_count());
    assert!(
        warm.cache_hits > 0,
        "expansion-aligned cells must be served from cache"
    );
    assert!(warm.simulated < sup.cell_count());

    client.shutdown().unwrap();
    server.wait();
}

#[test]
fn disk_cache_persists_across_daemon_restarts() {
    let cache = tmp_dir().join("daemon.cache");
    let _ = fs::remove_file(&cache);
    let s = spec();
    let total = s.cell_count();

    let (server, addr) = start_server(ServiceConfig {
        workers: 2,
        cache_path: Some(cache.clone()),
        ..ServiceConfig::default()
    });
    let mut client = Client::connect(&addr).unwrap();
    let mut first = Vec::new();
    let (_, sum) = client.submit_and_stream(&s, &mut first).unwrap();
    assert_eq!(sum.simulated, total);
    client.shutdown().unwrap();
    server.wait();

    // A fresh daemon over the same cache file serves everything from disk.
    let (server, addr) = start_server(ServiceConfig {
        workers: 2,
        cache_path: Some(cache),
        ..ServiceConfig::default()
    });
    let mut client = Client::connect(&addr).unwrap();
    let mut second = Vec::new();
    let (_, sum) = client.submit_and_stream(&s, &mut second).unwrap();
    assert_eq!(sum.simulated, 0, "restarted daemon reuses the disk cache");
    assert_eq!(sum.cache_hits, total);
    assert_eq!(first, second);
    client.shutdown().unwrap();
    server.wait();
}

#[test]
fn oversized_grids_are_refused_before_expansion() {
    let (server, addr) = start_server(ServiceConfig {
        workers: 1,
        max_job_cells: 4,
        ..ServiceConfig::default()
    });
    let mut client = Client::connect(&addr).unwrap();
    let err = client.submit(&spec()).unwrap_err();
    assert!(err.contains("too large"), "{err}");
    // In-cap submissions still work on the same daemon.
    let small = ScenarioSpec {
        hosts: vec!["unit".into()],
        ns: vec![5],
        alphas: vec![2.0],
        schedulers: vec![SchedSpec::RoundRobin],
        seeds: vec![0],
        ..spec()
    };
    let mut sink = Vec::new();
    let (_, sum) = client.submit_and_stream(&small, &mut sink).unwrap();
    assert_eq!(sum.cells, small.cell_count());
    client.shutdown().unwrap();
    server.wait();
}

#[test]
fn queue_cap_refuses_excess_jobs() {
    let (server, addr) = start_server(ServiceConfig {
        workers: 1,
        queue_cap: 0,
        ..ServiceConfig::default()
    });
    let mut client = Client::connect(&addr).unwrap();
    let err = client.submit(&spec()).unwrap_err();
    assert!(err.contains("queue full"), "{err}");
    client.shutdown().unwrap();
    server.wait();
}

#[test]
fn oversized_request_lines_are_rejected_not_buffered() {
    use std::io::{BufRead as _, BufReader, Write as _};
    let (server, addr) = start_server(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    // A raw connection spewing >1 MiB with no newline must get an error
    // line back (not an unbounded buffer), and the daemon must survive.
    let mut raw = std::net::TcpStream::connect(&addr).unwrap();
    let chunk = vec![b'x'; 1 << 16];
    for _ in 0..20 {
        // 20 × 64 KiB > 1 MiB
        if raw.write_all(&chunk).is_err() {
            break; // server already hung up on us — also acceptable
        }
    }
    let _ = raw.flush();
    let mut reply = String::new();
    let _ = BufReader::new(&raw).read_line(&mut reply);
    if !reply.is_empty() {
        assert!(reply.contains("too long"), "{reply}");
    }
    drop(raw);
    // The daemon still serves well-formed clients afterwards.
    let mut client = Client::connect(&addr).unwrap();
    client.ping().unwrap();
    client.shutdown().unwrap();
    server.wait();
}

#[test]
fn status_cancel_and_errors_speak_the_protocol() {
    let (server, addr) = start_server(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let mut client = Client::connect(&addr).unwrap();
    client.ping().unwrap();

    // Unknown job: clean protocol errors, connection stays usable.
    assert!(client.job_status(999).is_err());
    assert!(client.cancel(999).is_err());
    let mut sink = Vec::new();
    assert!(client.stream_to(999, &mut sink).is_err());
    client.ping().unwrap();

    // Submit, let it finish, then cancel: terminal states are no-ops.
    let small = ScenarioSpec {
        hosts: vec!["unit".into()],
        ns: vec![5],
        alphas: vec![2.0],
        seeds: vec![0],
        ..spec()
    };
    let ack = client.submit(&small).unwrap();
    let mut sink = Vec::new();
    client.stream_to(ack.job, &mut sink).unwrap();
    assert_eq!(client.cancel(ack.job).unwrap(), "done");

    // Daemon-wide status reflects the work.
    let st = client.daemon_status().unwrap();
    assert_eq!(st.workers, 1);
    assert!(st.done >= 1);
    assert!(st.cache_entries >= 1);

    client.shutdown().unwrap();
    server.wait();

    // After shutdown the port no longer accepts work.
    assert!(
        Client::connect(&addr).and_then(|mut c| c.ping()).is_err(),
        "daemon must be gone after shutdown"
    );
}
