//! Chaos suite: crash, fault, and timeout scenarios for the daemon.
//!
//! Each test drives a *specific* failure — a `kill -9` mid-job, a torn
//! journal tail, a failing disk append, a dying stream reader, a
//! half-open connection, an expired deadline — and asserts the two
//! recovery guarantees the service makes:
//!
//! 1. **No lies**: failures surface as clean `{"ok":false,...}` error
//!    frames or tagged `transport:` errors, never hangs or torn output
//!    files.
//! 2. **No drift**: whatever survives (journal replay, cache, retried
//!    tails) reproduces the *byte-identical* JSONL an offline
//!    `gncg grid` run would have produced.
//!
//! Tests that arm fault-injection sites need the library built with
//! `--features failpoints` (the registry is process-global, so every
//! test here serializes on [`fp_lock`] to keep armed sites from leaking
//! across concurrently running tests).

use std::fs;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use gncg_service::{Client, Server, ServiceConfig};
use gncg_suite::grid::run_grid;
use gncg_suite::scenario::{CertifyMode, RuleSpec, ScenarioSpec, SchedSpec};

/// Serializes every chaos test: the failpoint registry is one global
/// table, so a site armed by one test must never fire inside another
/// test's daemon.
fn fp_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poison| poison.into_inner())
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gncg-chaos-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "chaos".into(),
        hosts: vec!["unit".into(), "onetwo".into()],
        ns: vec![5, 6],
        alphas: vec![0.5, 2.0],
        rules: vec![RuleSpec::Greedy],
        schedulers: vec![SchedSpec::RoundRobin],
        seeds: vec![0, 1],
        max_rounds: 200,
        base_seed: 7,
        certify: CertifyMode::Full,
        ..ScenarioSpec::default()
    }
}

fn offline_reference(dir: &Path, s: &ScenarioSpec) -> String {
    let path = dir.join("offline.jsonl");
    run_grid(s, &path, false).unwrap();
    fs::read_to_string(&path).unwrap()
}

fn start(cfg: ServiceConfig) -> (Server, String) {
    let server = Server::start("127.0.0.1:0", cfg).expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    (server, addr)
}

/// A queued job whose deadline has already passed is expired — the
/// stream returns one clean error frame naming the deadline, the
/// daemon counts it, and the daemon stays fully healthy.
#[test]
fn deadline_expiry_is_a_clean_error_frame_not_a_hang() {
    let _g = fp_lock();
    let (server, addr) = start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });

    let mut client = Client::connect(&addr).unwrap();
    // Occupy the single worker so the deadline job cannot start
    // instantly, then submit with an already-elapsed deadline.
    let blocker = client.submit(&spec()).unwrap();
    let mut doomed = spec();
    doomed.base_seed = 8; // distinct digests: no cache short-circuit
    let ack = client.submit_with_deadline(&doomed, Some(0)).unwrap();

    let mut sink = Vec::new();
    let err = client
        .stream_to(ack.job, &mut sink)
        .expect_err("expired job must not stream");
    assert!(
        err.contains("deadline"),
        "error frame should name the deadline, got: {err}"
    );
    assert!(
        sink.is_empty(),
        "no cell bytes may precede the error frame for a never-started job"
    );

    // The daemon is healthy: the blocker still finishes and status
    // reports exactly one expiry.
    let mut client2 = Client::connect(&addr).unwrap();
    let mut out = Vec::new();
    let sum = client2.tail_to(blocker.job, &mut out).unwrap();
    assert_eq!(sum.cells, spec().cell_count());
    let status = client2.daemon_status().unwrap();
    assert_eq!(status.expired, 1);
    assert!(!status.draining);
    server.shutdown();
}

/// A journal whose tail was torn mid-write (crash during append) is
/// replayed up to the last intact record; the torn bytes are discarded
/// by startup compaction and the daemon serves correct results.
#[test]
fn torn_journal_tail_is_skipped_and_compacted_away() {
    let _g = fp_lock();
    let dir = tmp_dir("torn");
    let journal = dir.join("jobs.journal");
    let reference = offline_reference(&dir, &spec());

    // Season the journal with one completed job, then shut down.
    {
        let (server, addr) = start(ServiceConfig {
            workers: 2,
            journal_path: Some(journal.clone()),
            ..ServiceConfig::default()
        });
        let mut client = Client::connect(&addr).unwrap();
        let (_, sum) = client.submit_and_stream(&spec(), &mut Vec::new()).unwrap();
        assert_eq!(sum.cells, spec().cell_count());
        server.shutdown();
    }

    // Tear the tail: a record cut off mid-spec, missing the " ;" marker
    // — exactly what a crash mid-append leaves behind.
    let mut torn = fs::read_to_string(&journal).unwrap();
    torn.push_str("jl1 submit 99 - {\"name\":\"half-writ");
    fs::write(&journal, torn).unwrap();

    // Restart: the torn record is ignored (job 99 never existed), fresh
    // submissions work, and compaction rewrote the file without it.
    let (server, addr) = start(ServiceConfig {
        workers: 2,
        journal_path: Some(journal.clone()),
        ..ServiceConfig::default()
    });
    let mut client = Client::connect(&addr).unwrap();
    let mut bytes = Vec::new();
    let (ack, sum) = client.submit_and_stream(&spec(), &mut bytes).unwrap();
    assert!(ack.job < 99, "torn submit must not advance the job counter");
    assert_eq!(sum.cells, spec().cell_count());
    assert_eq!(String::from_utf8(bytes).unwrap(), reference);
    assert!(
        !fs::read_to_string(&journal).unwrap().contains("half-writ"),
        "startup compaction must drop the torn tail"
    );
    server.shutdown();
}

/// A half-open connection (peer sent part of a line and went silent) is
/// dropped by the server's read timeout instead of pinning a handler
/// thread forever.
#[test]
fn half_open_connection_is_dropped_by_read_timeout() {
    let _g = fp_lock();
    let (server, addr) = start(ServiceConfig {
        workers: 1,
        read_timeout_ms: 200,
        ..ServiceConfig::default()
    });

    let mut stale = TcpStream::connect(&addr).unwrap();
    stale.write_all(b"{\"op\":\"stat").unwrap(); // never finishes the line
    stale
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let started = Instant::now();
    let mut buf = [0u8; 64];
    // The server hangs up on us (EOF) or resets; either way the read
    // resolves long before our own 5 s guard.
    let dropped = matches!(stale.read(&mut buf), Ok(0) | Err(_));
    assert!(dropped, "server must drop the half-open connection");
    assert!(
        started.elapsed() < Duration::from_secs(4),
        "drop must come from the server's read timeout, not our guard"
    );

    // The accept loop is unharmed.
    let mut client = Client::connect(&addr).unwrap();
    client.ping().unwrap();
    server.shutdown();
}

#[cfg(feature = "failpoints")]
mod failpoints {
    use super::*;
    use gncg_service::failpoint;
    use gncg_service::{client::wait_for_daemon, RetryPolicy};
    use std::process::{Child, Command, Stdio};

    /// Resets the global failpoint table on drop so a panicking test
    /// cannot leave sites armed for the next one.
    struct FpReset;
    impl Drop for FpReset {
        fn drop(&mut self) {
            failpoint::reset();
        }
    }

    /// Spawns `gncg serve` with the given extra args and environment,
    /// returning the child and the address it bound (parsed from the
    /// readiness line on stdout, which is redirected to `log`).
    fn spawn_serve(dir: &Path, tag: &str, args: &[&str], env: &[(&str, &str)]) -> (Child, String) {
        let log = dir.join(format!("{tag}.log"));
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_gncg"));
        cmd.arg("serve")
            .args(["--addr", "127.0.0.1:0"])
            .args(args)
            .stdout(Stdio::from(fs::File::create(&log).unwrap()))
            .stderr(Stdio::from(
                fs::File::create(dir.join(format!("{tag}.err"))).unwrap(),
            ));
        for (k, v) in env {
            cmd.env(k, v);
        }
        let child = cmd.spawn().unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if let Ok(text) = fs::read_to_string(&log) {
                if let Some(line) = text.lines().find(|l| l.contains("listening on ")) {
                    let addr = line.rsplit("listening on ").next().unwrap().trim();
                    return (child, addr.to_string());
                }
            }
            assert!(Instant::now() < deadline, "daemon never became ready");
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// The flagship crash drill: a daemon is killed (process abort, the
    /// deterministic `kill -9`) partway through simulating a journaled
    /// job. A restarted daemon replays the journal, re-runs the job
    /// under its original id, and a retried tail produces bytes
    /// identical to the offline grid.
    #[test]
    fn kill_nine_mid_job_replays_journal_and_completes_identically() {
        let _g = fp_lock();
        let dir = tmp_dir("kill9");
        let reference = offline_reference(&dir, &spec());
        let journal = dir.join("jobs.journal");
        let cache = dir.join("results.cache");
        let svc_args = [
            "--workers",
            "1",
            "--journal",
            journal.to_str().unwrap(),
            "--cache",
            cache.to_str().unwrap(),
        ];

        // First incarnation dies at its 3rd simulated cell.
        let (mut child, addr) = spawn_serve(
            &dir,
            "first",
            &svc_args,
            &[("GNCG_FAILPOINTS", "worker.cell=abort@3")],
        );
        wait_for_daemon(&addr, 5_000).unwrap();
        let mut client = Client::connect(&addr).unwrap();
        // With one worker and microsecond cells, the abort can outrun
        // the submit ack's flush: the job is journaled and enqueued
        // before the ack is written (worker.cell only fires on enqueued
        // work), so a transport error here still means the job — the
        // first on a fresh journal, id 1 — is safely on disk.
        let job = match client.submit(&spec()) {
            Ok(ack) => {
                let err = client
                    .stream_to(ack.job, &mut Vec::new())
                    .expect_err("daemon aborts mid-job");
                assert!(
                    gncg_service::client::is_transport_error(&err),
                    "a dead daemon is a transport error, got: {err}"
                );
                ack.job
            }
            Err(err) => {
                assert!(
                    gncg_service::client::is_transport_error(&err),
                    "a dead daemon is a transport error, got: {err}"
                );
                // The abort failpoint only fires on enqueued work, which
                // is journaled before the ack — so a submit that died
                // mid-transport must still have put job 1 on disk. Check
                // that here: if the transport error instead came from a
                // connect/write failure before the daemon journaled, the
                // tail below would fail with an unrelated "unknown job"
                // error instead of naming the broken invariant.
                let text = std::fs::read_to_string(&journal).unwrap_or_default();
                assert!(
                    text.lines().any(|l| l.starts_with("jl1 submit 1 ")),
                    "submit died before job 1 was journaled — the \
                     journal-before-ack invariant is broken; journal: {text:?}"
                );
                1
            }
        };
        let _ = child.wait(); // aborted itself

        // Second incarnation: replay from the journal, no faults.
        let (mut child2, addr2) = spawn_serve(&dir, "second", &svc_args, &[]);
        wait_for_daemon(&addr2, 5_000).unwrap();
        let mut client2 = Client::connect(&addr2).unwrap();
        let mut bytes = Vec::new();
        let sum = client2
            .tail_to(job, &mut bytes)
            .expect("replayed job keeps its original id");
        assert_eq!(sum.cells, spec().cell_count());
        assert_eq!(
            String::from_utf8(bytes).unwrap(),
            reference,
            "post-crash tail must be byte-identical to the offline grid"
        );
        assert!(
            sum.cache_hits >= 2,
            "cells simulated before the crash come back as cache hits, got {}",
            sum.cache_hits
        );
        let status = client2.daemon_status().unwrap();
        assert_eq!(status.done, 1);
        client2.shutdown().unwrap();
        let _ = child2.wait();
    }

    /// Disk appends failing under the daemon (full disk, yanked volume)
    /// degrade the cache and journal to memory-only operation: results
    /// stay correct, and `status` surfaces the degradation.
    #[test]
    fn disk_append_failure_degrades_and_is_surfaced_in_status() {
        let _g = fp_lock();
        let _r = FpReset;
        let dir = tmp_dir("degrade");
        let reference = offline_reference(&dir, &spec());
        let (server, addr) = start(ServiceConfig {
            workers: 2,
            cache_path: Some(dir.join("results.cache")),
            journal_path: Some(dir.join("jobs.journal")),
            ..ServiceConfig::default()
        });

        failpoint::arm("cache.append", failpoint::Action::Err, 1);
        failpoint::arm("journal.append", failpoint::Action::Err, 1);
        let mut client = Client::connect(&addr).unwrap();
        let mut bytes = Vec::new();
        let (_, sum) = client.submit_and_stream(&spec(), &mut bytes).unwrap();
        assert_eq!(sum.cells, spec().cell_count());
        assert_eq!(String::from_utf8(bytes).unwrap(), reference);

        let status = client.daemon_status().unwrap();
        assert!(status.cache_degraded, "cache must report degradation");
        assert_eq!(status.cache_errors, 1);
        assert_eq!(status.journal_errors, 1);

        // Memory-side caching still works: a resubmit is all hits.
        let mut again = Vec::new();
        let (_, sum2) = client.submit_and_stream(&spec(), &mut again).unwrap();
        assert_eq!(sum2.cache_hits, spec().cell_count());
        assert_eq!(String::from_utf8(again).unwrap(), reference);
        server.shutdown();
    }

    /// `shutdown --drain` lets active jobs finish (the daemon exits
    /// only once they have) while refusing anything new. A delay
    /// failpoint pins the worker mid-cell so the drain window is open
    /// deterministically.
    #[test]
    fn drain_refuses_new_submits_and_exits_after_active_jobs_finish() {
        let _g = fp_lock();
        let _r = FpReset;
        let (server, addr) = start(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        failpoint::arm("worker.cell", failpoint::Action::Delay(400), 1);

        let mut client = Client::connect(&addr).unwrap();
        let _ack = client.submit(&spec()).unwrap();
        let active = client.shutdown_drain().unwrap();
        assert_eq!(active, 1, "the delayed job is still active at drain time");

        let err = Client::connect(&addr)
            .and_then(|mut c| c.submit(&spec()))
            .expect_err("a draining daemon refuses new submissions");
        assert!(err.contains("draining"), "{err}");

        // Returns only once the drained job finished and the daemon
        // shut itself down; a hang here means drain never completed.
        server.wait();
    }

    /// A stream writer that dies mid-job (slow or vanished reader) only
    /// loses that one connection: the job completes, and the client's
    /// retry layer re-tails it to byte-identical output.
    #[test]
    fn dying_stream_reader_is_survived_and_retry_re_tails() {
        let _g = fp_lock();
        let _r = FpReset;
        let dir = tmp_dir("stream");
        let reference = offline_reference(&dir, &spec());
        let (server, addr) = start(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });

        let mut client = Client::connect(&addr).unwrap();
        let ack = client.submit(&spec()).unwrap();

        // The 2nd cell line written to any stream fails.
        failpoint::arm("stream.write", failpoint::Action::Err, 2);
        let policy = RetryPolicy {
            retries: 2,
            backoff_base_ms: 10,
            timeout_ms: None,
        };
        let mut bytes = Vec::new();
        let sum = policy
            .run(&addr, |c| {
                bytes.clear(); // fresh attempt, no torn prefix
                c.tail_to(ack.job, &mut bytes)
            })
            .expect("retry must recover from one injected stream fault");
        assert_eq!(sum.cells, spec().cell_count());
        assert_eq!(
            String::from_utf8(bytes).unwrap(),
            reference,
            "retried tail must be byte-identical to the offline grid"
        );
        // Attempt one wrote cell 1 then hit the fault (2 hits); the
        // clean retry wrote every cell (cell_count more).
        assert_eq!(
            failpoint::hits("stream.write"),
            spec().cell_count() as u64 + 2
        );
        server.shutdown();
    }
}
