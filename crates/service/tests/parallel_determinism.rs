//! The parallelism determinism contract, end to end through the real
//! binary: grid JSONL bytes (and therefore every `cell_digest`) must be
//! identical at every thread count — `GNCG_THREADS` ∈ {1, 2, 4, default}
//! and the `--threads` CLI flag — and equal to the committed golden.
//!
//! This is the oracle that licenses the work-stealing pool in
//! `crates/compat/rayon`: chunk boundaries depend only on input length,
//! chunks fold in index order, partials combine in chunk order, so the
//! steal schedule can never reach the numbers.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

fn tmp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gncg-par-det-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn gncg() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gncg"))
}

fn repo_golden() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/swap_heavy_n20.jsonl")
}

/// The committed golden's exact spec (36 swap-heavy cells at n = 20).
const GOLDEN_ARGS: &[&str] = &[
    "--name",
    "swap-heavy",
    "--hosts",
    "r2,grid,clusters",
    "--n",
    "20",
    "--alpha",
    "2.0,4.0,8.0",
    "--rules",
    "greedy",
    "--scheds",
    "rr",
    "--seeds",
    "0,1,2,3",
    "--max-rounds",
    "500",
    "--base-seed",
    "0",
];

/// A smaller swap-heavy slice (8 cells) for the thread-count matrix, so
/// four full runs stay affordable in the debug profile.
const MATRIX_ARGS: &[&str] = &[
    "--name",
    "swap-heavy-slice",
    "--hosts",
    "r2,grid",
    "--n",
    "20",
    "--alpha",
    "2.0,8.0",
    "--rules",
    "greedy",
    "--scheds",
    "rr",
    "--seeds",
    "0,1",
    "--max-rounds",
    "500",
    "--base-seed",
    "0",
];

fn run_grid(out: &PathBuf, spec: &[&str], env_threads: Option<&str>, flag_threads: Option<&str>) {
    let _ = fs::remove_file(out);
    let _ = fs::remove_file(out.with_extension("jsonl.manifest"));
    let mut cmd = gncg();
    cmd.args(["grid", "--out", out.to_str().unwrap()])
        .args(spec);
    match env_threads {
        Some(t) => cmd.env("GNCG_THREADS", t),
        None => cmd.env_remove("GNCG_THREADS"),
    };
    if let Some(t) = flag_threads {
        cmd.args(["--threads", t]);
    }
    let status = cmd.status().unwrap();
    assert!(status.success(), "grid run failed for {out:?}");
}

#[test]
fn golden_grid_bytes_survive_a_multithreaded_pool() {
    let out = tmp_dir().join("golden-t2.jsonl");
    run_grid(&out, GOLDEN_ARGS, Some("2"), None);
    assert_eq!(
        fs::read_to_string(&out).unwrap(),
        fs::read_to_string(repo_golden()).unwrap(),
        "36-cell swap-heavy grid at GNCG_THREADS=2 must equal the committed golden byte for byte"
    );
}

/// The br-grid preset (36 exact-best-response cells priced off the
/// persistent BR bound tables) must reproduce its committed golden byte
/// for byte through the real binary on a multithreaded pool. In debug
/// test builds every cached search additionally self-checks bitwise
/// against a fresh rebuild, so this also exercises the full bound-table
/// oracle end to end.
#[test]
fn br_grid_golden_bytes_survive_a_multithreaded_pool() {
    let golden =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/br_grid_n14.jsonl");
    let out = tmp_dir().join("br-grid-t2.jsonl");
    run_grid(&out, &["--preset", "br-grid"], Some("2"), None);
    assert_eq!(
        fs::read_to_string(&out).unwrap(),
        fs::read_to_string(golden).unwrap(),
        "36-cell br-grid at GNCG_THREADS=2 must equal the committed golden byte for byte"
    );
}

#[test]
fn grid_bytes_identical_at_every_thread_count() {
    let dir = tmp_dir();
    let reference = dir.join("matrix-t1.jsonl");
    run_grid(&reference, MATRIX_ARGS, Some("1"), None);
    let reference_bytes = fs::read_to_string(&reference).unwrap();
    assert!(
        reference_bytes.lines().count() == 8,
        "slice spec should expand to 8 cells"
    );

    // GNCG_THREADS=2, =4, unset (available-core default), and the
    // `--threads 2` CLI flag (which overrides an env of 4).
    let variants: [(&str, Option<&str>, Option<&str>); 4] = [
        ("env-2", Some("2"), None),
        ("env-4", Some("4"), None),
        ("default", None, None),
        ("flag-2", Some("4"), Some("2")),
    ];
    for (tag, env_threads, flag_threads) in variants {
        let out = dir.join(format!("matrix-{tag}.jsonl"));
        run_grid(&out, MATRIX_ARGS, env_threads, flag_threads);
        assert_eq!(
            fs::read_to_string(&out).unwrap(),
            reference_bytes,
            "grid bytes diverged from the single-thread run at variant {tag}"
        );
    }
}
