//! Heuristic social optimum for instance sizes beyond the exact solver.
//!
//! Strategy: multi-seed restarts — the better of MST and complete graph,
//! plus the best star — each refined by local search with single-edge
//! additions and removals until no move lowers the social cost; the best
//! local optimum wins. (Single-neighborhood descent from one seed gets
//! stuck a few percent above OPT on small random metrics; the star seed
//! reliably escapes the MST basin in the α-regimes where stars are
//! near-optimal.) The result upper-bounds OPT; experiments use it as the
//! denominator estimate when `n > 8`, reporting it explicitly as an upper
//! bound (which makes the measured PoA ratios *lower* bounds).

use gncg_core::{cost::network_social_cost, Game, Profile};
use gncg_graph::{AdjacencyList, NodeId};

/// Result of the local-search optimum.
#[derive(Clone, Debug)]
pub struct HeuristicOptimum {
    /// Chosen undirected edges.
    pub edges: Vec<(NodeId, NodeId)>,
    /// A single-owner profile realizing the network.
    pub profile: Profile,
    /// Social cost of the network (an upper bound on OPT).
    pub cost: f64,
    /// Local-search rounds executed.
    pub rounds: usize,
}

/// Runs the multi-seed local search. `max_rounds` caps the add/remove
/// sweeps *per seed* (each round is `O(n²)` candidate moves, each costing
/// an APSP); `rounds` in the result totals across seeds.
pub fn social_optimum_heuristic(game: &Game, max_rounds: usize) -> HeuristicOptimum {
    let n = game.n();
    // Seed A: the better of MST and complete graph.
    let mst_edges = gncg_graph::mst::prim_complete(game.host());
    let mut seed_a = AdjacencyList::from_edges(n, &mst_edges);
    let mut cost_a = network_social_cost(game, &seed_a);
    {
        let full = AdjacencyList::complete_from_matrix(game.host());
        let full_cost = network_social_cost(game, &full);
        if full_cost < cost_a {
            seed_a = full;
            cost_a = full_cost;
        }
    }
    // Seed B: the best star (skipped when some spoke is forbidden).
    let mut seed_b: Option<(AdjacencyList, f64)> = None;
    for c in 0..n as NodeId {
        let star = star_network(game, c);
        if star.m() == n.saturating_sub(1) {
            let sc = network_social_cost(game, &star);
            if seed_b.as_ref().is_none_or(|&(_, best)| sc < best) {
                seed_b = Some((star, sc));
            }
        }
    }

    let (mut g, mut cost, mut rounds) = local_search(game, seed_a, cost_a, max_rounds);
    if let Some((sb, cb)) = seed_b {
        let (gb, costb, rb) = local_search(game, sb, cb, max_rounds);
        rounds += rb;
        if costb < cost - gncg_graph::EPS {
            g = gb;
            cost = costb;
        }
    }

    let edges: Vec<(NodeId, NodeId)> = g.edges().map(|(u, v, _)| (u, v)).collect();
    let profile = Profile::from_owned_edges(n, &edges);
    HeuristicOptimum {
        edges,
        profile,
        cost,
        rounds,
    }
}

/// The star network around `c` restricted to finite host edges.
fn star_network(game: &Game, c: NodeId) -> AdjacencyList {
    let n = game.n();
    let mut g = AdjacencyList::new(n);
    for v in 0..n as NodeId {
        let w = game.w(c, v);
        if v != c && w.is_finite() {
            g.add_edge(c, v, w);
        }
    }
    g
}

/// Add/remove descent from `g` until a full silent sweep or `max_rounds`.
fn local_search(
    game: &Game,
    mut g: AdjacencyList,
    mut cost: f64,
    max_rounds: usize,
) -> (AdjacencyList, f64, usize) {
    let n = game.n();
    let mut rounds = 0;
    loop {
        if rounds >= max_rounds {
            break;
        }
        rounds += 1;
        let mut improved = false;
        // Additions.
        for u in 0..n as NodeId {
            for v in (u + 1)..n as NodeId {
                let w = game.w(u, v);
                if !w.is_finite() || g.has_edge(u, v) {
                    continue;
                }
                g.add_edge(u, v, w);
                let c = network_social_cost(game, &g);
                if c < cost - gncg_graph::EPS {
                    cost = c;
                    improved = true;
                } else {
                    g.remove_edge(u, v);
                }
            }
        }
        // Removals.
        let edges: Vec<(NodeId, NodeId, f64)> = g.edges().collect();
        for (u, v, w) in edges {
            g.remove_edge(u, v);
            if g.is_connected() {
                let c = network_social_cost(game, &g);
                if c < cost - gncg_graph::EPS {
                    cost = c;
                    improved = true;
                    continue;
                }
            }
            g.add_edge(u, v, w);
        }
        if !improved {
            break;
        }
    }
    (g, cost, rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gncg_graph::SymMatrix;

    #[test]
    fn heuristic_matches_exact_on_small_instances() {
        for seed in 0..5u64 {
            let host = gncg_metrics::arbitrary::random_metric(6, 1.0, 3.0, seed);
            for alpha in [0.5, 1.0, 3.0] {
                let game = Game::new(host.clone(), alpha);
                let exact = crate::opt_exact::social_optimum(&game);
                let heur = social_optimum_heuristic(&game, 50);
                assert!(
                    heur.cost >= exact.cost - 1e-9,
                    "heuristic beat exact?! seed {seed} α {alpha}"
                );
                // On these tiny metrics the local search should be within 5%.
                assert!(
                    heur.cost <= exact.cost * 1.05 + 1e-9,
                    "heuristic {:.4} vs exact {:.4} (seed {seed}, α {alpha})",
                    heur.cost,
                    exact.cost
                );
            }
        }
    }

    #[test]
    fn heuristic_exact_on_unit_star_regime() {
        // Unit metric, α ≥ 2: the star is optimal and local search finds a
        // tree of equal cost.
        let game = Game::new(SymMatrix::filled(12, 1.0), 4.0);
        let h = social_optimum_heuristic(&game, 50);
        let star = Profile::star(12, 0);
        let star_cost = gncg_core::cost::social_cost(&game, &star);
        assert!(h.cost <= star_cost + 1e-9);
        assert!(h.profile.build_network(&game).is_connected());
    }

    #[test]
    fn result_is_connected_and_consistent() {
        let host = gncg_metrics::arbitrary::random_metric(10, 1.0, 5.0, 3);
        let game = Game::new(host, 2.0);
        let h = social_optimum_heuristic(&game, 30);
        let g = h.profile.build_network(&game);
        assert!(g.is_connected());
        assert!(gncg_graph::approx_eq(
            h.cost,
            gncg_core::cost::social_cost(&game, &h.profile)
        ));
    }

    #[test]
    fn zero_rounds_returns_seed() {
        let game = Game::new(SymMatrix::filled(5, 1.0), 1.0);
        let h = social_optimum_heuristic(&game, 0);
        assert!(h.cost.is_finite());
        assert_eq!(h.rounds, 0);
    }
}
