//! Heuristic social optimum for instance sizes beyond the exact solver.
//!
//! Strategy: seed with the better of MST and complete graph, then local
//! search with single-edge additions and removals until no move lowers the
//! social cost. The result upper-bounds OPT; experiments use it as the
//! denominator estimate when `n > 8`, reporting it explicitly as an upper
//! bound (which makes the measured PoA ratios *lower* bounds).

use gncg_core::{cost::network_social_cost, Game, Profile};
use gncg_graph::{AdjacencyList, NodeId};

/// Result of the local-search optimum.
#[derive(Clone, Debug)]
pub struct HeuristicOptimum {
    /// Chosen undirected edges.
    pub edges: Vec<(NodeId, NodeId)>,
    /// A single-owner profile realizing the network.
    pub profile: Profile,
    /// Social cost of the network (an upper bound on OPT).
    pub cost: f64,
    /// Local-search rounds executed.
    pub rounds: usize,
}

/// Runs the local search. `max_rounds` caps full add/remove sweeps
/// (each round is `O(n²)` candidate moves, each costing an APSP).
pub fn social_optimum_heuristic(game: &Game, max_rounds: usize) -> HeuristicOptimum {
    let n = game.n();
    let mst_edges = gncg_graph::mst::prim_complete(game.host());
    let mut g = AdjacencyList::from_edges(n, &mst_edges);
    let mut cost = network_social_cost(game, &g);
    {
        let full = AdjacencyList::complete_from_matrix(game.host());
        let full_cost = network_social_cost(game, &full);
        if full_cost < cost {
            g = full;
            cost = full_cost;
        }
    }

    let mut rounds = 0;
    loop {
        if rounds >= max_rounds {
            break;
        }
        rounds += 1;
        let mut improved = false;
        // Additions.
        for u in 0..n as NodeId {
            for v in (u + 1)..n as NodeId {
                let w = game.w(u, v);
                if !w.is_finite() || g.has_edge(u, v) {
                    continue;
                }
                g.add_edge(u, v, w);
                let c = network_social_cost(game, &g);
                if c < cost - gncg_graph::EPS {
                    cost = c;
                    improved = true;
                } else {
                    g.remove_edge(u, v);
                }
            }
        }
        // Removals.
        let edges: Vec<(NodeId, NodeId, f64)> = g.edges().collect();
        for (u, v, w) in edges {
            g.remove_edge(u, v);
            if g.is_connected() {
                let c = network_social_cost(game, &g);
                if c < cost - gncg_graph::EPS {
                    cost = c;
                    improved = true;
                    continue;
                }
            }
            g.add_edge(u, v, w);
        }
        if !improved {
            break;
        }
    }

    let edges: Vec<(NodeId, NodeId)> = g.edges().map(|(u, v, _)| (u, v)).collect();
    let profile = Profile::from_owned_edges(n, &edges);
    HeuristicOptimum {
        edges,
        profile,
        cost,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gncg_graph::SymMatrix;

    #[test]
    fn heuristic_matches_exact_on_small_instances() {
        for seed in 0..5u64 {
            let host = gncg_metrics::arbitrary::random_metric(6, 1.0, 3.0, seed);
            for alpha in [0.5, 1.0, 3.0] {
                let game = Game::new(host.clone(), alpha);
                let exact = crate::opt_exact::social_optimum(&game);
                let heur = social_optimum_heuristic(&game, 50);
                assert!(
                    heur.cost >= exact.cost - 1e-9,
                    "heuristic beat exact?! seed {seed} α {alpha}"
                );
                // On these tiny metrics the local search should be within 5%.
                assert!(
                    heur.cost <= exact.cost * 1.05 + 1e-9,
                    "heuristic {:.4} vs exact {:.4} (seed {seed}, α {alpha})",
                    heur.cost,
                    exact.cost
                );
            }
        }
    }

    #[test]
    fn heuristic_exact_on_unit_star_regime() {
        // Unit metric, α ≥ 2: the star is optimal and local search finds a
        // tree of equal cost.
        let game = Game::new(SymMatrix::filled(12, 1.0), 4.0);
        let h = social_optimum_heuristic(&game, 50);
        let star = Profile::star(12, 0);
        let star_cost = gncg_core::cost::social_cost(&game, &star);
        assert!(h.cost <= star_cost + 1e-9);
        assert!(h.profile.build_network(&game).is_connected());
    }

    #[test]
    fn result_is_connected_and_consistent() {
        let host = gncg_metrics::arbitrary::random_metric(10, 1.0, 5.0, 3);
        let game = Game::new(host, 2.0);
        let h = social_optimum_heuristic(&game, 30);
        let g = h.profile.build_network(&game);
        assert!(g.is_connected());
        assert!(gncg_graph::approx_eq(
            h.cost,
            gncg_core::cost::social_cost(&game, &h.profile)
        ));
    }

    #[test]
    fn zero_rounds_returns_seed() {
        let game = Game::new(SymMatrix::filled(5, 1.0), 1.0);
        let h = social_optimum_heuristic(&game, 0);
        assert!(h.cost.is_finite());
        assert_eq!(h.rounds, 0);
    }
}
