//! Theorem 5: Nash Equilibria from minimum-weight 3/2-spanners.
//!
//! For 1-2 hosts and `1/2 ≤ α ≤ 1`, a minimum-weight 3/2-spanner of the
//! host admits an edge-ownership assignment that is a Nash Equilibrium.
//! By Lemma 5 such a spanner contains all 1-edges and has diameter ≤ 3.
//!
//! Exact minimum-weight spanners are NP-hard, so the construction here is:
//! greedy 3/2-spanner → prune removable 2-edges (local weight minimality)
//! → assign owners → repair loop flipping ownership along the lines of the
//! Theorem 5 proof until the profile certifies as NE (exact best-response
//! check). The repair loop is guaranteed to make progress on weight-minimal
//! spanners; on the locally-minimal ones used here it succeeds in practice
//! and the result is always *certified* before being returned.

use gncg_core::equilibrium::is_nash_equilibrium;
use gncg_core::response::exact_best_response;
use gncg_core::{Game, Profile};
use gncg_graph::spanner::{greedy_k_spanner, is_k_spanner};
use gncg_graph::{AdjacencyList, NodeId, SymMatrix};

/// Outcome of the Theorem 5 construction.
#[derive(Clone, Debug)]
pub struct SpannerEquilibrium {
    /// The constructed profile.
    pub profile: Profile,
    /// Whether the profile was certified as an exact NE.
    pub certified_ne: bool,
    /// Ownership repair iterations used.
    pub repairs: usize,
}

/// Builds a locally-minimal 3/2-spanner of a 1-2 host: the greedy spanner,
/// then repeated removal of 2-edges whose deletion preserves the spanner
/// property.
pub fn locally_minimal_32_spanner(host: &SymMatrix) -> AdjacencyList {
    assert!(
        host.pairs().all(|(_, _, w)| w == 1.0 || w == 2.0),
        "Theorem 5 construction requires a 1-2 host"
    );
    let hd = gncg_graph::spanner::host_distances(host);
    let mut g = greedy_k_spanner(host, 1.5);
    loop {
        let mut removed_any = false;
        let two_edges: Vec<(NodeId, NodeId, f64)> =
            g.edges().filter(|&(_, _, w)| w == 2.0).collect();
        for (u, v, w) in two_edges {
            g.remove_edge(u, v);
            if is_k_spanner(&g, &hd, 1.5) {
                removed_any = true;
            } else {
                g.add_edge(u, v, w);
            }
        }
        if !removed_any {
            break;
        }
    }
    g
}

/// Runs the full Theorem 5 construction for a 1-2 host and
/// `1/2 ≤ α ≤ 1`. Returns the profile and whether it certified as NE.
///
/// # Panics
/// Panics if `α ∉ [1/2, 1]` or the host is not 1-2.
pub fn spanner_equilibrium(host: &SymMatrix, alpha: f64) -> SpannerEquilibrium {
    assert!(
        (0.5..=1.0).contains(&alpha),
        "Theorem 5 applies for 1/2 ≤ α ≤ 1"
    );
    let n = host.n();
    let game = Game::new(host.clone(), alpha);
    let spanner = locally_minimal_32_spanner(host);

    // Initial ownership: each edge to its lower-id endpoint.
    let mut profile = Profile::empty(n);
    for (u, v, _) in spanner.edges() {
        profile.buy(u, v);
    }

    let mut repairs = 0usize;
    let max_repairs = 4 * n * n;
    loop {
        // Find an agent with an improving deviation.
        let mut fixed_all = true;
        for u in 0..n as NodeId {
            let br = exact_best_response(&game, &profile, u);
            if !br.improves() {
                continue;
            }
            fixed_all = false;
            repairs += 1;
            if repairs > max_repairs {
                return SpannerEquilibrium {
                    profile,
                    certified_ne: false,
                    repairs,
                };
            }
            // Theorem 5 repair: for edges u would drop, flip ownership to
            // the other endpoint; for edges u would add, apply the change
            // (this only happens when the spanner was not weight-minimal —
            // adopting the strictly better strategy reduces total weight
            // and the loop re-enters).
            let current = profile.strategy(u).clone();
            let dropped: Vec<NodeId> = current.difference(&br.strategy).copied().collect();
            let added: Vec<NodeId> = br.strategy.difference(&current).copied().collect();
            if added.is_empty() {
                // Pure drop: flip ownership instead of removing the edges,
                // keeping the network intact (the proof's inversion step).
                for y in dropped {
                    profile.unbuy(u, y);
                    if !profile.owns(y, u) {
                        profile.buy(y, u);
                    }
                }
            } else {
                profile.set_strategy(u, br.strategy.clone());
            }
            break;
        }
        if fixed_all {
            break;
        }
    }

    let certified = is_nash_equilibrium(&game, &profile);
    SpannerEquilibrium {
        profile,
        certified_ne: certified,
        repairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spanner_contains_all_one_edges_and_diameter_3() {
        // Lemma 5 checks on random 1-2 hosts.
        for seed in 0..5u64 {
            let host = gncg_metrics::onetwo::random(8, 0.35, seed);
            let g = locally_minimal_32_spanner(&host);
            for (u, v, w) in host.pairs() {
                if w == 1.0 {
                    assert!(g.has_edge(u, v), "1-edge missing (seed {seed})");
                }
            }
            let d = gncg_graph::apsp::apsp_sequential(&g);
            assert!(d.diameter() <= 3.0 + 1e-12, "seed {seed}");
            let hd = gncg_graph::spanner::host_distances(&host);
            assert!(is_k_spanner(&g, &hd, 1.5));
        }
    }

    #[test]
    fn construction_yields_certified_ne() {
        for seed in 0..4u64 {
            for alpha in [0.5, 0.75, 1.0] {
                let host = gncg_metrics::onetwo::random(7, 0.4, seed);
                let out = spanner_equilibrium(&host, alpha);
                assert!(
                    out.certified_ne,
                    "Theorem 5 construction failed to certify NE (seed {seed}, α {alpha}, repairs {})",
                    out.repairs
                );
            }
        }
    }

    #[test]
    fn works_on_all_ones_host() {
        // All-1 host: the spanner is the complete graph; with α ≤ 1 the
        // complete graph is an NE.
        let host = gncg_metrics::unit::unit_host(6);
        let out = spanner_equilibrium(&host, 0.75);
        assert!(out.certified_ne);
        let game = Game::new(host, 0.75);
        let g = out.profile.build_network(&game);
        assert_eq!(g.m(), 15);
    }

    #[test]
    #[should_panic]
    fn alpha_out_of_range_rejected() {
        let host = gncg_metrics::unit::unit_host(4);
        spanner_equilibrium(&host, 2.0);
    }
}
