//! Price of Stability: exhaustive equilibrium enumeration on small
//! instances.
//!
//! The paper's conclusion names the Price of Stability (cost of the *best*
//! NE over OPT) as the next step for understanding coordination. This
//! module enumerates, for small `n`, every connected network and every
//! edge-ownership assignment, certifies Nash equilibria exactly, and
//! returns the cheapest and costliest ones — yielding the instance's
//! exact PoS and PoA.
//!
//! Corollary 3 (PoS = 1 for the T–GNCG) is verified against this
//! enumeration in the tests; the experiment harness measures PoS on
//! random metric and 1-2 hosts.

use gncg_core::equilibrium::is_nash_equilibrium;
use gncg_core::{Game, NodeId, Profile};

/// The result of exhaustive equilibrium enumeration.
#[derive(Clone, Debug)]
pub struct EquilibriumLandscape {
    /// The cheapest certified NE, if any exists.
    pub best: Option<(Profile, f64)>,
    /// The costliest certified NE, if any exists.
    pub worst: Option<(Profile, f64)>,
    /// Number of networks admitting at least one NE ownership assignment.
    pub count: usize,
    /// Number of connected networks inspected.
    pub networks: usize,
}

impl EquilibriumLandscape {
    /// Price of Stability relative to `opt_cost` (`None` if no NE).
    pub fn price_of_stability(&self, opt_cost: f64) -> Option<f64> {
        self.best.as_ref().map(|(_, c)| c / opt_cost)
    }

    /// Price of Anarchy (over *pure NE*) relative to `opt_cost`.
    pub fn price_of_anarchy(&self, opt_cost: f64) -> Option<f64> {
        self.worst.as_ref().map(|(_, c)| c / opt_cost)
    }
}

/// Exhaustively enumerates single-owner profiles over connected networks
/// and certifies each as NE.
///
/// Search space: `2^(n(n-1)/2)` edge subsets × `2^m` ownership choices —
/// use only for `n ≤ 5` (debug) / `n ≤ 6` (release).
///
/// # Panics
/// Panics if `n > 6`.
pub fn enumerate_equilibria(game: &Game) -> EquilibriumLandscape {
    let n = game.n();
    assert!(
        n <= 6,
        "equilibrium enumeration is doubly exponential; n ≤ 6"
    );
    let pairs: Vec<(NodeId, NodeId)> = game
        .host()
        .pairs()
        .filter(|&(_, _, w)| w.is_finite())
        .map(|(u, v, _)| (u, v))
        .collect();
    let mut landscape = EquilibriumLandscape {
        best: None,
        worst: None,
        count: 0,
        networks: 0,
    };
    let total_subsets: u64 = 1 << pairs.len();
    for mask in 1..total_subsets {
        let edges: Vec<(NodeId, NodeId)> = pairs
            .iter()
            .enumerate()
            .filter(|&(i, _)| mask & (1 << i) != 0)
            .map(|(_, &e)| e)
            .collect();
        let net = gncg_graph::AdjacencyList::from_edges(
            n,
            &edges
                .iter()
                .map(|&(u, v)| (u, v, game.w(u, v)))
                .collect::<Vec<_>>(),
        );
        if !net.is_connected() {
            continue;
        }
        landscape.networks += 1;
        // Lemma 1 prune: every NE is an (α+1)-spanner of the host, an
        // ownership-independent property — reject non-spanners before the
        // ownership search.
        if !gncg_graph::spanner::is_k_spanner(&net, game.host_distances(), game.alpha() + 1.0) {
            continue;
        }
        // AE prune: whether an *addition* improves is independent of who
        // owns the existing edges (distances and the price of the new edge
        // don't depend on ownership), and NE ⊆ AE — so if any agent has an
        // improving addition under one ownership, no ownership is a NE.
        let probe = Profile::from_owned_edges(n, &edges);
        if !gncg_core::equilibrium::is_add_only_equilibrium(game, &probe) {
            continue;
        }
        // The social cost is ownership-independent (every edge has exactly
        // one owner here); compute once per network.
        let cost = gncg_core::cost::network_social_cost(game, &net);

        // Greedy-move prune, ownership-factorized: the *improvement value*
        // of deleting or swapping an owned edge is ownership-independent
        // (the rest of the owner's edge cost cancels in the difference),
        // so each edge independently constrains which endpoints may own it
        // in any GE (hence any NE). Precompute the allowed-owner sets and
        // search only their product.
        let allowed: Vec<Vec<NodeId>> = edges
            .iter()
            .map(|&(u, v)| {
                [u, v]
                    .into_iter()
                    .filter(|&o| !has_improving_greedy_edge_move(game, &net, o, (u, v)))
                    .collect()
            })
            .collect();
        if allowed.iter().any(|a| a.is_empty()) {
            continue; // some edge has no stable owner — no NE on this network
        }
        // Enumerate the product of allowed owners; certify with exact best
        // responses; stop at the first NE (cost is the same for all).
        let mut choice = vec![0usize; allowed.len()];
        'product: loop {
            let owned: Vec<(NodeId, NodeId)> = edges
                .iter()
                .enumerate()
                .map(|(i, &(u, v))| {
                    let o = allowed[i][choice[i]];
                    let t = if o == u { v } else { u };
                    (o, t)
                })
                .collect();
            let profile = Profile::from_owned_edges(n, &owned);
            if is_nash_equilibrium(game, &profile) {
                landscape.count += 1;
                let better = landscape.best.as_ref().is_none_or(|&(_, c)| cost < c);
                if better {
                    landscape.best = Some((profile.clone(), cost));
                }
                let worse = landscape.worst.as_ref().is_none_or(|&(_, c)| cost > c);
                if worse {
                    landscape.worst = Some((profile, cost));
                }
                break 'product;
            }
            // Next choice vector.
            let mut i = 0;
            loop {
                if i == choice.len() {
                    break 'product;
                }
                choice[i] += 1;
                if choice[i] < allowed[i].len() {
                    break;
                }
                choice[i] = 0;
                i += 1;
            }
        }
    }
    landscape
}

/// Whether `owner` has a strictly improving single-edge move (delete or
/// swap) concerning edge `(u, v)` of `net`. Improvement values are
/// ownership-independent: only distance changes and the α-weighted edge
/// price difference enter.
fn has_improving_greedy_edge_move(
    game: &Game,
    net: &gncg_graph::AdjacencyList,
    owner: NodeId,
    (u, v): (NodeId, NodeId),
) -> bool {
    use gncg_graph::dijkstra::{dijkstra, dijkstra_masked};
    let other = if owner == u { v } else { u };
    let before: f64 = dijkstra(net, owner).iter().sum();
    // Delete.
    let after_del: f64 = dijkstra_masked(net, owner, &[(owner, other)], &[])
        .iter()
        .sum();
    let delta_del = -game.alpha() * game.w(owner, other) + (after_del - before);
    if delta_del < -gncg_graph::EPS {
        return true;
    }
    // Swaps to any non-neighbor.
    for x in 0..game.n() as NodeId {
        if x == owner || net.has_edge(owner, x) {
            continue;
        }
        let wx = game.w(owner, x);
        if !wx.is_finite() {
            continue;
        }
        let after_swap: f64 = dijkstra_masked(net, owner, &[(owner, other)], &[(owner, x, wx)])
            .iter()
            .sum();
        let delta = game.alpha() * (wx - game.w(owner, other)) + (after_swap - before);
        if delta < -gncg_graph::EPS {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_metric_low_alpha_unique_equilibrium_cost() {
        // α < ½ on unit K4: the complete graph is the unique NE network,
        // so PoS = PoA = 1.
        let game = Game::new(gncg_metrics::unit::unit_host(4), 0.4);
        let land = enumerate_equilibria(&game);
        assert!(land.count >= 1);
        let opt = crate::opt_exact::social_optimum(&game);
        assert!(gncg_graph::approx_eq(
            land.price_of_stability(opt.cost).unwrap(),
            1.0
        ));
        assert!(gncg_graph::approx_eq(
            land.price_of_anarchy(opt.cost).unwrap(),
            1.0
        ));
    }

    #[test]
    fn tree_metric_pos_is_one() {
        // Corollary 3: the defining tree is optimal and stable ⇒ PoS = 1.
        for seed in 0..3u64 {
            let tree = gncg_metrics::treemetric::random_tree(5, 1.0, 3.0, seed);
            let game = Game::new(tree.metric_closure(), 2.0);
            let land = enumerate_equilibria(&game);
            let opt = crate::opt_exact::social_optimum(&game);
            let pos = land
                .price_of_stability(opt.cost)
                .expect("NE must exist on tree metrics");
            assert!(
                gncg_graph::approx_eq(pos, 1.0),
                "seed {seed}: PoS = {pos} ≠ 1"
            );
        }
    }

    #[test]
    fn star_tree_family_gap_between_pos_and_poa() {
        // The Thm 15 instance at small n: PoS = 1 (the defining tree) but
        // PoA > 1 (the v-star).
        let game = gncg_constructions_free_star_tree_game(5, 4.0);
        let land = enumerate_equilibria(&game);
        let opt = crate::opt_exact::social_optimum(&game);
        let pos = land.price_of_stability(opt.cost).unwrap();
        let poa = land.price_of_anarchy(opt.cost).unwrap();
        assert!(gncg_graph::approx_eq(pos, 1.0), "PoS = {pos}");
        assert!(poa > 1.0, "PoA = {poa}");
    }

    /// Local copy of the Thm 15 host to avoid a dependency cycle with the
    /// constructions crate (which depends on solvers).
    fn gncg_constructions_free_star_tree_game(n: usize, alpha: f64) -> Game {
        let mut edges = vec![(0u32, 1u32, 1.0)];
        for leaf in 2..n as u32 {
            edges.push((0, leaf, 2.0 / alpha));
        }
        let tree = gncg_graph::WeightedTree::new(n, edges);
        Game::new(tree.metric_closure(), alpha)
    }

    #[test]
    fn worst_ne_at_least_best_ne() {
        let host = gncg_metrics::onetwo::random(4, 0.5, 3);
        let game = Game::new(host, 1.0);
        let land = enumerate_equilibria(&game);
        if let (Some((_, b)), Some((_, w))) = (&land.best, &land.worst) {
            assert!(w >= b);
        }
    }

    #[test]
    #[should_panic]
    fn too_large_rejected() {
        let game = Game::new(gncg_metrics::unit::unit_host(7), 1.0);
        enumerate_equilibria(&game);
    }
}
