//! # gncg-solvers
//!
//! Solvers for the GNCG reproduction:
//!
//! * [`opt_exact`] — exact social optimum via branch-and-bound over edge
//!   subsets (the game-theoretic analogue of the Network Design Problem;
//!   suspected NP-hard, so exact only for small `n`),
//! * [`opt_heuristic`] — MST-seeded local-search optimum for larger `n`,
//! * [`algorithm1`] — the paper's Algorithm 1: polynomial social optimum
//!   for 1-2 graphs with `α ≤ 1` (Theorem 6),
//! * [`tree_opt`] — the defining tree as OPT for `T–GNCG` (Corollary 3),
//! * [`spanner_eq`] — Theorem 5: NE construction from minimum-weight
//!   3/2-spanners for 1-2 graphs with `1/2 ≤ α ≤ 1`,
//! * [`umfl`] — Uncapacitated Metric Facility Location local search, the
//!   Theorem 3 machinery (locality gap 3 ⇒ every GE is a 3-NE) and a
//!   polynomial approximate best response,
//! * [`set_cover`] / [`vertex_cover`] — substrates for the NP-hardness
//!   reductions (Theorems 4, 13, 16).

pub mod algorithm1;
pub mod opt_exact;
pub mod opt_heuristic;
pub mod set_cover;
pub mod spanner_eq;
pub mod stability;
pub mod tree_opt;
pub mod umfl;
pub mod vertex_cover;
