//! Exact social optimum by branch-and-bound over edge subsets.
//!
//! The social optimum minimizes `α·Σ_{e∈E'} w(e) + Σ_{u,v} d_{(V,E')}(u,v)`
//! over all edge subsets `E' ⊆ E(H)` — a variant of the classical Network
//! Design Problem, strongly suspected NP-hard (§1.2 of the paper). The
//! search below is complete; the admissible bound combines the committed
//! edge cost with the host-closure distance lower bound
//! `Σ_{u,v} d_H(u,v) ≤ Σ_{u,v} d_G(u,v)` (every built network is a
//! subgraph of `H`). Intended for `n ≤ 8`.

use gncg_core::{cost::network_social_cost, Game, Profile};
use gncg_graph::{AdjacencyList, NodeId};

/// An optimum: the edge set, a single-owner profile inducing it, and its
/// social cost.
#[derive(Clone, Debug)]
pub struct Optimum {
    /// Chosen undirected edges.
    pub edges: Vec<(NodeId, NodeId)>,
    /// A profile realizing the network (each edge bought by its smaller
    /// endpoint — ownership does not affect social cost).
    pub profile: Profile,
    /// The minimal social cost.
    pub cost: f64,
    /// Diagnostics: number of leaf evaluations.
    pub evaluated: usize,
}

/// Computes the exact social optimum of `game`.
///
/// # Panics
/// Panics if `n > 9` (the search space `2^(n(n-1)/2)` becomes impractical;
/// use [`crate::opt_heuristic`] instead).
pub fn social_optimum(game: &Game) -> Optimum {
    let n = game.n();
    assert!(
        n <= 9,
        "exact OPT is exponential; n = {n} > 9 — use opt_heuristic"
    );
    if n <= 1 {
        return Optimum {
            edges: Vec::new(),
            profile: Profile::empty(n),
            cost: 0.0,
            evaluated: 1,
        };
    }
    // Candidate edges sorted by weight descending: committing heavy edges
    // early makes the edge-cost bound bite sooner.
    let mut cand: Vec<(NodeId, NodeId, f64)> = game
        .host()
        .pairs()
        .filter(|&(_, _, w)| w.is_finite())
        .collect();
    cand.sort_by(|a, b| b.2.total_cmp(&a.2));

    // Distance lower bound: total ordered-pair distance of the host closure.
    let dist_lb: f64 = game.host_distances().total_distance_cost();

    let mut best_cost = f64::INFINITY;
    let mut best_edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut evaluated = 0usize;

    // Seed the incumbent with the complete host graph and the MST — both
    // cheap and often near-optimal, tightening the bound from the start.
    {
        let full = AdjacencyList::complete_from_matrix(game.host());
        let c = network_social_cost(game, &full);
        if c < best_cost {
            best_cost = c;
            best_edges = full.edges().map(|(u, v, _)| (u, v)).collect();
        }
        let mst_edges = gncg_graph::mst::prim_complete(game.host());
        let mst = AdjacencyList::from_edges(n, &mst_edges);
        let c = network_social_cost(game, &mst);
        if c < best_cost {
            best_cost = c;
            best_edges = mst.edges().map(|(u, v, _)| (u, v)).collect();
        }
    }

    let mut chosen: Vec<(NodeId, NodeId, f64)> = Vec::new();
    dfs_opt(
        game,
        &cand,
        0,
        &mut chosen,
        0.0,
        dist_lb,
        &mut best_cost,
        &mut best_edges,
        &mut evaluated,
    );

    let profile = Profile::from_owned_edges(n, &best_edges);
    let network = AdjacencyList::from_edges(
        n,
        &best_edges
            .iter()
            .map(|&(u, v)| (u, v, game.w(u, v)))
            .collect::<Vec<_>>(),
    );
    let cost = network_social_cost(game, &network);
    Optimum {
        edges: best_edges,
        profile,
        cost,
        evaluated,
    }
}

#[allow(clippy::too_many_arguments)]
fn dfs_opt(
    game: &Game,
    cand: &[(NodeId, NodeId, f64)],
    idx: usize,
    chosen: &mut Vec<(NodeId, NodeId, f64)>,
    edge_weight: f64,
    dist_lb: f64,
    best_cost: &mut f64,
    best_edges: &mut Vec<(NodeId, NodeId)>,
    evaluated: &mut usize,
) {
    if game.alpha() * edge_weight + dist_lb >= *best_cost - gncg_graph::EPS {
        return;
    }
    if idx == cand.len() {
        let g = AdjacencyList::from_edges(game.n(), chosen);
        if !g.is_connected() {
            return;
        }
        *evaluated += 1;
        let c = network_social_cost(game, &g);
        if c < *best_cost - gncg_graph::EPS {
            *best_cost = c;
            *best_edges = chosen.iter().map(|&(u, v, _)| (u, v)).collect();
        }
        return;
    }
    let e = cand[idx];
    chosen.push(e);
    dfs_opt(
        game,
        cand,
        idx + 1,
        chosen,
        edge_weight + e.2,
        dist_lb,
        best_cost,
        best_edges,
        evaluated,
    );
    chosen.pop();
    dfs_opt(
        game,
        cand,
        idx + 1,
        chosen,
        edge_weight,
        dist_lb,
        best_cost,
        best_edges,
        evaluated,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use gncg_graph::SymMatrix;

    fn unit_game(n: usize, alpha: f64) -> Game {
        Game::new(SymMatrix::filled(n, 1.0), alpha)
    }

    #[test]
    fn opt_unit_metric_low_alpha_is_clique() {
        // α < 1 on the unit metric: every missing edge saves ≥ 2 distance
        // for α < 2... precisely for α ≤ 2 adding an edge to OPT weakly
        // helps; for α < 2 the clique is the unique OPT.
        let game = unit_game(5, 0.5);
        let opt = social_optimum(&game);
        assert_eq!(opt.edges.len(), 10);
        // cost = α·10 + 2·10 = 25.
        assert!(gncg_graph::approx_eq(opt.cost, 25.0));
    }

    #[test]
    fn opt_unit_metric_high_alpha_is_star() {
        // Classic NCG: for α ≥ 2 the star is optimal.
        let game = unit_game(6, 5.0);
        let opt = social_optimum(&game);
        assert_eq!(opt.edges.len(), 5, "OPT should be a tree (star)");
        let g = opt.profile.build_network(&game);
        assert!(g.is_tree());
        // Star cost: α·5 + (2·5 + 2·2·(5·4/2 - 5))... compute directly:
        // center dist 5, each leaf 1 + 2·4 = 9: total distance 5 + 5·9 = 50.
        assert!(gncg_graph::approx_eq(opt.cost, 5.0 * 5.0 + 50.0));
        // And it is star-shaped: one node of degree 5.
        assert!((0..6).any(|v| g.degree(v) == 5));
    }

    #[test]
    fn opt_matches_brute_force_small() {
        // Independent brute force on n = 4 (64 subsets).
        let host = gncg_metrics::arbitrary::random_metric(4, 1.0, 3.0, 23);
        let game = Game::new(host, 1.7);
        let opt = social_optimum(&game);
        let pairs: Vec<(NodeId, NodeId)> = game.host().pairs().map(|(u, v, _)| (u, v)).collect();
        let mut brute = f64::INFINITY;
        for mask in 0u32..(1 << pairs.len()) {
            let edges: Vec<(NodeId, NodeId, f64)> = pairs
                .iter()
                .enumerate()
                .filter(|&(i, _)| mask & (1 << i) != 0)
                .map(|(_, &(u, v))| (u, v, game.w(u, v)))
                .collect();
            let g = AdjacencyList::from_edges(4, &edges);
            if g.is_connected() {
                brute = brute.min(network_social_cost(&game, &g));
            }
        }
        assert!(gncg_graph::approx_eq(opt.cost, brute));
    }

    #[test]
    fn opt_cost_below_any_profile() {
        let host = gncg_metrics::arbitrary::random_metric(5, 1.0, 4.0, 7);
        let game = Game::new(host, 2.0);
        let opt = social_optimum(&game);
        for center in 0..5 {
            let star = Profile::star(5, center);
            assert!(opt.cost <= gncg_core::cost::social_cost(&game, &star) + 1e-9);
        }
    }

    #[test]
    fn opt_profile_cost_agrees() {
        let host = gncg_metrics::arbitrary::random_metric(5, 0.5, 2.0, 99);
        let game = Game::new(host, 1.0);
        let opt = social_optimum(&game);
        let via_profile = gncg_core::cost::social_cost(&game, &opt.profile);
        assert!(gncg_graph::approx_eq(opt.cost, via_profile));
    }

    #[test]
    fn trivial_sizes() {
        let game = unit_game(1, 1.0);
        let opt = social_optimum(&game);
        assert_eq!(opt.cost, 0.0);
        let game2 = unit_game(2, 3.0);
        let opt2 = social_optimum(&game2);
        assert_eq!(opt2.edges, vec![(0, 1)]);
        assert!(gncg_graph::approx_eq(opt2.cost, 3.0 + 2.0));
    }

    #[test]
    #[should_panic]
    fn too_large_rejected() {
        social_optimum(&unit_game(10, 1.0));
    }
}
