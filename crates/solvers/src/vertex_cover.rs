//! Minimum Vertex Cover — the substrate of the NE-decision NP-hardness
//! reduction (Theorem 4, Figure 2).
//!
//! The reduction uses subcubic graphs; the exact solver here handles the
//! gadget sizes comfortably via branch-and-bound on the highest-degree
//! vertex, and a maximal-matching 2-approximation is provided as a fast
//! starting point.

/// An undirected unweighted graph for covering, as an edge list over
/// `0..n`.
#[derive(Clone, Debug)]
pub struct CoverGraph {
    /// Number of vertices.
    pub n: usize,
    /// Undirected edges `u < v`.
    pub edges: Vec<(usize, usize)>,
}

impl CoverGraph {
    /// Builds a graph, normalizing edge order and rejecting self-loops.
    pub fn new(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut es: Vec<(usize, usize)> = edges
            .iter()
            .map(|&(u, v)| {
                assert!(u != v, "self-loop");
                assert!(u < n && v < n, "vertex out of range");
                if u < v {
                    (u, v)
                } else {
                    (v, u)
                }
            })
            .collect();
        es.sort_unstable();
        es.dedup();
        CoverGraph { n, edges: es }
    }

    /// Whether `cover` touches every edge.
    pub fn is_cover(&self, cover: &[usize]) -> bool {
        let mut in_cover = vec![false; self.n];
        for &v in cover {
            in_cover[v] = true;
        }
        self.edges.iter().all(|&(u, v)| in_cover[u] || in_cover[v])
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        let mut deg = vec![0usize; self.n];
        for &(u, v) in &self.edges {
            deg[u] += 1;
            deg[v] += 1;
        }
        deg.into_iter().max().unwrap_or(0)
    }

    /// The graph without vertex `v` (and its incident edges). Vertex ids
    /// are preserved (`v` remains as an isolated placeholder), which keeps
    /// cover indices stable across removals — what the Lemma 4 recursion
    /// needs.
    pub fn remove_vertex(&self, v: usize) -> CoverGraph {
        CoverGraph {
            n: self.n,
            edges: self
                .edges
                .iter()
                .copied()
                .filter(|&(a, b)| a != v && b != v)
                .collect(),
        }
    }

    /// Greedily prunes redundant vertices from a cover (keeps it a cover).
    pub fn prune_cover(&self, cover: &[usize]) -> Vec<usize> {
        let mut current: Vec<usize> = cover.to_vec();
        let mut i = 0;
        while i < current.len() {
            let mut candidate = current.clone();
            candidate.remove(i);
            if self.is_cover(&candidate) {
                current = candidate;
            } else {
                i += 1;
            }
        }
        current
    }
}

/// Exact minimum vertex cover via branch-and-bound: pick an uncovered edge
/// `(u, v)`; either `u` or `v` is in the cover.
pub fn exact_min_cover(g: &CoverGraph) -> Vec<usize> {
    let mut best: Vec<usize> = (0..g.n).collect();
    let mut cur: Vec<usize> = Vec::new();
    fn rec(
        edges: &[(usize, usize)],
        in_cover: &mut Vec<bool>,
        cur: &mut Vec<usize>,
        best: &mut Vec<usize>,
    ) {
        if cur.len() >= best.len() {
            return;
        }
        // First uncovered edge.
        let uncovered = edges.iter().find(|&&(u, v)| !in_cover[u] && !in_cover[v]);
        match uncovered {
            None => {
                *best = cur.clone();
            }
            Some(&(u, v)) => {
                for pick in [u, v] {
                    in_cover[pick] = true;
                    cur.push(pick);
                    rec(edges, in_cover, cur, best);
                    cur.pop();
                    in_cover[pick] = false;
                }
            }
        }
    }
    let mut in_cover = vec![false; g.n];
    rec(&g.edges, &mut in_cover, &mut cur, &mut best);
    best.sort_unstable();
    best
}

/// Maximal-matching 2-approximation: take both endpoints of a greedily
/// built maximal matching.
pub fn two_approx_cover(g: &CoverGraph) -> Vec<usize> {
    let mut matched = vec![false; g.n];
    let mut cover = Vec::new();
    for &(u, v) in &g.edges {
        if !matched[u] && !matched[v] {
            matched[u] = true;
            matched[v] = true;
            cover.push(u);
            cover.push(v);
        }
    }
    cover.sort_unstable();
    cover
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c5() -> CoverGraph {
        CoverGraph::new(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
    }

    #[test]
    fn cycle_cover() {
        let g = c5();
        let c = exact_min_cover(&g);
        assert!(g.is_cover(&c));
        assert_eq!(c.len(), 3, "C5 needs ⌈5/2⌉ = 3 vertices");
    }

    #[test]
    fn star_cover_is_center() {
        let g = CoverGraph::new(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        let c = exact_min_cover(&g);
        assert_eq!(c, vec![0]);
    }

    #[test]
    fn two_approx_is_cover_and_within_factor_two() {
        for (n, edges) in [
            (5usize, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]),
            (6, vec![(0, 1), (2, 3), (4, 5)]),
            (4, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]),
        ] {
            let g = CoverGraph::new(n, &edges);
            let apx = two_approx_cover(&g);
            assert!(g.is_cover(&apx));
            let opt = exact_min_cover(&g);
            assert!(apx.len() <= 2 * opt.len());
        }
    }

    #[test]
    fn empty_graph_needs_no_cover() {
        let g = CoverGraph::new(4, &[]);
        assert!(exact_min_cover(&g).is_empty());
        assert!(two_approx_cover(&g).is_empty());
        assert!(g.is_cover(&[]));
    }

    #[test]
    fn petersen_like_subcubic() {
        // Theorem 4's reduction works on subcubic graphs; check a cubic
        // example (the 3-prism, VC = 4... verify by brute force).
        let g = CoverGraph::new(
            6,
            &[
                (0, 1),
                (1, 2),
                (2, 0),
                (3, 4),
                (4, 5),
                (5, 3),
                (0, 3),
                (1, 4),
                (2, 5),
            ],
        );
        assert!(g.max_degree() <= 3);
        let c = exact_min_cover(&g);
        assert!(g.is_cover(&c));
        // Brute force check.
        let mut best = usize::MAX;
        for mask in 0u32..(1 << 6) {
            let chosen: Vec<usize> = (0..6).filter(|&i| mask & (1 << i) != 0).collect();
            if g.is_cover(&chosen) {
                best = best.min(chosen.len());
            }
        }
        assert_eq!(c.len(), best);
    }

    #[test]
    fn dedup_and_normalization() {
        let g = CoverGraph::new(3, &[(1, 0), (0, 1)]);
        assert_eq!(g.edges, vec![(0, 1)]);
    }

    #[test]
    fn remove_vertex_drops_incident_edges() {
        let g = c5();
        let g2 = g.remove_vertex(0);
        assert_eq!(g2.edges, vec![(1, 2), (2, 3), (3, 4)]);
        assert_eq!(g2.n, 5);
    }

    #[test]
    fn prune_cover_removes_redundancy() {
        let g = CoverGraph::new(4, &[(0, 1), (1, 2), (2, 3)]);
        let pruned = g.prune_cover(&[0, 1, 2, 3]);
        assert!(g.is_cover(&pruned));
        assert!(pruned.len() <= 2);
    }
}
