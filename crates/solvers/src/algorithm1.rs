//! Algorithm 1 of the paper: polynomial social optimum for 1-2 graphs.
//!
//! > **Algorithm 1** — input a complete 1-2 graph `G = K_n`; while there is
//! > a 1-1-2 triangle in `G`, remove the 2-edge from the triangle.
//!
//! Theorem 6: for any `α ≤ 1` the result is a social optimum. The proof
//! shows OPT has diameter 2, contains all 1-edges, and consequently equals
//! the complete graph minus exactly the 2-edges whose endpoints share a
//! 1-edge neighbor.

use gncg_core::{Game, Profile};
use gncg_graph::{AdjacencyList, NodeId, SymMatrix};

/// Runs Algorithm 1 on a 1-2 host and returns the optimal network.
///
/// # Panics
/// Panics if the host is not a 1-2 matrix.
pub fn algorithm1(host: &SymMatrix) -> AdjacencyList {
    assert!(
        host.pairs().all(|(_, _, w)| w == 1.0 || w == 2.0),
        "Algorithm 1 requires a 1-2 host graph"
    );
    let n = host.n();
    let mut g = AdjacencyList::complete_from_matrix(host);
    // A 2-edge (u, v) sits in a 1-1-2 triangle iff some x has 1-edges to
    // both u and v. Removing such 2-edges never creates new triangles
    // (1-edges are never removed), so one pass suffices.
    let two_edges: Vec<(NodeId, NodeId)> = host
        .pairs()
        .filter(|&(_, _, w)| w == 2.0)
        .map(|(u, v, _)| (u, v))
        .collect();
    for (u, v) in two_edges {
        let in_triangle = (0..n as NodeId)
            .any(|x| x != u && x != v && host.get(u, x) == 1.0 && host.get(x, v) == 1.0);
        if in_triangle {
            g.remove_edge(u, v);
        }
    }
    g
}

/// Algorithm 1 as a single-owner [`Profile`].
pub fn algorithm1_profile(host: &SymMatrix) -> Profile {
    let g = algorithm1(host);
    let edges: Vec<(NodeId, NodeId)> = g.edges().map(|(u, v, _)| (u, v)).collect();
    Profile::from_owned_edges(host.n(), &edges)
}

/// The social cost of the Algorithm 1 network under `α` (Theorem 6: equals
/// the optimal social cost for `α ≤ 1`).
pub fn algorithm1_cost(game: &Game) -> f64 {
    let g = algorithm1(game.host());
    gncg_core::cost::network_social_cost(game, &g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn removes_exactly_triangle_two_edges() {
        // 1-edges: 0-1, 1-2. The 2-edge (0,2) is in a 1-1-2 triangle and
        // must be removed; 2-edges to node 3 stay (no common 1-neighbor).
        let host = gncg_metrics::onetwo::from_one_edges(4, &[(0, 1), (1, 2)]);
        let g = algorithm1(&host);
        assert!(!g.has_edge(0, 2));
        assert!(g.has_edge(0, 3));
        assert!(g.has_edge(1, 3));
        assert!(g.has_edge(2, 3));
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
    }

    #[test]
    fn output_has_diameter_at_most_2_and_all_one_edges() {
        for seed in 0..6u64 {
            let host = gncg_metrics::onetwo::random(8, 0.4, seed);
            let g = algorithm1(&host);
            let d = gncg_graph::apsp::apsp_sequential(&g);
            assert!(d.diameter() <= 2.0 + 1e-12, "seed {seed}");
            for (u, v, w) in host.pairs() {
                if w == 1.0 {
                    assert!(g.has_edge(u, v));
                }
            }
        }
    }

    #[test]
    fn matches_exact_opt_for_alpha_leq_1() {
        for seed in 0..4u64 {
            let host = gncg_metrics::onetwo::random(6, 0.5, seed);
            for alpha in [0.25, 0.5, 0.75, 1.0] {
                let game = Game::new(host.clone(), alpha);
                let exact = crate::opt_exact::social_optimum(&game);
                let alg = algorithm1_cost(&game);
                assert!(
                    gncg_graph::approx_eq(exact.cost, alg),
                    "Algorithm 1 suboptimal: {} vs exact {} (seed {seed}, α {alpha})",
                    alg,
                    exact.cost
                );
            }
        }
    }

    #[test]
    fn all_ones_host_is_left_complete() {
        let host = gncg_metrics::unit::unit_host(5);
        let g = algorithm1(&host);
        assert_eq!(g.m(), 10);
    }

    #[test]
    fn all_twos_host_is_left_complete() {
        // No 1-edges → no 1-1-2 triangles → nothing removed.
        let host = gncg_metrics::onetwo::random(5, 0.0, 0);
        let g = algorithm1(&host);
        assert_eq!(g.m(), 10);
    }

    #[test]
    #[should_panic]
    fn non_one_two_host_rejected() {
        let host = SymMatrix::filled(3, 3.0);
        algorithm1(&host);
    }

    #[test]
    fn profile_realizes_network() {
        let host = gncg_metrics::onetwo::random(7, 0.5, 9);
        let p = algorithm1_profile(&host);
        let game = Game::new(host.clone(), 1.0);
        let from_profile = p.build_network(&game);
        let direct = algorithm1(&host);
        assert_eq!(from_profile.m(), direct.m());
    }
}
