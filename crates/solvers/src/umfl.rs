//! Uncapacitated Metric Facility Location (UMFL) local search.
//!
//! Theorem 3 of the paper reduces an agent's strategy problem to UMFL: for
//! agent `u`, facilities and clients are the other nodes, opening a
//! facility `f` costs `α·w(u, f)` (free if someone already bought an edge
//! *to* `u` from `f`), and serving client `j` from facility `i` costs
//! `w(u, i) + d_{G'}(i, j)` where `G'` is the network without `u`'s own
//! edges. Arya et al.'s locality-gap theorem (any add/drop/swap-stable
//! solution is a 3-approximation) then transfers: **every Greedy
//! Equilibrium is a 3-approximate Nash Equilibrium**.
//!
//! This module implements generic UMFL local search plus the game mapping,
//! giving a polynomial approximate best response.

use std::collections::BTreeSet;

use gncg_core::cost::base_graph_without;
use gncg_core::{Game, Profile};
use gncg_graph::{dijkstra::dijkstra, NodeId};

/// A facility-location instance: `open[i]` is facility `i`'s opening cost,
/// `dist[i][j]` the cost of serving client `j` from facility `i`.
#[derive(Clone, Debug)]
pub struct FacilityLocation {
    /// Opening cost per facility.
    pub open: Vec<f64>,
    /// `dist[i][j]`: service cost, facility-major.
    pub dist: Vec<Vec<f64>>,
    /// Facilities that must stay open (opening cost conventionally 0);
    /// used by the game mapping for edges bought towards the agent.
    pub forced_open: Vec<usize>,
}

impl FacilityLocation {
    /// Number of facilities.
    pub fn facilities(&self) -> usize {
        self.open.len()
    }

    /// Number of clients.
    pub fn clients(&self) -> usize {
        self.dist.first().map_or(0, |d| d.len())
    }

    /// Total cost of a solution (set of open facilities): opening costs
    /// plus each client's distance to its nearest open facility.
    pub fn cost(&self, solution: &BTreeSet<usize>) -> f64 {
        if solution.is_empty() {
            return f64::INFINITY;
        }
        let open_cost: f64 = solution.iter().map(|&i| self.open[i]).sum();
        let mut service = 0.0;
        for j in 0..self.clients() {
            let best = solution
                .iter()
                .map(|&i| self.dist[i][j])
                .fold(f64::INFINITY, f64::min);
            service += best;
        }
        open_cost + service
    }

    /// Local search from `start`: repeatedly applies the best improving
    /// open / close / swap move until none exists. Forced-open facilities
    /// are never closed. Returns the locally-optimal solution.
    pub fn local_search(&self, start: BTreeSet<usize>) -> BTreeSet<usize> {
        let nf = self.facilities();
        let forced: BTreeSet<usize> = self.forced_open.iter().copied().collect();
        let mut sol = start;
        for &f in &forced {
            sol.insert(f);
        }
        let mut cur = self.cost(&sol);
        loop {
            let mut best_sol: Option<(BTreeSet<usize>, f64)> = None;
            let consider =
                |cand: BTreeSet<usize>, cur: f64, best: &mut Option<(BTreeSet<usize>, f64)>| {
                    let c = self.cost(&cand);
                    let incumbent = best.as_ref().map_or(cur, |&(_, b)| b);
                    if c < incumbent - gncg_graph::EPS {
                        *best = Some((cand, c));
                    }
                };
            // Opens.
            for i in 0..nf {
                if !sol.contains(&i) {
                    let mut cand = sol.clone();
                    cand.insert(i);
                    consider(cand, cur, &mut best_sol);
                }
            }
            // Closes.
            for &i in &sol {
                if !forced.contains(&i) {
                    let mut cand = sol.clone();
                    cand.remove(&i);
                    if !cand.is_empty() {
                        consider(cand, cur, &mut best_sol);
                    }
                }
            }
            // Swaps.
            for &i in &sol {
                if forced.contains(&i) {
                    continue;
                }
                for k in 0..nf {
                    if !sol.contains(&k) {
                        let mut cand = sol.clone();
                        cand.remove(&i);
                        cand.insert(k);
                        consider(cand, cur, &mut best_sol);
                    }
                }
            }
            match best_sol {
                Some((s, c)) => {
                    sol = s;
                    cur = c;
                }
                None => return sol,
            }
        }
    }

    /// Exact optimum by subset enumeration (≤ 20 facilities; test oracle).
    pub fn exact(&self) -> BTreeSet<usize> {
        let nf = self.facilities();
        assert!(nf <= 20, "exact UMFL limited to 20 facilities");
        let forced: BTreeSet<usize> = self.forced_open.iter().copied().collect();
        let mut best = (f64::INFINITY, BTreeSet::new());
        for mask in 0u32..(1 << nf) {
            let sol: BTreeSet<usize> = (0..nf).filter(|&i| mask & (1 << i) != 0).collect();
            if !forced.iter().all(|f| sol.contains(f)) {
                continue;
            }
            let c = self.cost(&sol);
            if c < best.0 {
                best = (c, sol);
            }
        }
        best.1
    }
}

/// Builds the Theorem 3 UMFL instance for agent `u`.
///
/// Facility/client index `i` refers to the `i`-th node of `V \ {u}` in
/// increasing node order; [`umfl_index_to_node`] maps back.
pub fn game_to_umfl(game: &Game, profile: &Profile, u: NodeId) -> FacilityLocation {
    let n = game.n();
    let others: Vec<NodeId> = (0..n as NodeId).filter(|&v| v != u).collect();
    let gprime = base_graph_without(game, profile, u);
    // Z: nodes owning an edge towards u.
    let z: Vec<usize> = others
        .iter()
        .enumerate()
        .filter(|&(_, &v)| profile.owns(v, u))
        .map(|(i, _)| i)
        .collect();
    let open: Vec<f64> = others
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            if z.contains(&i) {
                0.0
            } else {
                game.alpha() * game.w(u, v)
            }
        })
        .collect();
    // dist[i][j] = w(u, f_i) + d_{G'}(f_i, c_j).
    let dist: Vec<Vec<f64>> = others
        .iter()
        .map(|&fi| {
            let d = dijkstra(&gprime, fi);
            others
                .iter()
                .map(|&cj| game.w(u, fi) + d[cj as usize])
                .collect()
        })
        .collect();
    FacilityLocation {
        open,
        dist,
        forced_open: z,
    }
}

/// Maps a UMFL facility index back to the node id it represents.
pub fn umfl_index_to_node(u: NodeId, idx: usize, n: usize) -> NodeId {
    let others: Vec<NodeId> = (0..n as NodeId).filter(|&v| v != u).collect();
    others[idx]
}

/// Polynomial approximate best response via UMFL local search: returns the
/// strategy (set of nodes to buy towards) and its cost for the agent.
///
/// By Theorem 3's locality-gap argument the result costs at most 3× the
/// exact best response when the host is metric.
pub fn best_response_umfl(game: &Game, profile: &Profile, u: NodeId) -> (BTreeSet<NodeId>, f64) {
    let inst = game_to_umfl(game, profile, u);
    // Seed with the current strategy of u (mapped to indices).
    let n = game.n();
    let others: Vec<NodeId> = (0..n as NodeId).filter(|&v| v != u).collect();
    let start: BTreeSet<usize> = others
        .iter()
        .enumerate()
        .filter(|&(_, &v)| profile.owns(u, v))
        .map(|(i, _)| i)
        .collect();
    let sol = inst.local_search(start);
    let strategy: BTreeSet<NodeId> = sol
        .iter()
        .filter(|&&i| !inst.forced_open.contains(&i)) // forced = edges towards u, not bought by u
        .map(|&i| others[i])
        .collect();
    // Price the strategy with the true cost engine.
    let base = base_graph_without(game, profile, u);
    let cost = gncg_core::cost::candidate_cost(game, &base, u, &strategy).total();
    (strategy, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gncg_graph::SymMatrix;

    #[test]
    fn umfl_cost_and_local_search_basic() {
        // Two facilities, three clients; facility 0 cheap and close.
        let inst = FacilityLocation {
            open: vec![1.0, 10.0],
            dist: vec![vec![1.0, 1.0, 1.0], vec![0.5, 0.5, 0.5]],
            forced_open: vec![],
        };
        let sol = inst.local_search(BTreeSet::new());
        assert_eq!(sol, [0usize].into_iter().collect());
        assert_eq!(inst.cost(&sol), 4.0);
    }

    #[test]
    fn local_search_matches_exact_on_random_instances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..6u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let nf = 5;
            let nc = 5;
            let open: Vec<f64> = (0..nf).map(|_| rng.gen_range(0.5..3.0)).collect();
            // Metric-ish distances from random points on a line.
            let fpos: Vec<f64> = (0..nf).map(|_| rng.gen_range(0.0..10.0)).collect();
            let cpos: Vec<f64> = (0..nc).map(|_| rng.gen_range(0.0..10.0)).collect();
            let dist: Vec<Vec<f64>> = fpos
                .iter()
                .map(|&f| cpos.iter().map(|&c| (f - c).abs()).collect())
                .collect();
            let inst = FacilityLocation {
                open,
                dist,
                forced_open: vec![],
            };
            let ls = inst.local_search(BTreeSet::new());
            let ex = inst.exact();
            // Locality gap 3 for metric instances; on these tiny instances
            // local search is typically optimal — assert the guarantee.
            assert!(inst.cost(&ls) <= 3.0 * inst.cost(&ex) + 1e-9, "seed {seed}");
            assert!(inst.cost(&ls) >= inst.cost(&ex) - 1e-9);
        }
    }

    #[test]
    fn forced_facilities_stay_open() {
        let inst = FacilityLocation {
            open: vec![0.0, 0.1],
            dist: vec![vec![100.0], vec![0.0]],
            forced_open: vec![0],
        };
        let sol = inst.local_search(BTreeSet::new());
        assert!(sol.contains(&0));
        assert!(sol.contains(&1)); // still worth opening
    }

    #[test]
    fn umfl_br_close_to_exact_br() {
        // On small metric instances the UMFL response must be within 3× of
        // the exact best response (Theorem 3).
        for seed in 0..4u64 {
            let host = gncg_metrics::arbitrary::random_metric(7, 1.0, 4.0, seed);
            let game = Game::new(host, 1.5);
            let p = Profile::star(7, 0);
            for agent in 1..7 {
                let exact = gncg_core::response::exact_best_response(&game, &p, agent);
                let (_, umfl_cost) = best_response_umfl(&game, &p, agent);
                assert!(
                    umfl_cost <= 3.0 * exact.cost + 1e-9,
                    "agent {agent} seed {seed}: umfl {umfl_cost} vs exact {}",
                    exact.cost
                );
                assert!(umfl_cost >= exact.cost - 1e-9);
            }
        }
    }

    #[test]
    fn umfl_br_cost_is_real() {
        // The reported cost must equal the cost of actually playing the
        // strategy.
        let host = gncg_metrics::arbitrary::random_metric(6, 1.0, 3.0, 11);
        let game = Game::new(host, 1.0);
        let mut p = Profile::star(6, 2);
        p.buy(4, 1);
        let (strategy, cost) = best_response_umfl(&game, &p, 4);
        let mut p2 = p.clone();
        p2.set_strategy(4, strategy);
        let real = gncg_core::cost::agent_cost(&game, &p2, 4).total();
        assert!(gncg_graph::approx_eq(cost, real));
    }

    #[test]
    fn mapping_costs_are_faithful() {
        // UMFL objective of the mapped instance equals the agent's cost.
        let game = Game::new(SymMatrix::filled(5, 1.0), 2.0);
        let p = Profile::star(5, 0);
        let u: NodeId = 3;
        let inst = game_to_umfl(&game, &p, u);
        // u's current strategy is empty, served through forced-open 0
        // (0 bought the edge to u)... 0 owns edges to everyone, so facility
        // "0" is forced open. Solution = forced only.
        let sol: BTreeSet<usize> = inst.forced_open.iter().copied().collect();
        let mapped = inst.cost(&sol);
        let real = gncg_core::cost::agent_cost(&game, &p, u).total();
        assert!(gncg_graph::approx_eq(mapped, real));
    }
}
