//! `T–GNCG` social optimum: the defining tree (Corollary 3).
//!
//! For a host that is the metric closure of a weighted tree `T`, `T` itself
//! both minimizes the social cost and is a NE (with an appropriate
//! ownership assignment), so the Price of Stability of the T–GNCG is 1.

use gncg_core::{Game, Profile};
use gncg_graph::{NodeId, WeightedTree};

/// The defining tree as a single-owner profile (each edge bought by the
/// endpoint closer to the root 0 — any assignment works for social cost).
pub fn tree_optimum_profile(tree: &WeightedTree) -> Profile {
    let edges: Vec<(NodeId, NodeId)> = tree.edges().iter().map(|&(u, v, _)| (u, v)).collect();
    Profile::from_owned_edges(tree.n(), &edges)
}

/// Social cost of the defining tree under `game` (which must be built from
/// `tree.metric_closure()` for the optimality guarantee to apply).
pub fn tree_optimum_cost(game: &Game, tree: &WeightedTree) -> f64 {
    gncg_core::cost::network_social_cost(game, &tree.as_graph())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_beats_exact_search() {
        // On closures of small random trees the defining tree must match
        // the exact optimum (Corollary 3).
        for seed in 0..4u64 {
            let tree = gncg_metrics::treemetric::random_tree(6, 1.0, 3.0, seed);
            let host = tree.metric_closure();
            for alpha in [0.5, 1.0, 2.0, 5.0] {
                let game = Game::new(host.clone(), alpha);
                let exact = crate::opt_exact::social_optimum(&game);
                let tree_cost = tree_optimum_cost(&game, &tree);
                assert!(
                    gncg_graph::approx_eq(exact.cost, tree_cost),
                    "tree not optimal: {} vs {} (seed {seed}, α {alpha})",
                    tree_cost,
                    exact.cost
                );
            }
        }
    }

    #[test]
    fn profile_builds_the_tree() {
        let tree = gncg_metrics::treemetric::random_tree(8, 1.0, 2.0, 1);
        let host = tree.metric_closure();
        let game = Game::new(host, 1.0);
        let p = tree_optimum_profile(&tree);
        let g = p.build_network(&game);
        assert!(g.is_tree());
        assert!(gncg_graph::approx_eq(g.total_weight(), tree.total_weight()));
    }

    #[test]
    fn star_tree_cost_formula() {
        // Star with n-1 edges of weight w: social cost
        // = α·W + Σ_u d(u, V) where W = (n-1)w.
        // Center: (n-1)w. Each leaf: w + 2w(n-2).
        let n = 6;
        let wt = 2.0;
        let tree = WeightedTree::star(n, wt);
        let game = Game::new(tree.metric_closure(), 3.0);
        let cost = tree_optimum_cost(&game, &tree);
        let nn = n as f64;
        let expected =
            3.0 * (nn - 1.0) * wt + (nn - 1.0) * wt + (nn - 1.0) * (wt + 2.0 * wt * (nn - 2.0));
        assert!(gncg_graph::approx_eq(cost, expected));
    }
}
