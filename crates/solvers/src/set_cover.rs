//! Minimum Set Cover — the substrate of the best-response NP-hardness
//! reductions (Theorems 13 and 16).
//!
//! Universe `U = {0, …, k-1}`, collection `X = {X_1, …, X_m}` with
//! `∪ X_i = U`; find the fewest subsets covering `U`. Exact solver for the
//! gadget sizes (bitmask branch-and-bound) plus the classical greedy
//! `ln n`-approximation.

/// A set cover instance.
#[derive(Clone, Debug)]
pub struct SetCoverInstance {
    /// Universe size `k` (elements are `0..k`).
    pub universe: usize,
    /// The subsets, each a sorted list of elements.
    pub sets: Vec<Vec<usize>>,
}

impl SetCoverInstance {
    /// Builds an instance, validating element ranges and coverage.
    ///
    /// # Panics
    /// Panics if an element is out of range or the union misses an element.
    pub fn new(universe: usize, sets: Vec<Vec<usize>>) -> Self {
        assert!(universe <= 63, "bitmask solver supports ≤ 63 elements");
        let mut covered = 0u64;
        for s in &sets {
            for &e in s {
                assert!(e < universe, "element {e} out of range");
                covered |= 1 << e;
            }
        }
        assert_eq!(
            covered,
            if universe == 0 {
                0
            } else {
                (1u64 << universe) - 1
            },
            "sets do not cover the universe"
        );
        SetCoverInstance { universe, sets }
    }

    fn masks(&self) -> Vec<u64> {
        self.sets
            .iter()
            .map(|s| s.iter().fold(0u64, |m, &e| m | (1 << e)))
            .collect()
    }

    /// Whether a choice of set indices covers the universe.
    pub fn is_cover(&self, chosen: &[usize]) -> bool {
        let masks = self.masks();
        let full = if self.universe == 0 {
            0
        } else {
            (1u64 << self.universe) - 1
        };
        let got = chosen.iter().fold(0u64, |m, &i| m | masks[i]);
        got == full
    }
}

/// Exact minimum set cover via branch-and-bound over uncovered elements.
/// Returns the chosen set indices (sorted).
pub fn exact_min_cover(inst: &SetCoverInstance) -> Vec<usize> {
    let masks = inst.masks();
    let full: u64 = if inst.universe == 0 {
        0
    } else {
        (1u64 << inst.universe) - 1
    };
    let mut best: Vec<usize> = (0..inst.sets.len()).collect(); // all sets
    let mut cur: Vec<usize> = Vec::new();
    fn rec(masks: &[u64], full: u64, covered: u64, cur: &mut Vec<usize>, best: &mut Vec<usize>) {
        if covered == full {
            if cur.len() < best.len() {
                *best = cur.clone();
            }
            return;
        }
        if cur.len() + 1 >= best.len() {
            // Even one more set cannot beat the incumbent unless it
            // finishes the cover; handled implicitly below.
        }
        if cur.len() >= best.len() {
            return;
        }
        // Branch on the lowest uncovered element: some chosen set must
        // contain it.
        let e = (!covered & full).trailing_zeros() as u64;
        for (i, &m) in masks.iter().enumerate() {
            if m & (1 << e) != 0 {
                cur.push(i);
                rec(masks, full, covered | m, cur, best);
                cur.pop();
            }
        }
    }
    rec(&masks, full, 0, &mut cur, &mut best);
    best.sort_unstable();
    best
}

/// Greedy set cover: repeatedly take the set covering the most uncovered
/// elements (`H_k ≈ ln k` approximation). Returns chosen indices in pick
/// order.
pub fn greedy_cover(inst: &SetCoverInstance) -> Vec<usize> {
    let masks = inst.masks();
    let full: u64 = if inst.universe == 0 {
        0
    } else {
        (1u64 << inst.universe) - 1
    };
    let mut covered = 0u64;
    let mut chosen = Vec::new();
    while covered != full {
        let (i, gain) = masks
            .iter()
            .enumerate()
            .map(|(i, &m)| (i, (m & !covered).count_ones()))
            .max_by_key(|&(_, g)| g)
            .expect("instance covers universe");
        assert!(gain > 0, "no progress — invalid instance");
        covered |= masks[i];
        chosen.push(i);
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetCoverInstance {
        // U = {0..4}; optimal cover = {0,1,2,3,4} via 2 sets.
        SetCoverInstance::new(
            5,
            vec![
                vec![0, 1, 2],
                vec![2, 3],
                vec![3, 4],
                vec![0, 4],
                vec![1, 3],
            ],
        )
    }

    #[test]
    fn exact_finds_minimum() {
        let inst = small();
        let c = exact_min_cover(&inst);
        assert!(inst.is_cover(&c));
        assert_eq!(c.len(), 2, "optimal cover uses 2 sets, got {c:?}");
    }

    #[test]
    fn greedy_is_valid_cover() {
        let inst = small();
        let c = greedy_cover(&inst);
        assert!(inst.is_cover(&c));
        assert!(c.len() >= exact_min_cover(&inst).len());
    }

    #[test]
    fn single_set_instance() {
        let inst = SetCoverInstance::new(3, vec![vec![0, 1, 2], vec![0]]);
        assert_eq!(exact_min_cover(&inst), vec![0]);
        assert_eq!(greedy_cover(&inst), vec![0]);
    }

    #[test]
    fn greedy_classic_worst_case_still_covers() {
        // Classic greedy trap: two big "row" sets vs log small ones.
        let inst = SetCoverInstance::new(
            6,
            vec![vec![0, 2, 4], vec![1, 3, 5], vec![0, 1], vec![2, 3, 4, 5]],
        );
        let g = greedy_cover(&inst);
        assert!(inst.is_cover(&g));
        let e = exact_min_cover(&inst);
        assert_eq!(e.len(), 2);
    }

    #[test]
    #[should_panic]
    fn uncoverable_rejected() {
        SetCoverInstance::new(3, vec![vec![0, 1]]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_rejected() {
        SetCoverInstance::new(2, vec![vec![0, 5]]);
    }

    #[test]
    fn exhaustive_check_against_bruteforce() {
        // All instances on 4 elements with 4 fixed sets.
        let inst = SetCoverInstance::new(
            4,
            vec![vec![0], vec![1], vec![2, 3], vec![0, 1, 2], vec![1, 3]],
        );
        let exact = exact_min_cover(&inst);
        // Brute force over all subsets of sets.
        let mut best = usize::MAX;
        for mask in 1u32..(1 << inst.sets.len()) {
            let chosen: Vec<usize> = (0..inst.sets.len())
                .filter(|&i| mask & (1 << i) != 0)
                .collect();
            if inst.is_cover(&chosen) {
                best = best.min(chosen.len());
            }
        }
        assert_eq!(exact.len(), best);
    }
}
