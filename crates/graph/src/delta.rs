//! [`NetworkDelta`]: the batched edge-change description every network
//! mutation in the workspace flows through.
//!
//! A delta is an ordered batch of edge **removals** followed by edge
//! **insertions** (a reweight is a removal plus an insertion of the same
//! pair; a swap is a removal of one pair plus an insertion of another).
//! Producers — the dynamics engine's move application, the base-graph
//! derivation in `gncg_core::cost` — describe *what* changes; consumers
//! decide *how* to apply it:
//!
//! * [`NetworkDelta::apply_to`] mutates an [`AdjacencyList`] in place
//!   (removals first, then insertions — the staging order every consumer
//!   shares);
//! * `gncg_dynamics::EvalContext::apply_delta` stages the same order
//!   edge by edge through its live network **and** delta-updates every
//!   warm [`DynamicSssp`](crate::csr::DynamicSssp) distance vector
//!   alongside ([`DynamicSssp::remove_edge`](crate::csr::DynamicSssp::remove_edge)
//!   for removals, [`DynamicSssp::relax_insert`](crate::csr::DynamicSssp::relax_insert)
//!   for insertions), so no change of any kind invalidates a vector.
//!
//! Staging matters: a dynamic SSSP update is exact only when the graph it
//! relaxes over is in the exact post-single-change state, so batch
//! consumers must apply one edge at a time — which is why the delta keeps
//! removals and insertions as explicit lists instead of a merged set.

use crate::{AdjacencyList, NodeId};

/// A batched, ordered description of how a network changes: removals
/// first, then insertions. See the module docs for the staging contract.
///
/// The buffers are reusable: call [`NetworkDelta::clear`] between batches
/// to keep the allocations.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NetworkDelta {
    removes: Vec<(NodeId, NodeId, f64)>,
    inserts: Vec<(NodeId, NodeId, f64)>,
}

impl NetworkDelta {
    /// An empty delta.
    pub fn new() -> Self {
        NetworkDelta::default()
    }

    /// Empties both change lists, keeping the allocations.
    pub fn clear(&mut self) {
        self.removes.clear();
        self.inserts.clear();
    }

    /// Whether the delta describes no change.
    pub fn is_empty(&self) -> bool {
        self.removes.is_empty() && self.inserts.is_empty()
    }

    /// Whether the delta removes at least one edge (the case that
    /// historically invalidated every warm distance vector).
    pub fn has_removals(&self) -> bool {
        !self.removes.is_empty()
    }

    /// Records the removal of undirected edge `(a, b)` whose current
    /// weight is `w` (recorded so the delta is invertible and so
    /// invalidate-and-redo baselines can replay it).
    pub fn remove(&mut self, a: NodeId, b: NodeId, w: f64) {
        self.removes.push((a, b, w));
    }

    /// Records the insertion of undirected edge `(a, b)` with weight `w`.
    pub fn insert(&mut self, a: NodeId, b: NodeId, w: f64) {
        self.inserts.push((a, b, w));
    }

    /// Records a reweight of `(a, b)` from `old_w` to `new_w` — by
    /// construction a removal followed by an insertion, so every consumer
    /// handles it with the two primitives it already has.
    pub fn reweight(&mut self, a: NodeId, b: NodeId, old_w: f64, new_w: f64) {
        self.remove(a, b, old_w);
        self.insert(a, b, new_w);
    }

    /// Records a swap: drop `(a, b)` (current weight `drop_w`), gain
    /// `(c, d)` (weight `add_w`) — the move kind that dominates high-α
    /// dynamics rounds.
    pub fn swap(&mut self, a: NodeId, b: NodeId, drop_w: f64, c: NodeId, d: NodeId, add_w: f64) {
        self.remove(a, b, drop_w);
        self.insert(c, d, add_w);
    }

    /// The recorded removals, in order.
    pub fn removes(&self) -> &[(NodeId, NodeId, f64)] {
        &self.removes
    }

    /// The recorded insertions, in order.
    pub fn inserts(&self) -> &[(NodeId, NodeId, f64)] {
        &self.inserts
    }

    /// Applies the delta to a graph: removals first, then insertions
    /// (skipping pairs already present — re-inserting an existing edge is
    /// a no-op, matching the dedup rule of the game layer).
    pub fn apply_to(&self, g: &mut AdjacencyList) {
        for &(a, b, _) in &self.removes {
            g.remove_edge(a, b);
        }
        for &(a, b, w) in &self.inserts {
            if !g.has_edge(a, b) {
                g.add_edge(a, b, w);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_to_stages_removals_before_insertions() {
        let mut g = AdjacencyList::from_edges(4, &[(0, 1, 1.0), (1, 2, 2.0)]);
        let mut d = NetworkDelta::new();
        d.swap(1, 2, 2.0, 2, 3, 0.5);
        d.apply_to(&mut g);
        assert!(!g.has_edge(1, 2));
        assert!(g.has_edge(2, 3));
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn reweight_is_remove_plus_insert() {
        let mut g = AdjacencyList::from_edges(2, &[(0, 1, 1.0)]);
        let mut d = NetworkDelta::new();
        d.reweight(0, 1, 1.0, 3.0);
        assert_eq!(d.removes().len(), 1);
        assert_eq!(d.inserts().len(), 1);
        d.apply_to(&mut g);
        assert_eq!(g.edge_weight(0, 1), Some(3.0));
        assert_eq!(g.m(), 1);
    }

    #[test]
    fn duplicate_insert_is_a_noop() {
        let mut g = AdjacencyList::from_edges(2, &[(0, 1, 1.0)]);
        let mut d = NetworkDelta::new();
        d.insert(0, 1, 9.0);
        d.apply_to(&mut g);
        assert_eq!(g.m(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(1.0), "first weight wins");
    }

    #[test]
    fn clear_keeps_a_reusable_delta() {
        let mut d = NetworkDelta::new();
        d.insert(0, 1, 1.0);
        d.remove(2, 3, 1.0);
        assert!(!d.is_empty());
        assert!(d.has_removals());
        d.clear();
        assert!(d.is_empty());
        assert!(!d.has_removals());
    }
}
