//! Shortest-path trees with predecessor tracking and path extraction.
//!
//! The main solvers only need distance *values*; this module adds the
//! actual routes, used by the examples (to print equilibrium routes), by
//! the Theorem 12 diagnostics (which edges a deviation re-routes), and by
//! edge-load accounting.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::{AdjacencyList, NodeId};

/// A shortest-path tree from a single source.
#[derive(Clone, Debug)]
pub struct ShortestPathTree {
    /// The source node.
    pub source: NodeId,
    /// Distance per node (∞ when unreachable).
    pub dist: Vec<f64>,
    /// Predecessor per node on one shortest path (`None` for the source
    /// and for unreachable nodes).
    pub pred: Vec<Option<NodeId>>,
}

impl ShortestPathTree {
    /// Extracts the path `source → target` as a node list (inclusive).
    /// Returns `None` if `target` is unreachable.
    pub fn path_to(&self, target: NodeId) -> Option<Vec<NodeId>> {
        if self.dist[target as usize].is_infinite() {
            return None;
        }
        let mut path = vec![target];
        let mut cur = target;
        while let Some(p) = self.pred[cur as usize] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        debug_assert_eq!(path[0], self.source);
        Some(path)
    }

    /// Number of hops (edges) on the extracted path to `target`.
    pub fn hops_to(&self, target: NodeId) -> Option<usize> {
        self.path_to(target).map(|p| p.len() - 1)
    }
}

#[derive(Copy, Clone)]
struct Entry {
    dist: f64,
    node: NodeId,
}
impl PartialEq for Entry {
    fn eq(&self, o: &Self) -> bool {
        self.dist == o.dist && self.node == o.node
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
        Some(self.cmp(o))
    }
}
impl Ord for Entry {
    fn cmp(&self, o: &Self) -> Ordering {
        o.dist
            .total_cmp(&self.dist)
            .then_with(|| o.node.cmp(&self.node))
    }
}

/// Dijkstra with predecessor tracking.
pub fn shortest_path_tree(g: &AdjacencyList, source: NodeId) -> ShortestPathTree {
    let n = g.n();
    let mut dist = vec![f64::INFINITY; n];
    let mut pred: Vec<Option<NodeId>> = vec![None; n];
    let mut heap = BinaryHeap::with_capacity(n);
    dist[source as usize] = 0.0;
    heap.push(Entry {
        dist: 0.0,
        node: source,
    });
    while let Some(Entry { dist: d, node: u }) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        for &(v, w) in g.neighbors(u) {
            let nd = d + w;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                pred[v as usize] = Some(u);
                heap.push(Entry { dist: nd, node: v });
            }
        }
    }
    ShortestPathTree { source, dist, pred }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> AdjacencyList {
        AdjacencyList::from_edges(4, &[(0, 1, 1.0), (1, 3, 1.0), (0, 2, 3.0), (2, 3, 1.0)])
    }

    #[test]
    fn tree_distances_match_dijkstra() {
        let g = diamond();
        let t = shortest_path_tree(&g, 0);
        assert_eq!(t.dist, crate::dijkstra::dijkstra(&g, 0));
    }

    #[test]
    fn path_extraction() {
        let g = diamond();
        let t = shortest_path_tree(&g, 0);
        assert_eq!(t.path_to(3), Some(vec![0, 1, 3]));
        assert_eq!(t.hops_to(3), Some(2));
        assert_eq!(t.path_to(0), Some(vec![0]));
        assert_eq!(t.hops_to(0), Some(0));
    }

    #[test]
    fn unreachable_path_is_none() {
        let mut g = AdjacencyList::new(3);
        g.add_edge(0, 1, 1.0);
        let t = shortest_path_tree(&g, 0);
        assert_eq!(t.path_to(2), None);
        assert_eq!(t.hops_to(2), None);
    }

    #[test]
    fn path_weights_sum_to_distance() {
        let g = diamond();
        let t = shortest_path_tree(&g, 2);
        for target in 0..4u32 {
            if let Some(path) = t.path_to(target) {
                let mut total = 0.0;
                for w in path.windows(2) {
                    total += g.edge_weight(w[0], w[1]).unwrap();
                }
                assert!(crate::approx_eq(total, t.dist[target as usize]));
            }
        }
    }
}
