//! Sparse weighted undirected graphs (the built networks `G(s)`).
//!
//! Strategy profiles of the game induce sparse subgraphs of the complete
//! host graph; shortest-path computations run on this adjacency-list
//! representation.

use crate::{NodeId, SymMatrix};

/// An undirected weighted graph stored as per-node adjacency lists.
///
/// Parallel edges are not deduplicated on insertion; callers that need
/// uniqueness (the game layer does) must check [`AdjacencyList::has_edge`]
/// first or build via [`AdjacencyList::from_edges`].
#[derive(Clone, Debug, Default)]
pub struct AdjacencyList {
    adj: Vec<Vec<(NodeId, f64)>>,
    m: usize,
}

impl AdjacencyList {
    /// Creates an empty graph on `n` nodes.
    pub fn new(n: usize) -> Self {
        AdjacencyList {
            adj: vec![Vec::new(); n],
            m: 0,
        }
    }

    /// Builds a graph from an edge list, ignoring duplicate pairs
    /// (the first weight wins).
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId, f64)]) -> Self {
        let mut g = AdjacencyList::new(n);
        for &(u, v, w) in edges {
            if !g.has_edge(u, v) {
                g.add_edge(u, v, w);
            }
        }
        g
    }

    /// Builds the complete graph described by a weight matrix, skipping
    /// non-finite entries (used for `1-∞` host graphs, where `∞` encodes a
    /// forbidden edge).
    pub fn complete_from_matrix(w: &SymMatrix) -> Self {
        let mut g = AdjacencyList::new(w.n());
        for (u, v, wt) in w.pairs() {
            if wt.is_finite() {
                g.add_edge(u, v, wt);
            }
        }
        g
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Adds undirected edge `(u, v)` with weight `w`.
    ///
    /// # Panics
    /// Panics on self-loops.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, w: f64) {
        assert_ne!(u, v, "self-loops are not allowed");
        self.adj[u as usize].push((v, w));
        self.adj[v as usize].push((u, w));
        self.m += 1;
    }

    /// Removes undirected edge `(u, v)` if present; returns whether an edge
    /// was removed.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        let before = self.adj[u as usize].len();
        self.adj[u as usize].retain(|&(x, _)| x != v);
        let removed = self.adj[u as usize].len() < before;
        if removed {
            self.adj[v as usize].retain(|&(x, _)| x != u);
            self.m -= 1;
        }
        removed
    }

    /// Returns the weight of edge `(u, v)` if present.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<f64> {
        self.adj[u as usize]
            .iter()
            .find(|&&(x, _)| x == v)
            .map(|&(_, w)| w)
    }

    /// Whether edge `(u, v)` is present.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.adj[u as usize].iter().any(|&(x, _)| x == v)
    }

    /// Neighbors of `u` with edge weights.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[(NodeId, f64)] {
        &self.adj[u as usize]
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.adj[u as usize].len()
    }

    /// Iterates over undirected edges `(u, v, w)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, nbrs)| {
            nbrs.iter()
                .filter(move |&&(v, _)| (u as NodeId) < v)
                .map(move |&(v, w)| (u as NodeId, v, w))
        })
    }

    /// Total weight of all edges.
    pub fn total_weight(&self) -> f64 {
        self.edges().map(|(_, _, w)| w).sum()
    }

    /// Whether the graph is connected (singleton graphs are connected;
    /// the empty graph on 0 nodes is connected by convention).
    pub fn is_connected(&self) -> bool {
        let n = self.n();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0 as NodeId];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &(v, _) in self.neighbors(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == n
    }

    /// Whether the graph is acyclic (a forest). Combined with
    /// [`AdjacencyList::is_connected`] this checks treeness — the structure
    /// Theorem 12 of the paper proves for every NE under tree metrics.
    pub fn is_forest(&self) -> bool {
        // A forest on n nodes with c components has exactly n - c edges.
        let n = self.n();
        if n == 0 {
            return true;
        }
        let mut uf = crate::unionfind::UnionFind::new(n);
        for (u, v, _) in self.edges() {
            if !uf.union(u as usize, v as usize) {
                return false;
            }
        }
        true
    }

    /// Whether the graph is a tree (connected and acyclic).
    pub fn is_tree(&self) -> bool {
        self.is_connected() && self.is_forest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> AdjacencyList {
        AdjacencyList::from_edges(3, &[(0, 1, 1.0), (1, 2, 2.0)])
    }

    #[test]
    fn add_and_query() {
        let g = path3();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.edge_weight(1, 2), Some(2.0));
        assert_eq!(g.edge_weight(0, 2), None);
    }

    #[test]
    fn remove_edge_works() {
        let mut g = path3();
        assert!(g.remove_edge(0, 1));
        assert!(!g.has_edge(0, 1));
        assert_eq!(g.m(), 1);
        assert!(!g.remove_edge(0, 1));
    }

    #[test]
    fn from_edges_dedups() {
        let g = AdjacencyList::from_edges(2, &[(0, 1, 1.0), (1, 0, 5.0)]);
        assert_eq!(g.m(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(1.0));
    }

    #[test]
    #[should_panic]
    fn self_loop_panics() {
        let mut g = AdjacencyList::new(2);
        g.add_edge(1, 1, 1.0);
    }

    #[test]
    fn connectivity() {
        let g = path3();
        assert!(g.is_connected());
        let mut g2 = g.clone();
        g2.remove_edge(1, 2);
        assert!(!g2.is_connected());
        assert!(AdjacencyList::new(1).is_connected());
        assert!(AdjacencyList::new(0).is_connected());
    }

    #[test]
    fn tree_detection() {
        let g = path3();
        assert!(g.is_tree());
        let mut cyc = g.clone();
        cyc.add_edge(0, 2, 1.0);
        assert!(!cyc.is_forest());
        assert!(!cyc.is_tree());
        let mut forest = AdjacencyList::new(4);
        forest.add_edge(0, 1, 1.0);
        forest.add_edge(2, 3, 1.0);
        assert!(forest.is_forest());
        assert!(!forest.is_tree());
    }

    #[test]
    fn edges_iterator_and_weight() {
        let g = path3();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 2);
        assert_eq!(g.total_weight(), 3.0);
    }

    #[test]
    fn complete_from_matrix_skips_infinite() {
        let mut w = SymMatrix::filled(3, 1.0);
        w.set(0, 2, f64::INFINITY);
        let g = AdjacencyList::complete_from_matrix(&w);
        assert_eq!(g.m(), 2);
        assert!(!g.has_edge(0, 2));
    }
}
