//! # gncg-graph
//!
//! Weighted-graph substrate for the reproduction of *Geometric Network
//! Creation Games* (Bilò, Friedrich, Lenzner, Melnichenko — SPAA 2019).
//!
//! The game is played on a **complete undirected weighted host graph**
//! `H = (V, E(H))`; strategies select a subgraph `G(s)` of `H`, and agent
//! costs depend on shortest-path distances in `G(s)`. This crate provides
//! everything below the game layer:
//!
//! * [`SymMatrix`] — dense symmetric `f64` weight storage for host graphs,
//! * [`AdjacencyList`] — sparse built networks `G(s)`,
//! * [`csr`] — CSR graph snapshots, the allocation-free
//!   [`DijkstraScratch`], and the [`DynamicSssp`] engine (undo-logged
//!   insertions plus Ramalingam–Reps deletion repair) under the
//!   incremental best-response search and the dynamics engine's warm
//!   distance vectors,
//! * [`delta`] — [`NetworkDelta`], the batched edge-change description
//!   every network mutation flows through,
//! * [`dijkstra`] / [`apsp`] — single-source and (rayon-parallel) all-pairs
//!   shortest paths, running on the scratch engine,
//! * [`mst`] — Prim/Kruskal minimum spanning trees,
//! * [`tree`] — edge-weighted trees and their metric closure (the `T–GNCG`
//!   host-graph factory substrate),
//! * [`spanner`] — `k`-spanner verification (Lemmas 1 and 2 of the paper),
//! * [`stats`] — distance cost, diameter, eccentricity, connectivity,
//! * [`unionfind`] — disjoint sets used by Kruskal and cycle checks.
//!
//! Everything is index-based: nodes are `u32` ids in `0..n`.

pub mod adjacency;
pub mod apsp;
pub mod bfs;
pub mod csr;
pub mod delta;
pub mod dijkstra;
pub mod matrix;
pub mod mst;
pub mod paths;
pub mod spanner;
pub mod stats;
pub mod tree;
pub mod unionfind;

pub use adjacency::AdjacencyList;
pub use apsp::DistanceMatrix;
pub use csr::{Csr, DijkstraScratch, DynamicSssp, EdgeSource, IncrementalSssp, MaskedEdges};
pub use delta::NetworkDelta;
pub use matrix::SymMatrix;
pub use tree::WeightedTree;

/// Node identifier. All graphs in this workspace are indexed `0..n`.
pub type NodeId = u32;

/// Numeric tolerance used for all strict-improvement comparisons in the
/// workspace. Construction weights in the paper are rational and chosen so
/// that every relevant comparison clears this tolerance by orders of
/// magnitude.
pub const EPS: f64 = 1e-9;

/// Returns `true` if `a` is strictly smaller than `b` beyond the workspace
/// tolerance [`EPS`]. Infinite values are handled absorbingly:
/// `strictly_less(f64::INFINITY, f64::INFINITY)` is `false`.
#[inline]
pub fn strictly_less(a: f64, b: f64) -> bool {
    if a.is_infinite() && b.is_infinite() {
        return false;
    }
    if b.is_infinite() {
        return a.is_finite();
    }
    a < b - EPS
}

/// Returns `true` if `a` and `b` are equal within the workspace tolerance.
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    if a.is_infinite() || b.is_infinite() {
        return a == b;
    }
    (a - b).abs() <= EPS
}

/// Returns `true` if `a <= b` within the workspace tolerance.
#[inline]
pub fn approx_le(a: f64, b: f64) -> bool {
    a <= b + EPS || (a.is_infinite() && b.is_infinite())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strictly_less_basic() {
        assert!(strictly_less(1.0, 2.0));
        assert!(!strictly_less(2.0, 1.0));
        assert!(!strictly_less(1.0, 1.0));
    }

    #[test]
    fn strictly_less_respects_tolerance() {
        assert!(!strictly_less(1.0, 1.0 + EPS / 2.0));
        assert!(strictly_less(1.0, 1.0 + 1e-6));
    }

    #[test]
    fn strictly_less_infinities() {
        assert!(!strictly_less(f64::INFINITY, f64::INFINITY));
        assert!(strictly_less(1.0, f64::INFINITY));
        assert!(!strictly_less(f64::INFINITY, 1.0));
    }

    #[test]
    fn approx_eq_basic() {
        assert!(approx_eq(1.0, 1.0));
        assert!(approx_eq(1.0, 1.0 + EPS / 10.0));
        assert!(!approx_eq(1.0, 1.001));
        assert!(approx_eq(f64::INFINITY, f64::INFINITY));
        assert!(!approx_eq(f64::INFINITY, 1.0));
    }

    #[test]
    fn approx_le_basic() {
        assert!(approx_le(1.0, 1.0));
        assert!(approx_le(1.0, 2.0));
        assert!(!approx_le(2.0, 1.0));
        assert!(approx_le(f64::INFINITY, f64::INFINITY));
        assert!(approx_le(1.0, f64::INFINITY));
    }
}
