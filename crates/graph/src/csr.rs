//! CSR graph views and allocation-free shortest-path engines.
//!
//! The game layer prices candidate strategies millions of times per
//! experiment; this module supplies the machinery that makes every one of
//! those SSSP calls allocation-free and cache-friendly:
//!
//! * [`Csr`] — a compressed-sparse-row snapshot of an [`AdjacencyList`]
//!   (flat offsets + packed neighbor/weight arrays), built once per search
//!   and shared by every relaxation over it,
//! * [`EdgeSource`] — the closure-based neighbor-iteration trait both
//!   graph representations implement, so one Dijkstra serves both,
//! * [`DijkstraScratch`] — generation-stamped dist array + a drained,
//!   reused binary heap: repeated SSSP calls allocate nothing after the
//!   first (the stamp bump replaces the `O(n)` re-initialisation),
//! * [`DynamicSssp`] — a distance vector maintained under edge
//!   **insertions** (undo-logged [`DynamicSssp::add_edge`] for the
//!   best-response branch-and-bound in `gncg_core::response`, permanent
//!   [`DynamicSssp::relax_insert`] for committed moves) *and* edge
//!   **removals** ([`DynamicSssp::remove_edge`], Ramalingam–Reps-style
//!   affected-region re-relaxation; [`DynamicSssp::remove_edges`] batches
//!   several removals into one affected-region pass) — the engine under
//!   both the incremental best-response search and the dynamics engine's
//!   warm per-agent distance vectors, which survive moves of every kind,
//! * [`MaskedEdges`] — a zero-copy [`EdgeSource`] view with a few edges
//!   hidden, so a *speculative* removal can be priced against a graph
//!   that is never actually mutated.
//!
//! # Speculation frames
//!
//! The per-activation candidate-move scan in `gncg_core::response` prices
//! every candidate move by *applying* its edge delta to the agent's warm
//! vector, reading the distance sum, and *rolling the vector back* —
//! instead of pricing the candidate with a fresh masked Dijkstra. The
//! frame API makes every mutation kind revertible:
//!
//! 1. [`DynamicSssp::begin_speculation`] opens a frame;
//! 2. inside the frame, [`DynamicSssp::remove_edge`] /
//!    [`DynamicSssp::remove_edges`] log every overwritten `(node, old)`
//!    pair (outside a frame they stay unlogged, as committed updates),
//!    and [`DynamicSssp::speculate_insert`] relaxes a source-incident
//!    insertion with the same logging;
//! 3. [`DynamicSssp::rollback`] replays the frame in reverse, restoring
//!    the pre-speculation vector **bitwise** (restores are copies of the
//!    old values, never recomputations) and leaving both log depths
//!    exactly where they were.
//!
//! Speculation frames and [`DynamicSssp::add_edge`] insertion frames must
//! not interleave (debug-asserted): the branch-and-bound and the move
//! scan each own their vector exclusively while searching.
//!
//! # Invariants of the undo-log relaxation
//!
//! [`DynamicSssp`] exploits that inserting an edge can only *decrease*
//! shortest-path distances. [`DynamicSssp::add_edge`] seeds a Dijkstra
//! relaxation from the improved endpoint and records every decreased
//! `(node, old_dist)` pair in a frame of the undo log;
//! [`DynamicSssp::undo`] replays the frame in reverse, restoring the
//! pre-insertion vector exactly (bitwise: restores are copies of the old
//! values, not recomputations). Between `add_edge`/`undo` pairs the vector
//! always equals what a from-scratch Dijkstra on the current edge set
//! would produce: both compute the exact minimum over identical sets of
//! left-to-right path prefix sums, so equal values — not merely
//! approximately equal ones — are guaranteed, which is what lets the
//! incremental branch-and-bound certify bit-identical costs.
//!
//! # Invariants of the deletion update
//!
//! Removing an edge can only *increase* distances, which no decrease-only
//! relaxation can express; historically that invalidated every warm
//! vector. [`DynamicSssp::remove_edge`] instead repairs the vector in
//! place, Ramalingam–Reps style: identify the **affected region** (nodes
//! whose every equality-supported shortest path ran through the removed
//! edge, discovered in increasing-distance order so support decisions are
//! final when taken), re-seed each affected node from its unaffected
//! neighbors, and re-run Dijkstra *inside the region only*. Unaffected
//! nodes keep their old bits (their supporting path still exists, so the
//! new minimum equals the old one exactly); affected nodes are recomputed
//! as exact minima over left-to-right path prefix sums of the new graph —
//! so the repaired vector is bitwise what a fresh Dijkstra would produce,
//! at a cost proportional to the affected region instead of the graph.
//! Positive edge weights are required (support chains must strictly
//! increase in distance); every host family in this workspace satisfies
//! that.
//!
//! # The bucket-queue engine and weight-class hints
//!
//! Both engines default to a binary heap, but callers that know the
//! weight class of the graph they relax over — `[wmin, wmax]` bounds
//! covering every edge weight, with `wmin > 0` — can install it via
//! [`DijkstraScratch::set_weight_class`] /
//! [`DynamicSssp::set_weight_class`]. When the class is *integer-ish*
//! (`wmax / wmin` small, as the metric host factories produce), the
//! engines switch to a Dial-style **bucket queue**: a circular window of
//! `ceil(wmax / wmin) + 2` buckets of width `Δ = wmin`, scanned in
//! ascending order, each bucket drained to a fixpoint before advancing.
//! That replaces the `O(log n)` heap churn per relaxation with `O(1)`
//! pushes — the difference that lets scenario grids scale to n ∈
//! {1024, 4096}.
//!
//! The bucket scan is **bitwise-equal** to the heap scan, and in debug
//! builds every bucket run re-runs its heap ancestor and asserts exact
//! equality. The argument: draining a bucket to a fixpoint is a
//! decrease-only label-correcting relaxation, every tentative value is a
//! left-to-right `f64` prefix sum of a real path, and the fixpoint of
//! such a relaxation is unique — the exact minimum over the same set of
//! path sums the heap scan minimizes over. Intra-bucket processing order
//! therefore cannot leak into the result, and a weight outside the
//! declared class degrades only performance (an entry may be scanned
//! before it is final and re-scanned later), never correctness. Classes
//! whose window would exceed [`BUCKET_RING_CAP`] buckets fall back to the
//! heap, as does everything when no hint is installed — which keeps the
//! free functions in [`crate::dijkstra`] (including the
//! `dijkstra_reference` oracle) on the independent heap path.
//!
//! The affected-region *discovery* of [`DynamicSssp::remove_edges`]
//! deliberately stays on the heap even with a hint installed: its
//! support verdicts are final only when candidates pop in strictly
//! increasing distance order, an ordering a bucket can violate for two
//! nodes Δ apart in adversarial half-ulp cases. Only the order-free
//! fixpoint scans — [`DijkstraScratch::run`]/[`DijkstraScratch::run_masked`]
//! and the phase-2 region re-relaxation — take the bucket path.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::{AdjacencyList, NodeId};

/// Min-heap entry: (distance, node) ordered by distance ascending, ties by
/// node id — identical ordering to the historical from-scratch Dijkstra so
/// the two engines traverse equal-cost frontiers in the same order.
#[derive(Copy, Clone, Debug)]
pub(crate) struct HeapEntry {
    pub dist: f64,
    pub node: NodeId,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist && self.node == other.node
    }
}
impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse on distance to turn BinaryHeap (max-heap) into a min-heap.
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Closure-based neighbor iteration: the one interface every shortest-path
/// engine in this module relaxes over. Implemented by [`AdjacencyList`]
/// (array-of-vecs) and [`Csr`] (flat arrays).
pub trait EdgeSource {
    /// Number of nodes.
    fn num_nodes(&self) -> usize;

    /// Calls `f(v, w)` for every neighbor `v` of `u` (with edge weight
    /// `w`), in the representation's storage order.
    fn for_each_neighbor<F: FnMut(NodeId, f64)>(&self, u: NodeId, f: F);
}

impl EdgeSource for AdjacencyList {
    #[inline]
    fn num_nodes(&self) -> usize {
        self.n()
    }

    #[inline]
    fn for_each_neighbor<F: FnMut(NodeId, f64)>(&self, u: NodeId, mut f: F) {
        for &(v, w) in self.neighbors(u) {
            f(v, w);
        }
    }
}

/// A compressed-sparse-row snapshot of an undirected graph: neighbor ids
/// and weights packed into two flat arrays indexed by per-node offsets.
///
/// Building costs one `O(n + m)` pass; afterwards every relaxation scans
/// contiguous memory. Use it whenever one graph serves many SSSP calls
/// (APSP, a best-response search over a fixed base graph).
#[derive(Clone, Debug)]
pub struct Csr {
    offsets: Vec<u32>,
    targets: Vec<NodeId>,
    weights: Vec<f64>,
}

impl Csr {
    /// Snapshots `g` (neighbor order preserved).
    pub fn from_adjacency(g: &AdjacencyList) -> Self {
        let n = g.n();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(2 * g.m());
        let mut weights = Vec::with_capacity(2 * g.m());
        offsets.push(0);
        for u in 0..n as NodeId {
            for &(v, w) in g.neighbors(u) {
                targets.push(v);
                weights.push(w);
            }
            offsets.push(targets.len() as u32);
        }
        Csr {
            offsets,
            targets,
            weights,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Neighbor ids of `u`.
    #[inline]
    pub fn neighbors_of(&self, u: NodeId) -> &[NodeId] {
        let (s, e) = self.span(u);
        &self.targets[s..e]
    }

    /// Edge weights of `u`, parallel to [`Csr::neighbors_of`].
    #[inline]
    pub fn weights_of(&self, u: NodeId) -> &[f64] {
        let (s, e) = self.span(u);
        &self.weights[s..e]
    }

    #[inline]
    fn span(&self, u: NodeId) -> (usize, usize) {
        (
            self.offsets[u as usize] as usize,
            self.offsets[u as usize + 1] as usize,
        )
    }
}

impl EdgeSource for Csr {
    #[inline]
    fn num_nodes(&self) -> usize {
        self.n()
    }

    #[inline]
    fn for_each_neighbor<F: FnMut(NodeId, f64)>(&self, u: NodeId, mut f: F) {
        let (s, e) = self.span(u);
        for i in s..e {
            f(self.targets[i], self.weights[i]);
        }
    }
}

/// A borrowed [`EdgeSource`] view with the edges in `masked` (unordered
/// pairs) hidden — the graph state a *speculative* edge removal relaxes
/// over, without mutating the underlying graph. The mask is intended to
/// be tiny (a move drops at most one edge), so membership is a linear
/// scan.
#[derive(Clone, Copy, Debug)]
pub struct MaskedEdges<'a, G> {
    inner: &'a G,
    masked: &'a [(NodeId, NodeId)],
}

impl<'a, G: EdgeSource> MaskedEdges<'a, G> {
    /// Wraps `inner`, hiding every pair in `masked` (either orientation).
    pub fn new(inner: &'a G, masked: &'a [(NodeId, NodeId)]) -> Self {
        MaskedEdges { inner, masked }
    }
}

impl<G: EdgeSource> EdgeSource for MaskedEdges<'_, G> {
    #[inline]
    fn num_nodes(&self) -> usize {
        self.inner.num_nodes()
    }

    #[inline]
    fn for_each_neighbor<F: FnMut(NodeId, f64)>(&self, u: NodeId, mut f: F) {
        self.inner.for_each_neighbor(u, |v, w| {
            if self
                .masked
                .iter()
                .any(|&(a, b)| (a == u && b == v) || (a == v && b == u))
            {
                return;
            }
            f(v, w);
        });
    }
}

/// Largest circular bucket window either engine will allocate; weight
/// classes needing more (`wmax / wmin` too large to be integer-ish) fall
/// back to the binary heap.
pub const BUCKET_RING_CAP: usize = 4096;

/// Validates a weight-class hint and derives the bucket geometry:
/// `Δ = wmin` and the circular window length `ceil(wmax / Δ) + 2` (one
/// slot past the farthest reachable relative bucket, plus one of rounding
/// slack — see the module docs). `None` when the hint is absent,
/// degenerate (`wmin ≤ 0`, `wmax` non-finite or below `wmin`), or needs
/// a window beyond [`BUCKET_RING_CAP`].
fn bucket_ring(class: Option<(f64, f64)>) -> Option<(f64, usize)> {
    let (wmin, wmax) = class?;
    // `wmin > 0.0` is false for NaN, so a NaN bound is rejected too.
    let valid = wmin > 0.0 && wmax.is_finite() && wmax >= wmin;
    if !valid {
        return None;
    }
    let ring = (wmax / wmin).ceil() as usize + 2;
    (ring <= BUCKET_RING_CAP).then_some((wmin, ring))
}

/// Reusable Dijkstra state: after the first call on a given size, running
/// an SSSP allocates nothing.
///
/// The distance array is *generation-stamped*: each run bumps a counter
/// and an entry is valid only when its stamp matches, so starting a run is
/// `O(1)` instead of an `O(n)` fill. The heap is drained by the algorithm
/// itself (only improving entries are pushed) and its buffer is reused.
///
/// With a weight-class hint installed
/// ([`DijkstraScratch::set_weight_class`]) runs go through the
/// bitwise-equal bucket-queue scan instead of the heap (module docs).
#[derive(Clone, Debug, Default)]
pub struct DijkstraScratch {
    dist: Vec<f64>,
    stamp: Vec<u32>,
    generation: u32,
    heap: BinaryHeap<HeapEntry>,
    /// `[wmin, wmax]` bounds on every weight the next runs will relax,
    /// or `None` for the heap path.
    weight_class: Option<(f64, f64)>,
    /// The bucket ring (reused across runs; drained empty by each run).
    buckets: Vec<Vec<(NodeId, f64)>>,
}

impl DijkstraScratch {
    /// A fresh scratch; arrays grow lazily to the largest graph seen.
    pub fn new() -> Self {
        Self::default()
    }

    fn begin(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, f64::INFINITY);
            self.stamp.resize(n, 0);
        }
        if self.generation == u32::MAX {
            // Stamp wrap: invalidate everything once every 2^32 runs.
            self.stamp.fill(0);
            self.generation = 0;
        }
        self.generation += 1;
        self.heap.clear();
    }

    /// Distance of `v` from the last run's source (`∞` when unreached or
    /// out of range for every graph seen so far).
    #[inline]
    pub fn dist(&self, v: NodeId) -> f64 {
        match self.stamp.get(v as usize) {
            Some(&s) if s == self.generation => self.dist[v as usize],
            _ => f64::INFINITY,
        }
    }

    #[inline]
    fn improve(&mut self, v: NodeId, d: f64) -> bool {
        let i = v as usize;
        if self.stamp[i] != self.generation {
            // Never first-touch with ∞ (reached only over a forbidden
            // edge): stamping it would cascade useless heap churn through
            // unreachable components; untouched nodes already read as ∞.
            if d < f64::INFINITY {
                self.stamp[i] = self.generation;
                self.dist[i] = d;
                return true;
            }
            false
        } else if d < self.dist[i] {
            self.dist[i] = d;
            true
        } else {
            false
        }
    }

    /// Installs (or clears, with `None`) the weight-class hint: `[wmin,
    /// wmax]` bounds covering every edge weight subsequent runs relax,
    /// `wmin > 0`. A valid, integer-ish hint routes runs through the
    /// bucket-queue scan; conservative bounds only cost performance, and
    /// the result is bitwise-identical either way (module docs). The hint
    /// is sticky across runs until replaced.
    pub fn set_weight_class(&mut self, class: Option<(f64, f64)>) {
        self.weight_class = class;
    }

    /// Runs Dijkstra from `source` on `g` with virtual undirected `extra`
    /// edges overlaid. Distances are read back via
    /// [`DijkstraScratch::dist`], [`DijkstraScratch::write_distances`], or
    /// [`DijkstraScratch::sum_distances`].
    pub fn run<G: EdgeSource>(&mut self, g: &G, source: NodeId, extra: &[(NodeId, NodeId, f64)]) {
        self.run_masked(g, source, &[], extra)
    }

    /// [`DijkstraScratch::run`] with edges in `removed` (unordered pairs)
    /// skipped — the "agent drops its own edges" evaluation.
    pub fn run_masked<G: EdgeSource>(
        &mut self,
        g: &G,
        source: NodeId,
        removed: &[(NodeId, NodeId)],
        extra: &[(NodeId, NodeId, f64)],
    ) {
        match bucket_ring(self.weight_class) {
            Some((delta, ring)) => {
                self.run_masked_buckets(g, source, removed, extra, delta, ring);
                #[cfg(debug_assertions)]
                {
                    // Oracle: re-run the heap ancestor (begin() bumps the
                    // generation, isolating the second run) and demand
                    // exact equality. The heap result is left as the
                    // final state — the two are equal anyway.
                    let n = g.num_nodes();
                    let from_buckets = self.to_vec(n);
                    self.run_masked_heap(g, source, removed, extra);
                    assert_eq!(
                        from_buckets,
                        self.to_vec(n),
                        "bucket-queue SSSP diverged from the heap oracle"
                    );
                }
            }
            None => self.run_masked_heap(g, source, removed, extra),
        }
    }

    /// The heap-Dijkstra ancestor of [`DijkstraScratch::run_masked`] —
    /// the no-hint path and the debug oracle of the bucket scan.
    fn run_masked_heap<G: EdgeSource>(
        &mut self,
        g: &G,
        source: NodeId,
        removed: &[(NodeId, NodeId)],
        extra: &[(NodeId, NodeId, f64)],
    ) {
        self.begin(g.num_nodes());
        self.improve(source, 0.0);
        self.heap.push(HeapEntry {
            dist: 0.0,
            node: source,
        });
        let is_removed = |u: NodeId, v: NodeId| {
            removed
                .iter()
                .any(|&(a, b)| (a == u && b == v) || (a == v && b == u))
        };
        while let Some(HeapEntry { dist: d, node: u }) = self.heap.pop() {
            if d > self.dist(u) {
                continue;
            }
            let mut this = ScratchRelax(self);
            g.for_each_neighbor(u, |v, w| {
                if !removed.is_empty() && is_removed(u, v) {
                    return;
                }
                this.relax(v, d + w);
            });
            for &(a, b, w) in extra {
                let v = if a == u {
                    b
                } else if b == u {
                    a
                } else {
                    continue;
                };
                let nd = d + w;
                if self.improve(v, nd) {
                    self.heap.push(HeapEntry { dist: nd, node: v });
                }
            }
        }
    }

    /// The Dial-style bucket-queue scan (module docs): buckets of width
    /// `delta` in a circular window of `ring` slots, scanned in ascending
    /// order, each bucket drained to a fixpoint before advancing.
    fn run_masked_buckets<G: EdgeSource>(
        &mut self,
        g: &G,
        source: NodeId,
        removed: &[(NodeId, NodeId)],
        extra: &[(NodeId, NodeId, f64)],
        delta: f64,
        ring: usize,
    ) {
        self.begin(g.num_nodes());
        if self.buckets.len() < ring {
            self.buckets.resize_with(ring, Vec::new);
        }
        self.improve(source, 0.0);
        self.buckets[0].push((source, 0.0));
        let mut pending = 1usize;
        let mut cur = 0u64; // absolute (unwrapped) bucket index
        let is_removed = |u: NodeId, v: NodeId| {
            removed
                .iter()
                .any(|&(a, b)| (a == u && b == v) || (a == v && b == u))
        };
        while pending > 0 {
            let slot = (cur % ring as u64) as usize;
            while let Some((u, d)) = self.buckets[slot].pop() {
                pending -= 1;
                if d > self.dist(u) {
                    continue; // superseded entry
                }
                let mut this = BucketRelax {
                    scratch: self,
                    delta,
                    ring,
                    pending: &mut pending,
                };
                g.for_each_neighbor(u, |v, w| {
                    if !removed.is_empty() && is_removed(u, v) {
                        return;
                    }
                    this.relax(v, d + w);
                });
                for &(a, b, w) in extra {
                    let v = if a == u {
                        b
                    } else if b == u {
                        a
                    } else {
                        continue;
                    };
                    let mut this = BucketRelax {
                        scratch: self,
                        delta,
                        ring,
                        pending: &mut pending,
                    };
                    this.relax(v, d + w);
                }
            }
            cur += 1;
        }
    }

    /// Copies the distances of the last run into `out` (any length:
    /// unreached or out-of-range nodes get `∞`).
    pub fn write_distances(&self, out: &mut [f64]) {
        let known = self.dist.len().min(out.len());
        for (v, slot) in out.iter_mut().enumerate().take(known) {
            *slot = self.dist(v as NodeId);
        }
        out[known..].fill(f64::INFINITY);
    }

    /// The distances of the last run as a fresh vector.
    pub fn to_vec(&self, n: usize) -> Vec<f64> {
        (0..n as NodeId).map(|v| self.dist(v)).collect()
    }

    /// Index-order sum of the first `n` distances (`∞` when any node is
    /// unreached) — identical summation order to `dists.iter().sum()` on a
    /// materialized vector, so totals agree bitwise.
    pub fn sum_distances(&self, n: usize) -> f64 {
        let mut s = 0.0;
        for v in 0..n as NodeId {
            s += self.dist(v);
        }
        s
    }
}

/// Borrow adapter letting the [`EdgeSource`] neighbor closure relax into
/// the scratch while the graph itself stays separately borrowed.
struct ScratchRelax<'a>(&'a mut DijkstraScratch);

impl ScratchRelax<'_> {
    #[inline]
    fn relax(&mut self, v: NodeId, nd: f64) {
        if self.0.improve(v, nd) {
            self.0.heap.push(HeapEntry { dist: nd, node: v });
        }
    }
}

/// [`ScratchRelax`]'s bucket-queue sibling: improvements are filed into
/// the ring slot of their bucket (`floor(nd / Δ) mod ring`) instead of
/// the heap. `improve` returning `true` guarantees `nd` is finite, so
/// the `f64 → u64` cast below is exact up to saturation — and a
/// saturated (or otherwise early) slot only causes a pre-final scan that
/// the fixpoint re-scans, never a wrong result (module docs).
struct BucketRelax<'a> {
    scratch: &'a mut DijkstraScratch,
    delta: f64,
    ring: usize,
    pending: &'a mut usize,
}

impl BucketRelax<'_> {
    #[inline]
    fn relax(&mut self, v: NodeId, nd: f64) {
        if self.scratch.improve(v, nd) {
            let slot = ((nd / self.delta) as u64 % self.ring as u64) as usize;
            self.scratch.buckets[slot].push((v, nd));
            *self.pending += 1;
        }
    }
}

/// A single-source distance vector maintained under edge insertions
/// (undo-logged or permanent) **and** edge removals — the workhorse of
/// both the incremental best-response search and the dynamics engine's
/// warm per-agent distance vectors.
///
/// See the module docs for the relaxation/undo and deletion invariants.
#[derive(Clone, Debug, Default)]
pub struct DynamicSssp {
    source: NodeId,
    dist: Vec<f64>,
    undo: Vec<(NodeId, f64)>,
    frames: Vec<usize>,
    /// Open speculation frames: marks into `undo` (see the module docs).
    /// While non-empty, removal repairs log every distance overwrite so
    /// [`DynamicSssp::rollback`] can restore the vector bitwise.
    spec_marks: Vec<usize>,
    heap: BinaryHeap<HeapEntry>,
    /// Scratch of [`DynamicSssp::remove_edges`]: the affected-region node
    /// list and its membership bitmap (cleared after every removal).
    affected: Vec<NodeId>,
    affected_mark: Vec<bool>,
    /// Weight-class hint for the phase-2 region relaxation (see
    /// [`DynamicSssp::set_weight_class`]); sticky across
    /// [`DynamicSssp::reset_from`].
    weight_class: Option<(f64, f64)>,
    /// Bucket ring of the phase-2 region relaxation (reused, drained).
    buckets: Vec<Vec<(NodeId, f64)>>,
    /// First-entry dedup stamps of [`DynamicSssp::delta_sum_since`]:
    /// `delta_epoch[v] == delta_epoch_counter` marks `v` as already
    /// accounted in the current call.
    delta_epoch: Vec<u64>,
    delta_epoch_counter: u64,
    /// Settle budget for *speculative* insert relaxations (see
    /// [`DynamicSssp::set_price_horizon`]); `None` relaxes to the exact
    /// fixpoint. Never applies outside a speculation frame.
    price_horizon: Option<usize>,
}

/// The historical name of [`DynamicSssp`], kept while the engine handled
/// insertions only.
pub type IncrementalSssp = DynamicSssp;

impl DynamicSssp {
    /// A fresh engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets to the baseline distance vector `d0` (distances from
    /// `source` in the current base graph), clearing the undo log.
    pub fn reset_from(&mut self, source: NodeId, d0: &[f64]) {
        self.source = source;
        self.dist.clear();
        self.dist.extend_from_slice(d0);
        self.undo.clear();
        self.frames.clear();
        self.spec_marks.clear();
        self.heap.clear();
    }

    /// Installs (or clears, with `None`) the weight-class hint: `[wmin,
    /// wmax]` bounds covering every edge weight subsequent repairs relax,
    /// `wmin > 0`. Routes the phase-2 region relaxation of
    /// [`DynamicSssp::remove_edges`] through the bucket-queue scan
    /// (bitwise-identical to the heap either way — module docs). Sticky
    /// across [`DynamicSssp::reset_from`], so engines hint once per
    /// graph, not once per reset.
    pub fn set_weight_class(&mut self, class: Option<(f64, f64)>) {
        self.weight_class = class;
    }

    /// Installs (or clears, with `None`) the bounded-horizon settle
    /// budget for **speculative** insert relaxations: once a
    /// [`DynamicSssp::speculate_insert`] has settled `cap` nodes, the
    /// remaining frontier is abandoned. The truncated vector is a sound
    /// **upper bound** on the true post-insert distances (decrease-only
    /// relaxation stopped early never under-shoots), every overwrite is
    /// still undo-logged, and [`DynamicSssp::rollback`] restores the
    /// exact pre-frame vector — so a pricing scan can rank candidates on
    /// `O(horizon)` work per move and re-price its winner exactly with
    /// the budget cleared.
    ///
    /// The budget never applies to committed updates
    /// ([`DynamicSssp::relax_insert`], [`DynamicSssp::relax_inserts`],
    /// [`DynamicSssp::add_edge`]) or to removal repairs, which must stay
    /// exact. Sticky across [`DynamicSssp::reset_from`], like the
    /// weight-class hint.
    pub fn set_price_horizon(&mut self, cap: Option<usize>) {
        self.price_horizon = cap;
    }

    /// Approximate resident heap footprint of this vector's buffers, in
    /// bytes (capacities, not lengths — what the allocator actually
    /// holds). Feeds the service's warm-vector memory gauge.
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        self.dist.capacity() * size_of::<f64>()
            + self.undo.capacity() * size_of::<(NodeId, f64)>()
            + (self.frames.capacity() + self.spec_marks.capacity()) * size_of::<usize>()
            + self.heap.capacity() * size_of::<HeapEntry>()
            + self.affected.capacity() * size_of::<NodeId>()
            + self.affected_mark.capacity()
            + self.delta_epoch.capacity() * size_of::<u64>()
            + self
                .buckets
                .iter()
                .map(|b| b.capacity() * size_of::<(NodeId, f64)>())
                .sum::<usize>()
    }

    /// The current distance vector.
    #[inline]
    pub fn dist(&self) -> &[f64] {
        &self.dist
    }

    /// Index-order sum of the current distances (`∞` when disconnected) —
    /// same summation order as `dist.iter().sum()`.
    #[inline]
    pub fn sum(&self) -> f64 {
        let mut s = 0.0;
        for &d in &self.dist {
            s += d;
        }
        s
    }

    /// Current undo-log length — a mark for
    /// [`DynamicSssp::delta_sum_since`]. Take it *before* opening the
    /// speculation frame whose distance churn you want to price.
    #[inline]
    pub fn undo_len(&self) -> usize {
        self.undo.len()
    }

    /// Sum of `dist[v] − original[v]` over every node whose distance was
    /// overwritten (and logged) since undo-log position `mark`, where
    /// `original[v]` is the node's *first* logged value after the mark —
    /// its distance when the mark was taken. Each node contributes once,
    /// in the (deterministic) order of its first log entry, so the result
    /// is a deterministic function of the logged churn: the
    /// bounded-horizon pricing's `O(region)` substitute for a full `O(n)`
    /// [`DynamicSssp::sum`] re-scan. The first-entry dedup is an
    /// epoch-stamped linear pass — no sort, no allocation — because this
    /// runs once per priced candidate on the scan's hottest path.
    ///
    /// Only *logged* overwrites are visible — the mark must cover
    /// speculation-frame mutations only (unlogged committed repairs
    /// between the mark and the read would go unaccounted).
    pub fn delta_sum_since(&mut self, mark: usize) -> f64 {
        self.delta_epoch_counter += 1;
        let epoch = self.delta_epoch_counter;
        if self.delta_epoch.len() < self.dist.len() {
            self.delta_epoch.resize(self.dist.len(), 0);
        }
        let mut s = 0.0;
        for i in mark..self.undo.len() {
            let (v, original) = self.undo[i];
            let stamp = &mut self.delta_epoch[v as usize];
            if *stamp != epoch {
                *stamp = epoch;
                s += self.dist[v as usize] - original;
            }
        }
        s
    }

    /// Number of open (un-undone) insertion frames.
    #[inline]
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Number of open (un-rolled-back) speculation frames.
    #[inline]
    pub fn speculation_depth(&self) -> usize {
        self.spec_marks.len()
    }

    /// Whether a speculation frame is open (removal repairs then log
    /// their overwrites for [`DynamicSssp::rollback`]).
    #[inline]
    fn speculating(&self) -> bool {
        !self.spec_marks.is_empty()
    }

    #[inline]
    fn lower(&mut self, v: NodeId, nd: f64) -> bool {
        let i = v as usize;
        if nd < self.dist[i] {
            self.undo.push((v, self.dist[i]));
            self.dist[i] = nd;
            true
        } else {
            false
        }
    }

    /// Applies an edge insertion as a decrease-only relaxation **without**
    /// recording an undo frame — the "committed move" update of the
    /// dynamics engine's warm per-agent distance vectors.
    ///
    /// Unlike [`DynamicSssp::add_edge`], the inserted edge need *not*
    /// be incident to the source. The different contract that makes this
    /// sound: `g` must be the **live graph already containing `(a, b)`**
    /// (and every other current edge). Relaxation then propagates through
    /// all existing edges — including ones inserted by earlier
    /// `relax_insert` calls — so the decrease-only update is exact for any
    /// source: an inserted edge can only shorten distances, every
    /// shortened path decomposes as (old shortest path to one endpoint) +
    /// the new edge + (a path in `g`), and both pieces are fully relaxed
    /// here. Multiple insertions may be applied one at a time in any
    /// order, provided `g` already holds all of them.
    ///
    /// Not undoable. Edge *deletions* have their own in-place update —
    /// [`DynamicSssp::remove_edge`] — so callers no longer re-seed with
    /// [`DynamicSssp::reset_from`] when an edge leaves.
    pub fn relax_insert<G: EdgeSource>(&mut self, g: &G, a: NodeId, b: NodeId, w: f64) {
        debug_assert!(
            self.spec_marks.is_empty(),
            "relax_insert inside a speculation frame would be unrevertible"
        );
        self.heap.clear();
        for (from, to) in [(a, b), (b, a)] {
            let df = self.dist[from as usize];
            if df.is_finite() {
                let nd = df + w;
                if nd < self.dist[to as usize] {
                    self.dist[to as usize] = nd;
                    self.heap.push(HeapEntry { dist: nd, node: to });
                }
            }
        }
        while let Some(HeapEntry { dist: d, node: u }) = self.heap.pop() {
            if d > self.dist[u as usize] {
                continue;
            }
            let mut this = UnloggedRelax(self);
            g.for_each_neighbor(u, |v, wuv| {
                this.relax(v, d + wuv);
            });
        }
    }

    /// [`DynamicSssp::relax_insert`] for a *batch* of edge insertions in
    /// one multi-seed heap drain: every edge's endpoint improvements are
    /// seeded together, then the affected region settles once.
    ///
    /// Same contract as [`DynamicSssp::relax_insert`]: `g` must be the
    /// live graph already containing every edge of `edges` (and all other
    /// current edges), weights positive, no speculation frame open. The
    /// result is the same exact — hence bitwise-identical — fixpoint the
    /// one-at-a-time replay reaches, but a node improved by `k` of the
    /// batched edges is settled once instead of up to `k` times, which is
    /// what makes a lazily synced warm vector `O(batch + region)` per
    /// sync instead of `O(batch × region)`.
    pub fn relax_inserts<G: EdgeSource>(&mut self, g: &G, edges: &[(NodeId, NodeId, f64)]) {
        debug_assert!(
            self.spec_marks.is_empty(),
            "relax_inserts inside a speculation frame would be unrevertible"
        );
        self.heap.clear();
        for &(a, b, w) in edges {
            for (from, to) in [(a, b), (b, a)] {
                let df = self.dist[from as usize];
                if df.is_finite() {
                    let nd = df + w;
                    if nd < self.dist[to as usize] {
                        self.dist[to as usize] = nd;
                        self.heap.push(HeapEntry { dist: nd, node: to });
                    }
                }
            }
        }
        while let Some(HeapEntry { dist: d, node: u }) = self.heap.pop() {
            if d > self.dist[u as usize] {
                continue;
            }
            let mut this = UnloggedRelax(self);
            g.for_each_neighbor(u, |v, wuv| {
                this.relax(v, d + wuv);
            });
        }
    }

    /// Inserts undirected edge `(a, b)` of weight `w` on top of `g` and
    /// relaxes every distance it improves, recording the changes as one
    /// undo frame.
    ///
    /// # Correctness contract
    ///
    /// `g` must be the same base graph the vector was built from, and
    /// **every inserted edge must be incident to the source** passed to
    /// [`DynamicSssp::reset_from`] (enforced by a `debug_assert`).
    /// Under that contract, relaxing over `g` alone is exact: previously
    /// inserted edges are all incident to the source, a shortest path
    /// never re-enters its source, so no improved path can traverse them
    /// mid-way and their effect is already reflected in the vector. With
    /// edges *not* incident to the source that argument fails — a later
    /// insertion could shorten a path that runs *through* an earlier
    /// inserted edge, which the `g`-only relaxation would never see,
    /// silently leaving stale distances.
    pub fn add_edge<G: EdgeSource>(&mut self, g: &G, a: NodeId, b: NodeId, w: f64) {
        debug_assert!(
            self.spec_marks.is_empty(),
            "add_edge frames must not interleave with speculation frames"
        );
        self.frames.push(self.undo.len());
        self.relax_insert_logged(g, a, b, w);
    }

    /// Applies a *speculative* edge insertion inside an open speculation
    /// frame: the same source-incident logged relaxation as
    /// [`DynamicSssp::add_edge`], but recorded into the current frame
    /// (rolled back together with any preceding speculative removal)
    /// instead of opening an insertion frame of its own.
    ///
    /// Same correctness contract as [`DynamicSssp::add_edge`]: `g` must be
    /// the graph the vector is currently exact for (e.g. the
    /// [`MaskedEdges`] view a preceding speculative removal relaxed over)
    /// and the edge must be incident to the source.
    pub fn speculate_insert<G: EdgeSource>(&mut self, g: &G, a: NodeId, b: NodeId, w: f64) {
        debug_assert!(
            !self.spec_marks.is_empty(),
            "speculate_insert outside a speculation frame"
        );
        self.relax_insert_logged(g, a, b, w);
    }

    /// The shared undo-logged insertion relaxation of
    /// [`DynamicSssp::add_edge`] and [`DynamicSssp::speculate_insert`].
    /// Inside a speculation frame an installed
    /// [`DynamicSssp::set_price_horizon`] budget truncates the drain
    /// after `cap` settled nodes (upper-bound vector, exact rollback);
    /// committed insertion frames always run to the exact fixpoint.
    fn relax_insert_logged<G: EdgeSource>(&mut self, g: &G, a: NodeId, b: NodeId, w: f64) {
        debug_assert!(
            a == self.source || b == self.source,
            "DynamicSssp logged insertion: edge ({a}, {b}) is not incident to source {}",
            self.source
        );
        let cap = if self.speculating() {
            self.price_horizon.unwrap_or(usize::MAX)
        } else {
            usize::MAX
        };
        let mut settled = 0usize;
        self.heap.clear();
        for (from, to) in [(a, b), (b, a)] {
            let df = self.dist[from as usize];
            if df.is_finite() {
                let nd = df + w;
                if self.lower(to, nd) {
                    self.heap.push(HeapEntry { dist: nd, node: to });
                }
            }
        }
        while let Some(HeapEntry { dist: d, node: u }) = self.heap.pop() {
            if d > self.dist[u as usize] {
                continue;
            }
            if settled >= cap {
                // Horizon reached: abandon the frontier. Every overwrite
                // so far is logged, so the frame still rolls back exactly;
                // the stale heap is cleared by the next relaxation's
                // entry. Distances beyond the horizon keep their (valid,
                // merely loose) pre-insert values.
                break;
            }
            settled += 1;
            let mut this = IncRelax(self);
            g.for_each_neighbor(u, |v, wuv| {
                this.relax(v, d + wuv);
            });
        }
    }
}

/// Borrow adapter for [`DynamicSssp::relax_insert`]: lowers distances
/// without touching the undo log (committed updates are permanent).
struct UnloggedRelax<'a>(&'a mut DynamicSssp);

impl UnloggedRelax<'_> {
    #[inline]
    fn relax(&mut self, v: NodeId, nd: f64) {
        if nd < self.0.dist[v as usize] {
            self.0.dist[v as usize] = nd;
            self.0.heap.push(HeapEntry { dist: nd, node: v });
        }
    }
}

/// Borrow adapter mirroring [`ScratchRelax`] for the incremental engine.
struct IncRelax<'a>(&'a mut DynamicSssp);

impl IncRelax<'_> {
    #[inline]
    fn relax(&mut self, v: NodeId, nd: f64) {
        if self.0.lower(v, nd) {
            self.0.heap.push(HeapEntry { dist: nd, node: v });
        }
    }
}

impl DynamicSssp {
    /// Reverts the most recent [`DynamicSssp::add_edge`] frame,
    /// restoring the exact previous vector.
    ///
    /// # Panics
    /// Panics when no frame is open.
    pub fn undo(&mut self) {
        let mark = self.frames.pop().expect("undo without an open frame");
        while self.undo.len() > mark {
            let (v, old) = self.undo.pop().expect("undo log underflow");
            self.dist[v as usize] = old;
        }
    }

    /// Opens a speculation frame: until the matching
    /// [`DynamicSssp::rollback`], removal repairs log every distance
    /// overwrite and insertions go through
    /// [`DynamicSssp::speculate_insert`], so the whole frame is
    /// revertible. Frames nest; they must not interleave with
    /// [`DynamicSssp::add_edge`] insertion frames (debug-asserted).
    pub fn begin_speculation(&mut self) {
        debug_assert!(
            self.frames.is_empty(),
            "speculation frames must not interleave with add_edge frames"
        );
        self.spec_marks.push(self.undo.len());
    }

    /// Reverts the most recent speculation frame, restoring the exact
    /// pre-[`DynamicSssp::begin_speculation`] vector (bitwise: restores
    /// are copies of the logged old values).
    ///
    /// # Panics
    /// Panics when no speculation frame is open.
    pub fn rollback(&mut self) {
        let mark = self
            .spec_marks
            .pop()
            .expect("rollback without an open speculation frame");
        while self.undo.len() > mark {
            let (v, old) = self.undo.pop().expect("undo log underflow");
            self.dist[v as usize] = old;
        }
    }

    /// Whether `v` currently has *support*: a neighbor `x` in `g`, itself
    /// outside the affected set, whose distance plus the edge weight
    /// reproduces `dist[v]` bitwise. Supported nodes keep their exact
    /// value through the removal (the supporting path still exists).
    fn has_support<G: EdgeSource>(&self, g: &G, v: NodeId) -> bool {
        let dv = self.dist[v as usize];
        let mut supported = false;
        g.for_each_neighbor(v, |x, wxv| {
            if supported || self.affected_mark[x as usize] {
                return;
            }
            let dx = self.dist[x as usize];
            if dx.is_finite() && dx + wxv == dv {
                supported = true;
            }
        });
        supported
    }

    /// Applies the removal of undirected edge `(a, b)` (previous weight
    /// `w`) as an in-place Ramalingam–Reps repair — the "committed move"
    /// counterpart of [`DynamicSssp::relax_insert`] for edge deletions.
    ///
    /// Contract: `g` must be the **live graph with `(a, b)` already
    /// removed** (and in exactly its current state otherwise), the vector
    /// must be exact for `g ∪ {(a, b, w)}`, all edge weights must be
    /// positive, and no insertion frames may be open (the frames'
    /// recorded values would describe the pre-removal graph). Multi-edge
    /// deltas should go through [`DynamicSssp::remove_edges`], which
    /// repairs the union of the affected regions in one pass.
    ///
    /// After the call the vector is bitwise what a fresh Dijkstra from the
    /// source on `g` would produce (see the module docs for why), at a
    /// cost proportional to the affected region — `O(1)` when the removed
    /// edge was on no shortest path, which is the common case in dynamics
    /// rounds.
    pub fn remove_edge<G: EdgeSource>(&mut self, g: &G, a: NodeId, b: NodeId, w: f64) {
        self.remove_edges(g, &[(a, b, w)]);
    }

    /// Applies the removal of **several** undirected edges as one
    /// affected-region pass — same contract as
    /// [`DynamicSssp::remove_edge`] with "the edge" replaced by "every
    /// edge in `removed`": `g` must be the live graph with *all* of them
    /// already removed, and the vector must be exact for `g ∪ removed`.
    ///
    /// Batching matters when removals overlap: staging a multi-edge
    /// delta one edge at a time re-discovers (and re-repairs) any region
    /// the edges share once per edge, while the batch discovers it once.
    /// The result is still bitwise what a fresh Dijkstra on `g` would
    /// produce — both the staged and the batched repair end on exactly
    /// that vector.
    ///
    /// Inside a speculation frame every overwritten distance is logged so
    /// [`DynamicSssp::rollback`] restores the vector exactly; outside one
    /// the repair is permanent (the committed-move path).
    pub fn remove_edges<G: EdgeSource>(&mut self, g: &G, removed: &[(NodeId, NodeId, f64)]) {
        debug_assert!(
            self.frames.is_empty(),
            "remove_edges with open undo frames would corrupt the log"
        );
        self.heap.clear();
        // Seed phase — per edge, the O(1) short-circuit: an edge that
        // supported neither endpoint carried no node's equality-support
        // chain, so it seeds nothing. A batch of such edges exits here.
        for &(a, b, w) in removed {
            debug_assert!(w > 0.0, "remove_edges requires positive edge weights");
            let (da, db) = (self.dist[a as usize], self.dist[b as usize]);
            let edge_supported_an_endpoint =
                (da.is_finite() && da + w == db) || (db.is_finite() && db + w == da);
            if !edge_supported_an_endpoint {
                continue;
            }
            for v in [b, a] {
                if v != self.source && self.dist[v as usize].is_finite() {
                    self.heap.push(HeapEntry {
                        dist: self.dist[v as usize],
                        node: v,
                    });
                }
            }
        }
        if self.heap.is_empty() {
            return;
        }
        let n = g.num_nodes();
        if self.affected_mark.len() < n {
            self.affected_mark.resize(n, false);
        }
        self.affected.clear();
        // Phase 1 — affected-region discovery in increasing-distance
        // order. Positive weights make support chains strictly increasing,
        // so when a candidate pops, every affected node of smaller
        // distance is already marked and its support verdict is final.
        while let Some(HeapEntry { dist: d, node: v }) = self.heap.pop() {
            if self.affected_mark[v as usize] || d != self.dist[v as usize] {
                continue; // duplicate candidate entry
            }
            if self.has_support(g, v) {
                continue;
            }
            self.affected_mark[v as usize] = true;
            self.affected.push(v);
            // Every node this one was supporting becomes a candidate.
            let dv = self.dist[v as usize];
            let (dist, heap, mark, source) =
                (&self.dist, &mut self.heap, &self.affected_mark, self.source);
            g.for_each_neighbor(v, |x, wvx| {
                let dx = dist[x as usize];
                if x != source && !mark[x as usize] && dx.is_finite() && dv + wvx == dx {
                    heap.push(HeapEntry { dist: dx, node: x });
                }
            });
        }
        // Phase 2 — re-seed every affected node from its unaffected
        // neighbors, then Dijkstra inside the region only. Inside a
        // speculation frame every overwrite logs the old value first.
        let log = self.speculating();
        self.heap.clear();
        for i in 0..self.affected.len() {
            let v = self.affected[i];
            let mut best = f64::INFINITY;
            let (dist, mark) = (&self.dist, &self.affected_mark);
            g.for_each_neighbor(v, |x, wxv| {
                if mark[x as usize] {
                    return;
                }
                let dx = dist[x as usize];
                if dx.is_finite() {
                    let nd = dx + wxv;
                    if nd < best {
                        best = nd;
                    }
                }
            });
            if log {
                // Logged before any region relaxation touches `v`, so the
                // frame's first entry per node is its pre-removal value —
                // the reverse undo replay ends there regardless of what
                // order the relaxation below overwrites in.
                self.undo.push((v, self.dist[v as usize]));
            }
            self.dist[v as usize] = best;
            if best.is_finite() {
                self.heap.push(HeapEntry {
                    dist: best,
                    node: v,
                });
            }
        }
        match bucket_ring(self.weight_class) {
            Some((delta, ring)) => {
                #[cfg(debug_assertions)]
                let expected = {
                    // Oracle: a clone (same seeds, same region state)
                    // repaired by the heap ancestor must agree bitwise.
                    let mut oracle = self.clone();
                    oracle.region_relax_heap(g, false);
                    oracle.dist
                };
                self.region_relax_buckets(g, log, delta, ring);
                #[cfg(debug_assertions)]
                assert_eq!(
                    self.dist, expected,
                    "bucket-queue region repair diverged from the heap oracle"
                );
            }
            None => self.region_relax_heap(g, log),
        }
        for &v in &self.affected {
            self.affected_mark[v as usize] = false;
        }
    }

    /// The heap ancestor of the phase-2 region relaxation: drains the
    /// re-seed queue in `self.heap`, relaxing only into affected nodes.
    fn region_relax_heap<G: EdgeSource>(&mut self, g: &G, log: bool) {
        while let Some(HeapEntry { dist: d, node: u }) = self.heap.pop() {
            if d > self.dist[u as usize] {
                continue;
            }
            let (dist, heap, mark, undo) = (
                &mut self.dist,
                &mut self.heap,
                &self.affected_mark,
                &mut self.undo,
            );
            g.for_each_neighbor(u, |v, wuv| {
                if !mark[v as usize] {
                    return; // unaffected nodes are already exact
                }
                let nd = d + wuv;
                if nd < dist[v as usize] {
                    if log {
                        undo.push((v, dist[v as usize]));
                    }
                    dist[v as usize] = nd;
                    heap.push(HeapEntry { dist: nd, node: v });
                }
            });
        }
    }

    /// Bucket-queue sibling of [`DynamicSssp::region_relax_heap`]: moves
    /// the re-seed queue into the ring (the window starts at the earliest
    /// seed's bucket) and scans buckets in ascending order, each drained
    /// to a fixpoint. Seeds wider apart than the window merely wrap and
    /// get pre-final scans that the fixpoint re-scans — correctness never
    /// depends on the window fitting (module docs).
    fn region_relax_buckets<G: EdgeSource>(&mut self, g: &G, log: bool, delta: f64, ring: usize) {
        if self.buckets.len() < ring {
            self.buckets.resize_with(ring, Vec::new);
        }
        let mut pending = 0usize;
        let mut cur = u64::MAX;
        while let Some(HeapEntry { dist: d, node: v }) = self.heap.pop() {
            let b = (d / delta) as u64;
            cur = cur.min(b);
            self.buckets[(b % ring as u64) as usize].push((v, d));
            pending += 1;
        }
        while pending > 0 {
            let slot = (cur % ring as u64) as usize;
            while let Some((u, d)) = self.buckets[slot].pop() {
                pending -= 1;
                if d > self.dist[u as usize] {
                    continue; // superseded entry
                }
                let (dist, buckets, mark, undo) = (
                    &mut self.dist,
                    &mut self.buckets,
                    &self.affected_mark,
                    &mut self.undo,
                );
                g.for_each_neighbor(u, |v, wuv| {
                    if !mark[v as usize] {
                        return; // unaffected nodes are already exact
                    }
                    let nd = d + wuv;
                    if nd < dist[v as usize] {
                        if log {
                            undo.push((v, dist[v as usize]));
                        }
                        dist[v as usize] = nd;
                        let s = ((nd / delta) as u64 % ring as u64) as usize;
                        buckets[s].push((v, nd));
                        pending += 1;
                    }
                });
            }
            cur += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra;

    fn diamond() -> AdjacencyList {
        AdjacencyList::from_edges(4, &[(0, 1, 1.0), (1, 3, 1.0), (0, 2, 3.0), (2, 3, 1.0)])
    }

    #[test]
    fn csr_matches_adjacency() {
        let g = diamond();
        let c = Csr::from_adjacency(&g);
        assert_eq!(c.n(), 4);
        for u in 0..4u32 {
            let mut from_adj = Vec::new();
            g.for_each_neighbor(u, |v, w| from_adj.push((v, w)));
            let mut from_csr = Vec::new();
            c.for_each_neighbor(u, |v, w| from_csr.push((v, w)));
            assert_eq!(from_adj, from_csr);
            assert_eq!(c.neighbors_of(u).len(), g.degree(u));
            assert_eq!(c.weights_of(u).len(), g.degree(u));
        }
    }

    #[test]
    fn scratch_matches_fresh_dijkstra_across_reuse() {
        let g = diamond();
        let c = Csr::from_adjacency(&g);
        let mut scratch = DijkstraScratch::new();
        for _round in 0..3 {
            for s in 0..4u32 {
                scratch.run(&c, s, &[]);
                let fresh = dijkstra(&g, s);
                assert_eq!(scratch.to_vec(4), fresh, "source {s}");
                assert_eq!(scratch.sum_distances(4), fresh.iter().sum::<f64>());
            }
        }
    }

    #[test]
    fn scratch_reuse_shrinking_and_growing_graphs() {
        let big = AdjacencyList::from_edges(
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
            ],
        );
        let small = diamond();
        let mut scratch = DijkstraScratch::new();
        scratch.run(&big, 0, &[]);
        assert_eq!(scratch.dist(5), 5.0);
        // A smaller graph after a bigger one must not see stale entries.
        scratch.run(&small, 0, &[]);
        assert_eq!(scratch.to_vec(4), dijkstra(&small, 0));
        scratch.run(&big, 2, &[]);
        assert_eq!(scratch.to_vec(6), dijkstra(&big, 2));
    }

    #[test]
    fn scratch_extra_and_masked() {
        let g = diamond();
        let mut scratch = DijkstraScratch::new();
        scratch.run(&g, 0, &[(0, 3, 0.5)]);
        assert_eq!(scratch.dist(3), 0.5);
        assert_eq!(scratch.dist(2), 1.5);
        scratch.run_masked(&g, 0, &[(0, 1)], &[]);
        assert_eq!(scratch.dist(1), 5.0);
        assert_eq!(scratch.dist(3), 4.0);
    }

    #[test]
    fn scratch_disconnected_sum_is_infinite() {
        let mut g = AdjacencyList::new(3);
        g.add_edge(0, 1, 1.0);
        let mut scratch = DijkstraScratch::new();
        scratch.run(&g, 0, &[]);
        assert_eq!(scratch.dist(2), f64::INFINITY);
        assert!(scratch.sum_distances(3).is_infinite());
        let mut out = vec![0.0; 3];
        scratch.write_distances(&mut out);
        assert_eq!(out, vec![0.0, 1.0, f64::INFINITY]);
        // A longer output buffer gets ∞ past the graph, not a panic.
        let mut long = vec![0.0; 6];
        scratch.write_distances(&mut long);
        assert_eq!(
            long,
            vec![
                0.0,
                1.0,
                f64::INFINITY,
                f64::INFINITY,
                f64::INFINITY,
                f64::INFINITY
            ]
        );
    }

    #[test]
    fn incremental_insert_matches_fresh_and_undo_restores() {
        let g = diamond();
        let c = Csr::from_adjacency(&g);
        let d0 = dijkstra(&g, 0);
        let mut inc = IncrementalSssp::new();
        inc.reset_from(0, &d0);

        inc.add_edge(&c, 0, 3, 0.5);
        let mut with_edge = g.clone();
        with_edge.add_edge(0, 3, 0.5);
        assert_eq!(inc.dist(), dijkstra(&with_edge, 0).as_slice());

        inc.add_edge(&c, 0, 2, 0.25);
        let mut with_both = with_edge.clone();
        with_both.add_edge(0, 2, 0.25);
        assert_eq!(inc.dist(), dijkstra(&with_both, 0).as_slice());

        inc.undo();
        assert_eq!(inc.dist(), dijkstra(&with_edge, 0).as_slice());
        inc.undo();
        assert_eq!(inc.dist(), d0.as_slice());
        assert_eq!(inc.depth(), 0);
    }

    #[test]
    fn incremental_connects_disconnected_source() {
        // Source starts isolated: all-∞ except itself; inserting an edge
        // must propagate finite distances outward.
        let mut g = AdjacencyList::new(4);
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 1.0);
        let d0 = dijkstra(&g, 0);
        assert!(d0[1].is_infinite());
        let mut inc = IncrementalSssp::new();
        inc.reset_from(0, &d0);
        inc.add_edge(&g, 0, 1, 2.0);
        assert_eq!(inc.dist(), &[0.0, 2.0, 3.0, 4.0]);
        inc.undo();
        assert_eq!(inc.dist(), d0.as_slice());
    }

    #[test]
    fn incremental_sum_matches_vector_sum() {
        let g = diamond();
        let mut inc = IncrementalSssp::new();
        inc.reset_from(0, &dijkstra(&g, 0));
        inc.add_edge(&g, 0, 3, 0.5);
        let manual: f64 = inc.dist().iter().sum();
        assert_eq!(inc.sum(), manual);
    }

    #[test]
    #[should_panic]
    fn undo_without_frame_panics() {
        IncrementalSssp::new().undo();
    }

    #[test]
    fn relax_insert_matches_fresh_dijkstra_for_any_source() {
        // Edge (1, 2) is incident to neither source; relax_insert against
        // the live graph (already containing it) must still be exact.
        let g = diamond();
        for source in 0..4u32 {
            let d0 = dijkstra(&g, source);
            let mut live = g.clone();
            live.add_edge(1, 2, 0.25);
            let mut inc = IncrementalSssp::new();
            inc.reset_from(source, &d0);
            inc.relax_insert(&live, 1, 2, 0.25);
            assert_eq!(
                inc.dist(),
                dijkstra(&live, source).as_slice(),
                "source {source}"
            );
        }
    }

    #[test]
    fn relax_insert_sequential_insertions_compose() {
        // Two edges inserted one at a time, each relaxed against the graph
        // holding *both*: improvements that need the other edge must
        // propagate (s=0: 0-2 gets cheap only via 3).
        let mut g = AdjacencyList::new(4);
        g.add_edge(0, 1, 10.0);
        g.add_edge(1, 2, 10.0);
        g.add_edge(2, 3, 10.0);
        let d0 = dijkstra(&g, 0);
        let mut live = g.clone();
        live.add_edge(0, 3, 1.0);
        live.add_edge(3, 2, 1.0);
        let mut inc = IncrementalSssp::new();
        inc.reset_from(0, &d0);
        inc.relax_insert(&live, 0, 3, 1.0);
        inc.relax_insert(&live, 3, 2, 1.0);
        assert_eq!(inc.dist(), dijkstra(&live, 0).as_slice());
        assert_eq!(inc.dist()[2], 2.0);
    }

    #[test]
    fn relax_insert_leaves_undo_log_untouched() {
        let g = diamond();
        let d0 = dijkstra(&g, 0);
        let mut inc = IncrementalSssp::new();
        inc.reset_from(0, &d0);
        let mut live = g.clone();
        live.add_edge(0, 3, 0.5);
        inc.relax_insert(&live, 0, 3, 0.5);
        assert_eq!(inc.depth(), 0, "relax_insert must not open undo frames");
    }

    #[test]
    fn remove_edge_matches_fresh_dijkstra_for_any_source() {
        // Remove each edge of the diamond in turn, for every source: the
        // repaired vector must equal a fresh Dijkstra bitwise.
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        for source in 0..4u32 {
            for &(a, b, w) in &edges {
                let d0 = dijkstra(&g, source);
                let mut live = g.clone();
                live.remove_edge(a, b);
                let mut inc = DynamicSssp::new();
                inc.reset_from(source, &d0);
                inc.remove_edge(&live, a, b, w);
                assert_eq!(
                    inc.dist(),
                    dijkstra(&live, source).as_slice(),
                    "source {source}, removed ({a}, {b})"
                );
                assert_eq!(inc.depth(), 0, "removal must not open undo frames");
            }
        }
    }

    #[test]
    fn remove_edge_handles_disconnection() {
        // Removing the bridge leaves {2, 3} unreachable from 0: their
        // repaired distances must be ∞, others untouched.
        let mut g = AdjacencyList::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 2.0);
        g.add_edge(2, 3, 1.0);
        let d0 = dijkstra(&g, 0);
        let mut inc = DynamicSssp::new();
        inc.reset_from(0, &d0);
        let mut live = g.clone();
        live.remove_edge(1, 2);
        inc.remove_edge(&live, 1, 2, 2.0);
        assert_eq!(
            inc.dist(),
            &[0.0, 1.0, f64::INFINITY, f64::INFINITY],
            "disconnected tail must read ∞"
        );
        assert_eq!(inc.dist(), dijkstra(&live, 0).as_slice());
    }

    #[test]
    fn remove_edge_off_shortest_path_is_a_cheap_noop() {
        // The heavy (0, 2) edge supports nobody from source 0 (0→2 goes
        // via 1, 3): removal must leave the vector bitwise untouched.
        let g = diamond();
        let d0 = dijkstra(&g, 0);
        let mut inc = DynamicSssp::new();
        inc.reset_from(0, &d0);
        let mut live = g.clone();
        live.remove_edge(0, 2);
        inc.remove_edge(&live, 0, 2, 3.0);
        assert_eq!(inc.dist(), d0.as_slice());
        assert_eq!(inc.dist(), dijkstra(&live, 0).as_slice());
    }

    #[test]
    fn remove_then_insert_composes_like_a_swap() {
        // A committed swap = remove_edge + relax_insert staged one edge at
        // a time against the live graph; the vector must track both.
        let g = diamond();
        for source in 0..4u32 {
            let mut inc = DynamicSssp::new();
            inc.reset_from(source, &dijkstra(&g, source));
            let mut live = g.clone();
            live.remove_edge(0, 1);
            inc.remove_edge(&live, 0, 1, 1.0);
            assert_eq!(inc.dist(), dijkstra(&live, source).as_slice());
            live.add_edge(0, 3, 0.25);
            inc.relax_insert(&live, 0, 3, 0.25);
            assert_eq!(
                inc.dist(),
                dijkstra(&live, source).as_slice(),
                "source {source}"
            );
        }
    }

    #[test]
    fn remove_edge_repairs_multi_hop_affected_regions() {
        // Path 0-1-2-3-4 plus a long detour 0-4: removing (1, 2) affects
        // {2, 3} from source 0 and must re-route them through the detour.
        let mut g = AdjacencyList::new(5);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 1.0);
        g.add_edge(3, 4, 1.0);
        g.add_edge(0, 4, 10.0);
        let d0 = dijkstra(&g, 0);
        let mut inc = DynamicSssp::new();
        inc.reset_from(0, &d0);
        let mut live = g.clone();
        live.remove_edge(1, 2);
        inc.remove_edge(&live, 1, 2, 1.0);
        assert_eq!(inc.dist(), dijkstra(&live, 0).as_slice());
        assert_eq!(inc.dist()[2], 12.0);
        assert_eq!(inc.dist()[3], 11.0);
    }

    #[test]
    fn masked_view_hides_edges_both_ways() {
        let g = diamond();
        let mask = [(1u32, 0u32)];
        let view = MaskedEdges::new(&g, &mask);
        assert_eq!(view.num_nodes(), 4);
        let mut seen = Vec::new();
        view.for_each_neighbor(0, |v, w| seen.push((v, w)));
        assert_eq!(seen, vec![(2, 3.0)], "masked edge hidden from 0's list");
        seen.clear();
        view.for_each_neighbor(1, |v, w| seen.push((v, w)));
        assert_eq!(seen, vec![(3, 1.0)], "…and from 1's list");
        // A masked Dijkstra equals a Dijkstra on the really-removed graph.
        let mut live = g.clone();
        live.remove_edge(0, 1);
        let mut scratch = DijkstraScratch::new();
        scratch.run(&view, 0, &[]);
        assert_eq!(scratch.to_vec(4), dijkstra(&live, 0));
    }

    #[test]
    fn speculative_remove_rolls_back_bitwise() {
        // For every source and every edge: speculative removal over a
        // masked view must equal a fresh Dijkstra on the removed graph,
        // and rollback must restore the original vector bitwise with
        // both log depths at zero.
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        for source in 0..4u32 {
            let d0 = dijkstra(&g, source);
            let mut inc = DynamicSssp::new();
            inc.reset_from(source, &d0);
            for &(a, b, w) in &edges {
                let mask = [(a, b)];
                let view = MaskedEdges::new(&g, &mask);
                let mut live = g.clone();
                live.remove_edge(a, b);
                inc.begin_speculation();
                inc.remove_edge(&view, a, b, w);
                assert_eq!(
                    inc.dist(),
                    dijkstra(&live, source).as_slice(),
                    "source {source}, removed ({a}, {b})"
                );
                inc.rollback();
                assert_eq!(inc.dist(), d0.as_slice(), "rollback must restore bits");
                assert_eq!((inc.depth(), inc.speculation_depth()), (0, 0));
            }
        }
    }

    #[test]
    fn speculative_swap_composes_remove_and_insert_in_one_frame() {
        // Swap from source 0: drop (0, 1), gain (0, 3) — one frame, one
        // rollback. The mid-frame vector must match a fresh Dijkstra on
        // the swapped graph.
        let g = diamond();
        let d0 = dijkstra(&g, 0);
        let mut inc = DynamicSssp::new();
        inc.reset_from(0, &d0);
        let mask = [(0u32, 1u32)];
        let view = MaskedEdges::new(&g, &mask);
        let mut swapped = g.clone();
        swapped.remove_edge(0, 1);
        swapped.add_edge(0, 3, 0.25);
        inc.begin_speculation();
        inc.remove_edge(&view, 0, 1, 1.0);
        inc.speculate_insert(&view, 0, 3, 0.25);
        assert_eq!(inc.dist(), dijkstra(&swapped, 0).as_slice());
        inc.rollback();
        assert_eq!(inc.dist(), d0.as_slice());
        assert_eq!((inc.depth(), inc.speculation_depth()), (0, 0));
    }

    #[test]
    fn speculative_disconnection_rolls_back() {
        // Removing the only edge into a tail makes it unreachable (∞);
        // rollback must restore the finite distances bitwise.
        let mut g = AdjacencyList::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 2.0);
        g.add_edge(2, 3, 1.0);
        let d0 = dijkstra(&g, 0);
        let mut inc = DynamicSssp::new();
        inc.reset_from(0, &d0);
        let mask = [(1u32, 2u32)];
        let view = MaskedEdges::new(&g, &mask);
        inc.begin_speculation();
        inc.remove_edge(&view, 1, 2, 2.0);
        assert_eq!(inc.dist(), &[0.0, 1.0, f64::INFINITY, f64::INFINITY]);
        inc.rollback();
        assert_eq!(inc.dist(), d0.as_slice());
    }

    #[test]
    fn batched_removals_match_staged_removals() {
        // Remove every pair of edges from a 5-cycle + chords, both staged
        // (edge by edge) and batched (one pass): the vectors must agree
        // bitwise with a fresh Dijkstra, for every source.
        let g = AdjacencyList::from_edges(
            5,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (3, 4, 1.0),
                (4, 0, 1.0),
                (0, 2, 1.5),
                (1, 3, 2.5),
            ],
        );
        let edges: Vec<_> = g.edges().collect();
        for i in 0..edges.len() {
            for j in (i + 1)..edges.len() {
                let pair = [edges[i], edges[j]];
                let mut live = g.clone();
                for &(a, b, _) in &pair {
                    live.remove_edge(a, b);
                }
                for source in 0..5u32 {
                    let mut batched = DynamicSssp::new();
                    batched.reset_from(source, &dijkstra(&g, source));
                    batched.remove_edges(&live, &pair);
                    let fresh = dijkstra(&live, source);
                    assert_eq!(
                        batched.dist(),
                        fresh.as_slice(),
                        "batched: source {source}, removed {pair:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_removal_rolls_back_inside_a_speculation() {
        let g = AdjacencyList::from_edges(
            5,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (3, 4, 1.0),
                (4, 0, 5.0),
            ],
        );
        let d0 = dijkstra(&g, 0);
        let mut inc = DynamicSssp::new();
        inc.reset_from(0, &d0);
        let removed = [(1u32, 2u32, 1.0), (3u32, 4u32, 1.0)];
        let mask = [(1u32, 2u32), (3u32, 4u32)];
        let view = MaskedEdges::new(&g, &mask);
        let mut live = g.clone();
        live.remove_edge(1, 2);
        live.remove_edge(3, 4);
        inc.begin_speculation();
        inc.remove_edges(&view, &removed);
        assert_eq!(inc.dist(), dijkstra(&live, 0).as_slice());
        inc.rollback();
        assert_eq!(inc.dist(), d0.as_slice());
    }

    #[test]
    #[should_panic(expected = "rollback without an open speculation frame")]
    fn rollback_without_frame_panics() {
        DynamicSssp::new().rollback();
    }

    #[test]
    fn bucket_scratch_matches_heap_scratch_bitwise() {
        // Same graph, every source, with and without the hint: the two
        // engines must agree exactly (the debug oracle re-checks this
        // inside every hinted run as well).
        let g = diamond();
        let c = Csr::from_adjacency(&g);
        let mut heap = DijkstraScratch::new();
        let mut bucket = DijkstraScratch::new();
        bucket.set_weight_class(Some((1.0, 3.0)));
        for s in 0..4u32 {
            heap.run(&c, s, &[]);
            bucket.run(&c, s, &[]);
            assert_eq!(heap.to_vec(4), bucket.to_vec(4), "source {s}");
            heap.run_masked(&g, s, &[(0, 1)], &[(0, 3, 0.5)]);
            bucket.run_masked(&g, s, &[(0, 1)], &[(0, 3, 0.5)]);
            assert_eq!(heap.to_vec(4), bucket.to_vec(4), "masked+extra, source {s}");
        }
    }

    #[test]
    fn bucket_scratch_survives_weights_outside_the_declared_class() {
        // A too-narrow hint (declared wmax below the real one, and an
        // extra edge below wmin) must still produce the exact result:
        // mis-bucketed entries get pre-final scans the fixpoint redoes.
        let g = diamond(); // weights 1.0 and 3.0
        let mut bucket = DijkstraScratch::new();
        bucket.set_weight_class(Some((1.0, 1.5)));
        let mut heap = DijkstraScratch::new();
        for s in 0..4u32 {
            bucket.run(&g, s, &[(1, 2, 0.125)]);
            heap.run(&g, s, &[(1, 2, 0.125)]);
            assert_eq!(bucket.to_vec(4), heap.to_vec(4), "source {s}");
        }
    }

    #[test]
    fn degenerate_weight_class_hints_fall_back_to_the_heap() {
        // wmin ≤ 0, non-finite wmax, inverted bounds, and a window past
        // BUCKET_RING_CAP must all run (on the heap) and stay exact.
        let g = diamond();
        let fresh = dijkstra(&g, 0);
        for class in [
            Some((0.0, 3.0)),
            Some((-1.0, 3.0)),
            Some((1.0, f64::INFINITY)),
            Some((3.0, 1.0)),
            Some((1e-9, 3.0)), // ring would be ~3e9 ≫ cap
            None,
        ] {
            let mut s = DijkstraScratch::new();
            s.set_weight_class(class);
            s.run(&g, 0, &[]);
            assert_eq!(s.to_vec(4), fresh, "class {class:?}");
        }
    }

    #[test]
    fn bucket_region_repair_matches_heap_and_rolls_back() {
        // remove_edges with a hint installed: repaired vector must equal
        // a fresh Dijkstra, and a speculative repair must roll back
        // bitwise — for every source and edge.
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        for source in 0..4u32 {
            let d0 = dijkstra(&g, source);
            for &(a, b, w) in &edges {
                let mut live = g.clone();
                live.remove_edge(a, b);
                let mut inc = DynamicSssp::new();
                inc.set_weight_class(Some((1.0, 3.0)));
                inc.reset_from(source, &d0);
                inc.remove_edge(&live, a, b, w);
                assert_eq!(
                    inc.dist(),
                    dijkstra(&live, source).as_slice(),
                    "committed: source {source}, removed ({a}, {b})"
                );

                let mask = [(a, b)];
                let view = MaskedEdges::new(&g, &mask);
                inc.reset_from(source, &d0);
                inc.begin_speculation();
                inc.remove_edge(&view, a, b, w);
                assert_eq!(inc.dist(), dijkstra(&live, source).as_slice());
                inc.rollback();
                assert_eq!(inc.dist(), d0.as_slice(), "rollback must restore bits");
            }
        }
    }

    #[test]
    fn delta_sum_since_prices_frame_churn_exactly() {
        // sum-before + delta must reproduce what the region actually
        // changed: compare against the definitionally-exact per-node
        // recomputation (ascending ids, same accumulation order).
        let g = diamond();
        let d0 = dijkstra(&g, 0);
        let mut inc = DynamicSssp::new();
        inc.reset_from(0, &d0);
        let mark = inc.undo_len();
        let mask = [(0u32, 1u32)];
        let view = MaskedEdges::new(&g, &mask);
        inc.begin_speculation();
        inc.remove_edge(&view, 0, 1, 1.0);
        inc.speculate_insert(&view, 0, 3, 0.25);
        let mut expected = 0.0;
        for (v, &orig) in d0.iter().enumerate() {
            if inc.dist()[v] != orig {
                expected += inc.dist()[v] - orig;
            }
        }
        assert_eq!(inc.delta_sum_since(mark), expected);
        inc.rollback();
        assert_eq!(inc.delta_sum_since(mark), 0.0, "empty log sums to zero");
        assert!(inc.resident_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "not incident to source")]
    #[cfg(debug_assertions)]
    fn add_edge_off_source_violates_contract() {
        // Inserting an edge not incident to the source breaks the
        // relaxation invariant (see add_edge docs); the contract is
        // enforced in debug builds.
        let g = diamond();
        let mut inc = IncrementalSssp::new();
        inc.reset_from(0, &dijkstra(&g, 0));
        inc.add_edge(&g, 1, 2, 0.1);
    }
}
