//! Minimum spanning trees (Prim and Kruskal).
//!
//! MSTs appear in three places in the reproduction: as the connectivity
//! lower bound in social-optimum branch-and-bound, as a starting point for
//! greedy OPT heuristics, and as random-tree generators' backbone in the
//! `T–GNCG` metric factories.

use crate::unionfind::UnionFind;
use crate::{AdjacencyList, NodeId, SymMatrix};

/// Computes an MST of the complete graph described by `w` using Prim's
/// algorithm (dense `O(n²)` — optimal for complete hosts).
///
/// Returns the tree as an edge list. For `n == 0` or `1` the list is empty.
/// Infinite weights are allowed; if the finite part is disconnected the
/// resulting "tree" will contain infinite edges.
pub fn prim_complete(w: &SymMatrix) -> Vec<(NodeId, NodeId, f64)> {
    let n = w.n();
    if n <= 1 {
        return Vec::new();
    }
    let mut in_tree = vec![false; n];
    let mut best = vec![f64::INFINITY; n];
    let mut best_from = vec![0 as NodeId; n];
    let mut edges = Vec::with_capacity(n - 1);
    in_tree[0] = true;
    for v in 1..n {
        best[v] = w.get(0, v as NodeId);
        best_from[v] = 0;
    }
    for _ in 1..n {
        let mut pick = usize::MAX;
        let mut pick_w = f64::INFINITY;
        for v in 0..n {
            if !in_tree[v] && best[v] <= pick_w {
                pick = v;
                pick_w = best[v];
            }
        }
        in_tree[pick] = true;
        edges.push((best_from[pick], pick as NodeId, pick_w));
        for v in 0..n {
            if !in_tree[v] {
                let wv = w.get(pick as NodeId, v as NodeId);
                if wv < best[v] {
                    best[v] = wv;
                    best_from[v] = pick as NodeId;
                }
            }
        }
    }
    edges
}

/// Computes an MST (or minimum spanning forest) of a sparse graph using
/// Kruskal's algorithm. Returns the chosen edges.
pub fn kruskal(g: &AdjacencyList) -> Vec<(NodeId, NodeId, f64)> {
    let mut edges: Vec<_> = g.edges().collect();
    edges.sort_by(|a, b| a.2.total_cmp(&b.2));
    let mut uf = UnionFind::new(g.n());
    let mut out = Vec::new();
    for (u, v, w) in edges {
        if uf.union(u as usize, v as usize) {
            out.push((u, v, w));
        }
    }
    out
}

/// Total weight of an edge list.
pub fn total_weight(edges: &[(NodeId, NodeId, f64)]) -> f64 {
    edges.iter().map(|&(_, _, w)| w).sum()
}

/// Builds an [`AdjacencyList`] from MST edges on `n` nodes.
pub fn to_graph(n: usize, edges: &[(NodeId, NodeId, f64)]) -> AdjacencyList {
    AdjacencyList::from_edges(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prim_on_simple_metric() {
        // Points on a line at 0, 1, 3: MST is {0-1 (1), 1-2 (2)}.
        let pos: [f64; 3] = [0.0, 1.0, 3.0];
        let w = SymMatrix::from_fn(3, |u, v| (pos[u as usize] - pos[v as usize]).abs());
        let t = prim_complete(&w);
        assert_eq!(t.len(), 2);
        assert_eq!(total_weight(&t), 3.0);
        assert!(to_graph(3, &t).is_tree());
    }

    #[test]
    fn prim_matches_kruskal_on_complete() {
        let pos: [f64; 6] = [0.0, 2.0, 2.5, 7.0, 8.0, 8.2];
        let n = pos.len();
        let w = SymMatrix::from_fn(n, |u, v| (pos[u as usize] - pos[v as usize]).abs());
        let g = AdjacencyList::complete_from_matrix(&w);
        let p = prim_complete(&w);
        let k = kruskal(&g);
        assert_eq!(p.len(), n - 1);
        assert_eq!(k.len(), n - 1);
        assert!((total_weight(&p) - total_weight(&k)).abs() < 1e-12);
    }

    #[test]
    fn kruskal_forest_on_disconnected() {
        let mut g = AdjacencyList::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(2, 3, 2.0);
        let f = kruskal(&g);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn prim_trivial_sizes() {
        assert!(prim_complete(&SymMatrix::zeros(0)).is_empty());
        assert!(prim_complete(&SymMatrix::zeros(1)).is_empty());
        let w = SymMatrix::filled(2, 5.0);
        let t = prim_complete(&w);
        assert_eq!(t, vec![(0, 1, 5.0)]);
    }

    #[test]
    fn mst_weight_lower_bounds_any_spanning_tree() {
        // Unit metric on 5 nodes: every spanning tree weighs 4, MST too.
        let w = SymMatrix::filled(5, 1.0);
        let t = prim_complete(&w);
        assert_eq!(total_weight(&t), 4.0);
    }
}
