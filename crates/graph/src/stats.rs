//! Graph statistics used across the experiment harness: diameters,
//! eccentricities, distance costs, cut edges, and weighted betweenness.

use crate::apsp::{apsp_parallel, DistanceMatrix};
use crate::{AdjacencyList, NodeId};

/// Summary statistics of a built network.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of nodes.
    pub n: usize,
    /// Number of undirected edges.
    pub m: usize,
    /// Total edge weight.
    pub total_edge_weight: f64,
    /// Weighted diameter (∞ if disconnected).
    pub diameter: f64,
    /// Sum of all ordered pairwise distances.
    pub total_distance: f64,
    /// Whether the graph is connected.
    pub connected: bool,
}

/// Computes [`GraphStats`] for a graph.
pub fn stats(g: &AdjacencyList) -> GraphStats {
    let d = apsp_parallel(g);
    stats_with_distances(g, &d)
}

/// Computes [`GraphStats`] reusing a precomputed distance table.
pub fn stats_with_distances(g: &AdjacencyList, d: &DistanceMatrix) -> GraphStats {
    GraphStats {
        n: g.n(),
        m: g.m(),
        total_edge_weight: g.total_weight(),
        diameter: d.diameter(),
        total_distance: d.total_distance_cost(),
        connected: d.all_finite() || g.n() <= 1,
    }
}

/// Returns the cut edges (bridges) of `g` via Tarjan's low-link algorithm.
///
/// Lemma 7 of the paper bounds NE edge cost by splitting into at most
/// `n - 1` cut edges plus non-cut edges; the experiment for Theorem 11
/// measures both classes.
pub fn bridges(g: &AdjacencyList) -> Vec<(NodeId, NodeId)> {
    let n = g.n();
    let mut disc = vec![usize::MAX; n];
    let mut low = vec![usize::MAX; n];
    let mut out = Vec::new();
    let mut timer = 0usize;
    // Iterative DFS to avoid recursion limits on long paths.
    #[derive(Clone, Copy)]
    struct Frame {
        u: NodeId,
        parent: NodeId,
        next_edge: usize,
    }
    for root in 0..n as NodeId {
        if disc[root as usize] != usize::MAX {
            continue;
        }
        let mut stack = vec![Frame {
            u: root,
            parent: NodeId::MAX,
            next_edge: 0,
        }];
        disc[root as usize] = timer;
        low[root as usize] = timer;
        timer += 1;
        while let Some(top) = stack.last_mut() {
            let u = top.u;
            let nbrs = g.neighbors(u);
            if top.next_edge < nbrs.len() {
                let (v, _) = nbrs[top.next_edge];
                top.next_edge += 1;
                if disc[v as usize] == usize::MAX {
                    disc[v as usize] = timer;
                    low[v as usize] = timer;
                    timer += 1;
                    stack.push(Frame {
                        u: v,
                        parent: u,
                        next_edge: 0,
                    });
                } else if v != top.parent {
                    low[u as usize] = low[u as usize].min(disc[v as usize]);
                }
            } else {
                let frame = *top;
                stack.pop();
                if let Some(parent_frame) = stack.last() {
                    let p = parent_frame.u;
                    low[p as usize] = low[p as usize].min(low[frame.u as usize]);
                    if low[frame.u as usize] > disc[p as usize] {
                        let (a, b) = if p < frame.u {
                            (p, frame.u)
                        } else {
                            (frame.u, p)
                        };
                        out.push((a, b));
                    }
                }
            }
        }
    }
    out
}

/// Weighted betweenness-style edge load: for every ordered pair `(s, t)`
/// counts each edge lying on *one* (arbitrary, via predecessor) shortest
/// path. Used by the Lemma 8 experiment, which computes the distance cost of
/// a path graph via per-edge shortest-path participation.
pub fn edge_shortest_path_load(g: &AdjacencyList) -> Vec<((NodeId, NodeId), usize)> {
    use std::collections::HashMap;
    let n = g.n();
    let mut load: HashMap<(NodeId, NodeId), usize> = HashMap::new();
    for s in 0..n as NodeId {
        // Dijkstra with predecessor tracking.
        let dist = crate::dijkstra::dijkstra(g, s);
        let mut pred: Vec<Option<NodeId>> = vec![None; n];
        for u in 0..n as NodeId {
            if u == s || dist[u as usize].is_infinite() {
                continue;
            }
            // Find one predecessor on a shortest path.
            for &(v, w) in g.neighbors(u) {
                if crate::approx_eq(dist[v as usize] + w, dist[u as usize]) {
                    pred[u as usize] = Some(v);
                    break;
                }
            }
        }
        for t in 0..n as NodeId {
            if t == s || dist[t as usize].is_infinite() {
                continue;
            }
            let mut cur = t;
            while let Some(p) = pred[cur as usize] {
                let key = if p < cur { (p, cur) } else { (cur, p) };
                *load.entry(key).or_insert(0) += 1;
                cur = p;
                if cur == s {
                    break;
                }
            }
        }
    }
    let mut v: Vec<_> = load.into_iter().collect();
    v.sort();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> AdjacencyList {
        AdjacencyList::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
    }

    #[test]
    fn stats_path() {
        let s = stats(&path4());
        assert_eq!(s.n, 4);
        assert_eq!(s.m, 3);
        assert_eq!(s.total_edge_weight, 3.0);
        assert_eq!(s.diameter, 3.0);
        assert!(s.connected);
        // ordered pairs: 2*(1+2+3 + 1+2 + 1) = 20
        assert_eq!(s.total_distance, 20.0);
    }

    #[test]
    fn bridges_of_path_are_all_edges() {
        let mut b = bridges(&path4());
        b.sort();
        assert_eq!(b, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn bridges_of_cycle_are_empty() {
        let mut g = path4();
        g.add_edge(3, 0, 1.0);
        assert!(bridges(&g).is_empty());
    }

    #[test]
    fn bridges_mixed() {
        // Triangle 0-1-2 plus pendant 3 attached to 2.
        let g = AdjacencyList::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0), (2, 3, 1.0)]);
        assert_eq!(bridges(&g), vec![(2, 3)]);
    }

    #[test]
    fn edge_load_on_path() {
        // On a path, edge i participates in (i+1)(n-1-i) unordered pairs,
        // 2x ordered.
        let loads = edge_shortest_path_load(&path4());
        let as_map: std::collections::HashMap<_, _> = loads.into_iter().collect();
        assert_eq!(as_map[&(0, 1)], 2 * 3);
        assert_eq!(as_map[&(1, 2)], 2 * 4);
        assert_eq!(as_map[&(2, 3)], 2 * 3);
    }

    #[test]
    fn stats_disconnected() {
        let mut g = AdjacencyList::new(3);
        g.add_edge(0, 1, 1.0);
        let s = stats(&g);
        assert!(!s.connected);
        assert!(s.diameter.is_infinite());
    }
}
