//! `k`-spanner verification and stretch measurement.
//!
//! A subgraph `G` of host `H` is a *k-spanner* if
//! `d_G(u,v) <= k · d_H(u,v)` for all pairs. Lemma 1 of the paper proves
//! every Add-only Equilibrium is an `(α+1)`-spanner of `H`; Lemma 2 proves
//! the social optimum is an `(α/2+1)`-spanner. The experiment harness
//! verifies both claims empirically using this module.

use crate::apsp::{apsp_parallel, DistanceMatrix};
use crate::{AdjacencyList, NodeId, SymMatrix};

/// The maximum multiplicative stretch of `sub` relative to host distances
/// `host_dist`, i.e. `max_{u≠v} d_sub(u,v) / d_H(u,v)`.
///
/// Pairs with `d_H(u,v) == 0` are skipped unless `d_sub(u,v) > 0`, in which
/// case the stretch is infinite. Returns `1.0` for graphs with `< 2` nodes.
pub fn max_stretch(sub: &AdjacencyList, host_dist: &DistanceMatrix) -> f64 {
    let n = sub.n();
    assert_eq!(n, host_dist.n());
    if n < 2 {
        return 1.0;
    }
    let sub_dist = apsp_parallel(sub);
    let mut worst: f64 = 1.0;
    for u in 0..n as NodeId {
        for v in (u + 1)..n as NodeId {
            let dh = host_dist.get(u, v);
            let dg = sub_dist.get(u, v);
            if dh == 0.0 {
                if dg > crate::EPS {
                    return f64::INFINITY;
                }
                continue;
            }
            worst = worst.max(dg / dh);
        }
    }
    worst
}

/// Whether `sub` is a `k`-spanner of the host described by `host_dist`
/// (within workspace tolerance).
pub fn is_k_spanner(sub: &AdjacencyList, host_dist: &DistanceMatrix, k: f64) -> bool {
    let s = max_stretch(sub, host_dist);
    crate::approx_le(s, k)
}

/// Host distances of a complete weighted host graph: for *metric* hosts the
/// closure equals the weights themselves; for non-metric hosts shortest
/// paths may shortcut direct edges. This helper always computes true
/// shortest-path distances in `H`.
pub fn host_distances(w: &SymMatrix) -> DistanceMatrix {
    crate::apsp::floyd_warshall(w)
}

/// A greedy minimum-weight `k`-spanner heuristic (the classical
/// Althöfer et al. greedy): scan edges of `H` by non-decreasing weight and
/// keep an edge iff the current spanner's distance between its endpoints
/// exceeds `k` times its weight.
///
/// For metric hosts the result is a valid `k`-spanner of `H`; minimality is
/// heuristic (the exact minimum-weight spanner is NP-hard), which suffices
/// for Theorem 5's *existence* machinery where any locally-minimal
/// 3/2-spanner works as a starting point; the solvers crate post-processes
/// with weight-reducing local moves.
pub fn greedy_k_spanner(w: &SymMatrix, k: f64) -> AdjacencyList {
    let n = w.n();
    let mut edges: Vec<_> = w.pairs().filter(|&(_, _, wt)| wt.is_finite()).collect();
    edges.sort_by(|a, b| a.2.total_cmp(&b.2));
    let mut g = AdjacencyList::new(n);
    for (u, v, wt) in edges {
        let d = crate::dijkstra::dijkstra(&g, u)[v as usize];
        if d > k * wt + crate::EPS {
            g.add_edge(u, v, wt);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_graph_is_1_spanner() {
        let w = SymMatrix::filled(5, 1.0);
        let hd = host_distances(&w);
        let g = AdjacencyList::complete_from_matrix(&w);
        assert!(is_k_spanner(&g, &hd, 1.0));
        assert!((max_stretch(&g, &hd) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn star_is_2_spanner_of_unit_metric() {
        let n = 6;
        let w = SymMatrix::filled(n, 1.0);
        let hd = host_distances(&w);
        let mut star = AdjacencyList::new(n);
        for v in 1..n as NodeId {
            star.add_edge(0, v, 1.0);
        }
        assert!(is_k_spanner(&star, &hd, 2.0));
        assert!(!is_k_spanner(&star, &hd, 1.5));
        assert!((max_stretch(&star, &hd) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn disconnected_has_infinite_stretch() {
        let w = SymMatrix::filled(3, 1.0);
        let hd = host_distances(&w);
        let g = AdjacencyList::new(3);
        assert_eq!(max_stretch(&g, &hd), f64::INFINITY);
        assert!(!is_k_spanner(&g, &hd, 1e12));
    }

    #[test]
    fn greedy_spanner_is_valid() {
        // 1-2 metric: greedy 3/2-spanner must contain all 1-edges (Lemma 5).
        let n = 8;
        let w = SymMatrix::from_fn(n, |u, v| if (u + v) % 3 == 0 { 2.0 } else { 1.0 });
        let hd = host_distances(&w);
        let sp = greedy_k_spanner(&w, 1.5);
        assert!(is_k_spanner(&sp, &hd, 1.5));
        for (u, v, wt) in w.pairs() {
            if wt == 1.0 {
                assert!(
                    sp.has_edge(u, v),
                    "1-edge ({u},{v}) missing from 3/2-spanner"
                );
            }
        }
    }

    #[test]
    fn greedy_spanner_k1_is_whole_metric_graph() {
        // For k = 1 on a strict metric where every detour is strictly longer,
        // every edge must be kept.
        let pos: [f64; 4] = [0.0, 1.0, 2.5, 4.1];
        let w = SymMatrix::from_fn(4, |u, v| (pos[u as usize] - pos[v as usize]).abs());
        let sp = greedy_k_spanner(&w, 1.0);
        // Collinear points: detours have *equal* length, so only the n-1
        // consecutive edges are strictly required.
        assert!(sp.m() >= 3);
        let hd = host_distances(&w);
        assert!(is_k_spanner(&sp, &hd, 1.0));
    }

    #[test]
    fn spanner_of_weighted_tree_closure() {
        let t = crate::tree::WeightedTree::path(&[1.0, 1.0, 1.0, 1.0]);
        let w = t.metric_closure();
        let hd = host_distances(&w);
        // The tree itself is a 1-spanner of its closure.
        let g = t.as_graph();
        assert!(is_k_spanner(&g, &hd, 1.0));
    }
}
