//! Edge-weighted trees and their metric closures.
//!
//! The `T–GNCG` model variant plays the game on the metric closure of a
//! given weighted tree `T` (`w(u,v) = d_T(u,v)` for all pairs). This module
//! provides the tree structure, exact tree distances, and the closure.

use crate::apsp::{apsp_sequential, DistanceMatrix};
use crate::{AdjacencyList, NodeId, SymMatrix};

/// An edge-weighted tree on nodes `0..n`.
#[derive(Clone, Debug)]
pub struct WeightedTree {
    n: usize,
    edges: Vec<(NodeId, NodeId, f64)>,
}

impl WeightedTree {
    /// Builds a tree from its edge list.
    ///
    /// # Panics
    /// Panics if the edges do not form a tree on `n` nodes or any weight is
    /// negative.
    pub fn new(n: usize, edges: Vec<(NodeId, NodeId, f64)>) -> Self {
        assert!(
            n == 0 || edges.len() == n - 1,
            "a tree on {n} nodes needs {} edges, got {}",
            n.saturating_sub(1),
            edges.len()
        );
        assert!(edges.iter().all(|&(_, _, w)| w >= 0.0), "negative weight");
        let g = AdjacencyList::from_edges(n, &edges);
        assert!(g.is_tree() || n == 0, "edge list does not form a tree");
        WeightedTree { n, edges }
    }

    /// A star with center `0` and `n - 1` leaves, all edges of weight `w`.
    pub fn star(n: usize, w: f64) -> Self {
        let edges = (1..n as NodeId).map(|v| (0, v, w)).collect();
        WeightedTree::new(n, edges)
    }

    /// A path `0 - 1 - … - n-1` with the given per-edge weights.
    ///
    /// # Panics
    /// Panics unless `weights.len() == n - 1`.
    pub fn path(weights: &[f64]) -> Self {
        let n = weights.len() + 1;
        let edges = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| (i as NodeId, (i + 1) as NodeId, w))
            .collect();
        WeightedTree::new(n, edges)
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The tree's edges.
    pub fn edges(&self) -> &[(NodeId, NodeId, f64)] {
        &self.edges
    }

    /// Total edge weight of the tree.
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|&(_, _, w)| w).sum()
    }

    /// The tree as an adjacency list.
    pub fn as_graph(&self) -> AdjacencyList {
        AdjacencyList::from_edges(self.n, &self.edges)
    }

    /// All-pairs tree distances.
    pub fn distances(&self) -> DistanceMatrix {
        apsp_sequential(&self.as_graph())
    }

    /// The metric closure: a complete weight matrix with
    /// `w(u,v) = d_T(u,v)`. This is the `T–GNCG` host graph.
    pub fn metric_closure(&self) -> SymMatrix {
        self.distances().into_sym_matrix()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_distances() {
        let t = WeightedTree::star(4, 2.0);
        let d = t.distances();
        assert_eq!(d.get(0, 1), 2.0);
        assert_eq!(d.get(1, 2), 4.0);
        assert_eq!(t.total_weight(), 6.0);
    }

    #[test]
    fn path_distances() {
        let t = WeightedTree::path(&[1.0, 2.0, 3.0]);
        let d = t.distances();
        assert_eq!(d.get(0, 3), 6.0);
        assert_eq!(d.get(1, 3), 5.0);
    }

    #[test]
    fn closure_is_metric() {
        let t = WeightedTree::path(&[1.0, 5.0, 2.0]);
        let closure = t.metric_closure();
        assert!(closure.satisfies_triangle_inequality());
        assert_eq!(closure.get(0, 3), 8.0);
    }

    #[test]
    #[should_panic]
    fn non_tree_rejected() {
        // 4 nodes, 3 edges but with a cycle and a disconnected node.
        WeightedTree::new(4, vec![(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)]);
    }

    #[test]
    #[should_panic]
    fn wrong_edge_count_rejected() {
        WeightedTree::new(4, vec![(0, 1, 1.0)]);
    }

    #[test]
    #[should_panic]
    fn negative_weight_rejected() {
        WeightedTree::new(2, vec![(0, 1, -1.0)]);
    }

    #[test]
    fn closure_of_fig5_tree() {
        // The 10-node tree of Figure 5 (Theorem 14's best-response cycle).
        // Edge weights from the figure: see constructions crate for use.
        let t = WeightedTree::new(
            10,
            vec![
                (6, 3, 3.0),
                (3, 4, 7.0),
                (3, 5, 2.0),
                (3, 2, 5.0),
                (2, 0, 12.0),
                (0, 7, 9.0),
                (7, 1, 11.0),
                (7, 8, 2.0),
                (8, 9, 10.0),
            ],
        );
        let w = t.metric_closure();
        assert!(w.satisfies_triangle_inequality());
        // d(6, 4) = 3 + 7
        assert_eq!(w.get(6, 4), 10.0);
        // d(9, 1) = 10 + 2 + 11
        assert_eq!(w.get(9, 1), 23.0);
    }
}
