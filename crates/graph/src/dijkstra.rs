//! Single-source shortest paths (Dijkstra) on [`AdjacencyList`] graphs.
//!
//! The game layer evaluates agent costs — sums of shortest-path distances —
//! millions of times per experiment, so this module is the hot path. It uses
//! a binary heap over a total-order wrapper for `f64` and supports early
//! exit and virtual extra edges (for "what if agent `u` bought edge `e`"
//! evaluations without mutating the graph).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::{AdjacencyList, NodeId};

/// Min-heap entry: (distance, node) ordered by distance ascending.
#[derive(Copy, Clone, Debug)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist && self.node == other.node
    }
}
impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse on distance to turn BinaryHeap (max-heap) into a min-heap.
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Computes shortest-path distances from `source` to every node.
/// Unreachable nodes get `f64::INFINITY`.
pub fn dijkstra(g: &AdjacencyList, source: NodeId) -> Vec<f64> {
    dijkstra_with_extra(g, source, &[])
}

/// Dijkstra with additional *virtual* undirected edges overlaid on `g`.
///
/// This is the workhorse of best-response evaluation: to price a candidate
/// strategy `S_u` the solver runs Dijkstra from `u` on the graph
/// `G − (u's old edges) ∪ (u's candidate edges)` without copying it.
/// `extra` edges apply in both directions.
pub fn dijkstra_with_extra(
    g: &AdjacencyList,
    source: NodeId,
    extra: &[(NodeId, NodeId, f64)],
) -> Vec<f64> {
    let n = g.n();
    let mut dist = vec![f64::INFINITY; n];
    let mut heap = BinaryHeap::with_capacity(n);
    dist[source as usize] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: source,
    });

    // Pre-bucket extra edges per endpoint for O(1) lookup in the relax loop.
    // extra is tiny (an agent's strategy), so a linear scan is fine.
    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        for &(v, w) in g.neighbors(u) {
            let nd = d + w;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(HeapEntry { dist: nd, node: v });
            }
        }
        for &(a, b, w) in extra {
            let v = if a == u {
                b
            } else if b == u {
                a
            } else {
                continue;
            };
            let nd = d + w;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(HeapEntry { dist: nd, node: v });
            }
        }
    }
    dist
}

/// Dijkstra that ignores every edge incident to `source` that appears in
/// `removed` (as an unordered pair), with `extra` virtual edges added.
///
/// Used to evaluate strategy changes: agent `u`'s owned edges are removed
/// and the candidate strategy's edges are overlaid.
pub fn dijkstra_masked(
    g: &AdjacencyList,
    source: NodeId,
    removed: &[(NodeId, NodeId)],
    extra: &[(NodeId, NodeId, f64)],
) -> Vec<f64> {
    let n = g.n();
    let mut dist = vec![f64::INFINITY; n];
    let mut heap = BinaryHeap::with_capacity(n);
    dist[source as usize] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: source,
    });
    let is_removed = |u: NodeId, v: NodeId| {
        removed
            .iter()
            .any(|&(a, b)| (a == u && b == v) || (a == v && b == u))
    };
    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        for &(v, w) in g.neighbors(u) {
            if is_removed(u, v) {
                continue;
            }
            let nd = d + w;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(HeapEntry { dist: nd, node: v });
            }
        }
        for &(a, b, w) in extra {
            let v = if a == u {
                b
            } else if b == u {
                a
            } else {
                continue;
            };
            let nd = d + w;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(HeapEntry { dist: nd, node: v });
            }
        }
    }
    dist
}

/// Sum of distances from `source` to all nodes (the *distance cost*
/// `d_G(u, V)` of the paper). Infinite if any node is unreachable.
pub fn distance_cost(g: &AdjacencyList, source: NodeId) -> f64 {
    dijkstra(g, source).iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> AdjacencyList {
        // 0 -1- 1 -1- 3, 0 -3- 2 -1- 3
        AdjacencyList::from_edges(
            4,
            &[(0, 1, 1.0), (1, 3, 1.0), (0, 2, 3.0), (2, 3, 1.0)],
        )
    }

    #[test]
    fn shortest_paths_basic() {
        let g = diamond();
        let d = dijkstra(&g, 0);
        assert_eq!(d, vec![0.0, 1.0, 3.0, 2.0]);
    }

    #[test]
    fn unreachable_is_infinite() {
        let mut g = AdjacencyList::new(3);
        g.add_edge(0, 1, 1.0);
        let d = dijkstra(&g, 0);
        assert_eq!(d[2], f64::INFINITY);
        assert!(distance_cost(&g, 0).is_infinite());
    }

    #[test]
    fn extra_edges_shortcut() {
        let g = diamond();
        // Virtual edge 0-3 of weight 0.5 shortcuts everything.
        let d = dijkstra_with_extra(&g, 0, &[(0, 3, 0.5)]);
        assert_eq!(d[3], 0.5);
        assert_eq!(d[2], 1.5);
    }

    #[test]
    fn masked_edges_are_ignored() {
        let g = diamond();
        let d = dijkstra_masked(&g, 0, &[(0, 1)], &[]);
        // Without 0-1, node 1 is reached via 2-3: 3 + 1 + 1 = 5.
        assert_eq!(d[1], 5.0);
        assert_eq!(d[3], 4.0);
    }

    #[test]
    fn mask_and_extra_compose() {
        let g = diamond();
        let d = dijkstra_masked(&g, 0, &[(0, 1), (0, 2)], &[(0, 3, 1.0)]);
        assert_eq!(d[3], 1.0);
        assert_eq!(d[1], 2.0);
        assert_eq!(d[2], 2.0);
    }

    #[test]
    fn distance_cost_sums() {
        let g = diamond();
        assert_eq!(distance_cost(&g, 0), 0.0 + 1.0 + 3.0 + 2.0);
    }

    #[test]
    fn zero_weight_edges_ok() {
        // Thm 20's gap instance uses a zero-weight edge; Dijkstra must
        // handle w = 0 correctly (non-negative weights only).
        let g = AdjacencyList::from_edges(3, &[(0, 1, 0.0), (1, 2, 1.0)]);
        let d = dijkstra(&g, 0);
        assert_eq!(d, vec![0.0, 0.0, 1.0]);
    }
}
