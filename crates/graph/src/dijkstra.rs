//! Single-source shortest paths (Dijkstra) on [`AdjacencyList`] graphs.
//!
//! The game layer evaluates agent costs — sums of shortest-path distances —
//! millions of times per experiment, so this module is the hot path. Since
//! the incremental-engine refactor the actual relaxation lives in
//! [`crate::csr`]: every function here drives a thread-local
//! [`DijkstraScratch`], so repeated calls reuse the heap and the
//! generation-stamped distance array instead of allocating fresh ones.
//! Only materializing the returned `Vec<f64>` allocates; callers on the
//! hottest paths (APSP, best-response search) use the scratch API directly
//! and skip even that.
//!
//! The thread-local scratch here carries **no weight-class hint**, so
//! every free function — and [`dijkstra_reference`] in particular — runs
//! the binary-heap engine, never the bucket queue. That keeps this module
//! an independent ancestor for the bucket-queue equivalence tests: hinted
//! scratches elsewhere are debug-asserted against exactly this path (see
//! [`crate::csr`]'s module docs).

use std::cell::RefCell;

use crate::csr::DijkstraScratch;
use crate::{AdjacencyList, NodeId};

thread_local! {
    static SCRATCH: RefCell<DijkstraScratch> = RefCell::new(DijkstraScratch::new());
}

/// Computes shortest-path distances from `source` to every node.
/// Unreachable nodes get `f64::INFINITY`.
pub fn dijkstra(g: &AdjacencyList, source: NodeId) -> Vec<f64> {
    dijkstra_with_extra(g, source, &[])
}

/// Dijkstra with additional *virtual* undirected edges overlaid on `g`.
///
/// This is the workhorse of single-move evaluation: to price a candidate
/// strategy `S_u` the solver runs Dijkstra from `u` on the graph
/// `G − (u's old edges) ∪ (u's candidate edges)` without copying it.
/// `extra` edges apply in both directions.
pub fn dijkstra_with_extra(
    g: &AdjacencyList,
    source: NodeId,
    extra: &[(NodeId, NodeId, f64)],
) -> Vec<f64> {
    SCRATCH.with(|s| {
        let mut s = s.borrow_mut();
        s.run(g, source, extra);
        s.to_vec(g.n())
    })
}

/// Dijkstra that ignores every edge in `removed` (as unordered pairs),
/// with `extra` virtual edges added.
///
/// Used to evaluate strategy changes: agent `u`'s owned edges are removed
/// and the candidate strategy's edges are overlaid.
pub fn dijkstra_masked(
    g: &AdjacencyList,
    source: NodeId,
    removed: &[(NodeId, NodeId)],
    extra: &[(NodeId, NodeId, f64)],
) -> Vec<f64> {
    SCRATCH.with(|s| {
        let mut s = s.borrow_mut();
        s.run_masked(g, source, removed, extra);
        s.to_vec(g.n())
    })
}

/// Textbook Dijkstra with per-call allocation — deliberately **not**
/// built on [`DijkstraScratch`].
///
/// This is the independent test oracle: every production SSSP entry point
/// (including `exact_best_response_reference`) runs on the shared scratch
/// core, so equivalence tests comparing them to each other could not
/// catch a defect *in that core*. Comparing against this self-contained
/// implementation can. Not a production entry point — use [`dijkstra`].
pub fn dijkstra_reference(g: &AdjacencyList, source: NodeId) -> Vec<f64> {
    #[derive(Copy, Clone, PartialEq)]
    struct Entry(f64, NodeId);
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            other
                .0
                .total_cmp(&self.0)
                .then_with(|| other.1.cmp(&self.1))
        }
    }
    let n = g.n();
    let mut dist = vec![f64::INFINITY; n];
    let mut heap = std::collections::BinaryHeap::new();
    dist[source as usize] = 0.0;
    heap.push(Entry(0.0, source));
    while let Some(Entry(d, u)) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        for &(v, w) in g.neighbors(u) {
            let nd = d + w;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Entry(nd, v));
            }
        }
    }
    dist
}

/// Sum of distances from `source` to all nodes (the *distance cost*
/// `d_G(u, V)` of the paper). Infinite if any node is unreachable.
/// Allocation-free: sums straight out of the thread-local scratch.
pub fn distance_cost(g: &AdjacencyList, source: NodeId) -> f64 {
    SCRATCH.with(|s| {
        let mut s = s.borrow_mut();
        s.run(g, source, &[]);
        s.sum_distances(g.n())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> AdjacencyList {
        // 0 -1- 1 -1- 3, 0 -3- 2 -1- 3
        AdjacencyList::from_edges(4, &[(0, 1, 1.0), (1, 3, 1.0), (0, 2, 3.0), (2, 3, 1.0)])
    }

    #[test]
    fn shortest_paths_basic() {
        let g = diamond();
        let d = dijkstra(&g, 0);
        assert_eq!(d, vec![0.0, 1.0, 3.0, 2.0]);
    }

    #[test]
    fn unreachable_is_infinite() {
        let mut g = AdjacencyList::new(3);
        g.add_edge(0, 1, 1.0);
        let d = dijkstra(&g, 0);
        assert_eq!(d[2], f64::INFINITY);
        assert!(distance_cost(&g, 0).is_infinite());
    }

    #[test]
    fn extra_edges_shortcut() {
        let g = diamond();
        // Virtual edge 0-3 of weight 0.5 shortcuts everything.
        let d = dijkstra_with_extra(&g, 0, &[(0, 3, 0.5)]);
        assert_eq!(d[3], 0.5);
        assert_eq!(d[2], 1.5);
    }

    #[test]
    fn masked_edges_are_ignored() {
        let g = diamond();
        let d = dijkstra_masked(&g, 0, &[(0, 1)], &[]);
        // Without 0-1, node 1 is reached via 2-3: 3 + 1 + 1 = 5.
        assert_eq!(d[1], 5.0);
        assert_eq!(d[3], 4.0);
    }

    #[test]
    fn mask_and_extra_compose() {
        let g = diamond();
        let d = dijkstra_masked(&g, 0, &[(0, 1), (0, 2)], &[(0, 3, 1.0)]);
        assert_eq!(d[3], 1.0);
        assert_eq!(d[1], 2.0);
        assert_eq!(d[2], 2.0);
    }

    #[test]
    fn distance_cost_sums() {
        let g = diamond();
        assert_eq!(distance_cost(&g, 0), 0.0 + 1.0 + 3.0 + 2.0);
    }

    #[test]
    fn zero_weight_edges_ok() {
        // Thm 20's gap instance uses a zero-weight edge; Dijkstra must
        // handle w = 0 correctly (non-negative weights only).
        let g = AdjacencyList::from_edges(3, &[(0, 1, 0.0), (1, 2, 1.0)]);
        let d = dijkstra(&g, 0);
        assert_eq!(d, vec![0.0, 0.0, 1.0]);
    }

    #[test]
    fn scratch_core_matches_independent_reference() {
        // dijkstra() runs on the shared scratch core; dijkstra_reference
        // is self-contained. Agreement here is the one check that does
        // not route both sides through DijkstraScratch.
        let g = diamond();
        for s in 0..4u32 {
            assert_eq!(dijkstra(&g, s), dijkstra_reference(&g, s));
        }
        let mut h = AdjacencyList::new(7);
        for i in 0..6u32 {
            h.add_edge(i, i + 1, 0.5 + i as f64);
        }
        h.add_edge(0, 4, 3.25);
        for s in 0..7u32 {
            assert_eq!(dijkstra(&h, s), dijkstra_reference(&h, s));
        }
    }

    #[test]
    fn repeated_calls_reuse_scratch_consistently() {
        // The thread-local scratch must never leak state between calls on
        // different graphs or sources.
        let g = diamond();
        let mut h = AdjacencyList::new(6);
        h.add_edge(0, 5, 2.0);
        for _ in 0..4 {
            assert_eq!(dijkstra(&g, 0), vec![0.0, 1.0, 3.0, 2.0]);
            let dh = dijkstra(&h, 0);
            assert_eq!(dh[5], 2.0);
            assert!(dh[3].is_infinite());
            assert_eq!(dijkstra(&g, 3), vec![2.0, 1.0, 1.0, 0.0]);
        }
    }
}
