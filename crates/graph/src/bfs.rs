//! Breadth-first search: hop distances for unweighted analysis.
//!
//! The original NCG measures distances as hop counts; on unit-weight
//! networks BFS computes the same distances as Dijkstra at a fraction of
//! the cost. Also used for hop-diameter diagnostics on weighted
//! equilibria (e.g. the Theorem 4 gadget's eccentricity-3 argument).

use std::collections::VecDeque;

use crate::{AdjacencyList, NodeId};

/// Hop distances from `source` (`usize::MAX` marks unreachable nodes).
pub fn bfs_hops(g: &AdjacencyList, source: NodeId) -> Vec<usize> {
    let n = g.n();
    let mut dist = vec![usize::MAX; n];
    let mut queue = VecDeque::with_capacity(n);
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &(v, _) in g.neighbors(u) {
            if dist[v as usize] == usize::MAX {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Hop eccentricity of `source` (`None` when some node is unreachable).
pub fn hop_eccentricity(g: &AdjacencyList, source: NodeId) -> Option<usize> {
    let d = bfs_hops(g, source);
    d.into_iter().try_fold(0usize, |acc, x| {
        if x == usize::MAX {
            None
        } else {
            Some(acc.max(x))
        }
    })
}

/// Hop diameter of a connected graph (`None` when disconnected).
pub fn hop_diameter(g: &AdjacencyList) -> Option<usize> {
    let n = g.n();
    if n == 0 {
        return Some(0);
    }
    let mut diam = 0usize;
    for u in 0..n as NodeId {
        diam = diam.max(hop_eccentricity(g, u)?);
    }
    Some(diam)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> AdjacencyList {
        AdjacencyList::from_edges(4, &[(0, 1, 3.0), (1, 2, 0.5), (2, 3, 7.0)])
    }

    #[test]
    fn hops_ignore_weights() {
        let d = bfs_hops(&path4(), 0);
        assert_eq!(d, vec![0, 1, 2, 3]);
    }

    #[test]
    fn unreachable_nodes() {
        let mut g = AdjacencyList::new(3);
        g.add_edge(0, 1, 1.0);
        let d = bfs_hops(&g, 0);
        assert_eq!(d[2], usize::MAX);
        assert_eq!(hop_eccentricity(&g, 0), None);
        assert_eq!(hop_diameter(&g), None);
    }

    #[test]
    fn diameter_and_eccentricity() {
        let g = path4();
        assert_eq!(hop_eccentricity(&g, 0), Some(3));
        assert_eq!(hop_eccentricity(&g, 1), Some(2));
        assert_eq!(hop_diameter(&g), Some(3));
    }

    #[test]
    fn bfs_matches_dijkstra_on_unit_weights() {
        let g = AdjacencyList::from_edges(
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (0, 3, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (2, 5, 1.0),
            ],
        );
        let hops = bfs_hops(&g, 0);
        let dj = crate::dijkstra::dijkstra(&g, 0);
        for v in 0..6 {
            assert_eq!(hops[v] as f64, dj[v]);
        }
    }

    #[test]
    fn empty_graph_diameter() {
        assert_eq!(hop_diameter(&AdjacencyList::new(0)), Some(0));
        assert_eq!(hop_diameter(&AdjacencyList::new(1)), Some(0));
    }
}
