//! All-pairs shortest paths, sequential and rayon-parallel.
//!
//! Social-cost evaluation needs the full distance matrix of `G(s)`. For the
//! sparse built networks the right algorithm is one Dijkstra per source;
//! sources are independent, so they fan out on the rayon pool
//! ([`apsp_parallel`]). A dense Floyd–Warshall variant is provided for
//! host-graph metric closures ([`floyd_warshall`]).

use rayon::prelude::*;

use crate::csr::{Csr, DijkstraScratch};
use crate::{AdjacencyList, NodeId, SymMatrix};

/// A dense all-pairs distance table.
///
/// Unlike [`SymMatrix`] this is not constrained to a zero diagonal by
/// construction, but shortest-path distances always have one.
#[derive(Clone, Debug, PartialEq)]
pub struct DistanceMatrix {
    n: usize,
    d: Vec<f64>,
}

impl DistanceMatrix {
    /// Wraps a row-major `n × n` buffer.
    pub fn from_raw(n: usize, d: Vec<f64>) -> Self {
        assert_eq!(d.len(), n * n);
        DistanceMatrix { n, d }
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Distance from `u` to `v`.
    #[inline]
    pub fn get(&self, u: NodeId, v: NodeId) -> f64 {
        self.d[u as usize * self.n + v as usize]
    }

    /// Row `u`: distances from `u` to every node.
    #[inline]
    pub fn row(&self, u: NodeId) -> &[f64] {
        let s = u as usize * self.n;
        &self.d[s..s + self.n]
    }

    /// Distance cost `d_G(u, V)` of node `u`.
    pub fn distance_cost(&self, u: NodeId) -> f64 {
        self.row(u).iter().sum()
    }

    /// Total distance cost over all nodes (each ordered pair counted once,
    /// i.e. each unordered pair twice — matching the paper's social cost).
    pub fn total_distance_cost(&self) -> f64 {
        self.d.iter().sum()
    }

    /// Largest finite distance (diameter); `f64::INFINITY` if disconnected.
    pub fn diameter(&self) -> f64 {
        let mut diam: f64 = 0.0;
        for &x in &self.d {
            if x.is_infinite() {
                return f64::INFINITY;
            }
            diam = diam.max(x);
        }
        diam
    }

    /// Eccentricity of `u` (max distance from `u`).
    pub fn eccentricity(&self, u: NodeId) -> f64 {
        self.row(u).iter().fold(0.0, |a, &b| a.max(b))
    }

    /// Whether all pairwise distances are finite.
    pub fn all_finite(&self) -> bool {
        self.d.iter().all(|x| x.is_finite())
    }

    /// Converts to a [`SymMatrix`] (host graphs from metric closures).
    ///
    /// # Panics
    /// Panics if the table is not symmetric within tolerance.
    pub fn into_sym_matrix(self) -> SymMatrix {
        let n = self.n;
        let mut m = SymMatrix::zeros(n);
        for u in 0..n as NodeId {
            for v in (u + 1)..n as NodeId {
                let a = self.get(u, v);
                let b = self.get(v, u);
                assert!(
                    crate::approx_eq(a, b),
                    "asymmetric distance table at ({u}, {v}): {a} vs {b}"
                );
                m.set(u, v, a);
            }
        }
        m
    }
}

/// Sequential APSP: one Dijkstra per source, all sharing one scratch and
/// one CSR snapshot — the only allocations are the snapshot and the
/// `n × n` output buffer itself.
pub fn apsp_sequential(g: &AdjacencyList) -> DistanceMatrix {
    let n = g.n();
    if n == 0 {
        return DistanceMatrix::from_raw(0, Vec::new());
    }
    let csr = Csr::from_adjacency(g);
    let mut scratch = DijkstraScratch::new();
    let mut d = vec![f64::INFINITY; n * n];
    for (u, row) in d.chunks_mut(n).enumerate() {
        scratch.run(&csr, u as NodeId, &[]);
        scratch.write_distances(row);
    }
    DistanceMatrix::from_raw(n, d)
}

/// Parallel APSP: sources fan out on the rayon thread pool, each worker
/// writing its rows directly into disjoint `par_chunks_mut` slices of one
/// flat `n × n` buffer (no per-row `Vec` collection and recopy).
///
/// This is the default APSP entry point in the workspace; for the small
/// graphs of unit tests the sequential path is used automatically to avoid
/// pool overhead.
pub fn apsp_parallel(g: &AdjacencyList) -> DistanceMatrix {
    let n = g.n();
    // Small graphs and single-thread pools both pay fan-out bookkeeping
    // for nothing; the one-scratch sequential loop is strictly better.
    if n < 64 || rayon::current_num_threads() == 1 {
        return apsp_sequential(g);
    }
    apsp_parallel_forced(g)
}

/// Parallel APSP that always uses the rayon pool regardless of size
/// (exposed for the parallelism ablation bench).
pub fn apsp_parallel_forced(g: &AdjacencyList) -> DistanceMatrix {
    let n = g.n();
    if n == 0 {
        return DistanceMatrix::from_raw(0, Vec::new());
    }
    let csr = Csr::from_adjacency(g);
    let mut d = vec![f64::INFINITY; n * n];
    // for_each_init: one scratch per chunk of rows, reused across the
    // chunk, regardless of which pool thread runs it.
    d.par_chunks_mut(n)
        .enumerate()
        .for_each_init(DijkstraScratch::new, |scratch, (u, row)| {
            scratch.run(&csr, u as NodeId, &[]);
            scratch.write_distances(row);
        });
    DistanceMatrix::from_raw(n, d)
}

/// Floyd–Warshall on a dense weight matrix; `None` entries in the input are
/// encoded as `f64::INFINITY`. Returns the metric closure of the weighted
/// graph the matrix describes.
pub fn floyd_warshall(w: &SymMatrix) -> DistanceMatrix {
    let n = w.n();
    let mut d = vec![f64::INFINITY; n * n];
    for u in 0..n {
        for v in 0..n {
            d[u * n + v] = if u == v {
                0.0
            } else {
                w.get(u as NodeId, v as NodeId)
            };
        }
    }
    for k in 0..n {
        for i in 0..n {
            let dik = d[i * n + k];
            if dik.is_infinite() {
                continue;
            }
            for j in 0..n {
                let via = dik + d[k * n + j];
                if via < d[i * n + j] {
                    d[i * n + j] = via;
                }
            }
        }
    }
    DistanceMatrix::from_raw(n, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> AdjacencyList {
        AdjacencyList::from_edges(4, &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)])
    }

    #[test]
    fn sequential_apsp_path() {
        let d = apsp_sequential(&path4());
        assert_eq!(d.get(0, 3), 6.0);
        assert_eq!(d.get(3, 0), 6.0);
        assert_eq!(d.get(1, 2), 2.0);
        assert_eq!(d.diameter(), 6.0);
        assert!(d.all_finite());
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = path4();
        assert_eq!(apsp_sequential(&g), apsp_parallel_forced(&g));
    }

    #[test]
    fn parallel_matches_sequential_large() {
        // Random-ish sparse graph on 100 nodes: ring + chords.
        let n = 100;
        let mut g = AdjacencyList::new(n);
        for i in 0..n {
            g.add_edge(i as NodeId, ((i + 1) % n) as NodeId, 1.0 + (i % 7) as f64);
        }
        for i in (0..n).step_by(13) {
            let j = (i * i + 3) % n;
            if i != j && !g.has_edge(i as NodeId, j as NodeId) {
                g.add_edge(i as NodeId, j as NodeId, 2.5);
            }
        }
        let s = apsp_sequential(&g);
        let p = apsp_parallel(&g);
        assert_eq!(s, p);
    }

    #[test]
    fn distance_cost_and_total() {
        let d = apsp_sequential(&path4());
        assert_eq!(d.distance_cost(0), 0.0 + 1.0 + 3.0 + 6.0);
        // Total = 2 * sum over unordered pairs.
        let unordered: f64 = 1.0 + 3.0 + 6.0 + 2.0 + 5.0 + 3.0;
        assert_eq!(d.total_distance_cost(), 2.0 * unordered);
    }

    #[test]
    fn empty_graph_apsp_is_empty() {
        let g = AdjacencyList::new(0);
        assert_eq!(apsp_sequential(&g).n(), 0);
        assert_eq!(apsp_parallel_forced(&g).n(), 0);
        assert_eq!(apsp_parallel(&g).n(), 0);
    }

    #[test]
    fn diameter_disconnected() {
        let mut g = AdjacencyList::new(3);
        g.add_edge(0, 1, 1.0);
        let d = apsp_sequential(&g);
        assert!(d.diameter().is_infinite());
        assert!(!d.all_finite());
    }

    #[test]
    fn floyd_warshall_matches_dijkstra() {
        let g = path4();
        let mut w = SymMatrix::filled(4, f64::INFINITY);
        for (u, v, wt) in g.edges() {
            w.set(u, v, wt);
        }
        let fw = floyd_warshall(&w);
        let dj = apsp_sequential(&g);
        for u in 0..4 {
            for v in 0..4 {
                assert!(crate::approx_eq(fw.get(u, v), dj.get(u, v)));
            }
        }
    }

    #[test]
    fn metric_closure_via_fw() {
        // Triangle with a long edge: closure should shortcut it.
        let mut w = SymMatrix::filled(3, f64::INFINITY);
        w.set(0, 1, 1.0);
        w.set(1, 2, 1.0);
        w.set(0, 2, 10.0);
        let d = floyd_warshall(&w);
        assert_eq!(d.get(0, 2), 2.0);
        let closure = d.into_sym_matrix();
        assert!(closure.satisfies_triangle_inequality());
    }

    #[test]
    fn eccentricity() {
        let d = apsp_sequential(&path4());
        assert_eq!(d.eccentricity(0), 6.0);
        assert_eq!(d.eccentricity(1), 5.0);
    }
}
