//! Disjoint-set forest (union–find) with path halving and union by rank.
//!
//! Used by Kruskal's MST, forest/cycle detection, and connectivity checks.

/// A classic union–find structure over `0..n`.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Finds the representative of `x` (with path halving).
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x as usize
    }

    /// Unions the sets of `a` and `b`. Returns `false` if they were already
    /// in the same set (i.e. the union edge would close a cycle).
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi as u32;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets.
    pub fn components(&self) -> usize {
        self.components
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_union_find() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.components(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
        assert_eq!(uf.components(), 3);
    }

    #[test]
    fn all_unions_collapse_to_one() {
        let mut uf = UnionFind::new(10);
        for i in 1..10 {
            assert!(uf.union(0, i));
        }
        assert_eq!(uf.components(), 1);
        for i in 0..10 {
            for j in 0..10 {
                assert!(uf.connected(i, j));
            }
        }
    }

    #[test]
    fn cycle_detection_via_union() {
        // Edges of a triangle: third union must fail.
        let mut uf = UnionFind::new(3);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(2, 0));
    }
}
