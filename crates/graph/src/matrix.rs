//! Dense symmetric weight matrices.
//!
//! The host graph of a GNCG instance is a *complete* weighted graph, so a
//! dense symmetric matrix is the natural storage. The diagonal is fixed to
//! zero; `set` keeps the matrix symmetric.

use crate::NodeId;

/// A dense symmetric `n × n` matrix of `f64` weights with a zero diagonal.
///
/// Used both for host-graph weights `w(u, v)` and for all-pairs distance
/// tables. Storage is a flat row-major `Vec<f64>` of length `n²`; symmetric
/// writes keep `m[u][v] == m[v][u]` as an invariant.
#[derive(Clone, Debug, PartialEq)]
pub struct SymMatrix {
    n: usize,
    data: Vec<f64>,
}

impl SymMatrix {
    /// Creates an `n × n` matrix filled with `fill` off the diagonal and
    /// zeros on the diagonal.
    pub fn filled(n: usize, fill: f64) -> Self {
        let mut data = vec![fill; n * n];
        for i in 0..n {
            data[i * n + i] = 0.0;
        }
        SymMatrix { n, data }
    }

    /// Creates an `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        SymMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Builds a matrix from a callback evaluated on every unordered pair
    /// `u < v`; the result is symmetric with a zero diagonal.
    pub fn from_fn(n: usize, mut f: impl FnMut(NodeId, NodeId) -> f64) -> Self {
        let mut m = SymMatrix::zeros(n);
        for u in 0..n {
            for v in (u + 1)..n {
                let w = f(u as NodeId, v as NodeId);
                m.set(u as NodeId, v as NodeId, w);
            }
        }
        m
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Reads entry `(u, v)`.
    #[inline]
    pub fn get(&self, u: NodeId, v: NodeId) -> f64 {
        self.data[u as usize * self.n + v as usize]
    }

    /// Writes entries `(u, v)` and `(v, u)`.
    ///
    /// # Panics
    /// Panics if `u == v` and `w != 0.0` (the diagonal must stay zero).
    #[inline]
    pub fn set(&mut self, u: NodeId, v: NodeId, w: f64) {
        if u == v {
            assert!(w == 0.0, "diagonal of a SymMatrix must remain zero");
            return;
        }
        self.data[u as usize * self.n + v as usize] = w;
        self.data[v as usize * self.n + u as usize] = w;
    }

    /// Row `u` as a slice of length `n` (fast bulk access for Dijkstra and
    /// Floyd–Warshall inner loops).
    #[inline]
    pub fn row(&self, u: NodeId) -> &[f64] {
        let s = u as usize * self.n;
        &self.data[s..s + self.n]
    }

    /// Iterates over all unordered pairs `(u, v, w)` with `u < v`.
    pub fn pairs(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        (0..self.n).flat_map(move |u| {
            ((u + 1)..self.n)
                .map(move |v| (u as NodeId, v as NodeId, self.get(u as NodeId, v as NodeId)))
        })
    }

    /// Sum of all entries over unordered pairs (total weight of the complete
    /// graph the matrix describes).
    pub fn total_weight(&self) -> f64 {
        self.pairs().map(|(_, _, w)| w).sum()
    }

    /// Largest finite entry, or `0.0` for `n <= 1`.
    pub fn max_weight(&self) -> f64 {
        self.pairs()
            .map(|(_, _, w)| w)
            .filter(|w| w.is_finite())
            .fold(0.0, f64::max)
    }

    /// Smallest off-diagonal entry, or `f64::INFINITY` for `n <= 1`.
    pub fn min_weight(&self) -> f64 {
        self.pairs()
            .map(|(_, _, w)| w)
            .fold(f64::INFINITY, f64::min)
    }

    /// Checks all entries are non-negative (edge weights must be in `R+`).
    pub fn is_nonnegative(&self) -> bool {
        self.data.iter().all(|&w| w >= 0.0)
    }

    /// Verifies the triangle inequality `w(u,v) <= w(u,x) + w(x,v)` for all
    /// triples within tolerance; this is the defining property of the
    /// `M–GNCG` model variant.
    pub fn satisfies_triangle_inequality(&self) -> bool {
        let n = self.n;
        for u in 0..n as NodeId {
            for v in (u + 1)..n as NodeId {
                let w_uv = self.get(u, v);
                for x in 0..n as NodeId {
                    if x == u || x == v {
                        continue;
                    }
                    let detour = self.get(u, x) + self.get(x, v);
                    if w_uv > detour + crate::EPS {
                        return false;
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filled_has_zero_diagonal() {
        let m = SymMatrix::filled(4, 7.0);
        for i in 0..4 {
            assert_eq!(m.get(i, i), 0.0);
        }
        assert_eq!(m.get(0, 3), 7.0);
    }

    #[test]
    fn set_is_symmetric() {
        let mut m = SymMatrix::zeros(3);
        m.set(0, 2, 5.5);
        assert_eq!(m.get(0, 2), 5.5);
        assert_eq!(m.get(2, 0), 5.5);
    }

    #[test]
    #[should_panic]
    fn diagonal_write_panics() {
        let mut m = SymMatrix::zeros(3);
        m.set(1, 1, 2.0);
    }

    #[test]
    fn from_fn_builds_symmetric() {
        let m = SymMatrix::from_fn(4, |u, v| (u + v) as f64);
        assert_eq!(m.get(1, 3), 4.0);
        assert_eq!(m.get(3, 1), 4.0);
        assert_eq!(m.get(2, 2), 0.0);
    }

    #[test]
    fn pairs_count() {
        let m = SymMatrix::filled(5, 1.0);
        assert_eq!(m.pairs().count(), 10);
        assert_eq!(m.total_weight(), 10.0);
    }

    #[test]
    fn triangle_inequality_detection() {
        // Unit metric satisfies it.
        let unit = SymMatrix::filled(5, 1.0);
        assert!(unit.satisfies_triangle_inequality());
        // 1-2 weights always satisfy it.
        let m12 = SymMatrix::from_fn(5, |u, v| if (u + v) % 2 == 0 { 2.0 } else { 1.0 });
        assert!(m12.satisfies_triangle_inequality());
        // A long edge violating the detour bound does not.
        let mut bad = SymMatrix::filled(3, 1.0);
        bad.set(0, 1, 10.0);
        assert!(!bad.satisfies_triangle_inequality());
    }

    #[test]
    fn min_max_weight() {
        let mut m = SymMatrix::filled(3, 2.0);
        m.set(0, 1, 1.0);
        assert_eq!(m.min_weight(), 1.0);
        assert_eq!(m.max_weight(), 2.0);
    }

    #[test]
    fn row_access() {
        let m = SymMatrix::from_fn(3, |u, v| (u * 3 + v) as f64);
        let r = m.row(0);
        assert_eq!(r.len(), 3);
        assert_eq!(r[1], 1.0);
        assert_eq!(r[2], 2.0);
    }
}
