//! Request-overhead benchmarks for the experiment service: a loopback
//! daemon on an ephemeral port, measured from the client side.
//!
//! `cached/*` pre-warms the result cache so the measurement isolates the
//! service layer itself (connect + submit + queue + cache lookup + stream
//! framing) from simulation time; `ping` bounds the floor of one protocol
//! round trip on an open connection.

use criterion::{criterion_group, criterion_main, Criterion};

use gncg_service::{Client, Server, ServiceConfig};
use gncg_suite::scenario::{RuleSpec, ScenarioSpec, SchedSpec};

fn small_spec(cells_per_axis: usize) -> ScenarioSpec {
    ScenarioSpec {
        name: "bench-roundtrip".into(),
        hosts: vec!["unit".into()],
        ns: vec![6],
        alphas: (0..cells_per_axis).map(|i| 1.0 + i as f64).collect(),
        rules: vec![RuleSpec::Greedy],
        schedulers: vec![SchedSpec::RoundRobin],
        seeds: vec![0],
        max_rounds: 200,
        base_seed: 7,
        ..ScenarioSpec::default()
    }
}

fn service_roundtrip(c: &mut Criterion) {
    let server = Server::start(
        "127.0.0.1:0",
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr().to_string();

    // Pre-warm the cache for every spec the cached benchmarks use.
    let mut warm = Client::connect(&addr).unwrap();
    for cells in [1, 16] {
        let mut sink = std::io::sink();
        warm.submit_and_stream(&small_spec(cells), &mut sink)
            .unwrap();
    }

    let mut group = c.benchmark_group("service_roundtrip");
    group.bench_function("ping", |b| {
        let mut client = Client::connect(&addr).unwrap();
        b.iter(|| client.ping().unwrap());
    });
    for cells in [1usize, 16] {
        let spec = small_spec(cells);
        group.bench_function(format!("cached/{cells}cells"), |b| {
            b.iter(|| {
                // Full client lifecycle: connect, submit, stream, drop —
                // what one `gncg submit` invocation costs sans simulation.
                let mut client = Client::connect(&addr).unwrap();
                let mut sink = std::io::sink();
                let (_, summary) = client.submit_and_stream(&spec, &mut sink).unwrap();
                assert_eq!(summary.simulated, 0, "bench must stay on the cache path");
                summary.cells
            });
        });
    }
    group.finish();

    let mut client = Client::connect(&addr).unwrap();
    client.shutdown().unwrap();
    server.wait();
}

criterion_group!(benches, service_roundtrip);
criterion_main!(benches);
