//! Social-optimum solver comparison (E08): Algorithm 1 (polynomial, 1-2
//! hosts) vs exact branch-and-bound vs the local-search heuristic — the
//! paper's tractable/intractable boundary in computational form.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use gncg_core::Game;

fn bench_opt_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("social_optimum");
    group.sample_size(10);
    for n in [6usize, 7, 8] {
        let host = gncg_metrics::onetwo::random(n, 0.5, 3);
        let game = Game::new(host.clone(), 0.75);
        group.bench_with_input(BenchmarkId::new("exact_bnb", n), &n, |b, _| {
            b.iter(|| gncg_solvers::opt_exact::social_optimum(&game))
        });
        group.bench_with_input(BenchmarkId::new("algorithm1", n), &n, |b, _| {
            b.iter(|| gncg_solvers::algorithm1::algorithm1_cost(&game))
        });
        group.bench_with_input(BenchmarkId::new("local_search", n), &n, |b, _| {
            b.iter(|| gncg_solvers::opt_heuristic::social_optimum_heuristic(&game, 30))
        });
    }
    // Algorithm 1 scales far beyond the exact solver.
    for n in [32usize, 64] {
        let host = gncg_metrics::onetwo::random(n, 0.5, 3);
        let game = Game::new(host, 0.75);
        group.bench_with_input(BenchmarkId::new("algorithm1_large", n), &n, |b, _| {
            b.iter(|| gncg_solvers::algorithm1::algorithm1_cost(&game))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_opt_solvers);
criterion_main!(benches);
