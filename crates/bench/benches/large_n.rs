//! Large-n scaling benches: the bucket-queue SSSP core against the
//! binary-heap scan on 10³–10⁴-node networks, and the per-activation cost
//! of one bounded-horizon dynamics round as n grows.
//!
//! `scripts/bench_snapshot.sh` derives the tracked figures from these
//! groups: `sssp_bucket_speedup_n4096` = large_n_sssp/heap/4096 ÷
//! large_n_sssp/bucket/4096, and `cost_per_activation_n{256,1024,4096}`
//! = large_n_round/horizon/{n} ÷ n (one add-only round activates every
//! agent once, so the round median divided by n is the activation cost).
//!
//! Hosts come from the `grid` factory: unit-spaced lattice points whose
//! L2 weight class `[1, Θ(√n)]` is exactly the integer-ish regime the
//! bucket ring is built for.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use gncg_core::Game;
use gncg_dynamics::{DynamicsConfig, Engine, ResponseRule, Scheduler, SpeculativePricing};
use gncg_graph::{AdjacencyList, Csr, DijkstraScratch, SymMatrix};

const SIZES: [usize; 3] = [256, 1024, 4096];

fn grid_host(n: usize) -> SymMatrix {
    gncg_metrics::factory::build_host("grid", n, 0).expect("grid factory")
}

/// A sparse connected network over the host: the star a dynamics run
/// starts from, plus one deterministic chord per node — about 2n edges,
/// the density a greedy equilibrium's SSSP queries actually see.
fn star_with_chords(host: &SymMatrix) -> Csr {
    let n = host.n();
    let mut g = AdjacencyList::new(n);
    for v in 1..n {
        g.add_edge(0, v as u32, host.get(0, v as u32));
    }
    for v in 1..n {
        let u = (v * 7 + 1) % n;
        if u != v && !g.has_edge(u as u32, v as u32) {
            g.add_edge(u as u32, v as u32, host.get(u as u32, v as u32));
        }
    }
    Csr::from_adjacency(&g)
}

fn bench_sssp(c: &mut Criterion) {
    let mut group = c.benchmark_group("large_n_sssp");
    group.sample_size(10);
    for n in SIZES {
        let host = grid_host(n);
        let class = Game::new(host.clone(), 1.0).weight_class();
        assert!(class.is_some(), "grid hosts must carry a weight class");
        let net = star_with_chords(&host);
        // Sources off the hub: the interesting scans cross the star.
        let sources: Vec<u32> = (0..8).map(|i| (1 + i * (n / 8)) as u32).collect();
        group.bench_with_input(BenchmarkId::new("heap", n), &net, |b, net| {
            let mut scratch = DijkstraScratch::new();
            b.iter(|| {
                let mut acc = 0.0;
                for &s in &sources {
                    scratch.run(net, s, &[]);
                    acc += scratch.sum_distances(n);
                }
                acc
            })
        });
        group.bench_with_input(BenchmarkId::new("bucket", n), &net, |b, net| {
            let mut scratch = DijkstraScratch::new();
            scratch.set_weight_class(class);
            b.iter(|| {
                let mut acc = 0.0;
                for &s in &sources {
                    scratch.run(net, s, &[]);
                    acc += scratch.sum_distances(n);
                }
                acc
            })
        });
    }
    group.finish();
}

fn bench_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("large_n_round");
    group.sample_size(10);
    // Add-only: the rule the large-n preset runs. A greedy swap scan
    // re-floods the agent's disconnected warm vector per candidate
    // (Θ(n) each → Θ(n³) a round), which is exactly what these cells
    // avoid; the add scan with horizon pricing stays near O(n²).
    let cfg = DynamicsConfig {
        rule: ResponseRule::AddOnly,
        scheduler: Scheduler::RoundRobin,
        max_rounds: 1,
        ..DynamicsConfig::default()
    };
    for n in SIZES {
        let game = Game::new(grid_host(n), 4.0);
        group.bench_with_input(BenchmarkId::new("horizon", n), &game, |b, game| {
            let mut engine = Engine::new();
            engine
                .context_mut()
                .set_pricing(SpeculativePricing::RegionDelta);
            b.iter(|| {
                engine
                    .run(game, gncg_core::Profile::star(game.n(), 0), &cfg)
                    .moves
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sssp, bench_round);
criterion_main!(benches);
