//! Best-response solver ablation: the incremental branch-and-bound vs the
//! historical from-scratch engine, the parallel split search, and the
//! polynomial UMFL local search (Theorem 3's machinery), across instance
//! sizes — quantifying both the price of exactness the NP-hardness results
//! (Cor. 1, Thms 13/16) predict and the payoff of incremental delta
//! evaluation. `scripts/bench_snapshot.sh` derives the tracked
//! `incremental_speedup_n14` figure from the `exact_bnb` /
//! `exact_bnb_reference` pair at n = 14, and asserts
//! `exact_bnb_parallel` never regresses past `exact_bnb` at any measured
//! n. The n = 20 point crosses the parallel engine's sequential cutoff
//! ([`gncg_core::response::MIN_PARALLEL_CANDIDATES`]), so the split
//! search itself — not just the cutoff's sequential fallback — is in the
//! tracked set.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use gncg_core::{Game, Profile};

fn instance(n: usize) -> (Game, Profile) {
    let host = gncg_metrics::arbitrary::random_metric(n, 1.0, 4.0, 11);
    (Game::new(host, 1.5), Profile::star(n, 0))
}

fn bench_best_response(c: &mut Criterion) {
    let mut group = c.benchmark_group("best_response");
    for n in [8usize, 12, 14, 16, 20] {
        let (game, profile) = instance(n);
        group.bench_with_input(BenchmarkId::new("exact_bnb", n), &n, |b, _| {
            b.iter(|| gncg_core::response::exact_best_response(&game, &profile, 1))
        });
        group.bench_with_input(BenchmarkId::new("exact_bnb_reference", n), &n, |b, _| {
            b.iter(|| gncg_core::response::exact_best_response_reference(&game, &profile, 1))
        });
        group.bench_with_input(BenchmarkId::new("exact_bnb_parallel", n), &n, |b, _| {
            b.iter(|| gncg_core::response::exact_best_response_parallel(&game, &profile, 1))
        });
        group.bench_with_input(BenchmarkId::new("umfl_local_search", n), &n, |b, _| {
            b.iter(|| gncg_solvers::umfl::best_response_umfl(&game, &profile, 1))
        });
        group.bench_with_input(BenchmarkId::new("greedy_single_move", n), &n, |b, _| {
            b.iter(|| gncg_core::response::best_greedy_move(&game, &profile, 1))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_best_response);
criterion_main!(benches);
