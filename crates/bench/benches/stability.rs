//! Equilibrium-enumeration bench (E25): cost of computing the exact
//! Price of Stability, with and without the theorem-based prunes — an
//! ablation of the Lemma 1 spanner prune and the ownership-independent
//! AE/greedy factorization that make the search feasible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use gncg_core::Game;

fn bench_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("equilibrium_enumeration");
    group.sample_size(10);
    for n in [4usize, 5] {
        for (name, host) in [
            ("unit", gncg_metrics::unit::unit_host(n)),
            (
                "tree",
                gncg_metrics::treemetric::random_tree(n, 1.0, 3.0, 1).metric_closure(),
            ),
            (
                "metric",
                gncg_metrics::arbitrary::random_metric(n, 1.0, 4.0, 1),
            ),
        ] {
            let game = Game::new(host, 2.0);
            group.bench_with_input(BenchmarkId::new(name, n), &game, |b, g| {
                b.iter(|| gncg_solvers::stability::enumerate_equilibria(g))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_enumeration);
criterion_main!(benches);
