//! Parallelism ablation: sequential vs rayon-parallel all-pairs shortest
//! paths on built networks of growing size — the substrate cost that
//! dominates every social-cost evaluation in the experiment harness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use gncg_graph::apsp::{apsp_parallel_forced, apsp_sequential};
use gncg_graph::AdjacencyList;

fn ring_with_chords(n: usize) -> AdjacencyList {
    let mut g = AdjacencyList::new(n);
    for i in 0..n {
        g.add_edge(i as u32, ((i + 1) % n) as u32, 1.0 + (i % 5) as f64);
    }
    for i in (0..n).step_by(7) {
        let j = (i * i + 5) % n;
        if i != j && !g.has_edge(i as u32, j as u32) {
            g.add_edge(i as u32, j as u32, 2.0);
        }
    }
    g
}

fn bench_apsp(c: &mut Criterion) {
    let mut group = c.benchmark_group("apsp");
    for n in [64usize, 128, 256] {
        let g = ring_with_chords(n);
        group.bench_with_input(BenchmarkId::new("sequential", n), &g, |b, g| {
            b.iter(|| apsp_sequential(g))
        });
        group.bench_with_input(BenchmarkId::new("parallel", n), &g, |b, g| {
            b.iter(|| apsp_parallel_forced(g))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_apsp);
criterion_main!(benches);
