//! The per-activation candidate-move scan ablation (`move_scan`): full
//! greedy dynamics replayed on the swap-heavy preset hosts under the
//! speculative warm-vector scan ([`ScanPolicy::SpeculativeDelta`] —
//! apply each candidate's edge delta to the warm vector, read the sum,
//! roll back) vs the historical masked-from-scratch-Dijkstra-per-
//! candidate baseline ([`ScanPolicy::MaskedDijkstra`]). Both policies
//! choose identical moves, so the runs do identical game-level work and
//! the ratio isolates the scan. `scripts/bench_snapshot.sh` derives the
//! tracked `move_scan_speedup_n20` figure from this pair.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use gncg_core::{Game, Profile};
use gncg_dynamics::{DynamicsConfig, Engine, ResponseRule, ScanPolicy, Scheduler};
use gncg_suite::scenario::ScenarioSpec;

fn bench_move_scan(c: &mut Criterion) {
    // Hosts drawn from the swap-heavy preset grid: one cell per host
    // family (r2 / grid / clusters at n = 20, the α = 4 column) — the
    // regime where deletes and swaps make up about half the applied
    // moves, so the scan prices the full add/delete/swap vocabulary.
    let spec = ScenarioSpec::swap_heavy();
    let games: Vec<Game> = spec
        .expand()
        .iter()
        .filter(|cell| cell.alpha == 4.0 && cell.seed == 0)
        .map(|cell| {
            let host = gncg_metrics::factory::build_host(&cell.host, cell.n, cell.cell_seed)
                .expect("preset hosts are registered");
            Game::new(host, cell.alpha)
        })
        .collect();
    assert_eq!(games.len(), 3);
    let n = games[0].n();
    let cfg = DynamicsConfig {
        rule: ResponseRule::BestGreedyMove,
        scheduler: Scheduler::RoundRobin,
        max_rounds: 500,
        ..DynamicsConfig::default()
    };
    let mut group = c.benchmark_group("move_scan");
    group.sample_size(10);
    for (name, scan) in [
        ("speculative", ScanPolicy::SpeculativeDelta),
        ("masked", ScanPolicy::MaskedDijkstra),
    ] {
        group.bench_with_input(BenchmarkId::new(name, n), &scan, |b, &s| {
            b.iter(|| {
                let mut moves = 0usize;
                for game in &games {
                    let mut engine = Engine::new();
                    engine.context_mut().set_scan_policy(s);
                    let r = engine.run(game, Profile::star(n, 0), &cfg);
                    moves += r.moves;
                }
                moves
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_move_scan);
criterion_main!(benches);
