//! Generation cost of the PoA lower-bound families (the per-figure series
//! of E03/E09/E15/E18/E19/E20): building the family instance and measuring
//! its NE/OPT ratio at growing n — the workload behind Figures 3, 6, 9
//! and 10.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use gncg_core::cost::social_cost;

fn bench_star_tree_family(c: &mut Criterion) {
    let mut group = c.benchmark_group("family_star_tree_fig6");
    for n in [16usize, 64, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let g = gncg_constructions::star_tree::game(n, 4.0);
                let ne = social_cost(&g, &gncg_constructions::star_tree::ne_profile(n));
                let opt = social_cost(&g, &gncg_constructions::star_tree::opt_profile(n));
                ne / opt
            })
        });
    }
    group.finish();
}

fn bench_clique_of_stars_family(c: &mut Criterion) {
    use gncg_constructions::clique_of_stars::CliqueOfStars;
    let mut group = c.benchmark_group("family_clique_of_stars_fig3");
    group.sample_size(10);
    for n_param in [3usize, 5, 7] {
        group.bench_with_input(BenchmarkId::from_parameter(n_param), &n_param, |b, &np| {
            b.iter(|| {
                let cs = CliqueOfStars::alpha_one(np);
                let g = cs.game(1.0);
                let ne = social_cost(&g, &cs.ne_profile());
                let opt = social_cost(&g, &cs.opt_profile());
                ne / opt
            })
        });
    }
    group.finish();
}

fn bench_cross_polytope_family(c: &mut Criterion) {
    let mut group = c.benchmark_group("family_cross_polytope_fig10");
    for d in [4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            b.iter(|| {
                let g = gncg_constructions::cross_polytope::game(d, 4.0);
                let ne = social_cost(&g, &gncg_constructions::cross_polytope::ne_profile(d));
                let opt = social_cost(&g, &gncg_constructions::cross_polytope::opt_profile(d));
                ne / opt
            })
        });
    }
    group.finish();
}

fn bench_geometric_path_family(c: &mut Criterion) {
    let mut group = c.benchmark_group("family_geometric_path_fig9");
    for n in [8usize, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let g = gncg_constructions::geometric_path::game(n, 2.0);
                let ne = social_cost(&g, &gncg_constructions::geometric_path::star_profile(n));
                let opt = social_cost(&g, &gncg_constructions::geometric_path::path_profile(n));
                ne / opt
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_star_tree_family,
    bench_clique_of_stars_family,
    bench_cross_polytope_family,
    bench_geometric_path_family
);
criterion_main!(benches);
