//! Scheduler ablation (E24): convergence cost of response dynamics under
//! round-robin, random, and max-gain activation — the sequential vs
//! parallel sweep throughput used by the harness — and the swap-heavy
//! warm-vector maintenance ablation (`dynamics_swap_heavy`): the
//! deletion-tolerant `DynamicSssp` repair vs the historical
//! invalidate-and-redo baseline. `scripts/bench_snapshot.sh` derives the
//! tracked `swap_heavy_speedup_n20` figure from the
//! `dynamics_swap_heavy` pair; the pool ablations `maxgain_scan` and
//! `grid_wall` (each run once on the work-stealing pool and once inside
//! [`rayon::with_sequential`]) feed the tracked
//! `maxgain_parallel_speedup_n20` and `grid_wall_speedup` figures; the
//! `br_grid` pair (persistent BR bound tables vs rebuild-every-
//! activation) feeds `br_grid_speedup_n14`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use gncg_core::{Game, NodeId, Profile};
use gncg_dynamics::{
    BrCachePolicy, DynamicsConfig, Engine, EvalContext, RemovalPolicy, ResponseRule, Scheduler,
};
use gncg_suite::scenario::{run_cell_slice, ScenarioSpec};

fn bench_schedulers(c: &mut Criterion) {
    let host = gncg_metrics::arbitrary::random_metric(10, 1.0, 4.0, 5);
    let game = gncg_core::Game::new(host, 1.5);
    let mut group = c.benchmark_group("dynamics_scheduler");
    for (name, sched) in [
        ("round_robin", Scheduler::RoundRobin),
        ("random", Scheduler::RandomOrder { seed: 3 }),
        ("max_gain", Scheduler::MaxGain),
    ] {
        group.bench_with_input(BenchmarkId::new(name, 10), &sched, |b, &s| {
            b.iter(|| {
                gncg_dynamics::run(
                    &game,
                    Profile::star(10, 0),
                    &DynamicsConfig {
                        rule: ResponseRule::BestGreedyMove,
                        scheduler: s,
                        max_rounds: 300,
                        ..DynamicsConfig::default()
                    },
                )
            })
        });
    }
    group.finish();
}

fn bench_sweep_parallelism(c: &mut Criterion) {
    let hosts: Vec<gncg_graph::SymMatrix> = (0..8)
        .map(|s| gncg_metrics::arbitrary::random_metric(8, 1.0, 4.0, s))
        .collect();
    let alphas = [0.5, 1.0, 2.0, 4.0];
    let cfg = DynamicsConfig {
        rule: ResponseRule::BestGreedyMove,
        scheduler: Scheduler::RoundRobin,
        max_rounds: 200,
        ..DynamicsConfig::default()
    };
    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| {
            gncg_dynamics::parallel::sweep_sequential(&hosts, &alphas, &cfg, |_, n| {
                Profile::star(n, 0)
            })
        })
    });
    group.bench_function("rayon", |b| {
        b.iter(|| gncg_dynamics::parallel::sweep(&hosts, &alphas, &cfg, |_, n| Profile::star(n, 0)))
    });
    group.finish();
}

/// Replays a deterministic swap-heavy strategy-change script through an
/// [`EvalContext`] with every distance vector warm — the exact subsystem
/// the removal policy changes. Each leaf agent buys a shortcut, swaps it
/// twice, then deletes it (the churn the `swap_heavy` grid's α band
/// produces); after every applied change the context re-warms all
/// vectors, as the MaxGain pre-pass does each round. Under
/// [`RemovalPolicy::Invalidate`] every removal-bearing change costs `n`
/// fresh Dijkstras; under [`RemovalPolicy::DynamicSssp`] each vector is
/// repaired in place. Returns a distance checksum so the work is not
/// optimized away.
fn replay_swap_script(game: &Game, policy: RemovalPolicy) -> f64 {
    let n = game.n();
    let mut profile = Profile::star(n, 0);
    let mut ctx = EvalContext::new(game, &profile);
    ctx.set_removal_policy(policy);
    ctx.ensure_all_warm();
    let mut checksum = 0.0;
    for u in 1..n as NodeId {
        // Three distinct shortcut targets for u, none of them the star
        // center (those edges exist) and none of them u itself.
        let pick = |k: u32| -> NodeId {
            let t = 1 + (u + k) % (n as NodeId - 1);
            if t == u {
                1 + (u + k + 1) % (n as NodeId - 1)
            } else {
                t
            }
        };
        let (t1, t2, t3) = (pick(1), pick(5), pick(9));
        let steps: [&[NodeId]; 4] = [&[t1], &[t2], &[t3], &[]];
        for step in steps {
            let old = profile.strategy(u).clone();
            profile.set_strategy(u, step.iter().copied().collect());
            ctx.apply_strategy_change(game, &profile, u, &old);
            ctx.ensure_all_warm();
            checksum += ctx.distance_sum(u);
        }
    }
    checksum
}

fn bench_swap_heavy(c: &mut Criterion) {
    // Hosts drawn from the swap-heavy preset grid: one cell per host
    // family (r2 / grid / clusters at n = 20, the α = 4 column).
    let spec = ScenarioSpec::swap_heavy();
    let games: Vec<Game> = spec
        .expand()
        .iter()
        .filter(|cell| cell.alpha == 4.0 && cell.seed == 0)
        .map(|cell| {
            let host = gncg_metrics::factory::build_host(&cell.host, cell.n, cell.cell_seed)
                .expect("preset hosts are registered");
            Game::new(host, cell.alpha)
        })
        .collect();
    assert_eq!(games.len(), 3);
    let n = games[0].n();
    let mut group = c.benchmark_group("dynamics_swap_heavy");
    group.sample_size(10);
    for (name, policy) in [
        ("dynamic", RemovalPolicy::DynamicSssp),
        ("invalidate", RemovalPolicy::Invalidate),
    ] {
        group.bench_with_input(BenchmarkId::new(name, n), &policy, |b, &p| {
            b.iter(|| {
                games
                    .iter()
                    .map(|game| replay_swap_script(game, p))
                    .sum::<f64>()
            })
        });
    }
    group.finish();
}

/// MaxGain rounds at n = 20: every round warms all 20 distance vectors
/// and scans every agent's best move, both fanned over the rayon pool.
/// The pair prices that fan-out against the same run forced inline via
/// [`rayon::with_sequential`] — determinism guarantees the two arms
/// compute byte-identical results, so the delta is pure pool overhead
/// (or speedup). `scripts/bench_snapshot.sh` derives
/// `maxgain_parallel_speedup_n20` from it.
fn bench_maxgain_scan(c: &mut Criterion) {
    let n = 20usize;
    let host = gncg_metrics::arbitrary::random_metric(n, 1.0, 4.0, 7);
    let game = Game::new(host, 2.0);
    let cfg = DynamicsConfig {
        rule: ResponseRule::BestGreedyMove,
        scheduler: Scheduler::MaxGain,
        max_rounds: 300,
        ..DynamicsConfig::default()
    };
    let mut group = c.benchmark_group("maxgain_scan");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("sequential", n), &n, |b, _| {
        b.iter(|| rayon::with_sequential(|| gncg_dynamics::run(&game, Profile::star(n, 0), &cfg)))
    });
    group.bench_with_input(BenchmarkId::new("parallel", n), &n, |b, _| {
        b.iter(|| gncg_dynamics::run(&game, Profile::star(n, 0), &cfg))
    });
    group.finish();
}

/// Grid wall clock: a 12-cell swap-heavy slice through the real cell
/// runner ([`run_cell_slice`], the same sharded pipeline the JSONL
/// streamer waves over), on the pool vs forced inline. This is the
/// figure the whole parallelism stack exists to move;
/// `scripts/bench_snapshot.sh` derives `grid_wall_speedup` from it.
fn bench_grid_wall(c: &mut Criterion) {
    // Two α bands × three host families × two seeds at n = 20.
    let cells: Vec<_> = ScenarioSpec::swap_heavy()
        .expand()
        .into_iter()
        .filter(|cell| cell.alpha != 4.0 && cell.seed < 2)
        .collect();
    assert_eq!(cells.len(), 12);
    let mut group = c.benchmark_group("grid_wall");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("sequential", "12cells"), &(), |b, _| {
        b.iter(|| rayon::with_sequential(|| run_cell_slice(&cells)))
    });
    group.bench_with_input(BenchmarkId::new("parallel", "12cells"), &(), |b, _| {
        b.iter(|| run_cell_slice(&cells))
    });
    group.finish();
}

/// Replays exact-best-response stability sweeps through an
/// [`EvalContext`], starting from a converged profile: eight rounds of
/// **two** `agent_is_stable_given_current` sweeps over every agent (the
/// regret-meter pricing pass plus the convergence check the run loop
/// performs each round) with one strategy toggle committed between
/// rounds so the tables keep absorbing deltas. This is where the
/// br-grid cells spend their wall clock — runs converge within a few
/// rounds and the bill after that is stability probing, where
/// branch-and-bound pruning is sharp and the dominant cost of a probe
/// is building the bound tables (candidate sort + n + 1 Dijkstras for
/// the `d0`/B* vectors). Under `Rebuild` every probe pays that build;
/// under `Cached` a probe pays only delta maintenance plus the DFS, and
/// the delta-free second sweep returns memoized results outright. The
/// dynamics-loop bookkeeping both policies share is deliberately thin
/// here, as in `replay_swap_script`, so the pair isolates bound-table
/// reuse. Returns a stability count so the searches are not optimized
/// away.
fn replay_br_sweeps(game: &Game, start: &Profile, policy: BrCachePolicy) -> usize {
    const RULE: ResponseRule = ResponseRule::ExactBestResponse;
    let n = game.n();
    let mut profile = start.clone();
    let mut ctx = EvalContext::new(game, &profile);
    ctx.set_br_policy(policy);
    let mut stable = 0usize;
    let m = n as NodeId - 1;
    for round in 0..8 as NodeId {
        for _sweep in 0..2 {
            for u in 0..n as NodeId {
                if gncg_dynamics::engine::agent_is_stable_given_current(
                    game, &profile, &mut ctx, u, RULE,
                ) {
                    stable += 1;
                }
            }
        }
        // One non-center agent toggles a shortcut (a buy if absent, a
        // drop if the converged profile owns it), so the next round's
        // probes flow through both the insert and the stale-removal
        // maintenance paths while staying near equilibrium.
        let a = 1 + round % m;
        let t = 1 + (a + 2) % m;
        let t = if t == a { 1 + (t % m) } else { t };
        let old = profile.strategy(a).clone();
        let mut s = old.clone();
        if !s.insert(t) {
            s.remove(&t);
        }
        profile.set_strategy(a, s);
        ctx.apply_strategy_change(game, &profile, a, &old);
    }
    stable
}

/// The persistent BR bound tables priced on the br-grid column the
/// golden locks: [`replay_br_sweeps`] at n = 14 over one game per host
/// family × α band of the `br_grid` preset (the seed = 0 column), with
/// the per-agent `BrBoundCache` resident across activations (`cached`,
/// the default policy) vs torn down and rebuilt on every activation
/// (`rebuild`, the historical baseline). Determinism guarantees both
/// arms price bitwise-identical best responses, so the delta is pure
/// bound-table reuse. `scripts/bench_snapshot.sh` derives the tracked
/// `br_grid_speedup_n14` figure (rebuild ÷ cached wall time) from this
/// pair.
fn bench_br_grid(c: &mut Criterion) {
    let cfg = DynamicsConfig {
        rule: ResponseRule::ExactBestResponse,
        scheduler: Scheduler::RoundRobin,
        max_rounds: 60,
        ..DynamicsConfig::default()
    };
    let games: Vec<(Game, Profile)> = ScenarioSpec::br_grid()
        .expand()
        .iter()
        .filter(|cell| cell.n == 14 && cell.seed == 0)
        .map(|cell| {
            let host = gncg_metrics::factory::build_host(&cell.host, cell.n, cell.cell_seed)
                .expect("preset hosts are registered");
            let game = Game::new(host, cell.alpha);
            // Both arms sweep from the same converged state; convergence
            // itself is deterministic and identical under either policy.
            let start = Engine::new()
                .run(&game, Profile::star(cell.n, 0), &cfg)
                .profile;
            (game, start)
        })
        .collect();
    assert_eq!(games.len(), 9);
    let n = games[0].0.n();
    let mut group = c.benchmark_group("br_grid");
    group.sample_size(10);
    for (name, policy) in [
        ("cached", BrCachePolicy::Cached),
        ("rebuild", BrCachePolicy::Rebuild),
    ] {
        group.bench_with_input(BenchmarkId::new(name, n), &policy, |b, &p| {
            b.iter(|| {
                games
                    .iter()
                    .map(|(game, start)| replay_br_sweeps(game, start, p))
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

/// The regret meter's price at n = 20: the same round-robin greedy run
/// with the meter off vs on (one extra speculative pricing scan per
/// round, the pass MaxGain already runs to pick a winner).
/// `scripts/bench_snapshot.sh` derives `regret_meter_overhead_n20`
/// (on ÷ off wall time) from this pair.
fn bench_regret_meter(c: &mut Criterion) {
    let n = 20usize;
    let host = gncg_metrics::arbitrary::random_metric(n, 1.0, 4.0, 7);
    let game = Game::new(host, 2.0);
    let cfg = |meter: bool| DynamicsConfig {
        rule: ResponseRule::BestGreedyMove,
        scheduler: Scheduler::RoundRobin,
        max_rounds: 300,
        regret_meter: meter,
        ..DynamicsConfig::default()
    };
    let mut group = c.benchmark_group("regret_meter");
    group.sample_size(10);
    for (name, meter) in [("off", false), ("on", true)] {
        let cfg = cfg(meter);
        group.bench_with_input(BenchmarkId::new(name, n), &(), |b, _| {
            b.iter(|| gncg_dynamics::run(&game, Profile::star(n, 0), &cfg))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_schedulers,
    bench_sweep_parallelism,
    bench_swap_heavy,
    bench_maxgain_scan,
    bench_grid_wall,
    bench_br_grid,
    bench_regret_meter
);
criterion_main!(benches);
