//! Scheduler ablation (E24): convergence cost of response dynamics under
//! round-robin, random, and max-gain activation — and the sequential vs
//! parallel sweep throughput used by the harness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use gncg_core::Profile;
use gncg_dynamics::{DynamicsConfig, ResponseRule, Scheduler};

fn bench_schedulers(c: &mut Criterion) {
    let host = gncg_metrics::arbitrary::random_metric(10, 1.0, 4.0, 5);
    let game = gncg_core::Game::new(host, 1.5);
    let mut group = c.benchmark_group("dynamics_scheduler");
    for (name, sched) in [
        ("round_robin", Scheduler::RoundRobin),
        ("random", Scheduler::RandomOrder { seed: 3 }),
        ("max_gain", Scheduler::MaxGain),
    ] {
        group.bench_with_input(BenchmarkId::new(name, 10), &sched, |b, &s| {
            b.iter(|| {
                gncg_dynamics::run(
                    &game,
                    Profile::star(10, 0),
                    &DynamicsConfig {
                        rule: ResponseRule::BestGreedyMove,
                        scheduler: s,
                        max_rounds: 300,
                        record_trace: false,
                    },
                )
            })
        });
    }
    group.finish();
}

fn bench_sweep_parallelism(c: &mut Criterion) {
    let hosts: Vec<gncg_graph::SymMatrix> = (0..8)
        .map(|s| gncg_metrics::arbitrary::random_metric(8, 1.0, 4.0, s))
        .collect();
    let alphas = [0.5, 1.0, 2.0, 4.0];
    let cfg = DynamicsConfig {
        rule: ResponseRule::BestGreedyMove,
        scheduler: Scheduler::RoundRobin,
        max_rounds: 200,
        record_trace: false,
    };
    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| {
            gncg_dynamics::parallel::sweep_sequential(&hosts, &alphas, &cfg, |_, n| {
                Profile::star(n, 0)
            })
        })
    });
    group.bench_function("rayon", |b| {
        b.iter(|| gncg_dynamics::parallel::sweep(&hosts, &alphas, &cfg, |_, n| Profile::star(n, 0)))
    });
    group.finish();
}

criterion_group!(benches, bench_schedulers, bench_sweep_parallelism);
criterion_main!(benches);
