//! # gncg-bench
//!
//! Shared helpers for the criterion benches and the `experiments` binary
//! (the harness that regenerates every table and figure of the paper —
//! see `EXPERIMENTS.md` at the repository root).

pub mod report;

use gncg_core::cost::social_cost;
use gncg_core::{Game, Profile};

// The star-start dynamics wiring lives in the scenario layer now; the
// experiment harness re-exports it so call sites read the same.
pub use gncg_suite::scenario::dynamics_from_star;

/// A single experiment check: a labelled paper claim with a measured
/// value and a pass verdict.
#[derive(Clone, Debug)]
pub struct Check {
    /// Experiment id, e.g. `"E03"`.
    pub id: &'static str,
    /// Short description of the check.
    pub what: String,
    /// The paper's claim (human-readable).
    pub paper: String,
    /// The measured outcome (human-readable).
    pub measured: String,
    /// Whether the measurement supports the claim.
    pub pass: bool,
}

impl Check {
    /// Formats as a harness output row.
    pub fn row(&self) -> String {
        format!(
            "[{}] {:4} | {} | paper: {} | measured: {}",
            if self.pass { "PASS" } else { "FAIL" },
            self.id,
            self.what,
            self.paper,
            self.measured
        )
    }
}

/// Measured equilibrium/OPT ratio using the exact OPT (requires n ≤ 9).
pub fn measured_ratio_exact_opt(game: &Game, profile: &Profile) -> f64 {
    let opt = gncg_solvers::opt_exact::social_optimum(game);
    social_cost(game, profile) / opt.cost
}

/// Measured equilibrium/heuristic-OPT ratio (valid PoA lower bound for
/// any n — the heuristic only over-estimates OPT is false; it
/// *upper-bounds* OPT, so the ratio *lower*-bounds the true ratio).
pub fn measured_ratio_heuristic_opt(game: &Game, profile: &Profile) -> f64 {
    let opt = gncg_solvers::opt_heuristic::social_optimum_heuristic(game, 40);
    social_cost(game, profile) / opt.cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use gncg_graph::SymMatrix;

    #[test]
    fn check_row_formatting() {
        let c = Check {
            id: "E99",
            what: "demo".into(),
            paper: "x ≤ 1".into(),
            measured: "x = 0.5".into(),
            pass: true,
        };
        assert!(c.row().contains("PASS"));
        assert!(c.row().contains("E99"));
    }

    #[test]
    fn ratio_helpers() {
        let game = Game::new(SymMatrix::filled(5, 1.0), 2.0);
        let star = Profile::star(5, 0);
        let r = measured_ratio_exact_opt(&game, &star);
        assert!(r >= 1.0 - 1e-9);
        let rh = measured_ratio_heuristic_opt(&game, &star);
        assert!(rh >= r - 1e-9);
    }
}
