//! Plot-ready data series: a minimal CSV writer (no external deps) used by
//! the `figures` binary to emit one file per reproduced figure under
//! `results/`.

use std::io::Write;
use std::path::Path;

/// A rectangular data series with named columns.
#[derive(Clone, Debug, Default)]
pub struct Series {
    /// Column names.
    pub columns: Vec<String>,
    /// Rows; each must match `columns.len()`.
    pub rows: Vec<Vec<f64>>,
}

impl Series {
    /// Creates an empty series with the given columns.
    pub fn new(columns: &[&str]) -> Self {
        Series {
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width does not match the header.
    pub fn push(&mut self, row: Vec<f64>) {
        assert_eq!(row.len(), self.columns.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders as CSV text.
    pub fn to_csv(&self) -> String {
        let mut out = self.columns.join(",");
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV to `path`, creating parent directories.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_csv().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trip() {
        let mut s = Series::new(&["n", "ratio"]);
        s.push(vec![4.0, 2.0]);
        s.push(vec![8.0, 2.5]);
        let csv = s.to_csv();
        assert_eq!(csv, "n,ratio\n4,2\n8,2.5\n");
    }

    #[test]
    #[should_panic]
    fn width_mismatch_panics() {
        let mut s = Series::new(&["a", "b"]);
        s.push(vec![1.0]);
    }

    #[test]
    fn write_to_disk() {
        let mut s = Series::new(&["x"]);
        s.push(vec![1.5]);
        let dir = std::env::temp_dir().join("gncg_report_test");
        let path = dir.join("series.csv");
        s.write_to(&path).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(back, "x\n1.5\n");
        let _ = std::fs::remove_dir_all(dir);
    }
}
