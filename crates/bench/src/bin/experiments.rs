//! The experiment harness: regenerates the quantitative content of every
//! table and figure of *Geometric Network Creation Games* and prints
//! paper-vs-measured rows (recorded in `EXPERIMENTS.md`).
//!
//! ```text
//! cargo run --release -p gncg-bench --bin experiments            # all
//! cargo run --release -p gncg-bench --bin experiments -- E03 E15 # subset
//! ```

use gncg_bench::{dynamics_from_star, measured_ratio_exact_opt, Check};
use gncg_core::cost::social_cost;
use gncg_core::equilibrium::{
    greedy_approximation_factor, is_nash_equilibrium, nash_approximation_factor,
};
use gncg_core::{poa, Game, Profile};
use gncg_dynamics::ResponseRule;

/// An experiment: its id and the function producing its checks.
type Experiment = (&'static str, fn() -> Vec<Check>);

fn main() {
    let filter: Vec<String> = std::env::args().skip(1).collect();
    let all: Vec<Experiment> = vec![
        ("E01", e01_lemma1),
        ("E02", e02_lemma2),
        ("E03", e03_metric_poa),
        ("E04", e04_ae_factors),
        ("E05", e05_umfl),
        ("E06", e06_vertex_cover),
        ("E07", e07_spanner_ne),
        ("E08", e08_algorithm1),
        ("E09", e09_one_two_poa),
        ("E10", e10_star_ne),
        ("E11", e11_diameter),
        ("E12", e12_tree_ne),
        ("E13", e13_sc_tree),
        ("E14", e14_fig5_cycle),
        ("E15", e15_tree_poa),
        ("E16", e16_sc_rd),
        ("E17", e17_fig8_cycle),
        ("E18", e18_path_family),
        ("E19", e19_theorem18),
        ("E20", e20_cross_polytope),
        ("E21", e21_three_cycle),
        ("E22", e22_ncg_row),
        ("E23", e23_hierarchy),
        ("E24", e24_convergence),
        ("E25", e25_price_of_stability),
        ("E26", e26_conjecture1),
        ("E27", e27_conjecture2),
        ("E28", e28_one_inf_row),
        ("E29", e29_lemma4_pipeline),
    ];
    let mut pass = 0usize;
    let mut fail = 0usize;
    for (id, f) in all {
        if !filter.is_empty() && !filter.iter().any(|x| x == id) {
            continue;
        }
        println!("\n=== {id} ===");
        for check in f() {
            println!("{}", check.row());
            if check.pass {
                pass += 1;
            } else {
                fail += 1;
            }
        }
    }
    println!("\n==============================");
    println!("checks passed: {pass}, failed: {fail}");
    if fail > 0 {
        std::process::exit(1);
    }
}

/// The model-variant hosts the cross-variant experiments sweep, built
/// through the scenario registry (one construction API for every driver).
fn hosts(n: usize) -> Vec<(&'static str, gncg_graph::SymMatrix)> {
    ["onetwo", "tree", "r2", "metric"]
        .into_iter()
        .map(|key| {
            (
                key,
                gncg_metrics::factory::build_host(key, n, 7).expect("registered factory key"),
            )
        })
        .collect()
}

fn e01_lemma1() -> Vec<Check> {
    let mut out = Vec::new();
    for (name, host) in hosts(8) {
        let mut worst: f64 = 0.0;
        let mut bound: f64 = f64::INFINITY;
        for alpha in [0.5, 1.0, 2.0, 4.0] {
            let game = Game::new(host.clone(), alpha);
            let run = dynamics_from_star(&game, ResponseRule::AddOnly, 500);
            if !run.converged() {
                continue;
            }
            let stretch = gncg_core::spanner_props::profile_stretch(&game, &run.profile);
            worst = worst.max(stretch / (alpha + 1.0));
            bound = bound.min(alpha + 1.0);
        }
        out.push(Check {
            id: "E01",
            what: format!("Lemma 1 on {name} hosts"),
            paper: "every AE is an (α+1)-spanner".into(),
            measured: format!("max stretch/(α+1) over α grid = {worst:.4}"),
            pass: worst <= 1.0 + 1e-9,
        });
    }
    out
}

fn e02_lemma2() -> Vec<Check> {
    let mut out = Vec::new();
    for (name, host) in hosts(7) {
        let mut worst: f64 = 0.0;
        for alpha in [0.5, 1.0, 3.0, 8.0] {
            let game = Game::new(host.clone(), alpha);
            let opt = gncg_solvers::opt_exact::social_optimum(&game);
            let net = opt.profile.build_network(&game);
            let stretch = gncg_graph::spanner::max_stretch(&net, game.host_distances());
            worst = worst.max(stretch / (alpha / 2.0 + 1.0));
        }
        out.push(Check {
            id: "E02",
            what: format!("Lemma 2 on {name} hosts"),
            paper: "OPT is an (α/2+1)-spanner".into(),
            measured: format!("max stretch/(α/2+1) = {worst:.4}"),
            pass: worst <= 1.0 + 1e-9,
        });
    }
    out
}

fn e03_metric_poa() -> Vec<Check> {
    let mut out = Vec::new();
    // Upper bound on random metric equilibria.
    let mut worst_norm: f64 = 0.0;
    let mut measured_eqs = 0;
    for seed in 0..6u64 {
        let host = gncg_metrics::arbitrary::random_metric(7, 1.0, 4.0, seed);
        for alpha in [0.5, 1.0, 2.0, 5.0] {
            let game = Game::new(host.clone(), alpha);
            let run = dynamics_from_star(&game, ResponseRule::ExactBestResponse, 200);
            if !run.converged() {
                continue;
            }
            measured_eqs += 1;
            let r = measured_ratio_exact_opt(&game, &run.profile);
            worst_norm = worst_norm.max(r / poa::metric_upper_bound(alpha));
        }
    }
    out.push(Check {
        id: "E03",
        what: format!("Thm 1 upper bound ({measured_eqs} certified NEs)"),
        paper: "M-GNCG PoA ≤ (α+2)/2".into(),
        measured: format!("max ratio/bound = {worst_norm:.4}"),
        pass: worst_norm <= 1.0 + 1e-9 && measured_eqs > 0,
    });
    // Lower bound family (Thm 15) — series like the paper's Fig 6 family.
    let alpha = 4.0;
    let bound = poa::metric_upper_bound(alpha);
    let mut series = String::new();
    let mut last = 0.0;
    for n in [4, 8, 16, 32, 64] {
        let r = gncg_constructions::star_tree::ratio_formula(n, alpha);
        series += &format!("n={n}: {r:.4}  ");
        last = r;
    }
    out.push(Check {
        id: "E03",
        what: "Thm 15 family ratio series (α = 4)".into(),
        paper: format!("→ (α+2)/2 = {bound}"),
        measured: series.trim().to_string(),
        pass: (bound - last) / bound < 0.1,
    });
    out
}

fn e04_ae_factors() -> Vec<Check> {
    let mut out = Vec::new();
    let mut worst_ge: f64 = 0.0;
    let mut worst_ne: f64 = 0.0;
    for seed in 0..4u64 {
        let host = gncg_metrics::arbitrary::random_metric(7, 1.0, 4.0, seed);
        for alpha in [0.5, 1.0, 2.0] {
            let game = Game::new(host.clone(), alpha);
            let run = dynamics_from_star(&game, ResponseRule::AddOnly, 500);
            if !run.converged() {
                continue;
            }
            worst_ge =
                worst_ge.max(greedy_approximation_factor(&game, &run.profile) / (alpha + 1.0));
            worst_ne = worst_ne
                .max(nash_approximation_factor(&game, &run.profile) / (3.0 * (alpha + 1.0)));
        }
    }
    out.push(Check {
        id: "E04",
        what: "Thm 2: AE ⇒ (α+1)-GE".into(),
        paper: "greedy factor ≤ α+1".into(),
        measured: format!("max factor/(α+1) = {worst_ge:.4}"),
        pass: worst_ge <= 1.0 + 1e-9,
    });
    out.push(Check {
        id: "E04",
        what: "Cor 2: AE ⇒ 3(α+1)-NE".into(),
        paper: "nash factor ≤ 3(α+1)".into(),
        measured: format!("max factor/(3(α+1)) = {worst_ne:.4}"),
        pass: worst_ne <= 1.0 + 1e-9,
    });
    out
}

fn e05_umfl() -> Vec<Check> {
    let mut worst: f64 = 0.0;
    let mut worst_ge3: f64 = 0.0;
    for seed in 0..4u64 {
        let host = gncg_metrics::arbitrary::random_metric(7, 1.0, 4.0, seed);
        let game = Game::new(host, 1.0);
        let p = Profile::star(7, 0);
        for agent in 1..7u32 {
            let exact = gncg_core::response::exact_best_response(&game, &p, agent);
            let (_, c) = gncg_solvers::umfl::best_response_umfl(&game, &p, agent);
            worst = worst.max(c / exact.cost);
        }
        // GE ⇒ 3-NE.
        let run = dynamics_from_star(&game, ResponseRule::BestGreedyMove, 400);
        if run.converged() {
            worst_ge3 = worst_ge3.max(nash_approximation_factor(&game, &run.profile));
        }
    }
    vec![
        Check {
            id: "E05",
            what: "UMFL local-search best response".into(),
            paper: "within 3× of exact BR (locality gap)".into(),
            measured: format!("max umfl/exact = {worst:.4}"),
            pass: worst <= 3.0 + 1e-9,
        },
        Check {
            id: "E05",
            what: "Thm 3: GE ⇒ 3-NE".into(),
            paper: "nash factor of any GE ≤ 3".into(),
            measured: format!("max factor = {worst_ge3:.4}"),
            pass: worst_ge3 <= 3.0 + 1e-9,
        },
    ]
}

fn e06_vertex_cover() -> Vec<Check> {
    use gncg_constructions::vc_gadget::VcGadget;
    use gncg_solvers::vertex_cover::{exact_min_cover, CoverGraph};
    let mut out = Vec::new();
    for (name, n, edges) in [
        ("P3", 3usize, vec![(0usize, 1usize), (1, 2)]),
        ("C4", 4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]),
        ("C5", 5, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]),
    ] {
        let gadget = VcGadget::new(CoverGraph::new(n, &edges));
        let game = gadget.game();
        let min = exact_min_cover(&gadget.instance);
        // Start from the full cover; BR must land on a minimum cover.
        let full: Vec<usize> = (0..n).collect();
        let p = gadget.profile_with_cover(&full);
        let br = gncg_core::response::exact_best_response(&game, &p, gadget.u());
        let bought: Vec<usize> = br.strategy.iter().map(|&v| v as usize).collect();
        let ok = bought.iter().all(|&v| v < n)
            && gadget.instance.is_cover(&bought)
            && bought.len() == min.len();
        out.push(Check {
            id: "E06",
            what: format!("Thm 4 gadget on {name}"),
            paper: format!("u's BR ≡ min vertex cover (size {})", min.len()),
            measured: format!(
                "BR bought {} vertex nodes, cover: {}",
                bought.len(),
                gadget.instance.is_cover(&bought)
            ),
            pass: ok,
        });
        // NE-decision: minimum cover profile is stable for u.
        let stable = gadget.profile_with_cover(&min);
        let br2 = gncg_core::response::exact_best_response(&game, &stable, gadget.u());
        out.push(Check {
            id: "E06",
            what: format!("NE decision on {name}"),
            paper: "profile is NE for u iff cover is minimum".into(),
            measured: format!("min-cover profile improvable: {}", br2.improves()),
            pass: !br2.improves(),
        });
    }
    out
}

fn e07_spanner_ne() -> Vec<Check> {
    let mut certified = 0;
    let mut total = 0;
    for seed in 0..4u64 {
        for alpha in [0.5, 0.75, 1.0] {
            let host = gncg_metrics::onetwo::random(7, 0.4, seed);
            let eq = gncg_solvers::spanner_eq::spanner_equilibrium(&host, alpha);
            total += 1;
            if eq.certified_ne {
                certified += 1;
            }
        }
    }
    vec![Check {
        id: "E07",
        what: "Thm 5: NE from min-weight 3/2-spanners".into(),
        paper: "NE exists for ½ ≤ α ≤ 1 in 1-2-GNCG".into(),
        measured: format!("{certified}/{total} constructions certified as NE"),
        pass: certified == total,
    }]
}

fn e08_algorithm1() -> Vec<Check> {
    let mut max_err: f64 = 0.0;
    for seed in 0..5u64 {
        let host = gncg_metrics::onetwo::random(7, 0.5, seed);
        for alpha in [0.25, 0.5, 0.75, 1.0] {
            let game = Game::new(host.clone(), alpha);
            let exact = gncg_solvers::opt_exact::social_optimum(&game);
            let alg = gncg_solvers::algorithm1::algorithm1_cost(&game);
            max_err = max_err.max((alg - exact.cost).abs() / exact.cost);
        }
    }
    vec![Check {
        id: "E08",
        what: "Thm 6 / Algorithm 1 vs exact OPT".into(),
        paper: "Algorithm 1 optimal for 1-2, α ≤ 1".into(),
        measured: format!("max relative error = {max_err:.2e}"),
        pass: max_err < 1e-9,
    }]
}

fn e09_one_two_poa() -> Vec<Check> {
    use gncg_constructions::clique_of_stars::CliqueOfStars;
    let mut out = Vec::new();
    // α = 1 family series.
    let mut series = String::new();
    let mut last = 0.0;
    for n_param in [2, 3, 4, 5] {
        let c = CliqueOfStars::alpha_one(n_param);
        let game = c.game(1.0);
        let r = social_cost(&game, &c.ne_profile()) / social_cost(&game, &c.opt_profile());
        series += &format!("N={n_param}: {r:.4}  ");
        last = r;
    }
    out.push(Check {
        id: "E09",
        what: "Thm 8 family, α = 1".into(),
        paper: "ratio → 3/2".into(),
        measured: series.trim().into(),
        pass: last > 1.25 && last < 1.5,
    });
    // ½ ≤ α < 1 family.
    for alpha in [0.5, 0.75] {
        let bound = 3.0 / (alpha + 2.0);
        let mut series = String::new();
        let mut last = 0.0;
        for n_param in [3, 5, 7] {
            let c = CliqueOfStars::alpha_below_one(n_param);
            let game = c.game(alpha);
            let r = social_cost(&game, &c.ne_profile()) / social_cost(&game, &c.opt_profile());
            series += &format!("N={n_param}: {r:.4}  ");
            last = r;
        }
        out.push(Check {
            id: "E09",
            what: format!("Thm 8 family, α = {alpha}"),
            paper: format!("ratio → 3/(α+2) = {bound:.4}"),
            measured: series.trim().into(),
            pass: last < bound && last > 0.85 * bound,
        });
    }
    // α < ½: PoA = 1.
    let mut all_equal = true;
    for seed in 0..3u64 {
        let host = gncg_metrics::onetwo::random(6, 0.45, seed);
        let game = Game::new(host, 0.3);
        let run = dynamics_from_star(&game, ResponseRule::BestGreedyMove, 400);
        if !run.converged() {
            continue;
        }
        let opt = gncg_solvers::algorithm1::algorithm1_cost(&game);
        if !gncg_graph::approx_eq(social_cost(&game, &run.profile), opt) {
            all_equal = false;
        }
    }
    out.push(Check {
        id: "E09",
        what: "Thm 9: α < ½".into(),
        paper: "PoA = 1 (every NE is the Algorithm-1 OPT)".into(),
        measured: format!("all sampled equilibria equal OPT: {all_equal}"),
        pass: all_equal,
    });
    out
}

fn e10_star_ne() -> Vec<Check> {
    let mut ok = true;
    for seed in 0..4u64 {
        let host = gncg_metrics::onetwo::random(7, 0.5, seed);
        let game = Game::new(host, 3.0);
        if !is_nash_equilibrium(&game, &Profile::star(7, 0)) {
            ok = false;
        }
    }
    // Threshold witness.
    let mut host = gncg_graph::SymMatrix::filled(3, 2.0);
    host.set(1, 2, 1.0);
    let below = Game::new(host.clone(), 2.9);
    let witness = !is_nash_equilibrium(&below, &Profile::star(3, 0));
    vec![Check {
        id: "E10",
        what: "Thm 10: stars NE for α ≥ 3 (1-2)".into(),
        paper: "star NE at α = 3; counterexample below 3".into(),
        measured: format!("stars stable at 3: {ok}; witness breaks at 2.9: {witness}"),
        pass: ok && witness,
    }]
}

fn e11_diameter() -> Vec<Check> {
    let mut rows = String::new();
    let mut ok = true;
    for alpha in [2.0, 8.0, 32.0, 128.0] {
        let mut max_d: f64 = 0.0;
        for seed in 0..3u64 {
            let host = gncg_metrics::onetwo::random(10, 0.4, seed);
            let game = Game::new(host, alpha);
            let run = dynamics_from_star(&game, ResponseRule::BestGreedyMove, 500);
            if !run.converged() {
                continue;
            }
            let g = run.profile.build_network(&game);
            max_d = max_d.max(gncg_graph::apsp::apsp_parallel(&g).diameter());
        }
        rows += &format!("α={alpha}: D={max_d}  ");
        if max_d > 5.0 * (2.0 * alpha).sqrt() + 4.0 {
            ok = false;
        }
    }
    vec![Check {
        id: "E11",
        what: "Thm 11: equilibrium diameter vs √α (1-2)".into(),
        paper: "D ∈ O(√α) ⇒ PoA ∈ O(√α)".into(),
        measured: rows.trim().into(),
        pass: ok,
    }]
}

fn e12_tree_ne() -> Vec<Check> {
    let mut trees = 0;
    let mut eqs = 0;
    for seed in 0..6u64 {
        let tree = gncg_metrics::treemetric::random_tree(7, 1.0, 5.0, seed);
        let game = Game::new(tree.metric_closure(), 1.0 + seed as f64 * 0.5);
        let run = dynamics_from_star(&game, ResponseRule::ExactBestResponse, 300);
        if !run.converged() {
            continue;
        }
        eqs += 1;
        if run.profile.build_network(&game).is_tree() {
            trees += 1;
        }
    }
    vec![Check {
        id: "E12",
        what: "Thm 12: NE in T-GNCG are trees".into(),
        paper: "every NE is a tree".into(),
        measured: format!("{trees}/{eqs} certified equilibria are trees"),
        pass: trees == eqs && eqs > 0,
    }]
}

fn e13_sc_tree() -> Vec<Check> {
    use gncg_constructions::sc_tree_gadget::{GadgetParams, ScTreeGadget};
    use gncg_solvers::set_cover::{exact_min_cover, SetCoverInstance};
    let mut out = Vec::new();
    for (name, universe, sets) in [
        ("3-elt", 3usize, vec![vec![0, 1], vec![1, 2], vec![2]]),
        (
            "5-elt",
            5,
            vec![vec![0, 1, 2], vec![2, 3], vec![3, 4], vec![0, 4]],
        ),
    ] {
        let inst = SetCoverInstance::new(universe, sets);
        let g = ScTreeGadget::new(inst, GadgetParams::default_for(universe));
        let game = g.game();
        let br = gncg_core::response::exact_best_response(&game, &g.profile(), g.u());
        let cover = g.cover_of(&br.strategy);
        let min = exact_min_cover(&g.instance).len();
        out.push(Check {
            id: "E13",
            what: format!("Thm 13 gadget ({name})"),
            paper: format!("u's BR ≡ min set cover (size {min})"),
            measured: format!(
                "BR bought {} set nodes, is cover: {}",
                cover.len(),
                g.instance.is_cover(&cover)
            ),
            pass: g.instance.is_cover(&cover) && cover.len() == min,
        });
    }
    out
}

fn e14_fig5_cycle() -> Vec<Check> {
    use gncg_constructions::br_cycles::{
        certify_improving_cycle, fig5_game, find_improving_move_cycle,
    };
    let game = fig5_game(1.0);
    // Multi-seed restarts (the same sweep `probe_cycles` uses): the walk
    // is a randomized search, so any single seed can miss the cycling
    // region — with the current shim RNG the first certified cycle (a
    // length-4 improving-move cycle, matching the paper's Figure 5) shows
    // up at seed 13.
    let cycle = (0..24u64).find_map(|seed| find_improving_move_cycle(&game, seed, 30_000));
    let (found, len, certified) = match &cycle {
        Some(c) => (true, c.len(), certify_improving_cycle(&game, c)),
        None => (false, 0, false),
    };
    vec![Check {
        id: "E14",
        what: "Thm 14 / Fig 5: T-GNCG has no FIP".into(),
        paper: "a length-4 best-response cycle exists".into(),
        measured: format!(
            "certified improving-move cycle: found={found}, len={len}, certified={certified}"
        ),
        pass: found && certified,
    }]
}

fn e15_tree_poa() -> Vec<Check> {
    use gncg_constructions::star_tree;
    let mut out = Vec::new();
    for alpha in [1.0, 4.0, 16.0] {
        let bound = poa::metric_upper_bound(alpha);
        let g = star_tree::game(8, alpha);
        let ne_ok = is_nash_equilibrium(&g, &star_tree::ne_profile(8));
        let measured = social_cost(&g, &star_tree::ne_profile(8))
            / social_cost(&g, &star_tree::opt_profile(8));
        let asymptote = star_tree::ratio_formula(1_000_000, alpha);
        out.push(Check {
            id: "E15",
            what: format!("Thm 15 family, α = {alpha}"),
            paper: format!("PoA ≥ (α+2)/2 − ε = {bound:.3} − ε"),
            measured: format!(
                "NE certified: {ne_ok}; ratio(n=8) = {measured:.4}; ratio(n=10⁶) = {asymptote:.4}"
            ),
            pass: ne_ok && (bound - asymptote) / bound < 1e-3,
        });
    }
    out
}

fn e16_sc_rd() -> Vec<Check> {
    use gncg_constructions::sc_rd_gadget::{GadgetParams, ScRdGadget};
    use gncg_metrics::euclidean::Norm;
    use gncg_solvers::set_cover::{exact_min_cover, SetCoverInstance};
    let inst = SetCoverInstance::new(3, vec![vec![0, 1], vec![1, 2], vec![2]]);
    let g = ScRdGadget::new(inst, GadgetParams::default_for(3));
    let mut out = Vec::new();
    for norm in [Norm::L1, Norm::L2, Norm::Lp(3.0)] {
        let game = g.game(norm);
        let br = gncg_core::response::exact_best_response(&game, &g.profile(), g.u());
        let cover = g.cover_of(&br.strategy);
        let min = exact_min_cover(&g.instance).len();
        out.push(Check {
            id: "E16",
            what: format!("Thm 16 gadget under {norm:?}"),
            paper: format!("u's BR ≡ min set cover (size {min})"),
            measured: format!(
                "BR cover size {}, valid: {}",
                cover.len(),
                g.instance.is_cover(&cover)
            ),
            pass: g.instance.is_cover(&cover) && cover.len() == min,
        });
    }
    out
}

fn e17_fig8_cycle() -> Vec<Check> {
    use gncg_constructions::br_cycles::{certify_cycle, fig8_game, find_best_response_cycle};
    let game = fig8_game(1.0);
    let cycle = find_best_response_cycle(&game, 0, 30_000);
    let (found, len, certified) = match &cycle {
        Some(c) => (true, c.len(), certify_cycle(&game, c)),
        None => (false, 0, false),
    };
    vec![Check {
        id: "E17",
        what: "Thm 17 / Fig 8: 1-norm plane has no FIP".into(),
        paper: "a 6-state best-response cycle exists".into(),
        measured: format!("certified BR cycle: found={found}, len={len}, certified={certified}"),
        pass: found && certified && len == 6,
    }]
}

fn e18_path_family() -> Vec<Check> {
    use gncg_constructions::geometric_path as gp;
    let mut rows = String::new();
    let mut ok = true;
    for alpha in [0.5, 2.0, 8.0] {
        let g = gp::game(6, alpha);
        let ne_ok = is_nash_equilibrium(&g, &gp::star_profile(6));
        let r = social_cost(&g, &gp::star_profile(6)) / social_cost(&g, &gp::path_profile(6));
        rows += &format!("α={alpha}: r={r:.4} (NE {ne_ok})  ");
        ok &= ne_ok && r > 1.0 && r <= poa::metric_upper_bound(alpha) + 1e-9;
    }
    vec![Check {
        id: "E18",
        what: "Lemma 8 / Fig 9 geometric path family".into(),
        paper: "PoA > 1 in Rd-GNCG for every p-norm".into(),
        measured: rows.trim().into(),
        pass: ok,
    }]
}

fn e19_theorem18() -> Vec<Check> {
    use gncg_constructions::geometric_path as gp;
    let mut max_err: f64 = 0.0;
    for alpha in [0.25, 1.0, 4.0, 16.0] {
        let g = gp::game(3, alpha);
        let measured =
            social_cost(&g, &gp::star_profile(3)) / social_cost(&g, &gp::path_profile(3));
        max_err = max_err.max((measured - poa::rd_pnorm_lower_bound(alpha)).abs());
    }
    vec![Check {
        id: "E19",
        what: "Thm 18: 4-node ratio formula".into(),
        paper: "(3α³+24α²+40α+24)/(α³+10α²+32α+24)".into(),
        measured: format!(
            "max |measured − formula| = {max_err:.2e}; α→∞ limit {:.4}",
            poa::rd_pnorm_lower_bound(1e9)
        ),
        pass: max_err < 1e-9,
    }]
}

fn e20_cross_polytope() -> Vec<Check> {
    use gncg_constructions::cross_polytope as cp;
    let alpha = 4.0;
    let mut rows = String::new();
    let mut ok = true;
    for d in [1, 2, 3, 4] {
        let g = cp::game(d, alpha);
        let ne_ok = is_nash_equilibrium(&g, &cp::ne_profile(d));
        let measured = social_cost(&g, &cp::ne_profile(d)) / social_cost(&g, &cp::opt_profile(d));
        let formula = poa::l1_lower_bound(alpha, d);
        rows += &format!("d={d}: {measured:.4} (NE {ne_ok})  ");
        ok &= ne_ok && (measured - formula).abs() < 1e-9;
    }
    vec![Check {
        id: "E20",
        what: format!("Thm 19 / Fig 10 cross-polytope, α = {alpha}"),
        paper: "ratio = 1 + α/(2 + α/(2d−1)) → (α+2)/2".into(),
        measured: rows.trim().into(),
        pass: ok,
    }]
}

fn e21_three_cycle() -> Vec<Check> {
    use gncg_constructions::three_cycle as tc;
    let mut ok = true;
    let mut rows = String::new();
    for alpha in [0.5, 2.0, 8.0] {
        let g = tc::game(alpha);
        let ne_ok = is_nash_equilibrium(&g, &tc::ne_profile());
        let r = social_cost(&g, &tc::ne_profile()) / social_cost(&g, &tc::opt_profile());
        let sigma = tc::sigma(alpha);
        rows += &format!("α={alpha}: ratio={r:.3}, σ={sigma:.3}  ");
        ok &= ne_ok
            && (r - tc::true_ratio(alpha)).abs() < 1e-9
            && (sigma - poa::general_upper_bound(alpha)).abs() < 1e-9;
    }
    vec![Check {
        id: "E21",
        what: "Thm 20 gap instance".into(),
        paper: "σ = ((α+2)/2)² but true ratio = (α+2)/2".into(),
        measured: rows.trim().into(),
        pass: ok,
    }]
}

fn e22_ncg_row() -> Vec<Check> {
    let mut ok = true;
    for alpha in [1.0, 4.0] {
        let game = Game::new(gncg_metrics::unit::unit_host(8), alpha);
        ok &= is_nash_equilibrium(&game, &Profile::star(8, 0));
    }
    vec![Check {
        id: "E22",
        what: "NCG row sanity".into(),
        paper: "NE exist in the unit-weight NCG (stars, α ≥ 1)".into(),
        measured: format!("stars certified: {ok}"),
        pass: ok,
    }]
}

fn e23_hierarchy() -> Vec<Check> {
    use gncg_metrics::{validate, ModelClass};
    let mut ok = true;
    let ncg = gncg_metrics::unit::unit_host(6);
    ok &= validate::classify(&ncg).contains(&ModelClass::OneTwo);
    let t = gncg_metrics::treemetric::random_tree(8, 1.0, 2.0, 0).metric_closure();
    ok &= validate::classify(&t).contains(&ModelClass::Metric);
    let oi = gncg_metrics::oneinf::from_unit_edges(4, &[(0, 1), (1, 2), (2, 3)]);
    ok &= !validate::classify(&oi).contains(&ModelClass::Metric);
    let rnd = gncg_metrics::arbitrary::random(8, 0.1, 50.0, 1);
    ok &= validate::classify(&rnd) == vec![ModelClass::General];
    vec![Check {
        id: "E23",
        what: "Fig 1 model hierarchy".into(),
        paper: "NCG ⊂ 1-2 ⊂ M ⊂ GNCG; T ⊂ M; 1-∞ ⊄ M".into(),
        measured: format!("all containments verified: {ok}"),
        pass: ok,
    }]
}

fn e25_price_of_stability() -> Vec<Check> {
    // Extension (the paper's stated next step): exact PoS via exhaustive
    // equilibrium enumeration on small instances.
    let mut out = Vec::new();
    // Corollary 3 ⇒ PoS = 1 on tree metrics.
    let mut pos_tree_one = true;
    for seed in 0..3u64 {
        let tree = gncg_metrics::treemetric::random_tree(5, 1.0, 3.0, seed);
        let game = Game::new(tree.metric_closure(), 2.0);
        let land = gncg_solvers::stability::enumerate_equilibria(&game);
        let opt = gncg_solvers::opt_exact::social_optimum(&game);
        match land.price_of_stability(opt.cost) {
            Some(pos) if (pos - 1.0).abs() < 1e-9 => {}
            other => {
                pos_tree_one = false;
                let _ = other;
            }
        }
    }
    out.push(Check {
        id: "E25",
        what: "exact PoS on tree metrics (extension)".into(),
        paper: "Cor 3 ⇒ PoS = 1 for the T-GNCG".into(),
        measured: format!("all sampled instances have PoS = 1: {pos_tree_one}"),
        pass: pos_tree_one,
    });
    // PoS vs PoA gap on general metric instances.
    let mut max_pos: f64 = 0.0;
    let mut max_poa: f64 = 0.0;
    let mut with_ne = 0;
    let mut total = 0;
    for seed in 0..4u64 {
        let host = gncg_metrics::arbitrary::random_metric(5, 1.0, 4.0, seed);
        for alpha in [1.0, 3.0] {
            total += 1;
            let game = Game::new(host.clone(), alpha);
            let land = gncg_solvers::stability::enumerate_equilibria(&game);
            let opt = gncg_solvers::opt_exact::social_optimum(&game);
            if let (Some(pos), Some(poa_v)) = (
                land.price_of_stability(opt.cost),
                land.price_of_anarchy(opt.cost),
            ) {
                with_ne += 1;
                max_pos = max_pos.max(pos);
                max_poa = max_poa.max(poa_v / poa::metric_upper_bound(alpha));
            }
        }
    }
    out.push(Check {
        id: "E25",
        what: "exact PoS/PoA landscape on random metrics".into(),
        paper: "PoS ≤ PoA ≤ (α+2)/2; PoS expected near 1".into(),
        measured: format!(
            "{with_ne}/{total} instances have pure NE; max PoS = {max_pos:.4}; max PoA/bound = {max_poa:.4}"
        ),
        pass: with_ne > 0 && max_poa <= 1.0 + 1e-9 && max_pos <= poa::metric_upper_bound(3.0),
    });
    out
}

fn e26_conjecture1() -> Vec<Check> {
    use gncg_constructions::conjectures::conjecture1_probe;
    use gncg_metrics::euclidean::Norm;
    let mut out = Vec::new();
    // Seeds located by offline search; each found cycle is re-certified.
    for (name, norm, alpha, seeds) in [
        ("L2", Norm::L2, 1.0, 0..12u64),
        ("L3", Norm::Lp(3.0), 1.5, 0..12),
        ("L∞", Norm::LInf, 1.0, 0..12),
    ] {
        let found = conjecture1_probe(norm, 8, alpha, seeds, 25_000);
        let detail = match &found {
            Some((seed, c)) => format!("certified cycle of length {} (seed {seed})", c.len()),
            None => "none found in budget".into(),
        };
        out.push(Check {
            id: "E26",
            what: format!("Conjecture 1 probe under {name}"),
            paper: "no FIP for any p-norm (conjectured)".into(),
            measured: detail,
            pass: found.is_some(),
        });
    }
    out
}

fn e27_conjecture2() -> Vec<Check> {
    use gncg_constructions::conjectures::{conjecture2_probe, worst_normalized};
    let points = conjecture2_probe(4, &[0.5, 1.0, 2.0, 4.0], 0..10);
    let with_ne = points.iter().filter(|p| p.exact_poa.is_some()).count();
    let worst = worst_normalized(&points);
    vec![Check {
        id: "E27",
        what: "Conjecture 2 probe (exact PoA of random non-metric instances)".into(),
        paper: "GNCG PoA = (α+2)/2 (conjectured; ((α+2)/2)² proven)".into(),
        measured: format!(
            "{with_ne}/{} instances with pure NE; max exact-PoA/(α+2)/2 = {worst:.4}",
            points.len()
        ),
        pass: worst <= 1.0 + 1e-9 && with_ne > 0,
    }]
}

fn e28_one_inf_row() -> Vec<Check> {
    // Table 1 row "1-∞–GNCG" (Demaine et al., Θ(⁵√α) PoA): equilibria on
    // random connected 1-∞ hosts never use forbidden edges and their
    // measured ratios stay far below both the ⁵√α shape's scale and the
    // general bound.
    //
    // Dynamics start from the MST over *finite* host edges, not a star: a
    // star center may only reach some agents through forbidden (w = ∞)
    // edges, and an agent stuck on one cannot improve away from it (both
    // keeping it and dropping it cost ∞ — f64 has no strict improvement
    // between infinities), so star starts leave ∞-cost artifacts that say
    // nothing about the model. In Demaine et al.'s model agents only ever
    // buy buyable edges; the finite-MST start is the faithful embedding.
    let mut max_ratio: f64 = 0.0;
    let mut eqs = 0;
    let mut forbidden_used = false;
    for seed in 0..4u64 {
        let host = gncg_metrics::oneinf::random_connected(7, 0.3, seed);
        let mst = gncg_graph::mst::prim_complete(&host);
        assert!(
            mst.iter().all(|&(_, _, w)| w.is_finite()),
            "random_connected guarantees a finite spanning tree"
        );
        let owned: Vec<(u32, u32)> = mst.iter().map(|&(u, v, _)| (u, v)).collect();
        for alpha in [1.0, 4.0, 16.0] {
            let game = Game::new(host.clone(), alpha);
            let start = Profile::from_owned_edges(7, &owned);
            let run = gncg_suite::dynamics_from(&game, start, ResponseRule::ExactBestResponse, 200);
            if !run.converged() {
                continue;
            }
            eqs += 1;
            let g = run.profile.build_network(&game);
            if g.edges().any(|(_, _, w)| !w.is_finite()) {
                forbidden_used = true;
            }
            let opt = gncg_solvers::opt_heuristic::social_optimum_heuristic(&game, 40);
            max_ratio = max_ratio
                .max(social_cost(&game, &run.profile) / opt.cost / poa::general_upper_bound(alpha));
        }
    }
    vec![Check {
        id: "E28",
        what: "1-∞ row (Demaine et al. model inside GNCG)".into(),
        paper: "PoA = Θ(⁵√α); ∞-edges are unbuyable".into(),
        measured: format!(
            "{eqs} equilibria; forbidden edge bought: {forbidden_used}; max ratio/general-bound = {max_ratio:.4}"
        ),
        pass: eqs > 0 && !forbidden_used && max_ratio <= 1.0 + 1e-9,
    }]
}

fn e29_lemma4_pipeline() -> Vec<Check> {
    use gncg_constructions::ne_oracle::min_cover_via_ne_oracle_from;
    use gncg_solvers::vertex_cover::{exact_min_cover, CoverGraph};
    let mut out = Vec::new();
    for (name, n, edges) in [
        ("P4", 4usize, vec![(0usize, 1usize), (1, 2), (2, 3)]),
        ("C4", 4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]),
        ("star5", 5, vec![(0, 1), (0, 2), (0, 3), (0, 4)]),
        ("triangle+tail", 4, vec![(0, 1), (1, 2), (2, 0), (2, 3)]),
    ] {
        let g = CoverGraph::new(n, &edges);
        // Start from the full vertex set so the shrinking loop really runs.
        let (cover, stats) = min_cover_via_ne_oracle_from(&g, (0..n).collect());
        let opt = exact_min_cover(&g);
        out.push(Check {
            id: "E29",
            what: format!("Lemma 4 oracle pipeline on {name}"),
            paper: "min vertex cover computable from NE-decision queries".into(),
            measured: format!(
                "cover size {} (opt {}) in {} NE-decision queries",
                cover.len(),
                opt.len(),
                stats.queries
            ),
            pass: g.is_cover(&cover) && cover.len() == opt.len(),
        });
    }
    out
}

fn e24_convergence() -> Vec<Check> {
    // Convergence statistics over a declarative scenario grid: metric
    // hosts × α grid × seeds, sharded by the batch engine.
    use gncg_suite::scenario::{RuleSpec, ScenarioSpec, SchedSpec};
    let spec = ScenarioSpec {
        name: "e24-convergence".into(),
        hosts: vec!["metric".into()],
        ns: vec![7],
        alphas: vec![0.5, 1.0, 2.0, 4.0],
        rules: vec![RuleSpec::Greedy],
        schedulers: vec![SchedSpec::RoundRobin],
        seeds: (0..6).collect(),
        max_rounds: 400,
        base_seed: 24,
        ..ScenarioSpec::default()
    };
    let results = gncg_suite::scenario::run_cells(&spec).expect("valid spec");
    let converged = results.iter().filter(|r| r.outcome == "converged").count();
    let rate = converged as f64 / results.len() as f64;
    vec![Check {
        id: "E24",
        what: "dynamics convergence statistics (scenario grid)".into(),
        paper: "no FIP ⇒ convergence not guaranteed (but common)".into(),
        measured: format!(
            "{converged}/{} cells converged (rate {rate:.2})",
            results.len()
        ),
        pass: rate > 0.0,
    }]
}
