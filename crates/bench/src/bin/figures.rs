//! Regenerates the data series behind every quantitative figure of the
//! paper into `results/*.csv` (plot-ready):
//!
//! * `fig3_clique_of_stars.csv` — 1-2 lower-bound family ratios vs N
//!   (Theorem 8, both the α = 1 and ½ ≤ α < 1 variants),
//! * `fig6_star_tree.csv` — tree-metric family ratio vs n per α
//!   (Theorem 15), with the `(α+2)/2` target,
//! * `fig9_geometric_path.csv` — geometric path family ratio vs n per α
//!   (Lemma 8 / Theorem 18),
//! * `fig10_cross_polytope.csv` — 1-norm family ratio vs dimension per α
//!   (Theorem 19),
//! * `table1_poa_bounds.csv` — the PoA bound formulas per model row on an
//!   α grid (Table 1),
//! * `diameter_sqrt_alpha.csv` — equilibrium diameters on 1-2 hosts vs α
//!   (Theorem 11).
//!
//! ```text
//! cargo run --release -p gncg-bench --bin figures [-- output_dir]
//! ```

use std::path::PathBuf;

use gncg_bench::report::Series;
use gncg_core::cost::social_cost;
use gncg_core::poa;

fn main() {
    let dir: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results".into())
        .into();

    fig3(&dir);
    fig6(&dir);
    fig9(&dir);
    fig10(&dir);
    table1(&dir);
    diameter(&dir);
    println!("wrote 6 series into {}", dir.display());
}

fn fig3(dir: &std::path::Path) {
    use gncg_constructions::clique_of_stars::CliqueOfStars;
    let mut s = Series::new(&["N", "alpha", "ratio", "target"]);
    for n_param in 2..=6usize {
        let c = CliqueOfStars::alpha_one(n_param);
        let game = c.game(1.0);
        let r = social_cost(&game, &c.ne_profile()) / social_cost(&game, &c.opt_profile());
        s.push(vec![n_param as f64, 1.0, r, 1.5]);
        for alpha in [0.5, 0.75] {
            let c = CliqueOfStars::alpha_below_one(n_param);
            let game = c.game(alpha);
            let r = social_cost(&game, &c.ne_profile()) / social_cost(&game, &c.opt_profile());
            s.push(vec![n_param as f64, alpha, r, 3.0 / (alpha + 2.0)]);
        }
    }
    s.write_to(&dir.join("fig3_clique_of_stars.csv")).unwrap();
}

fn fig6(dir: &std::path::Path) {
    use gncg_constructions::star_tree;
    let mut s = Series::new(&["n", "alpha", "ratio", "target"]);
    for alpha in [1.0, 4.0, 16.0] {
        for n in [4usize, 8, 16, 32, 64, 128, 256] {
            s.push(vec![
                n as f64,
                alpha,
                star_tree::ratio_formula(n, alpha),
                poa::metric_upper_bound(alpha),
            ]);
        }
    }
    s.write_to(&dir.join("fig6_star_tree.csv")).unwrap();
}

fn fig9(dir: &std::path::Path) {
    use gncg_constructions::geometric_path as gp;
    let mut s = Series::new(&["n", "alpha", "ratio"]);
    for alpha in [0.5, 2.0, 8.0] {
        for n in [3usize, 4, 6, 8, 12, 16] {
            let g = gp::game(n, alpha);
            let r = social_cost(&g, &gp::star_profile(n)) / social_cost(&g, &gp::path_profile(n));
            s.push(vec![n as f64, alpha, r]);
        }
    }
    s.write_to(&dir.join("fig9_geometric_path.csv")).unwrap();
}

fn fig10(dir: &std::path::Path) {
    use gncg_constructions::cross_polytope as cp;
    let mut s = Series::new(&["d", "alpha", "ratio", "formula", "metric_bound"]);
    for alpha in [1.0, 4.0, 16.0] {
        for d in [1usize, 2, 4, 8, 16, 32] {
            let g = cp::game(d, alpha);
            let measured =
                social_cost(&g, &cp::ne_profile(d)) / social_cost(&g, &cp::opt_profile(d));
            s.push(vec![
                d as f64,
                alpha,
                measured,
                poa::l1_lower_bound(alpha, d),
                poa::metric_upper_bound(alpha),
            ]);
        }
    }
    s.write_to(&dir.join("fig10_cross_polytope.csv")).unwrap();
}

fn table1(dir: &std::path::Path) {
    let mut s = Series::new(&[
        "alpha",
        "metric_upper",
        "general_upper",
        "one_two_low_alpha",
        "rd_pnorm_lower",
        "l1_d8_lower",
        "sqrt_alpha",
    ]);
    let mut alpha = 0.25;
    while alpha <= 64.0 {
        s.push(vec![
            alpha,
            poa::metric_upper_bound(alpha),
            poa::general_upper_bound(alpha),
            if alpha <= 1.0 {
                poa::one_two_poa_low_alpha(alpha)
            } else {
                f64::NAN
            },
            poa::rd_pnorm_lower_bound(alpha),
            poa::l1_lower_bound(alpha, 8),
            poa::sqrt_alpha_reference(alpha),
        ]);
        alpha *= 2.0;
    }
    s.write_to(&dir.join("table1_poa_bounds.csv")).unwrap();
}

fn diameter(dir: &std::path::Path) {
    // The one dynamics-driven series. This is a *paired* design: the same
    // three registry-built 1-2 hosts (seeds 0..3) are swept across every
    // α, so the diameter trend is not confounded with host-to-host
    // variance — which is why the hosts are pinned here instead of taking
    // a ScenarioSpec's per-cell derived seeds. One engine is reused
    // across all runs.
    use gncg_core::{Game, Profile};
    use gncg_dynamics::{DynamicsConfig, Engine, ResponseRule};
    let mut engine = Engine::new();
    let cfg = DynamicsConfig {
        rule: ResponseRule::BestGreedyMove,
        max_rounds: 500,
        ..Default::default()
    };
    let hosts: Vec<_> = (0..3u64)
        .map(|seed| gncg_metrics::factory::build_host("onetwo", 10, seed).expect("registered key"))
        .collect();
    let mut s = Series::new(&["alpha", "max_diameter", "sqrt_alpha"]);
    for alpha in [2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0] {
        let mut max_d: f64 = 0.0;
        for host in &hosts {
            let game = Game::new(host.clone(), alpha);
            let run = engine.run(&game, Profile::star(game.n(), 0), &cfg);
            if !run.converged() {
                continue;
            }
            let g = run.profile.build_network(&game);
            max_d = max_d.max(gncg_graph::apsp::apsp_parallel(&g).diameter());
        }
        s.push(vec![alpha, max_d, alpha.sqrt()]);
    }
    s.write_to(&dir.join("diameter_sqrt_alpha.csv")).unwrap();
}
