//! Model-class classification: which GNCG variants a host graph belongs to.
//!
//! Figure 1 of the paper organizes the variants into a containment
//! hierarchy (`NCG ⊂ 1-2–GNCG ⊂ M–GNCG ⊂ GNCG`, `T–GNCG ⊂ M–GNCG`, …).
//! Experiment E23 verifies that every factory in this crate produces hosts
//! classified as expected under this hierarchy.

use gncg_graph::{NodeId, SymMatrix};

/// Model classes of the paper, ordered roughly special → general.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ModelClass {
    /// Unit-weight clique (the original NCG).
    Ncg,
    /// Weights in {1, 2}.
    OneTwo,
    /// Weights realizable as distances in some weighted tree.
    TreeMetric,
    /// Weights satisfy the triangle inequality.
    Metric,
    /// Weights in {1, ∞} (non-metric if any ∞ is present with n ≥ 3).
    OneInf,
    /// Arbitrary non-negative weights.
    General,
}

/// All classes a host belongs to (always includes `General` when weights
/// are non-negative).
pub fn classify(w: &SymMatrix) -> Vec<ModelClass> {
    let mut out = Vec::new();
    if !w.is_nonnegative() {
        return out;
    }
    out.push(ModelClass::General);
    if crate::oneinf::is_one_inf(w) {
        out.push(ModelClass::OneInf);
    }
    if w.satisfies_triangle_inequality() {
        out.push(ModelClass::Metric);
        if is_tree_metric(w) {
            out.push(ModelClass::TreeMetric);
        }
    }
    if crate::onetwo::is_one_two(w) {
        out.push(ModelClass::OneTwo);
    }
    if w.pairs().all(|(_, _, wt)| wt == 1.0) {
        out.push(ModelClass::Ncg);
    }
    out
}

/// Whether the host's weights coincide with shortest-path distances of some
/// weighted tree. Checked constructively: the MST of the host is the unique
/// candidate tree (for tree metrics the defining tree is a minimum spanning
/// tree), so we build it and compare its closure to the weights.
pub fn is_tree_metric(w: &SymMatrix) -> bool {
    let n = w.n();
    if n <= 2 {
        return true;
    }
    if !w.pairs().all(|(_, _, wt)| wt.is_finite()) {
        return false;
    }
    let mst = gncg_graph::mst::prim_complete(w);
    let tree = gncg_graph::AdjacencyList::from_edges(n, &mst);
    let d = gncg_graph::apsp::apsp_sequential(&tree);
    for u in 0..n as NodeId {
        for v in (u + 1)..n as NodeId {
            if !gncg_graph::approx_eq(d.get(u, v), w.get(u, v)) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_host_is_everything_metric() {
        let w = crate::unit::unit_host(5);
        let c = classify(&w);
        assert!(c.contains(&ModelClass::Ncg));
        assert!(c.contains(&ModelClass::OneTwo));
        assert!(c.contains(&ModelClass::Metric));
        assert!(c.contains(&ModelClass::General));
        // The unit metric is NOT a tree metric for n >= 3 (all pairwise
        // distances 1 cannot be realized by any weighted tree).
        assert!(!c.contains(&ModelClass::TreeMetric));
    }

    #[test]
    fn one_two_host_classification() {
        let w = crate::onetwo::from_one_edges(4, &[(0, 1), (1, 2)]);
        let c = classify(&w);
        assert!(c.contains(&ModelClass::OneTwo));
        assert!(c.contains(&ModelClass::Metric));
        assert!(!c.contains(&ModelClass::Ncg));
    }

    #[test]
    fn tree_closure_is_tree_metric() {
        let t = crate::treemetric::random_tree(10, 1.0, 4.0, 9);
        let w = t.metric_closure();
        assert!(is_tree_metric(&w));
        let c = classify(&w);
        assert!(c.contains(&ModelClass::TreeMetric));
        assert!(c.contains(&ModelClass::Metric));
    }

    #[test]
    fn line_points_are_tree_metric() {
        // Collinear points under any p-norm form a path (tree) metric.
        let ps = crate::euclidean::PointSet::line(&[0.0, 1.0, 3.5, 4.0]);
        let w = ps.host_matrix(crate::euclidean::Norm::L2);
        assert!(is_tree_metric(&w));
    }

    #[test]
    fn planar_points_generally_not_tree_metric() {
        let ps =
            crate::euclidean::PointSet::planar(&[(0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (1.0, 1.0)]);
        let w = ps.host_matrix(crate::euclidean::Norm::L2);
        assert!(!is_tree_metric(&w));
        assert!(classify(&w).contains(&ModelClass::Metric));
    }

    #[test]
    fn one_inf_host_classification() {
        let w = crate::oneinf::from_unit_edges(3, &[(0, 1), (1, 2)]);
        let c = classify(&w);
        assert!(c.contains(&ModelClass::OneInf));
        assert!(!c.contains(&ModelClass::Metric));
    }

    #[test]
    fn nonmetric_random_is_general_only() {
        let w = crate::arbitrary::random(10, 0.01, 100.0, 1);
        let c = classify(&w);
        assert_eq!(c, vec![ModelClass::General]);
    }

    #[test]
    fn tiny_hosts_are_tree_metrics() {
        assert!(is_tree_metric(&crate::unit::unit_host(2)));
        assert!(is_tree_metric(&crate::unit::unit_host(1)));
    }
}
