//! The host-factory registry: every model variant's host constructor
//! behind one string-keyed, seedable API.
//!
//! Historically each driver (the `gncg` CLI, the `experiments` and
//! `figures` harnesses, the examples, a dozen integration tests) wired the
//! factories of [`crate::unit`], [`crate::onetwo`], [`crate::treemetric`],
//! [`crate::euclidean`], [`crate::oneinf`], [`crate::arbitrary`], and
//! [`crate::structured`] by hand, each with its own flag spelling and
//! parameter choices. The registry replaces that duplication: a
//! [`HostFactory`] is a named constructor `(n, seed) -> SymMatrix`, and
//! [`build_host`] resolves a key to an `n`-node host deterministically in
//! `seed`.
//!
//! Every factory returns **exactly `n` nodes** (the structured families
//! truncate their point sets), so scenario grids can cross any key with
//! any `n`. All factories are pure: equal `(key, n, seed)` triples yield
//! bitwise-equal hosts, which the scenario engine's golden determinism
//! tests rely on.

use gncg_graph::SymMatrix;

use crate::euclidean::{Norm, PointSet};

/// A named, seedable host constructor — the unit of the registry.
///
/// Implementations must be pure functions of `(n, seed)`: the scenario
/// subsystem derives per-cell seeds deterministically and replays cells
/// byte-identically on resume.
pub trait HostFactory: Sync {
    /// The registry key (stable across releases; used in CLI flags,
    /// scenario specs, and JSONL output).
    fn key(&self) -> &'static str;

    /// One-line human description (shown by `gncg list-factories`).
    fn describe(&self) -> &'static str;

    /// Whether hosts from this factory satisfy the triangle inequality
    /// (decides which paper bounds apply to its cells).
    fn metric(&self) -> bool;

    /// Builds an `n`-node host, deterministic in `seed`.
    fn build(&self, n: usize, seed: u64) -> SymMatrix;
}

/// Truncates a point set to its first `n` points (the structured families
/// over-generate to fill their shapes).
fn truncate(ps: PointSet, n: usize) -> PointSet {
    if ps.n() == n {
        return ps;
    }
    PointSet::new((0..n).map(|i| ps.point(i).to_vec()).collect())
}

macro_rules! factory {
    ($ty:ident, $key:literal, $desc:literal, $metric:literal, |$n:ident, $seed:ident| $body:expr) => {
        struct $ty;
        impl HostFactory for $ty {
            fn key(&self) -> &'static str {
                $key
            }
            fn describe(&self) -> &'static str {
                $desc
            }
            fn metric(&self) -> bool {
                $metric
            }
            #[allow(unused_variables)]
            fn build(&self, $n: usize, $seed: u64) -> SymMatrix {
                $body
            }
        }
    };
}

factory!(
    Unit,
    "unit",
    "unit-weight clique (the original NCG)",
    true,
    |n, seed| crate::unit::unit_host(n)
);
factory!(
    OneTwo,
    "onetwo",
    "random {1,2}-weight host (1-2-GNCG), P[w=1] = 0.4",
    true,
    |n, seed| crate::onetwo::random(n, 0.4, seed)
);
factory!(
    Tree,
    "tree",
    "metric closure of a random weighted tree (T-GNCG), weights in [1,4]",
    true,
    |n, seed| crate::treemetric::random_tree(n, 1.0, 4.0, seed).metric_closure()
);
factory!(
    R2,
    "r2",
    "uniform random points in [0,10]^2 under the 2-norm (Rd-GNCG)",
    true,
    |n, seed| PointSet::random(n, 2, 10.0, seed).host_matrix(Norm::L2)
);
factory!(
    Metric,
    "metric",
    "random metric host (closure-repaired), weights in [1,5] (M-GNCG)",
    true,
    |n, seed| crate::arbitrary::random_metric(n, 1.0, 5.0, seed)
);
factory!(
    General,
    "general",
    "random non-metric host, weights in [0.5,8] (general GNCG)",
    false,
    |n, seed| crate::arbitrary::random(n, 0.5, 8.0, seed)
);
factory!(
    Grid,
    "grid",
    "first n points of the smallest covering unit grid, 2-norm",
    true,
    |n, seed| {
        let side = (n as f64).sqrt().ceil() as usize;
        truncate(crate::structured::grid(side.max(1), side.max(1), 1.0), n).host_matrix(Norm::L2)
    }
);
factory!(
    Clusters,
    "clusters",
    "clustered cities (blobs of 4 in [0,20]^2, spread 1), 2-norm",
    true,
    |n, seed| {
        truncate(
            crate::structured::clustered(n.div_ceil(4).max(1), 4, 20.0, 1.0, seed),
            n,
        )
        .host_matrix(Norm::L2)
    }
);
factory!(
    OneInf,
    "oneinf",
    "random connected {1,inf} host (Demaine et al.'s 1-inf-GNCG)",
    false,
    |n, seed| crate::oneinf::random_connected(n, 0.3, seed)
);

/// All registered factories, in registry (= documentation) order.
pub fn registry() -> &'static [&'static dyn HostFactory] {
    static REGISTRY: [&dyn HostFactory; 9] = [
        &Unit, &OneTwo, &Tree, &R2, &Metric, &General, &Grid, &Clusters, &OneInf,
    ];
    &REGISTRY
}

/// Looks up a factory by key.
pub fn factory(key: &str) -> Option<&'static dyn HostFactory> {
    registry().iter().copied().find(|f| f.key() == key)
}

/// [`factory`] with the canonical unknown-key error message (shared by
/// every caller that surfaces the failure to a user — the CLI, scenario
/// spec validation).
pub fn lookup(key: &str) -> Result<&'static dyn HostFactory, String> {
    factory(key).ok_or_else(|| {
        format!(
            "unknown host factory '{key}' (known: {})",
            keys().join(", ")
        )
    })
}

/// All registry keys, in registry order.
pub fn keys() -> Vec<&'static str> {
    registry().iter().map(|f| f.key()).collect()
}

/// Builds an `n`-node host from the factory registered under `key`.
///
/// Returns `Err` naming the known keys (in registry order) when `key` is
/// not registered — callers surface it verbatim as the CLI error message.
pub fn build_host(key: &str, n: usize, seed: u64) -> Result<SymMatrix, String> {
    lookup(key).map(|f| f.build(n, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_keys_are_unique_and_nonempty() {
        let ks = keys();
        assert!(ks.len() >= 9);
        let mut sorted = ks.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), ks.len(), "duplicate registry keys");
    }

    #[test]
    fn every_factory_builds_exactly_n_nodes() {
        for f in registry() {
            for n in [1usize, 4, 7, 9, 12] {
                let host = f.build(n, 3);
                assert_eq!(host.n(), n, "factory {} at n={n}", f.key());
            }
        }
    }

    #[test]
    fn factories_are_seed_deterministic() {
        for f in registry() {
            let a = f.build(8, 11);
            let b = f.build(8, 11);
            assert_eq!(a, b, "factory {} not deterministic", f.key());
        }
    }

    #[test]
    fn metric_flag_matches_triangle_inequality() {
        for f in registry() {
            let host = f.build(9, 5);
            if f.metric() {
                assert!(
                    host.satisfies_triangle_inequality(),
                    "factory {} claims metric but violates the triangle inequality",
                    f.key()
                );
            }
        }
    }

    #[test]
    fn unknown_key_lists_alternatives() {
        let err = build_host("nope", 5, 0).unwrap_err();
        assert!(err.contains("unknown host factory"));
        assert!(err.contains("unit"));
    }

    #[test]
    fn build_host_matches_direct_factory_call() {
        let via_key = build_host("tree", 7, 9).unwrap();
        let direct = crate::treemetric::random_tree(7, 1.0, 4.0, 9).metric_closure();
        assert_eq!(via_key, direct);
    }
}
