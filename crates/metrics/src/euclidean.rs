//! Points in `R^d` under p-norms — the `Rd–GNCG` host factory.
//!
//! The paper's geometric setting places agents at points of `R^d` and sets
//! `w(u, v) = ‖u − v‖_p`. The 1-norm plays a special role (Theorems 17
//! and 19 embed tree-metric constructions into it); general `p ≥ 2` appears
//! in Theorems 16 and 18.

use gncg_graph::SymMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A p-norm (or the Chebyshev norm) on `R^d`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Norm {
    /// Manhattan norm, `p = 1`.
    L1,
    /// Euclidean norm, `p = 2`.
    L2,
    /// Chebyshev norm, `p = ∞`.
    LInf,
    /// General `p`-norm with `p >= 1`.
    Lp(f64),
}

impl Norm {
    /// Distance between two points of equal dimension.
    pub fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len(), "dimension mismatch");
        match *self {
            Norm::L1 => a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum(),
            Norm::L2 => a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt(),
            Norm::LInf => a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max),
            Norm::Lp(p) => {
                assert!(p >= 1.0, "p-norms need p >= 1 to be metrics");
                a.iter()
                    .zip(b)
                    .map(|(x, y)| (x - y).abs().powf(p))
                    .sum::<f64>()
                    .powf(1.0 / p)
            }
        }
    }
}

/// A finite set of points in `R^d`.
#[derive(Clone, Debug)]
pub struct PointSet {
    dim: usize,
    points: Vec<Vec<f64>>,
}

impl PointSet {
    /// Builds a point set; all points must share a dimension.
    pub fn new(points: Vec<Vec<f64>>) -> Self {
        let dim = points.first().map_or(0, |p| p.len());
        assert!(
            points.iter().all(|p| p.len() == dim),
            "all points must have the same dimension"
        );
        PointSet { dim, points }
    }

    /// Convenience constructor for planar points.
    pub fn planar(points: &[(f64, f64)]) -> Self {
        PointSet::new(points.iter().map(|&(x, y)| vec![x, y]).collect())
    }

    /// Convenience constructor for points on a line.
    pub fn line(xs: &[f64]) -> Self {
        PointSet::new(xs.iter().map(|&x| vec![x]).collect())
    }

    /// `n` points drawn uniformly from `[0, extent]^d`, deterministic in
    /// `seed`.
    pub fn random(n: usize, dim: usize, extent: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let points = (0..n)
            .map(|_| (0..dim).map(|_| rng.gen::<f64>() * extent).collect())
            .collect();
        PointSet { dim, points }
    }

    /// Number of points.
    pub fn n(&self) -> usize {
        self.points.len()
    }

    /// Ambient dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The `i`-th point.
    pub fn point(&self, i: usize) -> &[f64] {
        &self.points[i]
    }

    /// The complete host-graph weight matrix under `norm`.
    pub fn host_matrix(&self, norm: Norm) -> SymMatrix {
        SymMatrix::from_fn(self.n(), |u, v| {
            norm.distance(&self.points[u as usize], &self.points[v as usize])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms_on_simple_points() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert_eq!(Norm::L1.distance(&a, &b), 7.0);
        assert_eq!(Norm::L2.distance(&a, &b), 5.0);
        assert_eq!(Norm::LInf.distance(&a, &b), 4.0);
        assert!((Norm::Lp(2.0).distance(&a, &b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn lp_interpolates() {
        let a = [0.0, 0.0];
        let b = [1.0, 1.0];
        let d15 = Norm::Lp(1.5).distance(&a, &b);
        assert!(d15 < Norm::L1.distance(&a, &b));
        assert!(d15 > Norm::L2.distance(&a, &b));
    }

    #[test]
    #[should_panic]
    fn sub_one_p_rejected() {
        Norm::Lp(0.5).distance(&[0.0], &[1.0]);
    }

    #[test]
    fn host_matrix_is_metric() {
        let ps = PointSet::random(12, 3, 10.0, 42);
        for norm in [Norm::L1, Norm::L2, Norm::LInf, Norm::Lp(3.0)] {
            let w = ps.host_matrix(norm);
            assert!(w.is_nonnegative());
            assert!(
                w.satisfies_triangle_inequality(),
                "{norm:?} host must be metric"
            );
        }
    }

    #[test]
    fn planar_and_line_constructors() {
        let p = PointSet::planar(&[(0.0, 0.0), (1.0, 0.0)]);
        assert_eq!(p.n(), 2);
        assert_eq!(p.dim(), 2);
        let l = PointSet::line(&[0.0, 2.0, 5.0]);
        let w = l.host_matrix(Norm::L1);
        assert_eq!(w.get(0, 2), 5.0);
        assert_eq!(w.get(1, 2), 3.0);
    }

    #[test]
    fn random_is_deterministic() {
        let a = PointSet::random(5, 2, 1.0, 7);
        let b = PointSet::random(5, 2, 1.0, 7);
        assert_eq!(a.points, b.points);
        let c = PointSet::random(5, 2, 1.0, 8);
        assert_ne!(a.points, c.points);
    }

    #[test]
    #[should_panic]
    fn mixed_dimensions_rejected() {
        PointSet::new(vec![vec![0.0], vec![0.0, 1.0]]);
    }
}
