//! `1-∞–GNCG` hosts (Demaine et al.): weights in `{1, ∞}`.
//!
//! Weight `∞` encodes "this edge cannot be bought": the model is the NCG on
//! a general *unweighted* host graph. It is inherently **non-metric**
//! (an ∞-edge between two nodes at hop distance 2 violates the triangle
//! inequality), which is why the paper's metric machinery does not apply
//! to it (§1.2).

use gncg_graph::{NodeId, SymMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a 1-∞ host from the edge set of an unweighted graph: listed pairs
/// get weight 1, all others weight ∞.
pub fn from_unit_edges(n: usize, edges: &[(NodeId, NodeId)]) -> SymMatrix {
    let mut w = SymMatrix::filled(n, f64::INFINITY);
    for &(u, v) in edges {
        w.set(u, v, 1.0);
    }
    w
}

/// A random connected 1-∞ host: a random spanning tree plus each remaining
/// pair independently with probability `p`. Deterministic in `seed`.
pub fn random_connected(n: usize, p: f64, seed: u64) -> SymMatrix {
    assert!(n >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(NodeId, NodeId)> = (1..n)
        .map(|v| (rng.gen_range(0..v) as NodeId, v as NodeId))
        .collect();
    for u in 0..n as NodeId {
        for v in (u + 1)..n as NodeId {
            if !edges.contains(&(u, v)) && !edges.contains(&(v, u)) && rng.gen::<f64>() < p {
                edges.push((u, v));
            }
        }
    }
    from_unit_edges(n, &edges)
}

/// Whether a matrix is a 1-∞ host.
pub fn is_one_inf(w: &SymMatrix) -> bool {
    w.pairs().all(|(_, _, wt)| wt == 1.0 || wt.is_infinite())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_unit_edges_basic() {
        let w = from_unit_edges(3, &[(0, 1)]);
        assert_eq!(w.get(0, 1), 1.0);
        assert!(w.get(0, 2).is_infinite());
        assert!(is_one_inf(&w));
    }

    #[test]
    fn incomplete_host_is_nonmetric() {
        // A path 0-1-2 with forbidden (0,2): w(0,2)=∞ > w(0,1)+w(1,2)=2.
        let w = from_unit_edges(3, &[(0, 1), (1, 2)]);
        assert!(!w.satisfies_triangle_inequality());
    }

    #[test]
    fn random_connected_is_connected() {
        for seed in 0..5 {
            let w = random_connected(12, 0.1, seed);
            let g = gncg_graph::AdjacencyList::complete_from_matrix(&w);
            assert!(g.is_connected());
            assert!(is_one_inf(&w));
        }
    }

    #[test]
    fn p_one_gives_clique() {
        let w = random_connected(6, 1.0, 0);
        assert!(w.pairs().all(|(_, _, wt)| wt == 1.0));
    }
}
