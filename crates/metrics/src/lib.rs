//! # gncg-metrics
//!
//! Host-graph factories for every model variant of *Geometric Network
//! Creation Games* (Fig. 1 of the paper):
//!
//! * [`mod@unit`] — the original NCG (unit-weight clique),
//! * [`onetwo`] — `1-2–GNCG` hosts (weights in {1, 2}),
//! * [`treemetric`] — `T–GNCG` hosts (metric closures of weighted trees),
//! * [`euclidean`] — `Rd–GNCG` hosts (points in `R^d` under p-norms),
//! * [`oneinf`] — the non-metric `1-∞–GNCG` hosts of Demaine et al.,
//! * [`arbitrary`] — general non-negative (typically non-metric) hosts,
//! * [`validate`] — model-class classification (which variants a given
//!   host belongs to), used by the Fig. 1 containment experiment (E23),
//! * [`factory`] — the string-keyed [`factory::HostFactory`] registry
//!   unifying all of the above behind one seedable constructor API (the
//!   entry point of the scenario subsystem).
//!
//! All random factories are fully deterministic given a seed.

pub mod arbitrary;
pub mod euclidean;
pub mod factory;
pub mod oneinf;
pub mod onetwo;
pub mod structured;
pub mod treemetric;
pub mod unit;
pub mod validate;

pub use euclidean::{Norm, PointSet};
pub use factory::{build_host, HostFactory};
pub use validate::ModelClass;
