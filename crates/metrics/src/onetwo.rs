//! `1-2–GNCG` hosts: complete graphs with weights in `{1, 2}`.
//!
//! Any assignment of weights from `{1, 2}` satisfies the triangle
//! inequality (`1 + 1 >= 2`), which makes 1-2 graphs the simplest
//! non-trivial metric special case — the paper's §3.1.

use gncg_graph::{NodeId, SymMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random 1-2 host: every pair is a 1-edge independently with probability
/// `p_one`, otherwise a 2-edge. Deterministic in `seed`.
pub fn random(n: usize, p_one: f64, seed: u64) -> SymMatrix {
    assert!((0.0..=1.0).contains(&p_one));
    let mut rng = StdRng::seed_from_u64(seed);
    SymMatrix::from_fn(n, |_, _| if rng.gen::<f64>() < p_one { 1.0 } else { 2.0 })
}

/// A 1-2 host where the 1-edges form a given graph (all other pairs are
/// 2-edges). This is how the paper's constructions (Figs. 2 and 3) are
/// phrased: "all depicted edges have weight 1; missing edges have weight 2."
pub fn from_one_edges(n: usize, one_edges: &[(NodeId, NodeId)]) -> SymMatrix {
    let mut w = SymMatrix::filled(n, 2.0);
    for &(u, v) in one_edges {
        w.set(u, v, 1.0);
    }
    w
}

/// Is this a valid 1-2 matrix? (Every off-diagonal weight is 1 or 2.)
pub fn is_one_two(w: &SymMatrix) -> bool {
    w.pairs().all(|(_, _, wt)| wt == 1.0 || wt == 2.0)
}

/// The subgraph of 1-edges, as an edge list.
pub fn one_edges(w: &SymMatrix) -> Vec<(NodeId, NodeId)> {
    w.pairs()
        .filter(|&(_, _, wt)| wt == 1.0)
        .map(|(u, v, _)| (u, v))
        .collect()
}

/// Counts 1-1-2 triangles: triples `{u, v, x}` where `(u,v)` is a 2-edge
/// but `(u,x)` and `(x,v)` are 1-edges. Algorithm 1 of the paper removes
/// exactly the 2-edges of such triangles to obtain the social optimum for
/// `α <= 1`.
pub fn count_112_triangles(w: &SymMatrix) -> usize {
    let n = w.n();
    let mut count = 0;
    for u in 0..n as NodeId {
        for v in (u + 1)..n as NodeId {
            if w.get(u, v) != 2.0 {
                continue;
            }
            for x in 0..n as NodeId {
                if x != u && x != v && w.get(u, x) == 1.0 && w.get(x, v) == 1.0 {
                    count += 1;
                }
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_is_one_two_and_metric() {
        let w = random(10, 0.4, 3);
        assert!(is_one_two(&w));
        assert!(w.satisfies_triangle_inequality());
    }

    #[test]
    fn random_extremes() {
        let all_ones = random(6, 1.0, 1);
        assert!(all_ones.pairs().all(|(_, _, w)| w == 1.0));
        let all_twos = random(6, 0.0, 1);
        assert!(all_twos.pairs().all(|(_, _, w)| w == 2.0));
    }

    #[test]
    fn from_one_edges_places_ones() {
        let w = from_one_edges(4, &[(0, 1), (2, 3)]);
        assert_eq!(w.get(0, 1), 1.0);
        assert_eq!(w.get(2, 3), 1.0);
        assert_eq!(w.get(0, 2), 2.0);
        assert!(is_one_two(&w));
    }

    #[test]
    fn triangle_counting() {
        // Path of 1-edges 0-1-2 with 2-edge (0,2): exactly one 1-1-2 triangle.
        let w = from_one_edges(3, &[(0, 1), (1, 2)]);
        assert_eq!(count_112_triangles(&w), 1);
        // All ones: no 2-edges, no triangles.
        assert_eq!(count_112_triangles(&random(5, 1.0, 0)), 0);
    }

    #[test]
    fn one_edges_roundtrip() {
        let edges = vec![(0, 2), (1, 3)];
        let w = from_one_edges(4, &edges);
        let mut back = one_edges(&w);
        back.sort();
        assert_eq!(back, edges);
    }

    #[test]
    fn determinism() {
        assert_eq!(random(8, 0.5, 9), random(8, 0.5, 9));
    }
}
