//! The original NCG host: a unit-weight clique.
//!
//! The NCG of Fabrikant et al. is the most restricted special case of the
//! M–GNCG (Fig. 1): every edge weight is 1 and distances are hop counts.

use gncg_graph::SymMatrix;

/// The unit-weight complete host on `n` nodes.
pub fn unit_host(n: usize) -> SymMatrix {
    SymMatrix::filled(n, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_host_is_metric_and_one_two() {
        let w = unit_host(7);
        assert!(w.satisfies_triangle_inequality());
        assert!(crate::onetwo::is_one_two(&w));
        assert_eq!(w.total_weight(), 21.0);
    }
}
