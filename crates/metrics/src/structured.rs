//! Structured geometric instance families beyond uniform random points:
//! grids, clustered "cities", and perturbed tree metrics. Used by the
//! examples and by stress experiments where uniform point clouds are too
//! benign (clusters create the hub-vs-shortcut tension the paper's
//! motivating networks exhibit).

use gncg_graph::{NodeId, SymMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::euclidean::PointSet;

/// An `rows × cols` integer grid of points with spacing `step`.
pub fn grid(rows: usize, cols: usize, step: f64) -> PointSet {
    assert!(rows >= 1 && cols >= 1 && step > 0.0);
    let mut pts = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            pts.push(vec![c as f64 * step, r as f64 * step]);
        }
    }
    PointSet::new(pts)
}

/// `clusters` Gaussian-ish blobs of `per_cluster` points each: cluster
/// centers uniform in `[0, extent]²`, members uniform in a disc of radius
/// `spread` around their center. Deterministic in `seed`.
pub fn clustered(
    clusters: usize,
    per_cluster: usize,
    extent: f64,
    spread: f64,
    seed: u64,
) -> PointSet {
    assert!(clusters >= 1 && per_cluster >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pts = Vec::with_capacity(clusters * per_cluster);
    for _ in 0..clusters {
        let cx = rng.gen::<f64>() * extent;
        let cy = rng.gen::<f64>() * extent;
        for _ in 0..per_cluster {
            let angle = rng.gen::<f64>() * std::f64::consts::TAU;
            let radius = rng.gen::<f64>() * spread;
            pts.push(vec![cx + radius * angle.cos(), cy + radius * angle.sin()]);
        }
    }
    PointSet::new(pts)
}

/// A *perturbed tree metric*: the closure of a random tree with every
/// pairwise weight multiplied by a factor in `[1, 1 + noise]`, then
/// re-repaired to a metric by shortest-path closure. For small `noise`
/// the host is metric but (generically) no longer a tree metric — probing
/// how fast Theorem 12's "all NE are trees" structure degrades.
pub fn perturbed_tree_metric(n: usize, noise: f64, seed: u64) -> SymMatrix {
    assert!(noise >= 0.0);
    let tree = crate::treemetric::random_tree(n, 1.0, 3.0, seed);
    let base = tree.metric_closure();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut noisy = SymMatrix::zeros(n);
    for u in 0..n as NodeId {
        for v in (u + 1)..n as NodeId {
            let factor = 1.0 + rng.gen::<f64>() * noise;
            noisy.set(u, v, base.get(u, v) * factor);
        }
    }
    gncg_graph::apsp::floyd_warshall(&noisy).into_sym_matrix()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::euclidean::Norm;

    #[test]
    fn grid_layout() {
        let g = grid(2, 3, 1.0);
        assert_eq!(g.n(), 6);
        let w = g.host_matrix(Norm::L1);
        // Corners of the 2×3 grid: (0,0) to (2,1) — L1 distance 3.
        assert_eq!(w.get(0, 5), 3.0);
        assert!(w.satisfies_triangle_inequality());
    }

    #[test]
    fn clustered_counts_and_metricity() {
        let ps = clustered(3, 4, 100.0, 1.0, 5);
        assert_eq!(ps.n(), 12);
        let w = ps.host_matrix(Norm::L2);
        assert!(w.satisfies_triangle_inequality());
    }

    #[test]
    fn clusters_are_tight_relative_to_extent() {
        let ps = clustered(2, 3, 1000.0, 1.0, 9);
        let w = ps.host_matrix(Norm::L2);
        // Within-cluster distances ≤ 2·spread; the two clusters are far
        // apart with overwhelming probability at extent 1000.
        let within_max = (0..3u32)
            .flat_map(|i| ((i + 1)..3).map(move |j| (i, j)))
            .map(|(i, j)| w.get(i, j))
            .fold(0.0, f64::max);
        assert!(within_max <= 2.0 + 1e-9);
        assert!(w.get(0, 3) > 10.0, "clusters should separate");
    }

    #[test]
    fn perturbed_tree_metric_is_metric_but_not_tree() {
        let w = perturbed_tree_metric(8, 0.3, 3);
        assert!(w.satisfies_triangle_inequality());
        assert!(
            !crate::validate::is_tree_metric(&w),
            "30% noise should break tree-metricity"
        );
    }

    #[test]
    fn zero_noise_recovers_tree_metric() {
        let w = perturbed_tree_metric(8, 0.0, 3);
        assert!(crate::validate::is_tree_metric(&w));
    }

    #[test]
    fn determinism() {
        assert_eq!(
            perturbed_tree_metric(6, 0.2, 1),
            perturbed_tree_metric(6, 0.2, 1)
        );
    }
}
