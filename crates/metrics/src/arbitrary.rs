//! General (typically non-metric) weighted hosts — the full `GNCG`.

use gncg_graph::SymMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform random weights in `[lo, hi]` on every pair. For `hi > 2·lo` the
/// result is non-metric with high probability. Deterministic in `seed`.
pub fn random(n: usize, lo: f64, hi: f64, seed: u64) -> SymMatrix {
    assert!(lo >= 0.0 && hi >= lo);
    let mut rng = StdRng::seed_from_u64(seed);
    SymMatrix::from_fn(n, |_, _| if hi > lo { rng.gen_range(lo..hi) } else { lo })
}

/// A random *metric* host: random weights repaired to their metric closure
/// (shortest-path distances in the complete weighted graph). The result
/// always satisfies the triangle inequality.
pub fn random_metric(n: usize, lo: f64, hi: f64, seed: u64) -> SymMatrix {
    let w = random(n, lo, hi, seed);
    gncg_graph::apsp::floyd_warshall(&w).into_sym_matrix()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_in_range() {
        let w = random(8, 1.0, 4.0, 2);
        assert!(w.pairs().all(|(_, _, wt)| (1.0..=4.0).contains(&wt)));
    }

    #[test]
    fn wide_range_is_nonmetric_whp() {
        // Range [0.01, 100]: essentially certainly non-metric at n = 12.
        let w = random(12, 0.01, 100.0, 7);
        assert!(!w.satisfies_triangle_inequality());
    }

    #[test]
    fn repaired_host_is_metric() {
        let w = random_metric(12, 0.01, 100.0, 7);
        assert!(w.satisfies_triangle_inequality());
        assert!(w.is_nonnegative());
    }

    #[test]
    fn metric_repair_only_shrinks() {
        let raw = random(10, 0.5, 30.0, 3);
        let fixed = random_metric(10, 0.5, 30.0, 3);
        for (u, v, wt) in raw.pairs() {
            assert!(fixed.get(u, v) <= wt + 1e-12);
        }
    }

    #[test]
    fn determinism() {
        assert_eq!(random(6, 0.0, 1.0, 5), random(6, 0.0, 1.0, 5));
    }
}
