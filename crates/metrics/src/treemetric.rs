//! `T–GNCG` hosts: metric closures of random weighted trees.

use gncg_graph::{NodeId, WeightedTree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random weighted tree on `n` nodes: the shape is a uniform random
/// attachment tree (each node `v >= 1` attaches to a uniformly random
/// earlier node), edge weights uniform in `[lo, hi]`. Deterministic in
/// `seed`.
pub fn random_tree(n: usize, lo: f64, hi: f64, seed: u64) -> WeightedTree {
    assert!(n >= 1);
    assert!(lo >= 0.0 && hi >= lo);
    let mut rng = StdRng::seed_from_u64(seed);
    let edges = (1..n)
        .map(|v| {
            let parent = rng.gen_range(0..v) as NodeId;
            let w = if hi > lo { rng.gen_range(lo..hi) } else { lo };
            (parent, v as NodeId, w)
        })
        .collect();
    WeightedTree::new(n, edges)
}

/// A random *path* tree: nodes `0..n` in a line with uniform random weights.
pub fn random_path(n: usize, lo: f64, hi: f64, seed: u64) -> WeightedTree {
    assert!(n >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let weights: Vec<f64> = (1..n)
        .map(|_| if hi > lo { rng.gen_range(lo..hi) } else { lo })
        .collect();
    WeightedTree::path(&weights)
}

/// A random *caterpillar*: a weighted spine with random leaves hanging off
/// it — a tree shape with high diameter and high degree simultaneously,
/// good stress input for the T–GNCG experiments.
pub fn random_caterpillar(
    spine: usize,
    leaves: usize,
    lo: f64,
    hi: f64,
    seed: u64,
) -> WeightedTree {
    assert!(spine >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let n = spine + leaves;
    let mut edges = Vec::with_capacity(n - 1);
    let w = |rng: &mut StdRng| if hi > lo { rng.gen_range(lo..hi) } else { lo };
    for v in 1..spine {
        let wt = w(&mut rng);
        edges.push(((v - 1) as NodeId, v as NodeId, wt));
    }
    for l in 0..leaves {
        let attach = rng.gen_range(0..spine) as NodeId;
        let wt = w(&mut rng);
        edges.push((attach, (spine + l) as NodeId, wt));
    }
    WeightedTree::new(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_tree_is_tree_and_closure_metric() {
        let t = random_tree(20, 1.0, 5.0, 11);
        assert!(t.as_graph().is_tree());
        let w = t.metric_closure();
        assert!(w.satisfies_triangle_inequality());
        assert!(w.is_nonnegative());
    }

    #[test]
    fn random_path_shape() {
        let t = random_path(6, 1.0, 2.0, 5);
        let g = t.as_graph();
        assert!(g.is_tree());
        // Path: exactly two nodes of degree 1, rest degree 2.
        let deg1 = (0..6).filter(|&v| g.degree(v) == 1).count();
        assert_eq!(deg1, 2);
    }

    #[test]
    fn caterpillar_shape() {
        let t = random_caterpillar(5, 7, 1.0, 1.0, 3);
        assert_eq!(t.n(), 12);
        assert!(t.as_graph().is_tree());
    }

    #[test]
    fn degenerate_weight_range() {
        let t = random_tree(5, 2.0, 2.0, 1);
        assert!(t.edges().iter().all(|&(_, _, w)| w == 2.0));
    }

    #[test]
    fn determinism() {
        let a = random_tree(10, 0.5, 3.0, 42);
        let b = random_tree(10, 0.5, 3.0, 42);
        assert_eq!(a.edges(), b.edges());
    }
}
