//! The scenario subsystem: declarative experiment grids from host factory
//! to per-cell results.
//!
//! A [`ScenarioSpec`] names a grid of cells — the cross product
//! `host factory × n × α × response rule × scheduler × seed` — and
//! expands it into a deterministic list of [`Cell`]s, each with its own
//! derived seed. A [`Runner`] executes cells on a long-lived
//! [`gncg_dynamics::Engine`] (scratch reused across cells instead of
//! reallocated per run) and produces serializable [`CellResult`]s.
//!
//! Determinism contract: equal specs expand to equal cell lists, equal
//! cells produce equal results, and [`CellResult::to_jsonl`] emits a
//! byte-stable line — so an interrupted grid run resumed from disk is
//! byte-identical to an uninterrupted one (see [`crate::grid`]). Wall
//! times are measured ([`CellResult::wall_micros`]) but deliberately
//! **excluded** from the JSONL line for exactly this reason.

use std::collections::BTreeSet;
use std::time::Instant;

use gncg_core::{cost, equilibrium, Game, NodeId, Profile};
use gncg_dynamics::{
    BrCachePolicy, Checkpoint, DynamicsConfig, Engine, Outcome, ResponseRule, RunResult,
    ScanPolicy, Scheduler, SpeculativePricing,
};

/// JSONL schema version emitted by [`CellResult::to_jsonl`] consumers
/// (bumped when the line format changes incompatibly).
pub const SCHEMA_VERSION: u32 = 1;

/// Schema version of lines carrying the opt-in observability fields
/// (`max_regret` / `checkpoints`). Emitted in the manifest only when a
/// spec turns those fields on, so meter-off grids keep their historical
/// schema-1 bytes exactly.
pub const SCHEMA_VERSION_OBSERVABILITY: u32 = 2;

/// splitmix64 — the per-cell seed derivation. Statistically independent
/// outputs for sequential inputs; stable across platforms and releases.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A response rule axis value, with its stable spec/JSONL name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RuleSpec {
    /// Exact best response (`br`).
    Br,
    /// Best greedy move (`greedy`).
    Greedy,
    /// Best single addition (`add`).
    Add,
}

impl RuleSpec {
    /// Every rule, in canonical order.
    pub const ALL: [RuleSpec; 3] = [RuleSpec::Br, RuleSpec::Greedy, RuleSpec::Add];

    /// The stable name used in specs, CLI flags, and JSONL.
    pub fn key(self) -> &'static str {
        match self {
            RuleSpec::Br => "br",
            RuleSpec::Greedy => "greedy",
            RuleSpec::Add => "add",
        }
    }

    /// Parses a stable name.
    pub fn parse(s: &str) -> Result<RuleSpec, String> {
        RuleSpec::ALL
            .into_iter()
            .find(|r| r.key() == s)
            .ok_or_else(|| format!("unknown rule '{s}' (use br|greedy|add)"))
    }

    /// The dynamics-engine rule.
    pub fn rule(self) -> ResponseRule {
        match self {
            RuleSpec::Br => ResponseRule::ExactBestResponse,
            RuleSpec::Greedy => ResponseRule::BestGreedyMove,
            RuleSpec::Add => ResponseRule::AddOnly,
        }
    }
}

/// A scheduler axis value, with its stable spec/JSONL name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedSpec {
    /// Round robin (`rr`).
    RoundRobin,
    /// Fresh random permutation per round (`random`); the RNG seed is
    /// derived from the cell seed.
    Random,
    /// Largest-improvement-first (`maxgain`).
    MaxGain,
}

impl SchedSpec {
    /// Every scheduler, in canonical order.
    pub const ALL: [SchedSpec; 3] = [SchedSpec::RoundRobin, SchedSpec::Random, SchedSpec::MaxGain];

    /// The stable name used in specs, CLI flags, and JSONL.
    pub fn key(self) -> &'static str {
        match self {
            SchedSpec::RoundRobin => "rr",
            SchedSpec::Random => "random",
            SchedSpec::MaxGain => "maxgain",
        }
    }

    /// Parses a stable name.
    pub fn parse(s: &str) -> Result<SchedSpec, String> {
        SchedSpec::ALL
            .into_iter()
            .find(|r| r.key() == s)
            .ok_or_else(|| format!("unknown scheduler '{s}' (use rr|random|maxgain)"))
    }

    /// The dynamics-engine scheduler for a cell (the random scheduler's
    /// permutation stream is derived from, but distinct from, the cell's
    /// host seed).
    pub fn scheduler(self, cell_seed: u64) -> Scheduler {
        match self {
            SchedSpec::RoundRobin => Scheduler::RoundRobin,
            SchedSpec::Random => Scheduler::RandomOrder {
                seed: splitmix64(cell_seed ^ 0x5C5C_5C5C_5C5C_5C5C),
            },
            SchedSpec::MaxGain => Scheduler::MaxGain,
        }
    }
}

/// How a converged cell's final profile is re-certified as an equilibrium
/// of its rule's class (the JSONL `certified` field).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CertifyMode {
    /// Full per-agent best responses from scratch (`full`) — the
    /// historical behavior and the default.
    #[default]
    Full,
    /// A deterministic ⌈√n⌉-agent sample checked incrementally against
    /// the engine's warm context (`sampled`): a cheap spot-check for
    /// large-n grids. `certified:true` then means "no sampled agent can
    /// improve", not a full certificate.
    Sampled,
    /// No certification (`off`): `certified` is always `false`.
    Off,
}

impl CertifyMode {
    /// Every mode, in canonical order.
    pub const ALL: [CertifyMode; 3] = [CertifyMode::Full, CertifyMode::Sampled, CertifyMode::Off];

    /// The stable name used in specs, CLI flags, and manifests.
    pub fn key(self) -> &'static str {
        match self {
            CertifyMode::Full => "full",
            CertifyMode::Sampled => "sampled",
            CertifyMode::Off => "off",
        }
    }

    /// Parses a stable name.
    pub fn parse(s: &str) -> Result<CertifyMode, String> {
        CertifyMode::ALL
            .into_iter()
            .find(|m| m.key() == s)
            .ok_or_else(|| format!("unknown certify mode '{s}' (use full|sampled|off)"))
    }
}

/// A declarative experiment grid: the cross product of its axes.
///
/// Expansion order is fixed (hosts, then `n`s, then αs, then rules, then
/// schedulers, then seeds, innermost last) and each cell receives a
/// deterministic seed derived from `base_seed` and its index, so the same
/// spec always reproduces the same cells bit for bit.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSpec {
    /// Human-readable grid name (recorded in the manifest).
    pub name: String,
    /// Host factory keys (see `gncg_metrics::factory`).
    pub hosts: Vec<String>,
    /// Agent counts.
    pub ns: Vec<usize>,
    /// Edge-price parameters α.
    pub alphas: Vec<f64>,
    /// Response rules.
    pub rules: Vec<RuleSpec>,
    /// Schedulers.
    pub schedulers: Vec<SchedSpec>,
    /// Instance seeds (the raw axis values; per-cell seeds are derived).
    pub seeds: Vec<u64>,
    /// Round cap per cell.
    pub max_rounds: usize,
    /// Master seed mixed into every derived cell seed.
    pub base_seed: u64,
    /// How converged cells are re-certified (affects the JSONL
    /// `certified` field, so it is part of the spec identity and the
    /// resume manifest).
    pub certify: CertifyMode,
    /// Stream the per-round max-regret series in every cell line
    /// (schema 2; off by default — meter-off grids keep their schema-1
    /// bytes exactly).
    pub regret_meter: bool,
    /// Record a full state checkpoint (strategies, costs, regrets) every
    /// k completed rounds plus the final round; `0` disables (the
    /// default). Non-zero turns the cell lines into schema 2.
    pub checkpoint_every: usize,
    /// Price speculative candidates with the bounded-horizon region-delta
    /// policy ([`SpeculativePricing::RegionDelta`]) instead of the full
    /// O(n) sum — the policy that makes 10³–10⁴-node cells feasible.
    /// A deterministic policy of its own (sub-ulp ties may resolve
    /// differently from full-sum pricing), so it is part of the spec
    /// identity; off by default, keeping historical grids byte-identical.
    pub horizon_pricing: bool,
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        ScenarioSpec {
            name: "grid".into(),
            hosts: vec!["r2".into()],
            ns: vec![8],
            alphas: vec![1.0],
            rules: vec![RuleSpec::Greedy],
            schedulers: vec![SchedSpec::RoundRobin],
            seeds: vec![0],
            max_rounds: 1_000,
            base_seed: 0,
            certify: CertifyMode::Full,
            regret_meter: false,
            checkpoint_every: 0,
            horizon_pricing: false,
        }
    }
}

impl ScenarioSpec {
    /// The swap-heavy preset grid: random-geometry hosts at the α band
    /// where greedy dynamics from a star spend roughly half their applied
    /// moves on deletions and swaps (measured: del+swap ≈ 45–55% of moves
    /// on these axes) — the regime where warm distance vectors
    /// historically died on every removal. The `dynamics_swap_heavy`
    /// bench draws its hosts from this grid, and its cells exercise the
    /// deletion-tolerant warm-update path end to end.
    pub fn swap_heavy() -> ScenarioSpec {
        ScenarioSpec {
            name: "swap-heavy".into(),
            hosts: vec!["r2".into(), "grid".into(), "clusters".into()],
            ns: vec![20],
            alphas: vec![2.0, 4.0, 8.0],
            rules: vec![RuleSpec::Greedy],
            schedulers: vec![SchedSpec::RoundRobin],
            seeds: vec![0, 1, 2, 3],
            max_rounds: 500,
            base_seed: 0,
            certify: CertifyMode::Full,
            ..ScenarioSpec::default()
        }
    }

    /// The large-n preset grid: 10³–10⁴ agents on the integer-grid host
    /// (unit spacing ⇒ the bucket-queue SSSP core's ideal weight class)
    /// with bounded-horizon pricing and sampled certification. The rule
    /// is add-only: with horizon pricing an add scan prices each
    /// candidate by its (tiny, metric-host) relax region, keeping a
    /// round near O(n²) — whereas a greedy swap scan re-floods the
    /// agent's disconnected warm vector per candidate, Θ(n) each, which
    /// is Θ(n³) per round and infeasible at n = 4096. Round cap is
    /// deliberately small: these cells measure large-n throughput, not
    /// convergence, and their byte streams are still fully deterministic.
    pub fn large_n() -> ScenarioSpec {
        ScenarioSpec {
            name: "large-n".into(),
            hosts: vec!["grid".into()],
            ns: vec![1024, 4096],
            alphas: vec![4.0],
            rules: vec![RuleSpec::Add],
            schedulers: vec![SchedSpec::RoundRobin],
            seeds: vec![0],
            max_rounds: 3,
            base_seed: 0,
            certify: CertifyMode::Sampled,
            horizon_pricing: true,
            ..ScenarioSpec::default()
        }
    }

    /// The br-grid preset: exact-best-response dynamics on three hosts at
    /// the sizes where the exponential per-activation search is the whole
    /// cell cost — the end-to-end workload of the persistent BR bound
    /// tables (`BrCachePolicy::Cached`, the engine default). The cache is
    /// bitwise invisible (cached and rebuild pricing choose identical
    /// responses at identical cost bits), so this grid's bytes are locked
    /// by `tests/golden/br_grid_n14.jsonl` *and* must reproduce exactly
    /// under `BrCachePolicy::Rebuild` — the `br_grid` bench measures the
    /// speedup between those two runs of the same byte stream.
    pub fn br_grid() -> ScenarioSpec {
        ScenarioSpec {
            name: "br-grid".into(),
            hosts: vec!["r2".into(), "metric".into(), "clusters".into()],
            ns: vec![12, 14],
            alphas: vec![0.8, 2.0, 6.0],
            rules: vec![RuleSpec::Br],
            schedulers: vec![SchedSpec::RoundRobin],
            seeds: vec![0, 1],
            max_rounds: 60,
            base_seed: 0,
            certify: CertifyMode::Full,
            ..ScenarioSpec::default()
        }
    }

    /// Whether any opt-in observability output is on — the schema-2
    /// trigger for manifests, cell lines, and digests.
    pub fn observability_on(&self) -> bool {
        self.regret_meter || self.checkpoint_every != 0
    }
}

/// One expanded grid cell: a fully specified dynamics run.
#[derive(Clone, Debug, PartialEq)]
pub struct Cell {
    /// Position in the expansion (also the JSONL line position).
    pub index: usize,
    /// Host factory key.
    pub host: String,
    /// Agent count.
    pub n: usize,
    /// Edge price.
    pub alpha: f64,
    /// Response rule.
    pub rule: RuleSpec,
    /// Scheduler.
    pub scheduler: SchedSpec,
    /// The raw seed-axis value.
    pub seed: u64,
    /// Derived deterministic seed (host construction + scheduler RNG).
    pub cell_seed: u64,
    /// Round cap.
    pub max_rounds: usize,
    /// Certification mode (inherited from the spec).
    pub certify: CertifyMode,
    /// Stream the per-round max-regret series (inherited from the spec).
    pub regret_meter: bool,
    /// Checkpoint cadence in rounds, `0` = off (inherited from the spec).
    pub checkpoint_every: usize,
    /// Bounded-horizon speculative pricing (inherited from the spec).
    pub horizon_pricing: bool,
}

impl ScenarioSpec {
    /// Number of cells the spec expands to. Panics on overflow in debug;
    /// validated specs are always in range ([`ScenarioSpec::validate`]
    /// rejects specs whose product overflows via
    /// [`ScenarioSpec::checked_cell_count`]).
    pub fn cell_count(&self) -> usize {
        self.hosts.len()
            * self.ns.len()
            * self.alphas.len()
            * self.rules.len()
            * self.schedulers.len()
            * self.seeds.len()
    }

    /// [`ScenarioSpec::cell_count`] with overflow detection — what
    /// consumers of *untrusted* specs (the service's `submit` handler)
    /// check before expanding anything.
    pub fn checked_cell_count(&self) -> Option<usize> {
        [
            self.hosts.len(),
            self.ns.len(),
            self.alphas.len(),
            self.rules.len(),
            self.schedulers.len(),
            self.seeds.len(),
        ]
        .into_iter()
        .try_fold(1usize, usize::checked_mul)
    }

    /// Checks the spec is runnable and manifest-safe: every axis
    /// non-empty, every host key registered, positive round cap, finite
    /// αs, and a name the line-oriented manifest can round-trip.
    pub fn validate(&self) -> Result<(), String> {
        match self.checked_cell_count() {
            Some(0) => {
                return Err("spec expands to 0 cells (every axis must be non-empty)".into());
            }
            None => {
                return Err("spec cell count overflows (axes are implausibly large)".into());
            }
            Some(_) => {}
        }
        if self.max_rounds == 0 {
            return Err("max_rounds must be positive".into());
        }
        if self.name.contains(['\n', '\r']) {
            return Err(
                "spec name must not contain line breaks (manifest is line-oriented)".into(),
            );
        }
        for key in &self.hosts {
            gncg_metrics::factory::lookup(key)?;
        }
        for &n in &self.ns {
            if n < 2 {
                return Err(format!("n = {n} is below the 2-agent minimum"));
            }
        }
        for &alpha in &self.alphas {
            if !alpha.is_finite() {
                return Err(format!(
                    "alpha = {alpha} is not finite (JSONL cells could not round-trip it)"
                ));
            }
        }
        Ok(())
    }

    /// Expands the grid into its deterministic cell list.
    pub fn expand(&self) -> Vec<Cell> {
        let mut cells = Vec::with_capacity(self.cell_count());
        for host in &self.hosts {
            for &n in &self.ns {
                for &alpha in &self.alphas {
                    for &rule in &self.rules {
                        for &scheduler in &self.schedulers {
                            for &seed in &self.seeds {
                                let index = cells.len();
                                // Mix the seed axis in separately from the
                                // index so permuting other axes never
                                // aliases two cells onto one stream.
                                let cell_seed =
                                    splitmix64(self.base_seed ^ splitmix64(index as u64) ^ seed);
                                cells.push(Cell {
                                    index,
                                    host: host.clone(),
                                    n,
                                    alpha,
                                    rule,
                                    scheduler,
                                    seed,
                                    cell_seed,
                                    max_rounds: self.max_rounds,
                                    certify: self.certify,
                                    regret_meter: self.regret_meter,
                                    checkpoint_every: self.checkpoint_every,
                                    horizon_pricing: self.horizon_pricing,
                                });
                            }
                        }
                    }
                }
            }
        }
        cells
    }

    /// Serializes the spec as the resume manifest (stable `key=value`
    /// lines; [`ScenarioSpec::from_manifest`] round-trips it exactly).
    pub fn to_manifest(&self) -> String {
        let mut s = String::new();
        // Meter-off specs keep emitting schema 1 byte for byte; only
        // opted-in observability bumps the version (and appends its keys
        // below), so historical manifests never change under this build.
        let schema = if self.observability_on() {
            SCHEMA_VERSION_OBSERVABILITY
        } else {
            SCHEMA_VERSION
        };
        s.push_str(&format!("schema={schema}\n"));
        s.push_str(&format!("name={}\n", self.name));
        s.push_str(&format!("hosts={}\n", self.hosts.join(",")));
        s.push_str(&format!(
            "ns={}\n",
            self.ns
                .iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join(",")
        ));
        s.push_str(&format!(
            "alphas={}\n",
            self.alphas
                .iter()
                .map(|a| format!("{a:?}"))
                .collect::<Vec<_>>()
                .join(",")
        ));
        s.push_str(&format!(
            "rules={}\n",
            self.rules
                .iter()
                .map(|r| r.key())
                .collect::<Vec<_>>()
                .join(",")
        ));
        s.push_str(&format!(
            "schedulers={}\n",
            self.schedulers
                .iter()
                .map(|r| r.key())
                .collect::<Vec<_>>()
                .join(",")
        ));
        s.push_str(&format!(
            "seeds={}\n",
            self.seeds
                .iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join(",")
        ));
        s.push_str(&format!("max_rounds={}\n", self.max_rounds));
        s.push_str(&format!("base_seed={}\n", self.base_seed));
        s.push_str(&format!("certify={}\n", self.certify.key()));
        if self.regret_meter {
            s.push_str("regret_meter=true\n");
        }
        if self.checkpoint_every != 0 {
            s.push_str(&format!("checkpoint_every={}\n", self.checkpoint_every));
        }
        // Emitted only when on: historical (full-sum) manifests keep
        // their exact bytes, and pre-horizon builds reject a key they
        // cannot honor instead of silently re-running with the wrong
        // pricing policy.
        if self.horizon_pricing {
            s.push_str("horizon_pricing=true\n");
        }
        s
    }

    /// Parses a manifest produced by [`ScenarioSpec::to_manifest`].
    pub fn from_manifest(text: &str) -> Result<ScenarioSpec, String> {
        let mut spec = ScenarioSpec {
            name: String::new(),
            hosts: Vec::new(),
            ns: Vec::new(),
            alphas: Vec::new(),
            rules: Vec::new(),
            schedulers: Vec::new(),
            seeds: Vec::new(),
            max_rounds: 0,
            base_seed: 0,
            certify: CertifyMode::Full,
            regret_meter: false,
            checkpoint_every: 0,
            horizon_pricing: false,
        };
        for raw in text.lines() {
            // Trim only line endings and for blank/comment detection; the
            // *value* is kept verbatim so names round-trip exactly.
            let line = raw.trim_end_matches('\r');
            if line.trim().is_empty() || line.trim_start().starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("manifest line without '=': {line}"))?;
            fn list<T, E: std::fmt::Display>(
                value: &str,
                parse: impl Fn(&str) -> Result<T, E>,
            ) -> Result<Vec<T>, String> {
                value
                    .split(',')
                    .filter(|s| !s.trim().is_empty())
                    .map(|s| parse(s.trim()).map_err(|e| e.to_string()))
                    .collect()
            }
            match key.trim() {
                "schema" => {
                    let v: u32 = value
                        .trim()
                        .parse()
                        .map_err(|_| "bad schema version".to_string())?;
                    if v != SCHEMA_VERSION && v != SCHEMA_VERSION_OBSERVABILITY {
                        return Err(format!(
                            "manifest schema {v} unsupported (this build speaks \
                             {SCHEMA_VERSION} and {SCHEMA_VERSION_OBSERVABILITY})"
                        ));
                    }
                }
                "name" => spec.name = value.to_string(),
                "hosts" => spec.hosts = list(value, |s| Ok::<_, String>(s.to_string()))?,
                "ns" => spec.ns = list(value, str::parse::<usize>)?,
                "alphas" => spec.alphas = list(value, str::parse::<f64>)?,
                "rules" => spec.rules = list(value, RuleSpec::parse)?,
                "schedulers" => spec.schedulers = list(value, SchedSpec::parse)?,
                "seeds" => spec.seeds = list(value, str::parse::<u64>)?,
                "max_rounds" => {
                    spec.max_rounds = value
                        .trim()
                        .parse()
                        .map_err(|_| "bad max_rounds".to_string())?
                }
                "base_seed" => {
                    spec.base_seed = value
                        .trim()
                        .parse()
                        .map_err(|_| "bad base_seed".to_string())?
                }
                // Absent in pre-certify manifests: the default (full)
                // matches what those grids ran with.
                "certify" => spec.certify = CertifyMode::parse(value.trim())?,
                // Absent in schema-1 manifests: both default to off,
                // matching what those grids ran with.
                "regret_meter" => {
                    spec.regret_meter = value
                        .trim()
                        .parse()
                        .map_err(|_| "bad regret_meter (use true|false)".to_string())?
                }
                "checkpoint_every" => {
                    spec.checkpoint_every = value
                        .trim()
                        .parse()
                        .map_err(|_| "bad checkpoint_every".to_string())?
                }
                // Absent in pre-horizon manifests: full-sum pricing is
                // what those grids ran with.
                "horizon_pricing" => {
                    spec.horizon_pricing = value
                        .trim()
                        .parse()
                        .map_err(|_| "bad horizon_pricing (use true|false)".to_string())?
                }
                other => return Err(format!("unknown manifest key '{other}'")),
            }
        }
        spec.validate()?;
        Ok(spec)
    }
}

/// Serializable result of one cell: what the JSONL stream carries.
#[derive(Clone, Debug, PartialEq)]
pub struct CellResult {
    /// Cell index within the spec expansion.
    pub cell: usize,
    /// Host factory key.
    pub host: String,
    /// Agent count.
    pub n: usize,
    /// Edge price.
    pub alpha: f64,
    /// Response rule.
    pub rule: RuleSpec,
    /// Scheduler.
    pub scheduler: SchedSpec,
    /// Raw seed-axis value.
    pub seed: u64,
    /// `"converged"`, `"cycle"`, or `"max_rounds"`.
    pub outcome: &'static str,
    /// Rounds executed.
    pub rounds: usize,
    /// Applied moves.
    pub moves: usize,
    /// Social cost of the final profile (`None` when disconnected —
    /// serialized as JSON `null`).
    pub social_cost: Option<f64>,
    /// Whether the final profile was explicitly re-certified as an
    /// equilibrium of the rule's class (NE / GE / AE).
    pub certified: bool,
    /// Per-round max-regret series ([`Cell::regret_meter`]): after round
    /// r, the largest cost improvement any agent could still realize
    /// under the cell's rule (`0.0` on the final round of every converged
    /// cell). `None` when the meter is off — the field is then absent
    /// from the JSONL line, keeping schema-1 bytes unchanged.
    pub max_regret: Option<Vec<f64>>,
    /// Checkpoint frames every [`Cell::checkpoint_every`] rounds plus the
    /// final round; `None` when checkpoints are off.
    pub checkpoints: Option<Vec<Checkpoint>>,
    /// Wall-clock microseconds for the cell — **not serialized**: the
    /// JSONL stream is byte-reproducible across runs and resumes, which
    /// timing data would break. Aggregate timing is reported by the grid
    /// summary instead.
    pub wall_micros: u128,
}

/// Formats an `Option<f64>` losslessly for JSON (`{:?}` is the shortest
/// round-trip float representation; disconnected costs become `null`).
fn json_f64(v: Option<f64>) -> String {
    match v {
        Some(x) if x.is_finite() => format!("{x:?}"),
        _ => "null".into(),
    }
}

/// Joins floats as a JSON array body (infinities serialize as `null`).
fn json_f64_array(xs: &[f64]) -> String {
    xs.iter()
        .map(|&x| json_f64(Some(x)))
        .collect::<Vec<_>>()
        .join(",")
}

impl CellResult {
    /// One JSONL line (no trailing newline). Field order is fixed;
    /// floats use the shortest round-trip representation; wall time is
    /// excluded (see [`CellResult::wall_micros`]). The schema-2
    /// observability fields (`max_regret`, `checkpoints`) are appended
    /// strictly after every schema-1 field and only when present, so a
    /// meter-off line is byte-identical to the historical format and a
    /// meter-on line is the meter-off line plus a suffix.
    pub fn to_jsonl(&self) -> String {
        let mut line = format!(
            "{{\"cell\":{},\"host\":\"{}\",\"n\":{},\"alpha\":{},\"rule\":\"{}\",\"scheduler\":\"{}\",\"seed\":{},\"outcome\":\"{}\",\"rounds\":{},\"moves\":{},\"social_cost\":{},\"certified\":{}}}",
            self.cell,
            self.host,
            self.n,
            json_f64(Some(self.alpha)),
            self.rule.key(),
            self.scheduler.key(),
            self.seed,
            self.outcome,
            self.rounds,
            self.moves,
            json_f64(self.social_cost),
            self.certified,
        );
        if self.max_regret.is_some() || self.checkpoints.is_some() {
            line.pop();
            if let Some(series) = &self.max_regret {
                line.push_str(",\"max_regret\":[");
                line.push_str(&json_f64_array(series));
                line.push(']');
            }
            if let Some(frames) = &self.checkpoints {
                line.push_str(",\"checkpoints\":[");
                for (i, f) in frames.iter().enumerate() {
                    if i > 0 {
                        line.push(',');
                    }
                    line.push_str(&format!("{{\"round\":{},\"strategies\":[", f.round));
                    for (u, s) in f.strategies.iter().enumerate() {
                        if u > 0 {
                            line.push(',');
                        }
                        line.push('[');
                        line.push_str(
                            &s.iter()
                                .map(|v| v.to_string())
                                .collect::<Vec<_>>()
                                .join(","),
                        );
                        line.push(']');
                    }
                    line.push_str(&format!(
                        "],\"costs\":[{}],\"regrets\":[{}]}}",
                        json_f64_array(&f.costs),
                        json_f64_array(&f.regrets),
                    ));
                }
                line.push(']');
            }
            line.push('}');
        }
        line
    }

    /// Extracts the cell index from a [`CellResult::to_jsonl`] line
    /// (`None` for malformed/foreign lines) — the resume scanner.
    pub fn cell_index_of_line(line: &str) -> Option<usize> {
        let rest = line.strip_prefix("{\"cell\":")?;
        let end = rest.find(',')?;
        rest[..end].parse().ok()
    }
}

/// Executes cells on a long-lived [`Engine`]: scratch (cached network,
/// warm distance vectors, cycle-detector map) is reused across cells.
/// One `Runner` per worker shard.
#[derive(Debug, Default)]
pub struct Runner {
    engine: Engine,
}

impl Runner {
    /// A fresh runner.
    pub fn new() -> Self {
        Runner::default()
    }

    /// Runs one cell, returning the full run alongside the serializable
    /// result (consumers that need the final profile — diameters,
    /// stretch factors — use this; the grid streamer uses
    /// [`Runner::run_cell`]).
    pub fn run_cell_full(&mut self, cell: &Cell) -> (CellResult, Game, RunResult) {
        let host = gncg_metrics::factory::build_host(&cell.host, cell.n, cell.cell_seed)
            .expect("spec validated before expansion");
        let game = Game::new(host, cell.alpha);
        let cfg = DynamicsConfig {
            rule: cell.rule.rule(),
            scheduler: cell.scheduler.scheduler(cell.cell_seed),
            max_rounds: cell.max_rounds,
            regret_meter: cell.regret_meter,
            checkpoint_every: cell.checkpoint_every,
            ..DynamicsConfig::default()
        };
        // The pricing policy is sticky on the context, so every cell must
        // set it explicitly — a full-sum cell after a horizon cell would
        // otherwise inherit the wrong byte stream.
        self.engine
            .context_mut()
            .set_pricing(if cell.horizon_pricing {
                SpeculativePricing::RegionDelta
            } else {
                SpeculativePricing::FullSum
            });
        let started = Instant::now();
        let result = self.engine.run(&game, Profile::star(game.n(), 0), &cfg);
        let wall_micros = started.elapsed().as_micros();
        let social = cost::social_cost(&game, &result.profile);
        let certified = result.converged()
            && match cell.certify {
                CertifyMode::Off => false,
                CertifyMode::Full => match cell.rule {
                    RuleSpec::Br => equilibrium::is_nash_equilibrium(&game, &result.profile),
                    RuleSpec::Greedy => equilibrium::is_greedy_equilibrium(&game, &result.profile),
                    RuleSpec::Add => equilibrium::is_add_only_equilibrium(&game, &result.profile),
                },
                CertifyMode::Sampled => {
                    // Spot-check a deterministic ⌈√n⌉-agent sample against
                    // the engine's post-run context: the network and warm
                    // vectors already describe the final profile, so each
                    // check reuses the `*_given_current` entry points
                    // instead of a from-scratch build + Dijkstra.
                    let ctx = self.engine.context_mut();
                    sampled_agents(cell.n, cell.cell_seed).into_iter().all(|u| {
                        gncg_dynamics::agent_is_stable_given_current(
                            &game,
                            &result.profile,
                            ctx,
                            u,
                            cell.rule.rule(),
                        )
                    })
                }
            };
        let outcome = match result.outcome {
            Outcome::Converged { .. } => "converged",
            Outcome::Cycle { .. } => "cycle",
            Outcome::MaxRoundsReached => "max_rounds",
        };
        let cell_result = CellResult {
            cell: cell.index,
            host: cell.host.clone(),
            n: cell.n,
            alpha: cell.alpha,
            rule: cell.rule,
            scheduler: cell.scheduler,
            seed: cell.seed,
            outcome,
            rounds: result.rounds,
            moves: result.moves,
            social_cost: social.is_finite().then_some(social),
            certified,
            max_regret: result.regret_series.clone(),
            checkpoints: result.checkpoints.clone(),
            wall_micros,
        };
        (cell_result, game, result)
    }

    /// Runs one cell for its serializable result.
    pub fn run_cell(&mut self, cell: &Cell) -> CellResult {
        self.run_cell_full(cell).0
    }

    /// Releases references into the last cell's data while keeping the
    /// engine's scratch allocations — what a long-lived service worker
    /// calls at a job boundary (see [`gncg_dynamics::Engine::recycle`]).
    pub fn recycle(&mut self) {
        self.engine.recycle();
    }

    /// Sets the engine's candidate-move [`ScanPolicy`] for every
    /// subsequent cell (it survives per-cell context resets). Cell
    /// results are byte-identical under either policy; the `move_scan`
    /// bench uses this to measure the masked-Dijkstra baseline against
    /// the default speculative scan.
    pub fn set_scan_policy(&mut self, scan: ScanPolicy) {
        self.engine.context_mut().set_scan_policy(scan);
    }

    /// Sets the engine's exact-best-response [`BrCachePolicy`] for every
    /// subsequent cell (sticky across per-cell context resets). Cell
    /// results are byte-identical under either policy; the `br_grid`
    /// bench uses this to measure the rebuild-every-activation baseline
    /// against the default persistent bound tables.
    pub fn set_br_policy(&mut self, policy: BrCachePolicy) {
        self.engine.context_mut().set_br_policy(policy);
    }

    /// Bytes resident in the engine's warm distance vectors after the
    /// last cell — the figure the service's `warm_resident_bytes` peak
    /// gauge records per job.
    pub fn warm_resident_bytes(&self) -> usize {
        self.engine.warm_resident_bytes()
    }
}

/// The deterministic ⌈√n⌉-agent sample [`CertifyMode::Sampled`] checks:
/// distinct agents drawn from a splitmix64 stream seeded by the cell seed
/// (disjoint from the host-construction and scheduler streams).
fn sampled_agents(n: usize, cell_seed: u64) -> Vec<NodeId> {
    // ⌈√n⌉ exactly (isqrt floors): the documented sample size.
    let root = n.isqrt();
    let k = (root + usize::from(root * root < n)).max(2).min(n);
    let mut chosen: BTreeSet<NodeId> = BTreeSet::new();
    let mut x = cell_seed ^ 0xA5A5_A5A5_A5A5_A5A5;
    while chosen.len() < k {
        x = splitmix64(x);
        chosen.insert((x % n as u64) as NodeId);
    }
    chosen.into_iter().collect()
}

/// Content address of a cell: a splitmix64-chained digest over **every**
/// field that determines its result bytes (host key, n, α bits, rule,
/// scheduler, raw seed, derived cell seed, round cap, certify mode —
/// everything except the positional `index`, which callers re-stamp when
/// serving a cached line). Equal digests ⇒ byte-identical
/// [`CellResult::to_jsonl`] output up to the `cell` field, which is what
/// the service's result cache keys on.
pub fn cell_digest(cell: &Cell) -> u64 {
    let mut h: u64 = 0x6763_6763_6E63_6731; // "gcgcncg1": domain tag
    let mut mix = |word: u64| h = splitmix64(h ^ word);
    mix(cell.host.len() as u64);
    for chunk in cell.host.as_bytes().chunks(8) {
        let mut w = [0u8; 8];
        w[..chunk.len()].copy_from_slice(chunk);
        mix(u64::from_le_bytes(w));
    }
    mix(cell.n as u64);
    mix(cell.alpha.to_bits());
    mix(cell.rule as u64);
    mix(cell.scheduler as u64);
    mix(cell.seed);
    mix(cell.cell_seed);
    mix(cell.max_rounds as u64);
    mix(cell.certify as u64);
    // Observability fields join the digest only when non-default, so
    // every pre-observability digest (and any cached line keyed on one)
    // is unchanged by this build.
    if cell.regret_meter || cell.checkpoint_every != 0 {
        mix(0x6F62_7332_6763_6763); // "obs2gcgc": sub-domain tag
        mix(cell.regret_meter as u64);
        mix(cell.checkpoint_every as u64);
    }
    // Same gating for the pricing policy: only horizon cells mix the tag,
    // so every full-sum digest (and cached line keyed on one) survives.
    if cell.horizon_pricing {
        mix(0x686F_727A_6763_6763); // "horzgcgc": sub-domain tag
    }
    h
}

/// Runs every cell of `spec` in-memory (sharded over the rayon pool, one
/// [`Runner`] per shard), returning results in cell order — the
/// programmatic twin of the JSONL streamer in [`crate::grid`].
pub fn run_cells(spec: &ScenarioSpec) -> Result<Vec<CellResult>, String> {
    spec.validate()?;
    Ok(run_cell_slice(&spec.expand()))
}

/// Runs an explicit cell list sharded over the rayon pool, preserving
/// order. Shards are contiguous so each worker's [`Engine`] sees similar
/// consecutive cells (better scratch reuse than striping).
pub fn run_cell_slice(cells: &[Cell]) -> Vec<CellResult> {
    run_sharded(&work_shards(cells))
}

/// Runs pre-cut contiguous shards over the rayon pool — the one sharding
/// pipeline (one [`Runner`] per shard, results re-flattened in cell
/// order) shared with the JSONL wave runner in [`crate::grid`].
pub(crate) fn run_sharded(shards: &[&[Cell]]) -> Vec<CellResult> {
    use rayon::prelude::*;
    shards
        .par_iter()
        .map(|shard| {
            let mut runner = Runner::new();
            shard.iter().map(|c| runner.run_cell(c)).collect::<Vec<_>>()
        })
        .collect::<Vec<_>>()
        .into_iter()
        .flatten()
        .collect()
}

/// Estimated work of one cell, for shard balancing only (never affects
/// result bytes). A round touches every agent, and each activation's
/// speculative scan is Θ(n) candidates with roughly size-n-proportional
/// repair work, so n² · rounds is the right *shape*: it makes one
/// n = 4096 cell weigh ~256 n = 1024 cells instead of 1.
pub(crate) fn cell_work(cell: &Cell) -> u64 {
    let n = cell.n as u64;
    n.saturating_mul(n)
        .saturating_mul(cell.max_rounds as u64)
        .max(1)
}

/// Cuts a cell list into contiguous shards of approximately equal
/// *estimated work* ([`cell_work`]), not equal length. Uniform-length
/// sharding assumed per-cell cost was n-independent — on a mixed-n grid
/// one n = 4096 cell then landed in a 64-cell shard and starved its
/// worker while the pool idled. Greedy packing against a work target
/// keeps heavy cells in short (often singleton) shards; a length cap
/// ([`shard_size`]) preserves steal granularity on uniform grids.
pub(crate) fn work_shards(cells: &[Cell]) -> Vec<&[Cell]> {
    let max_len = shard_size(cells.len());
    let total: u64 = cells.iter().map(cell_work).sum();
    let workers = rayon::current_num_threads() as u64;
    // ~4 shards per pool thread, same steal granularity as before —
    // measured in work units now instead of cell count.
    let target = (total / (workers * 4)).max(1);
    let mut shards = Vec::new();
    let mut start = 0;
    let mut acc = 0u64;
    for (i, cell) in cells.iter().enumerate() {
        acc = acc.saturating_add(cell_work(cell));
        let len = i + 1 - start;
        if acc >= target || len >= max_len {
            shards.push(&cells[start..=i]);
            start = i + 1;
            acc = 0;
        }
    }
    if start < cells.len() {
        shards.push(&cells[start..]);
    }
    shards
}

/// Length cap for worker shards: enough cells to amortize engine
/// scratch, few enough to spread over the pool.
pub(crate) fn shard_size(total: usize) -> usize {
    // Live pool size (≥ 1 by construction): ~4 shards per pool thread
    // balances steal granularity against engine-scratch reuse.
    let workers = rayon::current_num_threads();
    total.div_ceil(workers * 4).clamp(1, 64)
}

/// Convenience: run capped dynamics from a star on an ad-hoc game (the
/// shared wiring every driver historically re-implemented).
pub fn dynamics_from_star(game: &Game, rule: ResponseRule, max_rounds: usize) -> RunResult {
    Engine::new().run(
        game,
        Profile::star(game.n(), 0),
        &DynamicsConfig {
            rule,
            scheduler: Scheduler::RoundRobin,
            max_rounds,
            ..DynamicsConfig::default()
        },
    )
}

/// Convenience: run capped dynamics from an explicit start profile.
pub fn dynamics_from(
    game: &Game,
    start: Profile,
    rule: ResponseRule,
    max_rounds: usize,
) -> RunResult {
    Engine::new().run(
        game,
        start,
        &DynamicsConfig {
            rule,
            scheduler: Scheduler::RoundRobin,
            max_rounds,
            ..DynamicsConfig::default()
        },
    )
}

/// The strategy sets bought in a profile, as a canonical edge list —
/// shared by drivers that print equilibrium networks.
pub fn bought_edges(profile: &Profile) -> Vec<(NodeId, NodeId)> {
    let mut edges: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
    for (u, v) in profile.edges() {
        edges.insert((u.min(v), u.max(v)));
    }
    edges.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "tiny".into(),
            hosts: vec!["unit".into(), "onetwo".into()],
            ns: vec![5],
            alphas: vec![0.5, 2.0],
            rules: vec![RuleSpec::Greedy],
            schedulers: vec![SchedSpec::RoundRobin],
            seeds: vec![0, 1],
            max_rounds: 200,
            base_seed: 7,
            ..ScenarioSpec::default()
        }
    }

    #[test]
    fn expansion_is_deterministic_and_indexed() {
        let spec = tiny_spec();
        let a = spec.expand();
        let b = spec.expand();
        assert_eq!(a, b);
        assert_eq!(a.len(), spec.cell_count());
        for (i, cell) in a.iter().enumerate() {
            assert_eq!(cell.index, i);
        }
        // Distinct cells get distinct derived seeds.
        let mut seeds: Vec<u64> = a.iter().map(|c| c.cell_seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), a.len());
    }

    #[test]
    fn manifest_round_trips() {
        let spec = tiny_spec();
        let text = spec.to_manifest();
        let back = ScenarioSpec::from_manifest(&text).unwrap();
        assert_eq!(spec, back);
        assert_eq!(back.to_manifest(), text);
    }

    #[test]
    fn manifest_round_trips_name_with_edge_whitespace() {
        let mut spec = tiny_spec();
        spec.name = " padded name ".into();
        let back = ScenarioSpec::from_manifest(&spec.to_manifest()).unwrap();
        assert_eq!(back.name, spec.name, "values must not be trimmed");
    }

    #[test]
    fn validate_rejects_manifest_breaking_specs() {
        let mut spec = tiny_spec();
        spec.name = "two\nlines".into();
        assert!(spec.validate().unwrap_err().contains("line breaks"));
        let mut spec = tiny_spec();
        spec.alphas = vec![f64::INFINITY];
        assert!(spec.validate().unwrap_err().contains("not finite"));
        let mut spec = tiny_spec();
        spec.alphas = vec![f64::NAN];
        assert!(spec.validate().is_err());
    }

    #[test]
    fn manifest_rejects_unknown_host_and_schema() {
        let mut spec = tiny_spec();
        spec.hosts = vec!["bogus".into()];
        assert!(spec.validate().is_err());
        let bad = "schema=99\n";
        assert!(ScenarioSpec::from_manifest(bad)
            .unwrap_err()
            .contains("schema"));
    }

    #[test]
    fn jsonl_line_round_trips_cell_index() {
        let spec = tiny_spec();
        // Cells 0..4 are the `unit` block (2 alphas × 2 seeds); cell 4 is
        // the first `onetwo` cell.
        let cell = &spec.expand()[4];
        let mut runner = Runner::new();
        let res = runner.run_cell(cell);
        let line = res.to_jsonl();
        assert_eq!(CellResult::cell_index_of_line(&line), Some(4));
        assert!(line.contains("\"host\":\"onetwo\""));
        assert!(!line.contains("wall"), "wall time must stay out of JSONL");
    }

    #[test]
    fn run_cells_is_deterministic_and_ordered() {
        let spec = tiny_spec();
        let a = run_cells(&spec).unwrap();
        let b = run_cells(&spec).unwrap();
        assert_eq!(a.len(), spec.cell_count());
        for (i, r) in a.iter().enumerate() {
            assert_eq!(r.cell, i);
        }
        let lines_a: Vec<String> = a.iter().map(CellResult::to_jsonl).collect();
        let lines_b: Vec<String> = b.iter().map(CellResult::to_jsonl).collect();
        assert_eq!(lines_a, lines_b, "JSONL must be byte-stable across runs");
    }

    #[test]
    fn converged_unit_cells_certify() {
        let spec = ScenarioSpec {
            hosts: vec!["unit".into()],
            ns: vec![6],
            alphas: vec![2.0],
            seeds: vec![0],
            ..ScenarioSpec::default()
        };
        let results = run_cells(&spec).unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].outcome, "converged");
        assert!(results[0].certified);
        assert!(results[0].social_cost.is_some());
    }

    #[test]
    fn certify_modes_parse_and_manifest_round_trips() {
        for mode in CertifyMode::ALL {
            assert_eq!(CertifyMode::parse(mode.key()).unwrap(), mode);
        }
        assert!(CertifyMode::parse("bogus").is_err());
        let mut spec = tiny_spec();
        spec.certify = CertifyMode::Sampled;
        let back = ScenarioSpec::from_manifest(&spec.to_manifest()).unwrap();
        assert_eq!(back, spec);
        // Pre-certify manifests (no certify line) default to full — the
        // mode those grids actually ran with.
        let legacy: String = tiny_spec()
            .to_manifest()
            .lines()
            .filter(|l| !l.starts_with("certify="))
            .map(|l| format!("{l}\n"))
            .collect();
        let parsed = ScenarioSpec::from_manifest(&legacy).unwrap();
        assert_eq!(parsed.certify, CertifyMode::Full);
    }

    #[test]
    fn sampled_and_off_certification_behave() {
        let converged_spec = |certify| ScenarioSpec {
            hosts: vec!["unit".into()],
            ns: vec![9],
            alphas: vec![2.0],
            seeds: vec![0],
            certify,
            ..ScenarioSpec::default()
        };
        let full = &run_cells(&converged_spec(CertifyMode::Full)).unwrap()[0];
        let sampled = &run_cells(&converged_spec(CertifyMode::Sampled)).unwrap()[0];
        let off = &run_cells(&converged_spec(CertifyMode::Off)).unwrap()[0];
        assert_eq!(full.outcome, "converged");
        assert!(full.certified, "full certificate on a converged GE");
        assert!(sampled.certified, "a sample of a GE is stable");
        assert!(!off.certified, "off never certifies");
        // Certification never perturbs the dynamics: all other fields equal.
        assert_eq!(full.rounds, sampled.rounds);
        assert_eq!(full.moves, off.moves);
        assert_eq!(full.social_cost, sampled.social_cost);
        assert_eq!(full.social_cost, off.social_cost);
    }

    #[test]
    fn sampled_agent_set_is_deterministic_and_sized() {
        let a = sampled_agents(100, 42);
        let b = sampled_agents(100, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10, "⌈√100⌉ agents");
        assert!(a.iter().all(|&u| (u as usize) < 100));
        assert_ne!(sampled_agents(100, 43), a, "sample tracks the cell seed");
        assert_eq!(sampled_agents(2, 7).len(), 2, "small n keeps the floor");
        assert_eq!(sampled_agents(10, 1).len(), 4, "⌈√10⌉ = 4, not ⌊√10⌋");
    }

    #[test]
    fn validate_rejects_overflowing_cell_counts() {
        // Six 2048-long axes: the cross product is 2^66, which must be
        // refused by checked arithmetic before anything tries to expand.
        let spec = ScenarioSpec {
            name: "bomb".into(),
            hosts: vec!["unit".into(); 2048],
            ns: vec![5; 2048],
            alphas: vec![1.0; 2048],
            rules: vec![RuleSpec::Greedy; 2048],
            schedulers: vec![SchedSpec::RoundRobin; 2048],
            seeds: vec![0; 2048],
            max_rounds: 10,
            base_seed: 0,
            ..ScenarioSpec::default()
        };
        assert_eq!(spec.checked_cell_count(), None);
        assert!(spec.validate().unwrap_err().contains("overflows"));
    }

    #[test]
    fn cell_digest_is_stable_and_collision_free_across_grid() {
        let spec = tiny_spec();
        let a = spec.expand();
        let b = spec.expand();
        let mut digests: Vec<u64> = a.iter().map(cell_digest).collect();
        assert_eq!(
            digests,
            b.iter().map(cell_digest).collect::<Vec<_>>(),
            "digest must be a pure function of the cell"
        );
        digests.sort_unstable();
        digests.dedup();
        assert_eq!(digests.len(), a.len(), "distinct cells, distinct digests");
        // Every result-determining field moves the digest.
        let base = a[0].clone();
        let variants = [
            Cell {
                host: "r2".into(),
                ..base.clone()
            },
            Cell {
                n: base.n + 1,
                ..base.clone()
            },
            Cell {
                alpha: base.alpha + 0.5,
                ..base.clone()
            },
            Cell {
                rule: RuleSpec::Add,
                ..base.clone()
            },
            Cell {
                scheduler: SchedSpec::MaxGain,
                ..base.clone()
            },
            Cell {
                seed: base.seed ^ 1,
                ..base.clone()
            },
            Cell {
                cell_seed: base.cell_seed ^ 1,
                ..base.clone()
            },
            Cell {
                max_rounds: base.max_rounds + 1,
                ..base.clone()
            },
            Cell {
                certify: CertifyMode::Off,
                ..base.clone()
            },
            Cell {
                regret_meter: true,
                ..base.clone()
            },
            Cell {
                checkpoint_every: 3,
                ..base.clone()
            },
            Cell {
                horizon_pricing: true,
                ..base.clone()
            },
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(cell_digest(v), cell_digest(&base), "variant {i}");
        }
        // The positional index is *not* part of the address.
        let moved = Cell {
            index: base.index + 7,
            ..base.clone()
        };
        assert_eq!(cell_digest(&moved), cell_digest(&base));
    }

    #[test]
    fn scan_policies_produce_identical_cell_bytes() {
        // A swap-heavy cell (the removal-richest regime) run under the
        // speculative scan and the masked-Dijkstra baseline must emit
        // byte-identical JSONL lines.
        let cell = &ScenarioSpec::swap_heavy().expand()[4];
        let speculative = Runner::new().run_cell(cell).to_jsonl();
        let mut masked_runner = Runner::new();
        masked_runner.set_scan_policy(ScanPolicy::MaskedDijkstra);
        let masked = masked_runner.run_cell(cell).to_jsonl();
        assert_eq!(speculative, masked);
    }

    #[test]
    fn br_policies_produce_identical_cell_bytes() {
        // BR cells run off the persistent bound tables by default; the
        // rebuild-every-activation baseline (the historical pre-cache
        // path) must emit byte-identical JSONL lines. A shared runner per
        // policy keeps each cache alive *across* cells, so the reset
        // invalidation is exercised too.
        let cells = ScenarioSpec::br_grid().expand();
        let mut cached_runner = Runner::new();
        let mut rebuild_runner = Runner::new();
        rebuild_runner.set_br_policy(BrCachePolicy::Rebuild);
        for cell in [&cells[0], &cells[7], &cells[20]] {
            let cached = cached_runner.run_cell(cell).to_jsonl();
            let rebuild = rebuild_runner.run_cell(cell).to_jsonl();
            assert_eq!(
                cached, rebuild,
                "cell {} diverged across BR policies",
                cell.index
            );
        }
    }

    #[test]
    fn br_grid_preset_is_valid_and_round_trips() {
        let spec = ScenarioSpec::br_grid();
        spec.validate().expect("preset must validate");
        // 3 hosts × {12, 14} × 3 α × br × rr × 2 seeds.
        assert_eq!(spec.expand().len(), 36);
        let back = ScenarioSpec::from_manifest(&spec.to_manifest()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn swap_heavy_preset_is_valid_and_deterministic() {
        let spec = ScenarioSpec::swap_heavy();
        spec.validate().expect("preset must validate");
        assert_eq!(spec.expand().len(), 36);
        // The preset must round-trip through the manifest like any spec.
        let back = ScenarioSpec::from_manifest(&spec.to_manifest()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn large_n_preset_is_valid_and_round_trips() {
        let spec = ScenarioSpec::large_n();
        spec.validate().expect("preset must validate");
        // Two cells (n = 1024 and n = 4096); expansion is cheap even if
        // running them is not, so the shape is asserted here and the
        // cells themselves run only in release harnesses.
        let cells = spec.expand();
        assert_eq!(cells.len(), 2);
        assert!(cells.iter().all(|c| c.horizon_pricing));
        assert!(cells.iter().all(|c| c.certify == CertifyMode::Sampled));
        let back = ScenarioSpec::from_manifest(&spec.to_manifest()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn horizon_manifest_gating_and_legacy_default() {
        // Horizon-off specs keep the historical manifest bytes.
        let text = tiny_spec().to_manifest();
        assert!(!text.contains("horizon_pricing"));
        // Horizon-on emits the key and round-trips.
        let mut on = tiny_spec();
        on.horizon_pricing = true;
        let text_on = on.to_manifest();
        assert!(text_on.ends_with("horizon_pricing=true\n"));
        let back = ScenarioSpec::from_manifest(&text_on).unwrap();
        assert_eq!(back, on);
        // Manifests without the key default to full-sum pricing.
        let parsed = ScenarioSpec::from_manifest(&tiny_spec().to_manifest()).unwrap();
        assert!(!parsed.horizon_pricing);
    }

    #[test]
    fn horizon_cells_are_deterministic_and_converge_like_full_sum() {
        // Bounded-horizon pricing is its own deterministic policy: equal
        // runs produce equal bytes, and on a clearly-separated small
        // instance (no sub-ulp ties) it lands on the same result as
        // full-sum pricing.
        let mut spec = ScenarioSpec {
            hosts: vec!["grid".into()],
            ns: vec![12],
            alphas: vec![4.0],
            seeds: vec![0, 1],
            max_rounds: 200,
            ..ScenarioSpec::default()
        };
        let full = run_cells(&spec).unwrap();
        spec.horizon_pricing = true;
        let rd_a = run_cells(&spec).unwrap();
        let rd_b = run_cells(&spec).unwrap();
        let lines_a: Vec<String> = rd_a.iter().map(CellResult::to_jsonl).collect();
        let lines_b: Vec<String> = rd_b.iter().map(CellResult::to_jsonl).collect();
        assert_eq!(lines_a, lines_b, "horizon cells must be byte-stable");
        for (f, r) in full.iter().zip(&rd_a) {
            assert_eq!(f.outcome, r.outcome);
            assert_eq!(f.social_cost, r.social_cost);
        }
    }

    #[test]
    fn pricing_policy_does_not_leak_across_cells_in_one_runner() {
        // A horizon cell followed by a full-sum cell on the same Runner
        // must produce the full-sum cell's canonical bytes: the sticky
        // context policy is re-set per cell.
        let full_cell = &tiny_spec().expand()[0];
        let canonical = Runner::new().run_cell(full_cell).to_jsonl();
        let mut horizon_spec = tiny_spec();
        horizon_spec.horizon_pricing = true;
        let horizon_cell = &horizon_spec.expand()[1];
        let mut runner = Runner::new();
        runner.run_cell(horizon_cell);
        assert_eq!(runner.run_cell(full_cell).to_jsonl(), canonical);
    }

    #[test]
    fn work_shards_cover_in_order_and_isolate_heavy_cells() {
        let mut spec = tiny_spec();
        spec.ns = vec![5, 64];
        let cells = spec.expand();
        let shards = work_shards(&cells);
        // Partition: concatenating shards reproduces the cell list.
        let flat: Vec<&Cell> = shards.iter().flat_map(|s| s.iter()).collect();
        assert_eq!(flat.len(), cells.len());
        for (a, b) in flat.iter().zip(&cells) {
            assert_eq!(a.index, b.index);
        }
        // Length cap is respected.
        let cap = shard_size(cells.len());
        assert!(shards.iter().all(|s| s.len() <= cap));
        // Work balance: no shard exceeds the packing target by more than
        // one cell's worth of work (the greedy bound), so a heavy n = 64
        // cell can never be joined by a second heavy cell once the
        // target is already met. Recomputing the target here matches the
        // implementation at any pool size.
        let total: u64 = cells.iter().map(cell_work).sum();
        let target = (total / (rayon::current_num_threads() as u64 * 4)).max(1);
        let max_cell = cells.iter().map(cell_work).max().unwrap();
        for s in &shards {
            let w: u64 = s.iter().map(cell_work).sum();
            assert!(
                w < target + max_cell,
                "shard work {w} exceeds target {target} + heaviest cell {max_cell}"
            );
        }
        // And the estimate itself is monotone in n and rounds.
        let base = cells[0].clone();
        let big_n = Cell {
            n: base.n * 4,
            ..base.clone()
        };
        let more_rounds = Cell {
            max_rounds: base.max_rounds * 2,
            ..base.clone()
        };
        assert!(cell_work(&big_n) > cell_work(&base));
        assert!(cell_work(&more_rounds) > cell_work(&base));
    }

    #[test]
    fn observability_manifest_and_schema_gating() {
        // Meter-off specs emit the historical schema-1 manifest bytes.
        let text = tiny_spec().to_manifest();
        assert!(text.starts_with("schema=1\n"));
        assert!(!text.contains("regret_meter"));
        assert!(!text.contains("checkpoint_every"));
        // Opted-in observability bumps to schema 2 and round-trips.
        let mut on = tiny_spec();
        on.regret_meter = true;
        on.checkpoint_every = 5;
        let text_on = on.to_manifest();
        assert!(text_on.starts_with("schema=2\n"));
        assert!(text_on.contains("regret_meter=true\n"));
        assert!(text_on.contains("checkpoint_every=5\n"));
        let back = ScenarioSpec::from_manifest(&text_on).unwrap();
        assert_eq!(back, on);
        assert_eq!(back.to_manifest(), text_on);
    }

    #[test]
    fn meter_on_line_extends_the_meter_off_line() {
        let spec_off = ScenarioSpec {
            hosts: vec!["unit".into()],
            ns: vec![6],
            alphas: vec![2.0],
            ..ScenarioSpec::default()
        };
        let mut spec_on = spec_off.clone();
        spec_on.regret_meter = true;
        spec_on.checkpoint_every = 2;
        let off = &run_cells(&spec_off).unwrap()[0];
        let on = &run_cells(&spec_on).unwrap()[0];
        assert!(off.max_regret.is_none() && off.checkpoints.is_none());
        let line_off = off.to_jsonl();
        let line_on = on.to_jsonl();
        assert!(
            line_on.starts_with(&line_off[..line_off.len() - 1]),
            "schema 2 appends fields, never rewrites schema-1 bytes"
        );
        assert!(line_on.contains(",\"max_regret\":["));
        assert!(line_on.contains(",\"checkpoints\":[{\"round\":"));
        assert_eq!(CellResult::cell_index_of_line(&line_on), Some(0));
        // The meter never perturbs the dynamics themselves.
        assert_eq!(off.rounds, on.rounds);
        assert_eq!(off.moves, on.moves);
        assert_eq!(off.social_cost, on.social_cost);
        // A converged cell ends at exactly zero regret, and its final
        // checkpoint is the terminal round with all agents stable.
        assert_eq!(on.outcome, "converged");
        let series = on.max_regret.as_ref().unwrap();
        assert_eq!(series.len(), on.rounds);
        assert_eq!(series.last(), Some(&0.0));
        let last = on.checkpoints.as_ref().unwrap().last().unwrap();
        assert_eq!(last.round + 1, on.rounds);
        assert!(last.regrets.iter().all(|&r| r == 0.0));
    }

    #[test]
    fn scheduler_seed_differs_from_host_seed() {
        // The random scheduler must not consume the host's seed stream.
        let s = SchedSpec::Random.scheduler(42);
        match s {
            Scheduler::RandomOrder { seed } => assert_ne!(seed, 42),
            other => panic!("expected RandomOrder, got {other:?}"),
        }
    }
}
