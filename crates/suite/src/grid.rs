//! The batch grid runner: shards a [`ScenarioSpec`] over the rayon pool
//! and streams results to JSONL with kill-safe resume.
//!
//! # File layout
//!
//! `run_grid(spec, "results.jsonl", …)` writes
//!
//! * `results.jsonl` — one [`CellResult::to_jsonl`] line per cell, in
//!   **cell-index order** (waves of shards complete in parallel, but
//!   lines are only ever appended in order), and
//! * `results.manifest` — the spec serialized by
//!   [`ScenarioSpec::to_manifest`], written before the first cell.
//!
//! Because lines land strictly in cell order, a killed run leaves a clean
//! prefix of the full output (plus at most one partial line, which resume
//! truncates). Resuming re-derives the cell list from the manifest-checked
//! spec, skips the cells already on disk, and appends the rest — the
//! final file is byte-identical to an uninterrupted run, which the golden
//! determinism suite asserts.

use std::fs;
use std::io::{BufRead as _, BufReader, BufWriter};
use std::path::{Path, PathBuf};
use std::time::Instant;

use crate::scenario::{work_shards, Cell, CellResult, ScenarioSpec};
use crate::sink::{CellSink, JsonlSink};

/// Aggregate outcome of a [`run_grid`] call.
#[derive(Clone, Debug)]
pub struct GridSummary {
    /// Cells in the spec.
    pub total: usize,
    /// Cells already on disk (resume) and skipped.
    pub skipped: usize,
    /// Cells executed by this call.
    pub ran: usize,
    /// Of the executed cells, how many converged.
    pub converged: usize,
    /// Wall-clock seconds spent executing cells.
    pub wall_secs: f64,
    /// The JSONL output path.
    pub out: PathBuf,
}

/// The manifest path that belongs to a JSONL output path.
pub fn manifest_path(out: &Path) -> PathBuf {
    out.with_extension("manifest")
}

/// Runs `spec`, streaming results to `out` (and its sidecar manifest).
///
/// With `resume = false` any previous output at `out` is overwritten.
/// With `resume = true` the on-disk manifest must match `spec` exactly
/// (byte equality of [`ScenarioSpec::to_manifest`]); completed cells are
/// skipped, a trailing partial line is truncated away, and execution
/// continues from the first missing cell.
pub fn run_grid(spec: &ScenarioSpec, out: &Path, resume: bool) -> Result<GridSummary, String> {
    spec.validate()?;
    let cells = spec.expand();
    let manifest = spec.to_manifest();
    let manifest_file = manifest_path(out);

    let completed = if resume {
        let on_disk = fs::read_to_string(&manifest_file)
            .map_err(|e| format!("cannot read manifest {}: {e}", manifest_file.display()))?;
        if on_disk != manifest {
            return Err(format!(
                "manifest {} does not match the spec — refusing to resume a different grid",
                manifest_file.display()
            ));
        }
        clean_prefix_len(out, &cells)?
    } else {
        if let Some(dir) = out.parent().filter(|d| !d.as_os_str().is_empty()) {
            fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        }
        fs::write(&manifest_file, &manifest)
            .map_err(|e| format!("cannot write manifest {}: {e}", manifest_file.display()))?;
        fs::write(out, "").map_err(|e| format!("cannot create {}: {e}", out.display()))?;
        0
    };

    let remaining = &cells[completed..];
    let file = fs::OpenOptions::new()
        .append(true)
        .open(out)
        .map_err(|e| format!("cannot open {} for append: {e}", out.display()))?;
    let mut sink = JsonlSink::new(BufWriter::new(file));

    let started = Instant::now();
    let converged = stream_cells(remaining, &mut sink)?;

    Ok(GridSummary {
        total: cells.len(),
        skipped: completed,
        ran: remaining.len(),
        converged,
        wall_secs: started.elapsed().as_secs_f64(),
        out: out.to_path_buf(),
    })
}

/// Runs `cells` in waves over the rayon pool and emits every result, in
/// cell order, into `sink` — the shared streaming core of the `grid`
/// command and any other ordered-JSONL producer. Returns how many of the
/// executed cells converged.
///
/// Waves bound how much output can sit in memory before it is flushed:
/// each wave fans its shards over the pool (one engine-reusing
/// [`crate::scenario::Runner`] per shard), then emits its lines in order
/// and flushes the sink.
pub fn stream_cells(cells: &[Cell], sink: &mut impl CellSink) -> Result<usize, String> {
    let mut converged = 0usize;
    // Shards are cut by *estimated work*, not cell count, over the whole
    // list — on a mixed-n grid an n = 4096 cell gets a (near-)singleton
    // shard instead of anchoring a 64-cell one. Waves then group a pool's
    // worth of shards, which bounds buffered output to one wave of
    // results while keeping every thread busy.
    let shards = work_shards(cells);
    let wave = (rayon::current_num_threads() * 4).max(1);
    for wave_shards in shards.chunks(wave) {
        let results = crate::scenario::run_sharded(wave_shards);
        for r in &results {
            sink.emit(r)?;
            if r.outcome == "converged" {
                converged += 1;
            }
        }
        sink.flush()?;
    }
    Ok(converged)
}

/// Counts the clean line prefix of an existing JSONL output (lines that
/// are newline-terminated and carry the expected cell index), truncating
/// any partial or out-of-place tail so appending continues the prefix.
fn clean_prefix_len(out: &Path, cells: &[Cell]) -> Result<usize, String> {
    let file = match fs::File::open(out) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            fs::write(out, "").map_err(|e| format!("cannot create {}: {e}", out.display()))?;
            return Ok(0);
        }
        Err(e) => return Err(format!("cannot read {}: {e}", out.display())),
    };
    let total_bytes = file
        .metadata()
        .map_err(|e| format!("cannot stat {}: {e}", out.display()))?
        .len();
    // Scan line by line (O(1) memory — a resumable grid can be huge),
    // accumulating the byte length of the clean, in-order prefix.
    let mut reader = BufReader::new(file);
    let mut line = String::new();
    let mut completed = 0usize;
    let mut clean_bytes = 0u64;
    loop {
        line.clear();
        let read = reader
            .read_line(&mut line)
            .map_err(|e| format!("cannot read {}: {e}", out.display()))?;
        if read == 0 || !line.ends_with('\n') {
            break; // EOF or a torn final line.
        }
        if completed >= cells.len()
            || CellResult::cell_index_of_line(line.trim_end()) != Some(completed)
        {
            break;
        }
        completed += 1;
        clean_bytes += read as u64;
    }
    if clean_bytes != total_bytes {
        // Drop the partial/foreign tail left by a killed run.
        fs::OpenOptions::new()
            .write(true)
            .open(out)
            .and_then(|f| f.set_len(clean_bytes))
            .map_err(|e| format!("cannot truncate {}: {e}", out.display()))?;
    }
    Ok(completed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{CertifyMode, RuleSpec, SchedSpec};

    fn spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "grid-test".into(),
            hosts: vec!["unit".into(), "onetwo".into()],
            ns: vec![5],
            alphas: vec![0.5, 2.0],
            rules: vec![RuleSpec::Greedy],
            schedulers: vec![SchedSpec::RoundRobin],
            seeds: vec![0, 1],
            max_rounds: 200,
            base_seed: 3,
            certify: CertifyMode::Full,
            ..ScenarioSpec::default()
        }
    }

    fn tmp(name: &str) -> PathBuf {
        // Per-process dir: concurrent test invocations must not share
        // output files (the assertions compare exact bytes).
        let dir = std::env::temp_dir().join(format!("gncg-grid-unit-tests-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn fresh_run_writes_all_cells_and_manifest() {
        let out = tmp("fresh.jsonl");
        let s = spec();
        let summary = run_grid(&s, &out, false).unwrap();
        assert_eq!(summary.total, 8);
        assert_eq!(summary.ran, 8);
        assert_eq!(summary.skipped, 0);
        let text = fs::read_to_string(&out).unwrap();
        assert_eq!(text.lines().count(), 8);
        let manifest = fs::read_to_string(manifest_path(&out)).unwrap();
        assert_eq!(manifest, s.to_manifest());
    }

    #[test]
    fn resume_with_mismatched_manifest_is_refused() {
        let out = tmp("mismatch.jsonl");
        run_grid(&spec(), &out, false).unwrap();
        let mut other = spec();
        other.base_seed = 99;
        let err = run_grid(&other, &out, true).unwrap_err();
        assert!(err.contains("refusing to resume"), "{err}");
    }

    #[test]
    fn resume_from_partial_reproduces_uninterrupted_bytes() {
        let out_full = tmp("full.jsonl");
        let out_part = tmp("partial.jsonl");
        let s = spec();
        run_grid(&s, &out_full, false).unwrap();
        run_grid(&s, &out_part, false).unwrap();
        // Simulate a kill: keep 3 complete lines plus a torn 4th.
        let text = fs::read_to_string(&out_part).unwrap();
        let cut: usize = text.lines().take(3).map(|l| l.len() + 1).sum::<usize>() + 7;
        fs::OpenOptions::new()
            .write(true)
            .open(&out_part)
            .and_then(|f| f.set_len(cut as u64))
            .unwrap();
        let summary = run_grid(&s, &out_part, true).unwrap();
        assert_eq!(summary.skipped, 3);
        assert_eq!(summary.ran, 5);
        assert_eq!(
            fs::read_to_string(&out_part).unwrap(),
            fs::read_to_string(&out_full).unwrap(),
            "resumed output must be byte-identical"
        );
    }

    #[test]
    fn resume_of_complete_run_is_a_no_op() {
        let out = tmp("complete.jsonl");
        let s = spec();
        run_grid(&s, &out, false).unwrap();
        let before = fs::read_to_string(&out).unwrap();
        let summary = run_grid(&s, &out, true).unwrap();
        assert_eq!(summary.ran, 0);
        assert_eq!(summary.skipped, 8);
        assert_eq!(fs::read_to_string(&out).unwrap(), before);
    }
}
