//! Result sinks: the one place cell results turn into bytes.
//!
//! Every consumer that emits a stream of [`CellResult`]s — the `gncg
//! grid` JSONL file writer, the experiment service streaming results over
//! a socket, in-memory collectors in tests — goes through the
//! [`CellSink`] trait, so the byte format (one [`CellResult::to_jsonl`]
//! line per cell, `\n`-terminated, in cell order) is defined exactly
//! once. Two streams fed the same results are byte-identical no matter
//! which sink they went through — the loopback determinism contract the
//! service's integration tests assert.

use std::io::Write;

use crate::scenario::CellResult;

/// A destination for an ordered stream of cell results.
pub trait CellSink {
    /// Emits one result. Implementations must preserve arrival order.
    fn emit(&mut self, result: &CellResult) -> Result<(), String>;

    /// Makes everything emitted so far durable/visible (no-op by
    /// default; buffered writers override).
    fn flush(&mut self) -> Result<(), String> {
        Ok(())
    }
}

/// The JSONL byte format: one [`CellResult::to_jsonl`] line per emit,
/// `\n`-terminated, over any [`Write`] — a `BufWriter<File>` for the
/// `grid` command, a `TcpStream` for the service, a `Vec<u8>` in tests.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
    lines: usize,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        JsonlSink { writer, lines: 0 }
    }

    /// Lines emitted so far.
    pub fn lines(&self) -> usize {
        self.lines
    }

    /// Unwraps the inner writer (without flushing).
    pub fn into_inner(self) -> W {
        self.writer
    }

    /// Writes one pre-serialized JSONL line (no trailing newline in
    /// `line`). The service's cache-hit path serves stored lines without
    /// re-serializing a [`CellResult`]; going through the sink keeps the
    /// byte format single-sourced.
    pub fn emit_line(&mut self, line: &str) -> Result<(), String> {
        writeln!(self.writer, "{line}").map_err(|e| format!("jsonl write failed: {e}"))?;
        self.lines += 1;
        Ok(())
    }
}

impl<W: Write> CellSink for JsonlSink<W> {
    fn emit(&mut self, result: &CellResult) -> Result<(), String> {
        self.emit_line(&result.to_jsonl())
    }

    fn flush(&mut self) -> Result<(), String> {
        self.writer
            .flush()
            .map_err(|e| format!("jsonl flush failed: {e}"))
    }
}

/// Collects results in memory (tests and programmatic consumers).
#[derive(Debug, Default)]
pub struct CollectSink {
    /// The collected results, in emission order.
    pub results: Vec<CellResult>,
}

impl CellSink for CollectSink {
    fn emit(&mut self, result: &CellResult) -> Result<(), String> {
        self.results.push(result.clone());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Runner, ScenarioSpec};

    #[test]
    fn jsonl_sink_bytes_equal_direct_serialization() {
        let spec = ScenarioSpec::default();
        let cells = spec.expand();
        let mut runner = Runner::new();
        let results: Vec<CellResult> = cells.iter().map(|c| runner.run_cell(c)).collect();

        let mut sink = JsonlSink::new(Vec::<u8>::new());
        let mut collect = CollectSink::default();
        for r in &results {
            sink.emit(r).unwrap();
            collect.emit(r).unwrap();
        }
        sink.flush().unwrap();
        assert_eq!(sink.lines(), results.len());
        let expected: String = results.iter().map(|r| r.to_jsonl() + "\n").collect();
        assert_eq!(String::from_utf8(sink.into_inner()).unwrap(), expected);
        assert_eq!(collect.results, results);
    }

    #[test]
    fn emit_line_and_emit_agree() {
        let spec = ScenarioSpec::default();
        let cell = &spec.expand()[0];
        let r = Runner::new().run_cell(cell);
        let mut a = JsonlSink::new(Vec::<u8>::new());
        let mut b = JsonlSink::new(Vec::<u8>::new());
        a.emit(&r).unwrap();
        b.emit_line(&r.to_jsonl()).unwrap();
        assert_eq!(a.into_inner(), b.into_inner());
    }
}
