//! # gncg-suite
//!
//! The orchestration layer: scenario grids, the batch JSONL runner, and
//! shared helpers for the repo-level integration tests (`tests/`), the
//! runnable examples (`examples/`), and the `gncg` CLI. The heavy lifting
//! lives in the other crates; this crate turns them into one declarative
//! pipeline:
//!
//! * [`scenario`] — [`scenario::ScenarioSpec`] grids (host factory × n ×
//!   α × rule × scheduler × seed), deterministic per-cell seeds, the
//!   engine-reusing [`scenario::Runner`], serializable
//!   [`scenario::CellResult`]s,
//! * [`grid`] — the sharded batch runner streaming ordered JSONL with a
//!   resume manifest,
//! * [`sink`] — the [`sink::CellSink`] byte-format layer every ordered
//!   result stream (grid files, the experiment service's socket streams)
//!   writes through.

pub mod grid;
pub mod scenario;
pub mod sink;

use gncg_core::{Game, Profile};
use gncg_dynamics::{ResponseRule, RunResult};

pub use scenario::{dynamics_from, dynamics_from_star};

/// Runs capped exact-best-response dynamics from a star start and returns
/// the result. Convergence means the final profile is a certified NE.
pub fn br_dynamics_from_star(game: &Game, center: u32, max_rounds: usize) -> RunResult {
    dynamics_from(
        game,
        Profile::star(game.n(), center),
        ResponseRule::ExactBestResponse,
        max_rounds,
    )
}

/// Runs capped greedy dynamics (add/delete/swap) from a star start.
/// Convergence means the final profile is a Greedy Equilibrium.
pub fn greedy_dynamics_from_star(game: &Game, center: u32, max_rounds: usize) -> RunResult {
    dynamics_from(
        game,
        Profile::star(game.n(), center),
        ResponseRule::BestGreedyMove,
        max_rounds,
    )
}

/// Runs add-only dynamics from a given profile (converges to an AE).
pub fn add_only_dynamics(game: &Game, start: Profile, max_rounds: usize) -> RunResult {
    dynamics_from(game, start, ResponseRule::AddOnly, max_rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gncg_graph::SymMatrix;

    #[test]
    fn helpers_run() {
        let game = Game::new(SymMatrix::filled(5, 1.0), 2.0);
        assert!(br_dynamics_from_star(&game, 0, 50).converged());
        assert!(greedy_dynamics_from_star(&game, 0, 50).converged());
        assert!(add_only_dynamics(&game, Profile::star(5, 0), 50).converged());
    }
}
