//! # gncg-suite
//!
//! Shared helpers for the repo-level integration tests (`tests/`) and
//! runnable examples (`examples/`). The heavy lifting lives in the other
//! crates; this crate only provides convenience constructors used across
//! the suite.

use gncg_core::{Game, Profile};
use gncg_dynamics::{DynamicsConfig, ResponseRule, RunResult, Scheduler};

/// Runs capped exact-best-response dynamics from a star start and returns
/// the result. Convergence means the final profile is a certified NE.
pub fn br_dynamics_from_star(game: &Game, center: u32, max_rounds: usize) -> RunResult {
    gncg_dynamics::run(
        game,
        Profile::star(game.n(), center),
        &DynamicsConfig {
            rule: ResponseRule::ExactBestResponse,
            scheduler: Scheduler::RoundRobin,
            max_rounds,
            record_trace: false,
        },
    )
}

/// Runs capped greedy dynamics (add/delete/swap) from a star start.
/// Convergence means the final profile is a Greedy Equilibrium.
pub fn greedy_dynamics_from_star(game: &Game, center: u32, max_rounds: usize) -> RunResult {
    gncg_dynamics::run(
        game,
        Profile::star(game.n(), center),
        &DynamicsConfig {
            rule: ResponseRule::BestGreedyMove,
            scheduler: Scheduler::RoundRobin,
            max_rounds,
            record_trace: false,
        },
    )
}

/// Runs add-only dynamics from a given profile (converges to an AE).
pub fn add_only_dynamics(game: &Game, start: Profile, max_rounds: usize) -> RunResult {
    gncg_dynamics::run(
        game,
        start,
        &DynamicsConfig {
            rule: ResponseRule::AddOnly,
            scheduler: Scheduler::RoundRobin,
            max_rounds,
            record_trace: false,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gncg_graph::SymMatrix;

    #[test]
    fn helpers_run() {
        let game = Game::new(SymMatrix::filled(5, 1.0), 2.0);
        assert!(br_dynamics_from_star(&game, 0, 50).converged());
        assert!(greedy_dynamics_from_star(&game, 0, 50).converged());
        assert!(add_only_dynamics(&game, Profile::star(5, 0), 50).converged());
    }
}
