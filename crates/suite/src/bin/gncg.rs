//! `gncg` — command-line front end for the library.
//!
//! ```text
//! gncg simulate --host <kind> --n <n> --alpha <α> [--seed <s>] [--rule br|greedy|add]
//! gncg poa      --host <kind> --n <n> --alpha <α> [--seed <s>]
//! gncg opt      --host <kind> --n <n> --alpha <α> [--seed <s>]
//! gncg landscape --host <kind> --n <n> --alpha <α> [--seed <s>]
//! gncg analyze  --host <kind> --n <n> --alpha <α> [--seed <s>]
//! ```
//!
//! Host kinds: `unit`, `onetwo`, `tree`, `r2`, `metric`, `general`,
//! `grid`, `clusters`.

use gncg_core::{Game, Profile};
use gncg_dynamics::{DynamicsConfig, ResponseRule, Scheduler};
use gncg_graph::SymMatrix;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage_and_exit();
    }
    let cmd = args[0].clone();
    let opts = Options::parse(&args[1..]);
    let host = opts.build_host();
    let game = Game::new(host, opts.alpha);
    match cmd.as_str() {
        "simulate" => simulate(&game, &opts),
        "poa" => poa_cmd(&game),
        "opt" => opt_cmd(&game),
        "landscape" => landscape_cmd(&game),
        "analyze" => analyze_cmd(&game, &opts),
        other => {
            eprintln!("unknown command: {other}");
            usage_and_exit();
        }
    }
}

struct Options {
    host: String,
    n: usize,
    alpha: f64,
    seed: u64,
    rule: ResponseRule,
}

impl Options {
    fn parse(args: &[String]) -> Options {
        let mut o = Options {
            host: "r2".into(),
            n: 8,
            alpha: 1.0,
            seed: 42,
            rule: ResponseRule::BestGreedyMove,
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = || {
                it.next()
                    .unwrap_or_else(|| {
                        eprintln!("missing value for {flag}");
                        std::process::exit(2);
                    })
                    .clone()
            };
            match flag.as_str() {
                "--host" => o.host = value(),
                "--n" => o.n = value().parse().expect("--n takes an integer"),
                "--alpha" => o.alpha = value().parse().expect("--alpha takes a float"),
                "--seed" => o.seed = value().parse().expect("--seed takes an integer"),
                "--rule" => {
                    o.rule = match value().as_str() {
                        "br" => ResponseRule::ExactBestResponse,
                        "greedy" => ResponseRule::BestGreedyMove,
                        "add" => ResponseRule::AddOnly,
                        other => {
                            eprintln!("unknown rule: {other} (use br|greedy|add)");
                            std::process::exit(2);
                        }
                    }
                }
                other => {
                    eprintln!("unknown flag: {other}");
                    std::process::exit(2);
                }
            }
        }
        o
    }

    fn build_host(&self) -> SymMatrix {
        match self.host.as_str() {
            "unit" => gncg_metrics::unit::unit_host(self.n),
            "onetwo" => gncg_metrics::onetwo::random(self.n, 0.4, self.seed),
            "tree" => {
                gncg_metrics::treemetric::random_tree(self.n, 1.0, 4.0, self.seed).metric_closure()
            }
            "r2" => gncg_metrics::euclidean::PointSet::random(self.n, 2, 10.0, self.seed)
                .host_matrix(gncg_metrics::euclidean::Norm::L2),
            "metric" => gncg_metrics::arbitrary::random_metric(self.n, 1.0, 5.0, self.seed),
            "general" => gncg_metrics::arbitrary::random(self.n, 0.5, 8.0, self.seed),
            "grid" => {
                let side = (self.n as f64).sqrt().ceil() as usize;
                gncg_metrics::structured::grid(side, side.max(1), 1.0)
                    .host_matrix(gncg_metrics::euclidean::Norm::L2)
            }
            "clusters" => gncg_metrics::structured::clustered(
                (self.n / 4).max(1),
                4,
                20.0,
                1.0,
                self.seed,
            )
            .host_matrix(gncg_metrics::euclidean::Norm::L2),
            other => {
                eprintln!("unknown host kind: {other}");
                std::process::exit(2);
            }
        }
    }
}

fn simulate(game: &Game, opts: &Options) {
    let result = gncg_dynamics::run(
        game,
        Profile::star(game.n(), 0),
        &DynamicsConfig {
            rule: opts.rule,
            scheduler: Scheduler::RoundRobin,
            max_rounds: 1000,
            record_trace: false,
        },
    );
    println!("outcome: {:?}", result.outcome);
    println!("moves:   {}", result.moves);
    let g = result.profile.build_network(game);
    println!("edges:   {}", g.m());
    println!(
        "diam:    {:.4}",
        gncg_graph::apsp::apsp_parallel(&g).diameter()
    );
    println!(
        "cost:    {:.4}",
        gncg_core::cost::social_cost(game, &result.profile)
    );
}

fn poa_cmd(game: &Game) {
    let run = gncg_dynamics::run(
        game,
        Profile::star(game.n(), 0),
        &DynamicsConfig {
            rule: ResponseRule::BestGreedyMove,
            scheduler: Scheduler::RoundRobin,
            max_rounds: 1000,
            record_trace: false,
        },
    );
    if !run.converged() {
        println!("dynamics did not converge (no FIP — try another seed)");
        return;
    }
    let eq = gncg_core::cost::social_cost(game, &run.profile);
    let opt = if game.n() <= 7 {
        gncg_solvers::opt_exact::social_optimum(game).cost
    } else {
        gncg_solvers::opt_heuristic::social_optimum_heuristic(game, 40).cost
    };
    println!("equilibrium cost: {eq:.4}");
    println!("optimum cost:     {opt:.4} ({})", if game.n() <= 7 { "exact" } else { "heuristic upper bound" });
    println!("ratio:            {:.4}", eq / opt);
    println!("(α+2)/2 bound:    {:.4}", gncg_core::poa::metric_upper_bound(game.alpha()));
}

fn opt_cmd(game: &Game) {
    if game.n() <= 7 {
        let opt = gncg_solvers::opt_exact::social_optimum(game);
        println!("exact optimum cost: {:.4}", opt.cost);
        println!("edges: {:?}", opt.edges);
    } else {
        let opt = gncg_solvers::opt_heuristic::social_optimum_heuristic(game, 60);
        println!("heuristic optimum cost: {:.4} ({} rounds)", opt.cost, opt.rounds);
        println!("edges: {:?}", opt.edges);
    }
}

fn landscape_cmd(game: &Game) {
    if game.n() > 6 {
        eprintln!("landscape enumeration needs --n ≤ 6");
        std::process::exit(2);
    }
    let land = gncg_solvers::stability::enumerate_equilibria(game);
    let opt = gncg_solvers::opt_exact::social_optimum(game);
    println!("connected networks inspected: {}", land.networks);
    println!("networks admitting a NE:      {}", land.count);
    match (land.price_of_stability(opt.cost), land.price_of_anarchy(opt.cost)) {
        (Some(pos), Some(poa)) => {
            println!("exact PoS: {pos:.4}");
            println!("exact PoA: {poa:.4}");
            println!("(α+2)/2:   {:.4}", gncg_core::poa::metric_upper_bound(game.alpha()));
        }
        _ => println!("no pure Nash equilibrium exists on this instance"),
    }
}

fn analyze_cmd(game: &Game, opts: &Options) {
    let run = gncg_dynamics::run(
        game,
        Profile::star(game.n(), 0),
        &DynamicsConfig {
            rule: opts.rule,
            scheduler: Scheduler::RoundRobin,
            max_rounds: 1000,
            record_trace: false,
        },
    );
    let report = gncg_core::analysis::analyze(game, &run.profile);
    println!("social cost:      {:.4}", report.social_cost);
    println!("edge-cost share:  {:.4}", report.edge_cost_share());
    println!("free riders:      {}", report.free_riders);
    println!("cost spread:      {:.4}", report.cost_spread);
    println!(
        "biggest builder:  agent {} ({} edges)",
        report.biggest_builder().agent,
        report.biggest_builder().edges_bought
    );
    println!("worst off:        agent {}", report.worst_off().agent);
    println!("\nper-agent:");
    for a in &report.agents {
        println!(
            "  {:>3}: edge {:>9.3}  dist {:>9.3}  total {:>9.3}  bought {:>2}  deg {:>2}",
            a.agent,
            a.cost.edge_cost,
            a.cost.distance_cost,
            a.cost.total(),
            a.edges_bought,
            a.degree
        );
    }
}

fn usage_and_exit() -> ! {
    eprintln!(
        "usage: gncg <simulate|poa|opt|landscape|analyze> \
         [--host unit|onetwo|tree|r2|metric|general|grid|clusters] \
         [--n N] [--alpha A] [--seed S] [--rule br|greedy|add]"
    );
    std::process::exit(2);
}
