//! `gncg` — command-line front end for the library.
//!
//! ```text
//! gncg simulate  --host <key> --n <n> --alpha <α> [--seed <s>] [--rule br|greedy|add] [--max-rounds <r>]
//! gncg poa       --host <key> --n <n> --alpha <α> [--seed <s>]
//! gncg opt       --host <key> --n <n> --alpha <α> [--seed <s>]
//! gncg landscape --host <key> --n <n> --alpha <α> [--seed <s>]
//! gncg analyze   --host <key> --n <n> --alpha <α> [--seed <s>]
//! gncg grid      --out <file.jsonl> [--name <s>] [--hosts k1,k2] [--n n1,n2]
//!                [--alpha a1,a2] [--rules r1,r2] [--scheds s1,s2]
//!                [--seeds s1,s2 | --seed-count k] [--max-rounds <r>] [--base-seed <s>]
//! gncg resume    --out <file.jsonl>
//! gncg list-factories
//! ```
//!
//! Host keys come from the `gncg_metrics::factory` registry
//! (`gncg list-factories` prints them). Exit codes: `0` success, `1`
//! non-convergence (so dynamics commands are scriptable from CI), `2`
//! invalid arguments or I/O failure.

use gncg_core::{Game, Profile};
use gncg_dynamics::{DynamicsConfig, ResponseRule, Scheduler};
use gncg_graph::SymMatrix;
use gncg_suite::grid::{manifest_path, run_grid, GridSummary};
use gncg_suite::scenario::{RuleSpec, ScenarioSpec, SchedSpec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage_and_exit();
    }
    let cmd = args[0].clone();
    match cmd.as_str() {
        "list-factories" => list_factories(),
        "grid" => grid_cmd(&args[1..]),
        "resume" => resume_cmd(&args[1..]),
        "simulate" | "poa" | "opt" | "landscape" | "analyze" => {
            let opts = Options::parse(&args[1..]);
            let host = opts.build_host();
            let game = Game::new(host, opts.alpha);
            match cmd.as_str() {
                "simulate" => simulate(&game, &opts),
                "poa" => poa_cmd(&game),
                "opt" => opt_cmd(&game),
                "landscape" => landscape_cmd(&game),
                "analyze" => analyze_cmd(&game, &opts),
                _ => unreachable!(),
            }
        }
        other => {
            eprintln!("unknown command: {other}");
            usage_and_exit();
        }
    }
}

fn invalid(msg: impl std::fmt::Display) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

/// Parses a flag value, exiting 2 with a message instead of panicking.
fn parse_or_exit<T: std::str::FromStr>(value: &str, what: &str) -> T {
    value
        .parse()
        .unwrap_or_else(|_| invalid(format_args!("{what} (got '{value}')")))
}

struct Options {
    host: String,
    n: usize,
    alpha: f64,
    seed: u64,
    rule: ResponseRule,
    max_rounds: usize,
}

impl Options {
    fn parse(args: &[String]) -> Options {
        let mut o = Options {
            host: "r2".into(),
            n: 8,
            alpha: 1.0,
            seed: 42,
            rule: ResponseRule::BestGreedyMove,
            max_rounds: 1_000,
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = || {
                it.next()
                    .unwrap_or_else(|| invalid(format_args!("missing value for {flag}")))
                    .clone()
            };
            match flag.as_str() {
                "--host" => o.host = value(),
                "--n" => o.n = parse_or_exit(&value(), "--n takes an integer"),
                "--alpha" => o.alpha = parse_or_exit(&value(), "--alpha takes a float"),
                "--seed" => o.seed = parse_or_exit(&value(), "--seed takes an integer"),
                "--max-rounds" => {
                    o.max_rounds = parse_or_exit(&value(), "--max-rounds takes an integer")
                }
                "--rule" => {
                    o.rule = RuleSpec::parse(&value())
                        .unwrap_or_else(|e| invalid(e))
                        .rule()
                }
                other => invalid(format_args!("unknown flag: {other}")),
            }
        }
        o
    }

    fn build_host(&self) -> SymMatrix {
        gncg_metrics::factory::build_host(&self.host, self.n, self.seed)
            .unwrap_or_else(|e| invalid(e))
    }
}

fn list_factories() {
    println!("registered host factories (gncg_metrics::factory):");
    for f in gncg_metrics::factory::registry() {
        println!(
            "  {:10} {} [{}]",
            f.key(),
            f.describe(),
            if f.metric() { "metric" } else { "non-metric" }
        );
    }
}

/// Parses `gncg grid` flags into a [`ScenarioSpec`] plus the output path.
fn parse_grid_spec(args: &[String]) -> (ScenarioSpec, std::path::PathBuf) {
    let mut spec = ScenarioSpec::default();
    let mut out: Option<std::path::PathBuf> = None;
    fn split_list<T>(value: &str, parse: impl Fn(&str) -> T) -> Vec<T> {
        value
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|s| parse(s.trim()))
            .collect()
    }
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| invalid(format_args!("missing value for {flag}")))
                .clone()
        };
        match flag.as_str() {
            "--out" => out = Some(value().into()),
            "--name" => spec.name = value(),
            "--hosts" => spec.hosts = split_list(&value(), str::to_string),
            "--n" => spec.ns = split_list(&value(), |s| parse_or_exit(s, "--n takes integers")),
            "--alpha" => {
                spec.alphas = split_list(&value(), |s| parse_or_exit(s, "--alpha takes floats"))
            }
            "--rules" => {
                spec.rules = split_list(&value(), |s| {
                    RuleSpec::parse(s).unwrap_or_else(|e| invalid(e))
                })
            }
            "--scheds" => {
                spec.schedulers = split_list(&value(), |s| {
                    SchedSpec::parse(s).unwrap_or_else(|e| invalid(e))
                })
            }
            "--seeds" => {
                spec.seeds = split_list(&value(), |s| parse_or_exit(s, "--seeds takes integers"))
            }
            "--seed-count" => {
                let k: u64 = parse_or_exit(&value(), "--seed-count takes an integer");
                spec.seeds = (0..k).collect();
            }
            "--max-rounds" => {
                spec.max_rounds = parse_or_exit(&value(), "--max-rounds takes an integer")
            }
            "--base-seed" => {
                spec.base_seed = parse_or_exit(&value(), "--base-seed takes an integer")
            }
            other => invalid(format_args!("unknown flag: {other}")),
        }
    }
    let out = out.unwrap_or_else(|| invalid("grid requires --out <file.jsonl>"));
    if let Err(e) = spec.validate() {
        invalid(e);
    }
    (spec, out)
}

fn print_summary(s: &GridSummary) {
    println!(
        "grid: {} cells ({} resumed from disk, {} run, {} of those converged) in {:.2}s",
        s.total, s.skipped, s.ran, s.converged, s.wall_secs
    );
    println!("results: {}", s.out.display());
    println!("manifest: {}", manifest_path(&s.out).display());
}

fn grid_cmd(args: &[String]) {
    let (spec, out) = parse_grid_spec(args);
    match run_grid(&spec, &out, false) {
        Ok(summary) => print_summary(&summary),
        Err(e) => invalid(e),
    }
}

fn resume_cmd(args: &[String]) {
    let mut out: Option<std::path::PathBuf> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out" => {
                out = Some(
                    it.next()
                        .unwrap_or_else(|| invalid("missing value for --out"))
                        .into(),
                )
            }
            other => invalid(format_args!("unknown flag: {other}")),
        }
    }
    let out = out.unwrap_or_else(|| invalid("resume requires --out <file.jsonl>"));
    let manifest = manifest_path(&out);
    let text = std::fs::read_to_string(&manifest)
        .unwrap_or_else(|e| invalid(format_args!("cannot read {}: {e}", manifest.display())));
    let spec = ScenarioSpec::from_manifest(&text).unwrap_or_else(|e| invalid(e));
    match run_grid(&spec, &out, true) {
        Ok(summary) => print_summary(&summary),
        Err(e) => invalid(e),
    }
}

fn simulate(game: &Game, opts: &Options) {
    let result = gncg_dynamics::run(
        game,
        Profile::star(game.n(), 0),
        &DynamicsConfig {
            rule: opts.rule,
            scheduler: Scheduler::RoundRobin,
            max_rounds: opts.max_rounds,
            record_trace: false,
        },
    );
    println!("outcome: {:?}", result.outcome);
    println!("moves:   {}", result.moves);
    let g = result.profile.build_network(game);
    println!("edges:   {}", g.m());
    println!(
        "diam:    {:.4}",
        gncg_graph::apsp::apsp_parallel(&g).diameter()
    );
    println!(
        "cost:    {:.4}",
        gncg_core::cost::social_cost(game, &result.profile)
    );
    if !result.converged() {
        eprintln!("non-convergence: no equilibrium certified within the round cap");
        std::process::exit(1);
    }
}

fn poa_cmd(game: &Game) {
    let run = gncg_dynamics::run(
        game,
        Profile::star(game.n(), 0),
        &DynamicsConfig {
            rule: ResponseRule::BestGreedyMove,
            scheduler: Scheduler::RoundRobin,
            max_rounds: 1000,
            record_trace: false,
        },
    );
    if !run.converged() {
        eprintln!("dynamics did not converge (no FIP — try another seed)");
        std::process::exit(1);
    }
    let eq = gncg_core::cost::social_cost(game, &run.profile);
    let opt = if game.n() <= 7 {
        gncg_solvers::opt_exact::social_optimum(game).cost
    } else {
        gncg_solvers::opt_heuristic::social_optimum_heuristic(game, 40).cost
    };
    println!("equilibrium cost: {eq:.4}");
    println!(
        "optimum cost:     {opt:.4} ({})",
        if game.n() <= 7 {
            "exact"
        } else {
            "heuristic upper bound"
        }
    );
    println!("ratio:            {:.4}", eq / opt);
    println!(
        "(α+2)/2 bound:    {:.4}",
        gncg_core::poa::metric_upper_bound(game.alpha())
    );
}

fn opt_cmd(game: &Game) {
    if game.n() <= 7 {
        let opt = gncg_solvers::opt_exact::social_optimum(game);
        println!("exact optimum cost: {:.4}", opt.cost);
        println!("edges: {:?}", opt.edges);
    } else {
        let opt = gncg_solvers::opt_heuristic::social_optimum_heuristic(game, 60);
        println!(
            "heuristic optimum cost: {:.4} ({} rounds)",
            opt.cost, opt.rounds
        );
        println!("edges: {:?}", opt.edges);
    }
}

fn landscape_cmd(game: &Game) {
    if game.n() > 6 {
        invalid("landscape enumeration needs --n ≤ 6");
    }
    let land = gncg_solvers::stability::enumerate_equilibria(game);
    let opt = gncg_solvers::opt_exact::social_optimum(game);
    println!("connected networks inspected: {}", land.networks);
    println!("networks admitting a NE:      {}", land.count);
    match (
        land.price_of_stability(opt.cost),
        land.price_of_anarchy(opt.cost),
    ) {
        (Some(pos), Some(poa)) => {
            println!("exact PoS: {pos:.4}");
            println!("exact PoA: {poa:.4}");
            println!(
                "(α+2)/2:   {:.4}",
                gncg_core::poa::metric_upper_bound(game.alpha())
            );
        }
        _ => println!("no pure Nash equilibrium exists on this instance"),
    }
}

fn analyze_cmd(game: &Game, opts: &Options) {
    let run = gncg_dynamics::run(
        game,
        Profile::star(game.n(), 0),
        &DynamicsConfig {
            rule: opts.rule,
            scheduler: Scheduler::RoundRobin,
            max_rounds: opts.max_rounds,
            record_trace: false,
        },
    );
    let report = gncg_core::analysis::analyze(game, &run.profile);
    println!("social cost:      {:.4}", report.social_cost);
    println!("edge-cost share:  {:.4}", report.edge_cost_share());
    println!("free riders:      {}", report.free_riders);
    println!("cost spread:      {:.4}", report.cost_spread);
    println!(
        "biggest builder:  agent {} ({} edges)",
        report.biggest_builder().agent,
        report.biggest_builder().edges_bought
    );
    println!("worst off:        agent {}", report.worst_off().agent);
    println!("\nper-agent:");
    for a in &report.agents {
        println!(
            "  {:>3}: edge {:>9.3}  dist {:>9.3}  total {:>9.3}  bought {:>2}  deg {:>2}",
            a.agent,
            a.cost.edge_cost,
            a.cost.distance_cost,
            a.cost.total(),
            a.edges_bought,
            a.degree
        );
    }
}

fn usage_and_exit() -> ! {
    eprintln!(
        "usage: gncg <simulate|poa|opt|landscape|analyze|grid|resume|list-factories>\n\
         \n\
         instance commands: [--host <key>] [--n N] [--alpha A] [--seed S]\n\
         \x20                  [--rule br|greedy|add] [--max-rounds R]\n\
         grid:  --out results.jsonl [--hosts k1,k2] [--n n1,n2] [--alpha a1,a2]\n\
         \x20      [--rules r1,r2] [--scheds rr,random,maxgain]\n\
         \x20      [--seeds s1,s2 | --seed-count K] [--max-rounds R] [--base-seed S]\n\
         resume: --out results.jsonl   (spec is read back from the manifest)\n\
         \n\
         host keys: `gncg list-factories`"
    );
    std::process::exit(2);
}
