//! Hermetic stand-in for `proptest`.
//!
//! The build environment is offline, so the workspace vendors the slice of
//! the proptest API its property tests use: the [`proptest!`] macro,
//! [`prop_assert!`] / [`prop_assert_eq!`], range and collection
//! strategies, `prop_map`, and [`ProptestConfig::with_cases`].
//!
//! Differences from upstream, deliberate for this environment:
//! * No shrinking — a failing case panics with the case index; re-running
//!   is deterministic (the stream depends only on the test name and case
//!   number), so the failure always reproduces.
//! * No persistence files and no fork/timeout support.

/// Deterministic per-test random stream (splitmix64 over a name hash).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The stream for case `case` of test `name`.
    pub fn for_case(name: &str, case: u64) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator. Upstream proptest separates strategies from value
/// trees (for shrinking); without shrinking a strategy is just a sampler.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end - self.start) as u64;
                assert!(span > 0, "empty range strategy");
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() - *self.start()) as u64 + 1;
                *self.start() + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_int_strategy!(usize, u64, u32, u16, u8);

macro_rules! impl_tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)*) = self;
                ($($name.generate(rng),)*)
            }
        }
    };
}
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// A constant strategy.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::{Strategy, TestRng};

    /// A biased boolean strategy.
    pub struct Weighted(pub f64);

    impl Strategy for Weighted {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.unit_f64() < self.0
        }
    }

    /// `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        Weighted(p)
    }

    /// A fair boolean.
    pub const ANY: Weighted = Weighted(0.5);
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// A fixed-length `Vec` strategy.
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `len` independent samples of `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Run configuration for a `proptest!` block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Defines property tests: each function body runs once per case with its
/// arguments drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases as u64 {
                    let mut __proptest_rng =
                        $crate::TestRng::for_case(stringify!($name), case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __proptest_rng);)*
                    let run = std::panic::AssertUnwindSafe(|| -> () { $body });
                    if let Err(payload) = std::panic::catch_unwind(run) {
                        // Name the deterministic stream that failed so it
                        // can be reproduced without bisecting.
                        eprintln!(
                            "proptest: {} failed at case {case} of {} \
                             (TestRng::for_case({:?}, {case}))",
                            stringify!($name),
                            cfg.cases,
                            stringify!($name),
                        );
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strat),*) $body)*
        }
    };
}

/// Asserts a property; panics (failing the case) when violated.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality of two expressions.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

pub mod prelude {
    //! The proptest prelude.
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_deterministic_per_name_and_case() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 2u32..9, f in 0.5f64..1.5) {
            prop_assert!((2..9).contains(&x));
            prop_assert!((0.5..1.5).contains(&f));
        }

        #[test]
        fn vec_strategy_has_len(v in crate::collection::vec(0.0f64..1.0, 7)) {
            prop_assert_eq!(v.len(), 7);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn map_applies(y in (0u32..5).prop_map(|x| x * 10)) {
            prop_assert!(y % 10 == 0 && y < 50);
        }
    }
}
