//! Hermetic stand-in for the `rand` crate.
//!
//! The build environment is offline, so the workspace vendors the small
//! slice of the `rand 0.8` API it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] / [`Rng::gen`] /
//! [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`].
//!
//! The generator is splitmix64 — not cryptographic, but statistically fine
//! for instance sampling, and fully deterministic given a seed (every
//! random host factory in the workspace promises seed-determinism). The
//! streams differ from upstream `rand`'s `StdRng`, which is acceptable:
//! nothing in the workspace depends on the exact values, only on
//! reproducibility.

/// Low-level generator interface: a source of `u64`s.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A sample of the "standard" distribution of `T` (`f64` in `[0, 1)`).
    fn gen<T>(&mut self) -> T
    where
        T: distributions::StandardSample,
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: splitmix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // One warm-up step decorrelates small consecutive seeds.
            let mut rng = StdRng { state: seed };
            rng.next_u64();
            rng
        }
    }
}

pub mod distributions {
    //! Range and standard-distribution sampling.

    use super::RngCore;

    /// Ranges that can produce a uniform sample.
    pub trait SampleRange<T> {
        /// Draws a uniform sample from the range.
        fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
    }

    /// Types with a canonical "standard" distribution.
    pub trait StandardSample {
        /// Draws a standard sample (`f64`: uniform in `[0, 1)`).
        fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
    }

    impl StandardSample for f64 {
        #[inline]
        fn sample_standard<R: RngCore>(rng: &mut R) -> f64 {
            // 53 high bits → uniform in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl StandardSample for bool {
        #[inline]
        fn sample_standard<R: RngCore>(rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                #[inline]
                fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty range in gen_range");
                    let span = (self.end - self.start) as u64;
                    // Modulo bias is < 2^-40 for every span the workspace
                    // uses (spans are tiny against 2^64); acceptable here.
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                #[inline]
                fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty inclusive range in gen_range");
                    let span = (hi - lo) as u64 + 1;
                    lo + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    impl_int_range!(usize, u64, u32, u16, u8);

    impl SampleRange<f64> for core::ops::Range<f64> {
        #[inline]
        fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "empty range in gen_range");
            self.start + (self.end - self.start) * f64::sample_standard(rng)
        }
    }
}

pub mod seq {
    //! Sequence helpers.

    use super::RngCore;

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// Uniformly permutes the slice in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

pub use distributions::StandardSample;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0..=4usize);
            assert!(y <= 4);
            let f = rng.gen_range(1.5..2.5);
            assert!((1.5..2.5).contains(&f));
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_hits_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes() {
        let mut v: Vec<u32> = (0..20).collect();
        let mut rng = StdRng::seed_from_u64(9);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..20).collect::<Vec<_>>(),
            "20! permutations: identity is essentially impossible"
        );
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
