//! The work-stealing thread pool under the `rayon` shim.
//!
//! A lazily-initialized global pool of `std::thread` workers, each owning
//! a deque of type-erased stack jobs. Owners push to the *back* of their
//! own deque and reclaim from the back (LIFO: the deepest, smallest
//! tasks); thieves steal from the *front* (FIFO: the shallowest, largest
//! tasks) — the classic work-first discipline. Threads that are not pool
//! workers (the main thread, service workers) inject into a shared queue
//! and help execute jobs while they block on their own results, so every
//! caller of a parallel operation is itself an executor.
//!
//! # Thread count
//!
//! The pool size is resolved once per process, in priority order:
//! [`configure_num_threads`] (the `--threads` CLI flags) >
//! `GNCG_THREADS` > [`std::thread::available_parallelism`]. A resolved
//! count of 1 means no pool is ever spawned — every parallel entry point
//! degrades to an inline sequential loop. The pool spawns `count - 1`
//! workers: the caller of a parallel region participates, so `count`
//! threads compute.
//!
//! # Panic propagation
//!
//! Jobs run under `catch_unwind`; the payload is carried back through the
//! job's latch and re-thrown on the thread that called [`join`] — a panic
//! in a stolen closure surfaces in the caller exactly as it would have
//! sequentially, and the pool stays usable.
//!
//! # Safety
//!
//! Jobs borrow the stack frame of the [`join`] call that created them
//! (`StackJob` erases the lifetime). This is sound because `join` never
//! returns — not even by unwinding — before the job has either been
//! reclaimed unexecuted or run to completion by its thief, so the
//! borrowed frame outlives every access. The job's latch is itself part
//! of that frame, so the completion signal is a single atomic store —
//! the executor's last access to the job — and the sleep/wake pair the
//! owner blocks on lives in the `'static` pool, never in the job.

use std::cell::{Cell, UnsafeCell};
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::Duration;

/// Fat-finger guard on `GNCG_THREADS` / `--threads`, not a tuning knob.
pub const MAX_THREADS: usize = 1024;

/// Thread count requested programmatically (0 = unset).
static CONFIGURED: AtomicUsize = AtomicUsize::new(0);
/// The count every parallel decision uses, fixed at first resolution.
static RESOLVED: OnceLock<usize> = OnceLock::new();
/// The global pool (spawned on first parallel execution, count ≥ 2).
static GLOBAL: OnceLock<&'static Pool> = OnceLock::new();

thread_local! {
    /// `Some(i)` on pool worker `i`; `None` on external threads.
    static WORKER_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
    /// Depth of [`with_sequential`] scopes on this thread.
    static SEQUENTIAL_DEPTH: Cell<u32> = const { Cell::new(0) };
}

fn resolve_thread_count() -> usize {
    let configured = CONFIGURED.load(Ordering::SeqCst);
    if configured > 0 {
        return configured.min(MAX_THREADS);
    }
    if let Ok(v) = std::env::var("GNCG_THREADS") {
        match v.trim().parse::<usize>() {
            Ok(n) if (1..=MAX_THREADS).contains(&n) => return n,
            _ => eprintln!(
                "rayon shim: ignoring invalid GNCG_THREADS={v:?} (want 1..={MAX_THREADS})"
            ),
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Number of threads parallel operations distribute over (callers
/// included). Resolves — and from then on pins — the count.
pub fn current_num_threads() -> usize {
    *RESOLVED.get_or_init(resolve_thread_count)
}

/// Requests `n` pool threads. Must be called before the first parallel
/// operation (or [`current_num_threads`] call) resolves the count;
/// afterwards only a request for the already-resolved count succeeds.
/// Takes precedence over `GNCG_THREADS`.
pub fn configure_num_threads(n: usize) -> Result<(), String> {
    if n == 0 || n > MAX_THREADS {
        return Err(format!(
            "thread count must be in 1..={MAX_THREADS} (got {n})"
        ));
    }
    CONFIGURED.store(n, Ordering::SeqCst);
    let resolved = current_num_threads();
    if resolved == n {
        Ok(())
    } else {
        Err(format!(
            "thread count already resolved to {resolved}; cannot change it to {n}"
        ))
    }
}

/// Whether parallel entry points on this thread must run inline: inside a
/// [`with_sequential`] scope, or process-wide when the pool size is 1.
pub(crate) fn sequential_mode() -> bool {
    SEQUENTIAL_DEPTH.with(|d| d.get() > 0) || current_num_threads() == 1
}

/// Runs `f` with every parallel operation on this thread executing
/// inline, sequentially — same chunk boundaries, same combine order,
/// bitwise-identical results; only the worker fan-out is suppressed.
/// Nests. (Shim-specific: the parallelism-ablation benches use this to
/// measure sequential baselines against the live pool in one process.)
pub fn with_sequential<R>(f: impl FnOnce() -> R) -> R {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            SEQUENTIAL_DEPTH.with(|d| d.set(d.get() - 1));
        }
    }
    SEQUENTIAL_DEPTH.with(|d| d.set(d.get() + 1));
    let _guard = Guard;
    f()
}

/// A type-erased pointer to a [`StackJob`] queued for execution.
#[derive(Clone, Copy)]
struct JobRef {
    data: *const (),
    exec: unsafe fn(*const ()),
}

// SAFETY: the pointed-to StackJob is Sync-accessible (one thief at a
// time, handed over through the Mutex-protected queues) and outlives the
// ref (see the module-level safety note).
unsafe impl Send for JobRef {}

impl JobRef {
    fn same(&self, other: &JobRef) -> bool {
        std::ptr::eq(self.data, other.data)
    }
}

/// Completion flag a job's owner blocks on, with help-while-waiting.
///
/// Deliberately just an atomic: the latch lives inside the job on the
/// owner's stack, and the owner is free to return from `wait_until` (and
/// drop that frame) the instant it observes `done`. The sleep/wake
/// machinery therefore lives in the `'static` [`Pool`]
/// (`latch_mu`/`latch_cv`), never in the latch itself.
struct Latch {
    done: AtomicBool,
}

impl Latch {
    fn new() -> Latch {
        Latch {
            done: AtomicBool::new(false),
        }
    }

    /// Marks the job complete. This store must be the executor's **last
    /// access** to the job's memory (rayon's "set is the last action"
    /// rule): the owner may free the frame concurrently with anything
    /// the executor does afterwards. Wakeups go through the pool.
    fn set(&self) {
        self.done.store(true, Ordering::Release);
    }

    fn probe(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }
}

/// A `join` partner living on the owner's stack: the closure going in,
/// the result (or panic payload) coming out, and the latch that
/// synchronizes the hand-back.
struct StackJob<B, RB> {
    latch: Latch,
    body: UnsafeCell<Option<B>>,
    outcome: UnsafeCell<Option<std::thread::Result<RB>>>,
}

// SAFETY: body/outcome are accessed by exactly one executor (owner or
// thief — the queues hand the job to at most one), and the latch orders
// the executor's writes before the owner's reads.
unsafe impl<B: Send, RB: Send> Sync for StackJob<B, RB> {}

impl<B: FnOnce() -> RB, RB> StackJob<B, RB> {
    fn new(body: B) -> Self {
        StackJob {
            latch: Latch::new(),
            body: UnsafeCell::new(Some(body)),
            outcome: UnsafeCell::new(None),
        }
    }

    fn as_job_ref(&self) -> JobRef {
        JobRef {
            data: self as *const Self as *const (),
            exec: exec_stack_job::<B, RB>,
        }
    }

    fn take_outcome(self) -> std::thread::Result<RB> {
        self.outcome
            .into_inner()
            .expect("stack job finished without an outcome")
    }
}

unsafe fn exec_stack_job<B: FnOnce() -> RB, RB>(data: *const ()) {
    let job = &*(data as *const StackJob<B, RB>);
    let body = (*job.body.get()).take().expect("stack job executed twice");
    let result = panic::catch_unwind(AssertUnwindSafe(body));
    *job.outcome.get() = Some(result);
    // After this store the owner may return from `wait_until` and drop
    // the job's frame at any moment — `job` must not be touched again.
    job.latch.set();
    // The wakeup goes through pool-owned ('static) state. Lock-then-
    // notify so a waiter between its probe and its wait cannot miss it.
    let pool = global();
    drop(pool.latch_mu.lock().unwrap());
    pool.latch_cv.notify_all();
}

/// The pool: per-worker deques, an injector for external threads, and
/// the idle-sleep machinery.
struct Pool {
    deques: Vec<Mutex<VecDeque<JobRef>>>,
    injector: Mutex<VecDeque<JobRef>>,
    /// Jobs sitting in any queue (not: currently executing).
    pending: AtomicUsize,
    idle_mu: Mutex<()>,
    idle_cv: Condvar,
    /// Owners blocked in [`Pool::wait_until`] sleep here; executors
    /// signal completion through this pair *after* the latch store, so
    /// the wake side never touches a job's (stack-allocated) memory.
    /// Shared by all waiters: each wakeup re-probes its own latch.
    latch_mu: Mutex<()>,
    latch_cv: Condvar,
}

fn global() -> &'static Pool {
    GLOBAL.get_or_init(|| {
        // `count` threads compute: the blocked caller helps, so spawn
        // `count - 1` dedicated workers.
        let workers = current_num_threads().saturating_sub(1).max(1);
        let pool: &'static Pool = Box::leak(Box::new(Pool {
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            pending: AtomicUsize::new(0),
            idle_mu: Mutex::new(()),
            idle_cv: Condvar::new(),
            latch_mu: Mutex::new(()),
            latch_cv: Condvar::new(),
        }));
        for i in 0..workers {
            std::thread::Builder::new()
                .name(format!("gncg-rayon-{i}"))
                .spawn(move || pool.worker_loop(i))
                .expect("cannot spawn pool worker");
        }
        pool
    })
}

impl Pool {
    /// Queues `jref`: workers push (and later reclaim) at the back of
    /// their own deque, external threads go through the injector.
    fn push(&self, jref: JobRef) {
        {
            let mut q = match WORKER_INDEX.with(Cell::get) {
                Some(i) => self.deques[i].lock(),
                None => self.injector.lock(),
            }
            .unwrap();
            q.push_back(jref);
        }
        self.pending.fetch_add(1, Ordering::Release);
        // Lock-then-notify pairs with the worker's check-then-wait.
        let _idle = self.idle_mu.lock().unwrap();
        self.idle_cv.notify_one();
    }

    /// Removes `jref` from the queue it was pushed to, if no thief took
    /// it. LIFO discipline makes it the backmost surviving entry.
    fn try_remove(&self, jref: JobRef) -> bool {
        let removed = {
            let mut q = match WORKER_INDEX.with(Cell::get) {
                Some(i) => self.deques[i].lock(),
                None => self.injector.lock(),
            }
            .unwrap();
            match q.iter().rposition(|j| j.same(&jref)) {
                Some(pos) => {
                    q.remove(pos);
                    true
                }
                None => false,
            }
        };
        if removed {
            self.pending.fetch_sub(1, Ordering::Release);
        }
        removed
    }

    /// Dequeues one job: own deque back (workers), then steal other
    /// deques front, then the injector front.
    fn find_work(&self) -> Option<JobRef> {
        if self.pending.load(Ordering::Acquire) == 0 {
            return None;
        }
        let me = WORKER_INDEX.with(Cell::get);
        if let Some(i) = me {
            if let Some(j) = self.deques[i].lock().unwrap().pop_back() {
                self.pending.fetch_sub(1, Ordering::Release);
                return Some(j);
            }
        }
        let n = self.deques.len();
        let start = me.map_or(0, |i| i + 1);
        for k in 0..n {
            let i = (start + k) % n;
            if Some(i) == me {
                continue;
            }
            if let Some(j) = self.deques[i].lock().unwrap().pop_front() {
                self.pending.fetch_sub(1, Ordering::Release);
                return Some(j);
            }
        }
        if let Some(j) = self.injector.lock().unwrap().pop_front() {
            self.pending.fetch_sub(1, Ordering::Release);
            return Some(j);
        }
        None
    }

    fn execute(&self, jref: JobRef) {
        unsafe { (jref.exec)(jref.data) }
    }

    /// The owner's blocking point: executes queued jobs until `latch`
    /// fires — a thread waiting on a stolen job is still an executor.
    fn wait_until(&self, latch: &Latch) {
        loop {
            if latch.probe() {
                return;
            }
            if let Some(j) = self.find_work() {
                self.execute(j);
                continue;
            }
            let sync = self.latch_mu.lock().unwrap();
            // Re-probe under the lock: pairs with the executor's
            // store-then-lock-then-notify, so the completion cannot
            // slip between this check and the wait.
            if !latch.probe() {
                // Timed: new stealable work does not signal this latch,
                // and the condvar is shared by all waiting owners.
                drop(self.cv_wait(&self.latch_cv, sync, Duration::from_micros(500)));
            }
        }
    }

    fn cv_wait<'a, T>(
        &self,
        cv: &Condvar,
        guard: std::sync::MutexGuard<'a, T>,
        dur: Duration,
    ) -> std::sync::MutexGuard<'a, T> {
        let (g, _timeout) = cv.wait_timeout(guard, dur).unwrap();
        g
    }

    fn worker_loop(&'static self, idx: usize) {
        WORKER_INDEX.with(|w| w.set(Some(idx)));
        loop {
            if let Some(j) = self.find_work() {
                self.execute(j);
                continue;
            }
            let idle = self.idle_mu.lock().unwrap();
            if self.pending.load(Ordering::Acquire) == 0 {
                // Timed as a backstop; the push-side notify is the wakeup.
                drop(self.cv_wait(&self.idle_cv, idle, Duration::from_millis(50)));
            }
        }
    }
}

/// Runs both closures and returns both results: `a` inline on the
/// calling thread while `b` sits in this thread's deque, stealable by
/// any idle worker. If nobody stole `b`, the caller reclaims and runs it
/// inline — the recursive building block every parallel iterator
/// splits through. Panics from either side propagate to the caller
/// (after both sides have completed, so borrowed frames stay live).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB + Send,
    RB: Send,
{
    if sequential_mode() {
        return (a(), b());
    }
    let pool = global();
    let job = StackJob::new(b);
    pool.push(job.as_job_ref());
    let ra = panic::catch_unwind(AssertUnwindSafe(a));
    if pool.try_remove(job.as_job_ref()) {
        unsafe { exec_stack_job::<B, RB>(job.as_job_ref().data) }
    } else {
        pool.wait_until(&job.latch);
    }
    let rb = job.take_outcome();
    match ra {
        Ok(ra) => match rb {
            Ok(rb) => (ra, rb),
            Err(p) => panic::resume_unwind(p),
        },
        // `a`'s panic wins (it would have fired first sequentially).
        Err(p) => panic::resume_unwind(p),
    }
}

/// Executes `leaf(0..count)` with a deterministic recursive index-range
/// split: leaves run in parallel on the pool, panics propagate, and the
/// call blocks until every leaf has run. The split tree depends only on
/// `count`, never on the thread count or the steal schedule.
pub(crate) fn run_indexed(count: usize, leaf: &(dyn Fn(usize) + Sync)) {
    if count == 0 {
        return;
    }
    if sequential_mode() || count == 1 {
        for i in 0..count {
            leaf(i);
        }
        return;
    }
    split_indexed(0, count, leaf);
}

fn split_indexed(lo: usize, hi: usize, leaf: &(dyn Fn(usize) + Sync)) {
    if hi - lo == 1 {
        leaf(lo);
        return;
    }
    let mid = lo + (hi - lo) / 2;
    join(
        || split_indexed(lo, mid, leaf),
        || split_indexed(mid, hi, leaf),
    );
}
