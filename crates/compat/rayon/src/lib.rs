//! Hermetic stand-in for `rayon`: the same parallel-iterator API surface
//! the workspace uses, executed sequentially.
//!
//! The build environment is offline and single-core, so a real thread pool
//! buys nothing; this shim keeps every `into_par_iter()` call site
//! source-compatible (including rayon-specific signatures like
//! `reduce(identity, op)`) while compiling to plain iterator loops. If the
//! workspace ever moves to a networked multi-core environment, deleting
//! `crates/compat/rayon` and pointing the workspace dependency at the real
//! crate is the only change needed.

/// A "parallel" iterator: a newtype over a sequential iterator exposing
/// rayon's method names and signatures.
pub struct ParIter<I>(I);

impl<I: Iterator> ParIter<I> {
    /// Maps each item.
    pub fn map<U, F: FnMut(I::Item) -> U>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter(self.0.map(f))
    }

    /// Filters items.
    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> ParIter<std::iter::Filter<I, F>> {
        ParIter(self.0.filter(f))
    }

    /// Filter + map in one pass.
    pub fn filter_map<U, F: FnMut(I::Item) -> Option<U>>(
        self,
        f: F,
    ) -> ParIter<std::iter::FilterMap<I, F>> {
        ParIter(self.0.filter_map(f))
    }

    /// Pairs each item with its index.
    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter(self.0.enumerate())
    }

    /// Whether `f` holds for every item.
    pub fn all<F: FnMut(I::Item) -> bool>(mut self, f: F) -> bool {
        self.0.all(f)
    }

    /// Whether `f` holds for any item.
    pub fn any<F: FnMut(I::Item) -> bool>(mut self, f: F) -> bool {
        self.0.any(f)
    }

    /// Runs `f` on every item.
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    /// rayon's per-worker-state `for_each`: `init` builds mutable state
    /// reused across the items a worker processes. Sequentially that is
    /// one `init()` for all items — the same amortization real rayon
    /// achieves with one state per worker thread.
    pub fn for_each_init<S, INIT, F>(self, init: INIT, mut f: F)
    where
        INIT: Fn() -> S,
        F: FnMut(&mut S, I::Item),
    {
        let mut state = init();
        self.0.for_each(|item| f(&mut state, item));
    }

    /// Collects into any `FromIterator` container.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    /// rayon-style reduce: folds with `op` from `identity()`.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    /// Sums the items.
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    /// Minimum by a comparator.
    pub fn min_by<F: FnMut(&I::Item, &I::Item) -> std::cmp::Ordering>(
        self,
        f: F,
    ) -> Option<I::Item> {
        self.0.min_by(f)
    }

    /// Maximum by a comparator.
    pub fn max_by<F: FnMut(&I::Item, &I::Item) -> std::cmp::Ordering>(
        self,
        f: F,
    ) -> Option<I::Item> {
        self.0.max_by(f)
    }

    /// Number of items.
    pub fn count(self) -> usize {
        self.0.count()
    }
}

pub mod prelude {
    //! The rayon prelude: traits that add `par_*` methods.

    pub use super::ParIter;

    /// Conversion into a parallel iterator (sequential here).
    pub trait IntoParallelIterator {
        /// Underlying iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Item type.
        type Item;
        /// Converts into a parallel iterator.
        fn into_par_iter(self) -> ParIter<Self::Iter>;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Iter = I::IntoIter;
        type Item = I::Item;
        fn into_par_iter(self) -> ParIter<I::IntoIter> {
            ParIter(self.into_iter())
        }
    }

    /// `par_iter` on shared slices.
    pub trait ParallelSlice<T> {
        /// Parallel iterator over references.
        fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>> {
            ParIter(self.iter())
        }
    }

    /// `par_chunks_mut` on mutable slices: disjoint chunks, processed in
    /// place (rayon writes rows of a flat buffer this way).
    pub trait ParallelSliceMut<T> {
        /// Parallel iterator over disjoint mutable chunks of size `size`.
        fn par_chunks_mut(&mut self, size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
            ParIter(self.chunks_mut(size))
        }
    }
}

/// Runs two closures (sequentially here) and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Number of pool threads (1: this shim is sequential).
pub fn current_num_threads() -> usize {
    1
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect() {
        let v: Vec<u32> = (0u32..5).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn rayon_style_reduce() {
        let m = (0..10u32)
            .into_par_iter()
            .map(|x| x as f64)
            .reduce(|| f64::MIN, f64::max);
        assert_eq!(m, 9.0);
    }

    #[test]
    fn all_and_filter_map() {
        assert!((0..5u32).into_par_iter().all(|x| x < 5));
        let odd: Vec<u32> = (0..9u32)
            .into_par_iter()
            .filter_map(|x| (x % 2 == 1).then_some(x))
            .collect();
        assert_eq!(odd, vec![1, 3, 5, 7]);
    }

    #[test]
    fn par_chunks_mut_writes_rows() {
        let mut buf = vec![0u32; 12];
        buf.par_chunks_mut(4).enumerate().for_each(|(i, row)| {
            for (j, x) in row.iter_mut().enumerate() {
                *x = (i * 4 + j) as u32;
            }
        });
        assert_eq!(buf, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }
}
