//! Hermetic stand-in for `rayon`: the parallel-iterator API surface the
//! workspace uses, executed on a real work-stealing thread pool — with
//! **bitwise-deterministic results at every thread count**.
//!
//! The pool (internals in `pool.rs`) is a lazily-initialized global
//! set of std threads sized by `--threads` / `GNCG_THREADS` /
//! available cores, with per-worker deques, stealing, panic propagation,
//! and a recursive [`join`]. The iterator layer on top never lets the
//! *schedule* reach the *numbers*:
//!
//! * every operation splits its index space into chunks whose boundaries
//!   depend **only on the length** (`len.div_ceil(128)` items per chunk,
//!   never on the thread count or what was stolen);
//! * each chunk folds sequentially in index order;
//! * chunk partials combine left-to-right in chunk order.
//!
//! So f64 reductions associate identically at `GNCG_THREADS=1` and `=N`,
//! and grid JSONL bytes / `cell_digest` values are thread-count-invariant
//! — the byte-diff determinism harness stays the regression oracle.
//! [`with_sequential`] suppresses the fan-out (same chunks, same combine
//! order) so benches can measure sequential baselines against the live
//! pool in one process.
//!
//! Differences from real rayon, beyond the guarantee above: conversions
//! exist only for the types the workspace fans out over (integer ranges,
//! `Vec<T: Copy>`, slices, `chunks_mut`), closures need `Fn + Sync`
//! (not `FnMut`), and `enumerate` is only available before filtering.
//! Swapping in the real crate remains a one-line workspace change — at
//! the price of losing bitwise determinism in any non-associative
//! reduction.

mod pool;

pub use pool::{configure_num_threads, current_num_threads, join, with_sequential, MAX_THREADS};

use std::cmp::Ordering as CmpOrdering;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, Ordering};

/// Most chunks any single parallel operation splits into. Bounds
/// scheduling overhead for long inputs while keeping short inputs
/// (`len ≤ 128` — every per-agent scan in the workspace) at one item
/// per chunk, where the chunked fold *is* the sequential fold.
const MAX_CHUNKS: usize = 128;

/// Items per chunk for an input of `len` — a function of `len` alone,
/// which is what makes every result thread-count-invariant.
fn chunk_size(len: usize) -> usize {
    len.div_ceil(MAX_CHUNKS).max(1)
}

/// A splittable source of items, indexable by ordinal position.
///
/// Contract: a consumer runs each ordinal in `0..len()` exactly once
/// across all `run_range` calls of one pass; ranges passed to concurrent
/// calls are disjoint. (`ChunksMut` relies on this for `&mut`
/// disjointness.)
pub trait Producer: Sync {
    /// The item type produced.
    type Item: Send;
    /// Whether ordinal positions survive to the items (true until a
    /// `filter`/`filter_map` drops items); `enumerate` requires it.
    const EXACT: bool;
    /// Number of ordinal positions (item count only when `EXACT`).
    fn len(&self) -> usize;
    /// Whether there are no positions.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Feeds the items at ordinals `start..end`, in order, to `f`.
    fn run_range<F: FnMut(Self::Item)>(&self, start: usize, end: usize, f: F);
}

/// Runs `leaf` over every chunk of `producer`'s index space on the pool
/// and returns the per-chunk results **in chunk order** — the one
/// scheduling primitive every consumer below goes through.
fn map_chunks<P, R, L>(producer: &P, leaf: L) -> Vec<R>
where
    P: Producer,
    R: Send,
    L: Fn(usize, usize) -> R + Sync,
{
    let len = producer.len();
    if len == 0 {
        return Vec::new();
    }
    let size = chunk_size(len);
    let nchunks = len.div_ceil(size);
    let mut out: Vec<Option<R>> = Vec::new();
    out.resize_with(nchunks, || None);
    {
        let slots = SendPtr(out.as_mut_ptr());
        pool::run_indexed(nchunks, &|ci| {
            let start = ci * size;
            let end = len.min(start + size);
            let r = leaf(start, end);
            // SAFETY: each chunk index is visited exactly once, slots are
            // disjoint, and the overwritten value is the pre-filled `None`
            // (nothing to drop).
            unsafe { slots.get().add(ci).write(Some(r)) };
        });
    }
    out.into_iter()
        .map(|r| r.expect("chunk result missing"))
        .collect()
}

/// Raw pointer that crosses threads (the chunk-slot base; disjointness
/// is established by the caller).
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than field access) so closures capture the
    /// `Sync` wrapper, not the bare pointer.
    fn get(&self) -> *mut T {
        self.0
    }
}

/// A parallel iterator: a [`Producer`] plus the consuming methods.
pub struct ParIter<P>(P);

impl<P: Producer> ParIter<P> {
    /// Maps each item.
    pub fn map<U, F>(self, f: F) -> ParIter<Map<P, F>>
    where
        U: Send,
        F: Fn(P::Item) -> U + Sync,
    {
        ParIter(Map { base: self.0, f })
    }

    /// Filters items.
    pub fn filter<F>(self, f: F) -> ParIter<Filter<P, F>>
    where
        F: Fn(&P::Item) -> bool + Sync,
    {
        ParIter(Filter { base: self.0, f })
    }

    /// Filter + map in one pass.
    pub fn filter_map<U, F>(self, f: F) -> ParIter<FilterMap<P, F>>
    where
        U: Send,
        F: Fn(P::Item) -> Option<U> + Sync,
    {
        ParIter(FilterMap { base: self.0, f })
    }

    /// Pairs each item with its index. Only available while positions
    /// are exact (before any `filter`/`filter_map`), where the index is
    /// well-defined regardless of how chunks were scheduled.
    pub fn enumerate(self) -> ParIter<Enumerate<P>> {
        assert!(
            P::EXACT,
            "enumerate after a filtering adapter is not supported by the rayon shim"
        );
        ParIter(Enumerate { base: self.0 })
    }

    /// Runs `f` on every item.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(P::Item) + Sync,
    {
        let p = self.0;
        map_chunks(&p, |start, end| p.run_range(start, end, &f));
    }

    /// rayon's per-worker-state `for_each`: `init` builds mutable
    /// scratch state shared by the items of one chunk (one `init()` per
    /// chunk — scratch never carries data *between* items, so chunk
    /// granularity cannot affect results).
    pub fn for_each_init<S, INIT, F>(self, init: INIT, f: F)
    where
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, P::Item) + Sync,
    {
        let p = self.0;
        map_chunks(&p, |start, end| {
            let mut state = init();
            p.run_range(start, end, |item| f(&mut state, item));
        });
    }

    /// Whether `f` holds for every item. Early-stops (other chunks stop
    /// evaluating `f` once a violation is found) — sound because a
    /// boolean conjunction is order-independent.
    pub fn all<F>(self, f: F) -> bool
    where
        F: Fn(P::Item) -> bool + Sync,
    {
        let p = self.0;
        let failed = AtomicBool::new(false);
        map_chunks(&p, |start, end| {
            if failed.load(Ordering::Relaxed) {
                return;
            }
            p.run_range(start, end, |item| {
                if !failed.load(Ordering::Relaxed) && !f(item) {
                    failed.store(true, Ordering::Relaxed);
                }
            });
        });
        !failed.load(Ordering::Relaxed)
    }

    /// Whether `f` holds for any item (early-stopping, like `all`).
    pub fn any<F>(self, f: F) -> bool
    where
        F: Fn(P::Item) -> bool + Sync,
    {
        let p = self.0;
        let found = AtomicBool::new(false);
        map_chunks(&p, |start, end| {
            if found.load(Ordering::Relaxed) {
                return;
            }
            p.run_range(start, end, |item| {
                if !found.load(Ordering::Relaxed) && f(item) {
                    found.store(true, Ordering::Relaxed);
                }
            });
        });
        found.load(Ordering::Relaxed)
    }

    /// Collects into any `FromIterator` container, preserving item order
    /// (chunk buffers concatenate in chunk order).
    pub fn collect<C: FromIterator<P::Item>>(self) -> C {
        let p = self.0;
        let parts: Vec<Vec<P::Item>> = map_chunks(&p, |start, end| {
            let mut buf = Vec::new();
            p.run_range(start, end, |item| buf.push(item));
            buf
        });
        parts.into_iter().flatten().collect()
    }

    /// rayon-style reduce: each chunk folds from `identity()` in index
    /// order, then partials fold from `identity()` left-to-right in
    /// chunk order — one fixed association per input length.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> P::Item
    where
        ID: Fn() -> P::Item + Sync,
        OP: Fn(P::Item, P::Item) -> P::Item + Sync,
    {
        let p = self.0;
        let parts: Vec<P::Item> = map_chunks(&p, |start, end| {
            let mut acc = Some(identity());
            p.run_range(start, end, |item| {
                let folded = op(acc.take().expect("reduce accumulator"), item);
                acc = Some(folded);
            });
            acc.expect("reduce accumulator")
        });
        parts.into_iter().fold(identity(), &op)
    }

    /// Sums the items (chunk sums combine in chunk order).
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<P::Item> + std::iter::Sum<S> + Send,
    {
        let p = self.0;
        let parts: Vec<S> = map_chunks(&p, |start, end| {
            let mut buf = Vec::new();
            p.run_range(start, end, |item| buf.push(item));
            buf.into_iter().sum()
        });
        parts.into_iter().sum()
    }

    /// Minimum by a comparator; ties keep the earliest item, matching
    /// `Iterator::min_by`.
    pub fn min_by<F>(self, f: F) -> Option<P::Item>
    where
        F: Fn(&P::Item, &P::Item) -> CmpOrdering + Sync,
    {
        let p = self.0;
        let parts: Vec<Option<P::Item>> = map_chunks(&p, |start, end| {
            let mut best: Option<P::Item> = None;
            p.run_range(start, end, |item| {
                best = Some(match best.take() {
                    None => item,
                    Some(b) if f(&item, &b) == CmpOrdering::Less => item,
                    Some(b) => b,
                });
            });
            best
        });
        let mut out: Option<P::Item> = None;
        for part in parts.into_iter().flatten() {
            out = Some(match out.take() {
                None => part,
                Some(b) if f(&part, &b) == CmpOrdering::Less => part,
                Some(b) => b,
            });
        }
        out
    }

    /// Maximum by a comparator; ties keep the latest item, matching
    /// `Iterator::max_by`.
    pub fn max_by<F>(self, f: F) -> Option<P::Item>
    where
        F: Fn(&P::Item, &P::Item) -> CmpOrdering + Sync,
    {
        let p = self.0;
        let parts: Vec<Option<P::Item>> = map_chunks(&p, |start, end| {
            let mut best: Option<P::Item> = None;
            p.run_range(start, end, |item| {
                best = Some(match best.take() {
                    None => item,
                    Some(b) if f(&item, &b) != CmpOrdering::Less => item,
                    Some(b) => b,
                });
            });
            best
        });
        let mut out: Option<P::Item> = None;
        for part in parts.into_iter().flatten() {
            out = Some(match out.take() {
                None => part,
                Some(b) if f(&part, &b) != CmpOrdering::Less => part,
                Some(b) => b,
            });
        }
        out
    }

    /// Number of items (counted, so it is exact after filtering too).
    pub fn count(self) -> usize {
        let p = self.0;
        let parts: Vec<usize> = map_chunks(&p, |start, end| {
            let mut c = 0usize;
            p.run_range(start, end, |_| c += 1);
            c
        });
        parts.into_iter().sum()
    }
}

/// Mapping adapter (see [`ParIter::map`]).
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, U, F> Producer for Map<P, F>
where
    P: Producer,
    U: Send,
    F: Fn(P::Item) -> U + Sync,
{
    type Item = U;
    const EXACT: bool = P::EXACT;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn run_range<G: FnMut(U)>(&self, start: usize, end: usize, mut g: G) {
        self.base.run_range(start, end, |item| g((self.f)(item)));
    }
}

/// Filtering adapter (see [`ParIter::filter`]).
pub struct Filter<P, F> {
    base: P,
    f: F,
}

impl<P, F> Producer for Filter<P, F>
where
    P: Producer,
    F: Fn(&P::Item) -> bool + Sync,
{
    type Item = P::Item;
    const EXACT: bool = false;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn run_range<G: FnMut(P::Item)>(&self, start: usize, end: usize, mut g: G) {
        self.base.run_range(start, end, |item| {
            if (self.f)(&item) {
                g(item)
            }
        });
    }
}

/// Filter-mapping adapter (see [`ParIter::filter_map`]).
pub struct FilterMap<P, F> {
    base: P,
    f: F,
}

impl<P, U, F> Producer for FilterMap<P, F>
where
    P: Producer,
    U: Send,
    F: Fn(P::Item) -> Option<U> + Sync,
{
    type Item = U;
    const EXACT: bool = false;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn run_range<G: FnMut(U)>(&self, start: usize, end: usize, mut g: G) {
        self.base.run_range(start, end, |item| {
            if let Some(mapped) = (self.f)(item) {
                g(mapped)
            }
        });
    }
}

/// Enumerating adapter (see [`ParIter::enumerate`]): ordinal positions
/// become the indices, which is why it requires an `EXACT` upstream.
pub struct Enumerate<P> {
    base: P,
}

impl<P: Producer> Producer for Enumerate<P> {
    type Item = (usize, P::Item);
    const EXACT: bool = P::EXACT;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn run_range<G: FnMut((usize, P::Item))>(&self, start: usize, end: usize, mut g: G) {
        let mut i = start;
        self.base.run_range(start, end, |item| {
            g((i, item));
            i += 1;
        });
    }
}

/// Producer over an integer range.
pub struct RangeProducer<T> {
    start: T,
    len: usize,
}

macro_rules! impl_range_producer {
    ($t:ty) => {
        impl Producer for RangeProducer<$t> {
            type Item = $t;
            const EXACT: bool = true;
            fn len(&self) -> usize {
                self.len
            }
            fn run_range<F: FnMut($t)>(&self, start: usize, end: usize, mut f: F) {
                for i in start..end {
                    f(self.start + i as $t);
                }
            }
        }

        impl prelude::IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Producer = RangeProducer<$t>;
            fn into_par_iter(self) -> ParIter<RangeProducer<$t>> {
                ParIter(RangeProducer {
                    start: self.start,
                    len: (self.end.max(self.start) - self.start) as usize,
                })
            }
        }
    };
}

impl_range_producer!(u32);
impl_range_producer!(u64);
impl_range_producer!(usize);

/// Producer that copies items out of an owned `Vec` (the shim supports
/// `Vec` fan-out for `Copy` items, which every call site uses; non-copy
/// fan-out goes through slices or ranges).
pub struct VecProducer<T>(Vec<T>);

impl<T: Copy + Send + Sync> Producer for VecProducer<T> {
    type Item = T;
    const EXACT: bool = true;
    fn len(&self) -> usize {
        self.0.len()
    }
    fn run_range<F: FnMut(T)>(&self, start: usize, end: usize, mut f: F) {
        for &item in &self.0[start..end] {
            f(item);
        }
    }
}

impl<T: Copy + Send + Sync> prelude::IntoParallelIterator for Vec<T> {
    type Item = T;
    type Producer = VecProducer<T>;
    fn into_par_iter(self) -> ParIter<VecProducer<T>> {
        ParIter(VecProducer(self))
    }
}

/// Producer over shared slice references.
pub struct SliceProducer<'a, T>(&'a [T]);

impl<'a, T: Sync> Producer for SliceProducer<'a, T> {
    type Item = &'a T;
    const EXACT: bool = true;
    fn len(&self) -> usize {
        self.0.len()
    }
    fn run_range<F: FnMut(&'a T)>(&self, start: usize, end: usize, mut f: F) {
        for item in &self.0[start..end] {
            f(item);
        }
    }
}

/// Producer over disjoint mutable chunks of one slice (rayon writes rows
/// of a flat buffer this way). Ordinal `i` is chunk `i`; the consumer
/// contract (each ordinal exactly once, concurrent ranges disjoint) is
/// what makes handing out `&mut` sound.
pub struct ChunksMut<'a, T> {
    base: *mut T,
    len: usize,
    size: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: chunks are disjoint per the Producer contract, and `T: Send`
// lets each chunk be mutated from whichever thread runs its ordinal.
unsafe impl<T: Send> Sync for ChunksMut<'_, T> {}
unsafe impl<T: Send> Send for ChunksMut<'_, T> {}

impl<'a, T: Send> Producer for ChunksMut<'a, T> {
    type Item = &'a mut [T];
    const EXACT: bool = true;
    fn len(&self) -> usize {
        self.len.div_ceil(self.size)
    }
    fn run_range<F: FnMut(&'a mut [T])>(&self, start: usize, end: usize, mut f: F) {
        for ci in start..end {
            let off = ci * self.size;
            let clen = self.size.min(self.len - off);
            // SAFETY: in-bounds (ci < len()), and no other ordinal covers
            // these elements (disjoint chunks + each ordinal run once).
            let chunk = unsafe { std::slice::from_raw_parts_mut(self.base.add(off), clen) };
            f(chunk);
        }
    }
}

pub mod prelude {
    //! The rayon prelude: traits that add `par_*` methods.

    pub use super::ParIter;

    /// Conversion into a parallel iterator.
    pub trait IntoParallelIterator {
        /// Item type.
        type Item: Send;
        /// The producer driving the iteration.
        type Producer: super::Producer<Item = Self::Item>;
        /// Converts into a parallel iterator.
        fn into_par_iter(self) -> ParIter<Self::Producer>;
    }

    /// `par_iter` on shared slices.
    pub trait ParallelSlice<T: Sync> {
        /// Parallel iterator over references.
        fn par_iter(&self) -> ParIter<super::SliceProducer<'_, T>>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> ParIter<super::SliceProducer<'_, T>> {
            ParIter(super::SliceProducer(self))
        }
    }

    /// `par_chunks_mut` on mutable slices: disjoint chunks, processed in
    /// place.
    pub trait ParallelSliceMut<T: Send> {
        /// Parallel iterator over disjoint mutable chunks of size `size`
        /// (the last chunk may be shorter). Panics if `size == 0`.
        fn par_chunks_mut(&mut self, size: usize) -> ParIter<super::ChunksMut<'_, T>>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, size: usize) -> ParIter<super::ChunksMut<'_, T>> {
            assert!(size > 0, "chunk size must be non-zero");
            ParIter(super::ChunksMut {
                base: self.as_mut_ptr(),
                len: self.len(),
                size,
                _marker: std::marker::PhantomData,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    /// Requests a 4-thread pool so the tests below genuinely exercise
    /// stealing even on a single-core runner. First resolution wins
    /// process-wide; every assertion here is valid at any thread count
    /// (including 1), so a lost race only loses coverage, not soundness.
    fn setup() {
        let _ = super::configure_num_threads(4);
    }

    #[test]
    fn map_collect() {
        setup();
        let v: Vec<u32> = (0u32..5).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn rayon_style_reduce() {
        setup();
        let m = (0..10u32)
            .into_par_iter()
            .map(|x| x as f64)
            .reduce(|| f64::MIN, f64::max);
        assert_eq!(m, 9.0);
    }

    #[test]
    fn all_and_filter_map() {
        setup();
        assert!((0..5u32).into_par_iter().all(|x| x < 5));
        let odd: Vec<u32> = (0..9u32)
            .into_par_iter()
            .filter_map(|x| (x % 2 == 1).then_some(x))
            .collect();
        assert_eq!(odd, vec![1, 3, 5, 7]);
    }

    #[test]
    fn par_chunks_mut_writes_rows() {
        setup();
        let mut buf = vec![0u32; 12];
        buf.par_chunks_mut(4).enumerate().for_each(|(i, row)| {
            for (j, x) in row.iter_mut().enumerate() {
                *x = (i * 4 + j) as u32;
            }
        });
        assert_eq!(buf, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn join_runs_both() {
        setup();
        let (a, b) = super::join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }

    #[test]
    fn nested_join_tree_sum() {
        setup();
        // A 2^12-leaf recursive join: exercises deque push/steal/reclaim
        // at every depth. The sum is schedule-independent arithmetic.
        fn tree_sum(lo: u64, hi: u64) -> u64 {
            if hi - lo <= 1 {
                return lo;
            }
            let mid = lo + (hi - lo) / 2;
            let (a, b) = super::join(|| tree_sum(lo, mid), || tree_sum(mid, hi));
            a + b
        }
        assert_eq!(tree_sum(0, 4096), 4096 * 4095 / 2);
    }

    #[test]
    fn join_propagates_panic_from_b() {
        setup();
        let r = std::panic::catch_unwind(|| {
            super::join(|| 1, || -> u32 { panic!("boom-b") });
        });
        let payload = r.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "boom-b");
        // The pool stays usable afterwards.
        let (a, b) = super::join(|| 2, || 3);
        assert_eq!((a, b), (2, 3));
    }

    #[test]
    fn join_propagates_panic_from_a() {
        setup();
        let r = std::panic::catch_unwind(|| {
            super::join(|| -> u32 { panic!("boom-a") }, || 1);
        });
        assert!(r.is_err());
        let (a, b) = super::join(|| 4, || 5);
        assert_eq!((a, b), (4, 5));
    }

    #[test]
    fn for_each_panic_propagates_and_pool_survives() {
        setup();
        let r = std::panic::catch_unwind(|| {
            (0..64u32).into_par_iter().for_each(|x| {
                if x == 33 {
                    panic!("item panic");
                }
            });
        });
        assert!(r.is_err());
        let n: usize = (0..64u32).into_par_iter().map(|_| 1usize).count();
        assert_eq!(n, 64);
    }

    #[test]
    fn par_chunks_mut_disjoint_coverage() {
        setup();
        // Every element written exactly once, chunk sizes that don't
        // divide the length, across many rounds (steal schedules vary).
        for round in 0..50usize {
            let len = 97 + round;
            let size = 1 + round % 7;
            let mut buf = vec![u32::MAX; len];
            buf.par_chunks_mut(size)
                .enumerate()
                .for_each(|(ci, chunk)| {
                    for (j, x) in chunk.iter_mut().enumerate() {
                        assert_eq!(*x, u32::MAX, "element written twice");
                        *x = (ci * size + j) as u32;
                    }
                });
            for (i, &x) in buf.iter().enumerate() {
                assert_eq!(x as usize, i, "element missed or misrouted");
            }
        }
    }

    #[test]
    fn parallel_bitwise_equals_sequential() {
        setup();
        // The determinism contract, in-process: parallel execution and
        // `with_sequential` produce bit-identical f64 reductions and
        // identically ordered collects.
        let vals: Vec<f64> = (0..1000u32).map(|i| (i as f64).sin() * 1e3).collect();
        let par_sum: f64 = {
            let v = vals.clone();
            (0..v.len()).into_par_iter().map(|i| v[i] / 3.0).sum()
        };
        let seq_sum: f64 = super::with_sequential(|| {
            let v = vals.clone();
            (0..v.len()).into_par_iter().map(|i| v[i] / 3.0).sum()
        });
        assert_eq!(par_sum.to_bits(), seq_sum.to_bits());

        let par_max = (0..1000usize)
            .into_par_iter()
            .map(|i| vals[i])
            .reduce(|| f64::NEG_INFINITY, f64::max);
        let seq_max = super::with_sequential(|| {
            (0..1000usize)
                .into_par_iter()
                .map(|i| vals[i])
                .reduce(|| f64::NEG_INFINITY, f64::max)
        });
        assert_eq!(par_max.to_bits(), seq_max.to_bits());

        let par_collect: Vec<usize> = (0..500usize).into_par_iter().map(|i| i * 7).collect();
        assert_eq!(par_collect, (0..500).map(|i| i * 7).collect::<Vec<_>>());
    }

    #[test]
    fn external_threads_share_the_pool() {
        setup();
        // Several non-pool threads drive parallel work concurrently; all
        // inject into the same global pool and help while waiting.
        let handles: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    let s: u64 = (0..10_000u64).into_par_iter().map(|x| x + t).sum();
                    s
                })
            })
            .collect();
        for (t, h) in handles.into_iter().enumerate() {
            let expect = 10_000u64 * 9_999 / 2 + 10_000 * t as u64;
            assert_eq!(h.join().unwrap(), expect);
        }
    }

    #[test]
    fn min_max_by_match_iterator_semantics() {
        setup();
        // Ties: min keeps the earliest, max keeps the latest — exactly
        // `Iterator::{min_by, max_by}`.
        let keys = [3u32, 1, 4, 1, 5, 9, 2, 6, 5, 9];
        let par_min = (0..keys.len())
            .into_par_iter()
            .map(|i| (keys[i], i))
            .min_by(|a, b| a.0.cmp(&b.0));
        let par_max = (0..keys.len())
            .into_par_iter()
            .map(|i| (keys[i], i))
            .max_by(|a, b| a.0.cmp(&b.0));
        let seq_min = keys
            .iter()
            .copied()
            .enumerate()
            .map(|(i, k)| (k, i))
            .min_by(|a, b| a.0.cmp(&b.0));
        let seq_max = keys
            .iter()
            .copied()
            .enumerate()
            .map(|(i, k)| (k, i))
            .max_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(par_min, seq_min);
        assert_eq!(par_max, seq_max);
    }

    #[test]
    fn slice_par_iter_and_any() {
        setup();
        let v: Vec<u32> = (0..300).collect();
        let total: u32 = v.par_iter().map(|&x| x).sum();
        assert_eq!(total, 300 * 299 / 2);
        assert!(v.par_iter().any(|&x| x == 299));
        assert!(!v.par_iter().any(|&x| x > 299));
    }
}
