//! Hermetic stand-in for `criterion`.
//!
//! Implements the bench-definition API the workspace uses
//! ([`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`criterion_group!`], [`criterion_main!`]) with a
//! simple but sound measurement protocol:
//!
//! 1. warm up until ~¼ of the per-sample budget is spent,
//! 2. pick an iteration count so one sample lasts ≥ the per-sample budget,
//! 3. take `sample_size` samples and report their **median** per-iteration
//!    time (median is robust to scheduler noise on the single-core CI box).
//!
//! Every benchmark prints one line and appends a JSON record under
//! `$CRITERION_LITE_OUT` (default `target/criterion-lite/`), which
//! `scripts/bench_snapshot.sh` aggregates into `BENCH_hotpath.json`.
//!
//! Environment knobs: `CRITERION_LITE_SAMPLES` overrides every group's
//! sample size; `CRITERION_LITE_SAMPLE_MS` sets the per-sample time budget
//! (default 20 ms). A positional CLI argument is a substring filter on
//! `group/id`, mirroring `cargo bench -- <filter>`.

use std::fmt::Display;
use std::io::Write;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level bench context.
pub struct Criterion {
    filter: Option<String>,
    out_dir: PathBuf,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes `--bench` plus any user args after `--`; a
        // non-flag argument is a substring filter.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        let out_dir = std::env::var("CRITERION_LITE_OUT")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("target/criterion-lite"));
        Criterion { filter, out_dir }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: env_usize("CRITERION_LITE_SAMPLES", 10),
        }
    }
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A benchmark identifier: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id from just a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples (overridden by `CRITERION_LITE_SAMPLES`).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if std::env::var("CRITERION_LITE_SAMPLES").is_err() {
            self.sample_size = n;
        }
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            median_ns: 0.0,
            mean_ns: 0.0,
        };
        f(&mut bencher, input);
        println!(
            "bench: {full:<50} median {:>12}  mean {:>12}  ({} samples)",
            fmt_ns(bencher.median_ns),
            fmt_ns(bencher.mean_ns),
            bencher.sample_size,
        );
        self.write_record(&full, &bencher);
        self
    }

    /// Runs one benchmark with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = BenchmarkId { id: id.into() };
        self.bench_with_input(id, &(), |b, _| f(b))
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn write_record(&self, full: &str, b: &Bencher) {
        let dir = &self.criterion.out_dir;
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let file = dir.join(format!("{}.jsonl", sanitize(&self.name)));
        let line = format!(
            "{{\"benchmark\":\"{}\",\"median_ns\":{:.1},\"mean_ns\":{:.1},\"samples\":{}}}\n",
            full, b.median_ns, b.mean_ns, b.sample_size
        );
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&file)
        {
            let _ = f.write_all(line.as_bytes());
        }
    }
}

fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Passed to the bench closure; [`Bencher::iter`] performs the measurement.
pub struct Bencher {
    sample_size: usize,
    median_ns: f64,
    mean_ns: f64,
}

impl Bencher {
    /// Measures `f`, storing median/mean per-iteration times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let budget = Duration::from_millis(env_usize("CRITERION_LITE_SAMPLE_MS", 20) as u64);

        // Warm-up + calibration: run until ~¼ budget, counting iterations.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < budget / 4 || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let iters_per_sample = ((budget.as_secs_f64() / per_iter).ceil() as u64).max(1);

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            samples.push(t.elapsed().as_secs_f64() * 1e9 / iters_per_sample as f64);
        }
        samples.sort_by(f64::total_cmp);
        let mid = samples.len() / 2;
        self.median_ns = if samples.len() % 2 == 1 {
            samples[mid]
        } else {
            (samples[mid - 1] + samples[mid]) / 2.0
        };
        self.mean_ns = samples.iter().sum::<f64>() / samples.len() as f64;
    }
}

/// Declares a bench group runner function, as upstream criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("CRITERION_LITE_SAMPLE_MS", "1");
        let mut b = Bencher {
            sample_size: 5,
            median_ns: 0.0,
            mean_ns: 0.0,
        };
        b.iter(|| (0..100u64).sum::<u64>());
        assert!(b.median_ns > 0.0);
        assert!(b.mean_ns > 0.0);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
    }

    #[test]
    fn sanitize_paths() {
        assert_eq!(sanitize("a/b c"), "a_b_c");
    }
}
