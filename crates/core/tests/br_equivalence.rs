//! Equivalence properties of the incremental best-response engine.
//!
//! The incremental branch-and-bound (`exact_best_response`) must return
//! costs *identical* to the historical from-scratch engine
//! (`exact_best_response_reference`) on arbitrary metric hosts across α
//! regimes — both engines take exact minima over the same candidate space
//! with admissible pruning, so any divergence is a soundness bug, not
//! noise. Likewise, `DijkstraScratch` reuse must be observationally
//! identical to fresh-allocation Dijkstra across arbitrarily many calls.

use proptest::prelude::*;

use gncg_core::response::{
    exact_best_response, exact_best_response_parallel, exact_best_response_reference,
};
use gncg_core::{Game, Profile};
use gncg_graph::dijkstra::{dijkstra, dijkstra_reference};
use gncg_graph::{AdjacencyList, Csr, DijkstraScratch, NodeId};

/// A random metric host of size `n` plus an α from the regime list
/// (buy-everything, balanced, tree-like, buy-nothing).
fn game(n: usize) -> impl Strategy<Value = Game> {
    ((0u64..1 << 16), 0usize..4).prop_map(move |(seed, regime)| {
        let alpha = [0.05, 0.8, 2.5, 40.0][regime];
        Game::new(
            gncg_metrics::arbitrary::random_metric(n, 1.0, 4.0, seed),
            alpha,
        )
    })
}

/// A connected-ish random profile: a star with extra purchases.
fn profile(n: usize) -> impl Strategy<Value = Profile> {
    (
        (0u32..n as u32),
        proptest::collection::vec(proptest::bool::weighted(0.2), n * n),
    )
        .prop_map(move |(center, bits)| {
            let mut p = Profile::star(n, center);
            for u in 0..n {
                for v in 0..n {
                    if u != v && bits[u * n + v] && !p.has_edge(u as NodeId, v as NodeId) {
                        p.buy(u as NodeId, v as NodeId);
                    }
                }
            }
            p
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Incremental and from-scratch branch-and-bound agree on the optimal
    /// cost bit for bit, and the incremental strategy achieves it.
    #[test]
    fn incremental_br_matches_reference(g in game(7), p in profile(7), agent in 0u32..7) {
        let inc = exact_best_response(&g, &p, agent);
        let refr = exact_best_response_reference(&g, &p, agent);
        prop_assert_eq!(inc.cost, refr.cost, "α = {}", g.alpha());
        prop_assert_eq!(inc.current_cost, refr.current_cost);
        // The reported strategy really prices at the reported cost.
        let mut p2 = p.clone();
        p2.set_strategy(agent, inc.strategy.clone());
        let real = gncg_core::cost::agent_cost(&g, &p2, agent).total();
        prop_assert!(gncg_graph::approx_eq(real, inc.cost));
    }

    /// The parallel split search agrees with the sequential incremental
    /// engine on cost (strategies may differ among exact ties).
    #[test]
    fn parallel_br_matches_sequential(g in game(7), p in profile(7), agent in 0u32..7) {
        let seq = exact_best_response(&g, &p, agent);
        let par = exact_best_response_parallel(&g, &p, agent);
        prop_assert_eq!(seq.cost, par.cost);
    }

    /// A reused `DijkstraScratch` (generation-stamped arrays, drained
    /// heap) returns exactly what fresh-allocation Dijkstra returns, on
    /// every source of a stream of random graphs, in both adjacency and
    /// CSR representations.
    #[test]
    fn scratch_reuse_matches_fresh_dijkstra(
        seeds in proptest::collection::vec(0u64..1 << 16, 3),
        extra_w in 0.1f64..5.0,
    ) {
        let mut scratch = DijkstraScratch::new();
        for &seed in &seeds {
            let n = 6 + (seed % 5) as usize;
            let host = gncg_metrics::arbitrary::random_metric(n, 1.0, 4.0, seed);
            // A sparse subgraph: ring plus a chord.
            let mut g = AdjacencyList::new(n);
            for i in 0..n as NodeId {
                let j = (i + 1) % n as NodeId;
                g.add_edge(i, j, host.get(i, j));
            }
            g.add_edge(0, (n / 2) as NodeId, extra_w);
            let csr = Csr::from_adjacency(&g);
            for s in 0..n as NodeId {
                // dijkstra_reference is the independent per-call-allocation
                // oracle; dijkstra() itself runs on the scratch core.
                let fresh = dijkstra_reference(&g, s);
                prop_assert_eq!(&dijkstra(&g, s), &fresh);
                scratch.run(&g, s, &[]);
                prop_assert_eq!(&scratch.to_vec(n), &fresh);
                scratch.run(&csr, s, &[]);
                prop_assert_eq!(&scratch.to_vec(n), &fresh);
                prop_assert_eq!(scratch.sum_distances(n), fresh.iter().sum::<f64>());
            }
        }
    }
}
