//! The greedy move vocabulary.
//!
//! Greedy Equilibria (Lenzner 2012, used throughout §3 of the paper) are
//! defined by the absence of improving *single-edge* moves: buying one
//! edge, deleting one owned edge, or swapping one owned edge for another.
//! Arbitrary strategy replacements (the full Nash deviation space) are
//! represented by [`Move::Replace`].

use std::collections::BTreeSet;

use gncg_graph::NodeId;

use crate::Profile;

/// A strategy change of a single agent.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Move {
    /// Buy one edge towards the node.
    Add(NodeId),
    /// Stop buying the edge towards the node (must currently be owned).
    Delete(NodeId),
    /// Swap: delete the owned edge towards `.0`, buy towards `.1`.
    Swap(NodeId, NodeId),
    /// Replace the whole strategy (general Nash deviation).
    Replace(BTreeSet<NodeId>),
}

impl Move {
    /// The strategy that results from applying this move to `current`.
    ///
    /// # Panics
    /// Panics if a `Delete`/`Swap` refers to a non-owned edge, an `Add`
    /// to an already-owned one, or any target equals `agent`.
    pub fn apply(&self, agent: NodeId, current: &BTreeSet<NodeId>) -> BTreeSet<NodeId> {
        let mut s = current.clone();
        match self {
            Move::Add(v) => {
                assert_ne!(*v, agent);
                assert!(s.insert(*v), "Add of already-owned edge");
            }
            Move::Delete(v) => {
                assert!(s.remove(v), "Delete of non-owned edge");
            }
            Move::Swap(del, add) => {
                assert_ne!(*add, agent);
                assert!(s.remove(del), "Swap deleting non-owned edge");
                assert!(s.insert(*add), "Swap adding already-owned edge");
            }
            Move::Replace(new) => {
                assert!(!new.contains(&agent));
                s = new.clone();
            }
        }
        s
    }

    /// Enumerates every *greedy* move available to `agent` in `profile`
    /// (all valid adds, deletes and swaps). `Replace` moves are not
    /// enumerable and are produced by the best-response solvers instead.
    pub fn greedy_moves(profile: &Profile, agent: NodeId) -> Vec<Move> {
        let n = profile.n() as NodeId;
        let own = profile.strategy(agent);
        let mut out = Vec::new();
        for v in 0..n {
            if v == agent {
                continue;
            }
            if own.contains(&v) {
                out.push(Move::Delete(v));
            } else {
                out.push(Move::Add(v));
            }
        }
        for &d in own {
            for a in 0..n {
                if a != agent && !own.contains(&a) {
                    out.push(Move::Swap(d, a));
                }
            }
        }
        out
    }

    /// Enumerates only the `Add` moves (for Add-only Equilibrium checks).
    pub fn add_moves(profile: &Profile, agent: NodeId) -> Vec<Move> {
        let n = profile.n() as NodeId;
        let own = profile.strategy(agent);
        (0..n)
            .filter(|&v| v != agent && !own.contains(&v))
            .map(Move::Add)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_add_delete_swap() {
        let cur: BTreeSet<NodeId> = [1, 2].into_iter().collect();
        assert_eq!(
            Move::Add(3).apply(0, &cur),
            [1, 2, 3].into_iter().collect::<BTreeSet<_>>()
        );
        assert_eq!(
            Move::Delete(1).apply(0, &cur),
            [2].into_iter().collect::<BTreeSet<_>>()
        );
        assert_eq!(
            Move::Swap(2, 4).apply(0, &cur),
            [1, 4].into_iter().collect::<BTreeSet<_>>()
        );
        assert_eq!(
            Move::Replace(BTreeSet::new()).apply(0, &cur),
            BTreeSet::new()
        );
    }

    #[test]
    #[should_panic]
    fn bad_delete_panics() {
        let cur: BTreeSet<NodeId> = [1].into_iter().collect();
        Move::Delete(2).apply(0, &cur);
    }

    #[test]
    #[should_panic]
    fn bad_add_panics() {
        let cur: BTreeSet<NodeId> = [1].into_iter().collect();
        Move::Add(1).apply(0, &cur);
    }

    #[test]
    fn greedy_move_enumeration_counts() {
        // n = 4, agent 0 owns {1}: adds = {2,3}, deletes = {1},
        // swaps = 1 owned × 2 non-owned = 2. Total 5.
        let p = Profile::from_owned_edges(4, &[(0, 1)]);
        let moves = Move::greedy_moves(&p, 0);
        assert_eq!(moves.len(), 5);
        let adds = moves.iter().filter(|m| matches!(m, Move::Add(_))).count();
        let dels = moves
            .iter()
            .filter(|m| matches!(m, Move::Delete(_)))
            .count();
        let swaps = moves.iter().filter(|m| matches!(m, Move::Swap(..))).count();
        assert_eq!((adds, dels, swaps), (2, 1, 2));
    }

    #[test]
    fn add_moves_only() {
        let p = Profile::from_owned_edges(4, &[(0, 1)]);
        let adds = Move::add_moves(&p, 0);
        assert_eq!(adds, vec![Move::Add(2), Move::Add(3)]);
    }
}
