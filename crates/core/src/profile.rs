//! Strategy profiles and the built network `G(s)`.
//!
//! A strategy profile assigns each agent the set of nodes it buys edges
//! towards. The built network is the union of all bought edges; an edge may
//! be bought by both endpoints (then both pay), but in equilibrium and in
//! the optimum every edge has exactly one owner (footnote 1 of the paper).

use std::collections::BTreeSet;

use gncg_graph::{AdjacencyList, NodeId};

use crate::Game;

/// A full strategy profile `s = (S_{v_1}, …, S_{v_n})`.
///
/// Strategies are stored as ordered sets for deterministic iteration and
/// cheap canonical hashing (the dynamics engine detects best-response
/// cycles by hashing profiles).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Profile {
    strategies: Vec<BTreeSet<NodeId>>,
}

impl Profile {
    /// The empty profile on `n` agents (no edges bought).
    pub fn empty(n: usize) -> Self {
        Profile {
            strategies: vec![BTreeSet::new(); n],
        }
    }

    /// Builds a profile from owned directed pairs `(owner, target)`.
    pub fn from_owned_edges(n: usize, owned: &[(NodeId, NodeId)]) -> Self {
        let mut p = Profile::empty(n);
        for &(o, t) in owned {
            p.buy(o, t);
        }
        p
    }

    /// A star profile: `center` buys an edge to every other node.
    pub fn star(n: usize, center: NodeId) -> Self {
        let mut p = Profile::empty(n);
        for v in 0..n as NodeId {
            if v != center {
                p.buy(center, v);
            }
        }
        p
    }

    /// Number of agents.
    pub fn n(&self) -> usize {
        self.strategies.len()
    }

    /// Agent `u`'s strategy.
    pub fn strategy(&self, u: NodeId) -> &BTreeSet<NodeId> {
        &self.strategies[u as usize]
    }

    /// Replaces agent `u`'s strategy wholesale.
    pub fn set_strategy(&mut self, u: NodeId, s: BTreeSet<NodeId>) {
        assert!(!s.contains(&u), "an agent cannot buy an edge to itself");
        self.strategies[u as usize] = s;
    }

    /// Agent `u` buys an edge towards `v`. Idempotent.
    ///
    /// # Panics
    /// Panics if `u == v`.
    pub fn buy(&mut self, u: NodeId, v: NodeId) {
        assert_ne!(u, v, "an agent cannot buy an edge to itself");
        self.strategies[u as usize].insert(v);
    }

    /// Agent `u` stops buying towards `v`. Returns whether it was bought.
    pub fn unbuy(&mut self, u: NodeId, v: NodeId) -> bool {
        self.strategies[u as usize].remove(&v)
    }

    /// Whether `u` owns an edge towards `v`.
    pub fn owns(&self, u: NodeId, v: NodeId) -> bool {
        self.strategies[u as usize].contains(&v)
    }

    /// Whether edge `(u, v)` exists in the built network (either direction
    /// bought).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.owns(u, v) || self.owns(v, u)
    }

    /// All built (undirected, deduplicated) edges with `u < v`.
    pub fn edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::new();
        for (u, s) in self.strategies.iter().enumerate() {
            let u = u as NodeId;
            for &v in s {
                if u < v || !self.owns(v, u) {
                    let (a, b) = if u < v { (u, v) } else { (v, u) };
                    out.push((a, b));
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// Total number of bought (directed) edges; counts double purchases
    /// twice.
    pub fn purchases(&self) -> usize {
        self.strategies.iter().map(|s| s.len()).sum()
    }

    /// Whether any edge is bought from both sides (never happens in
    /// equilibrium or OPT; see footnote 1).
    pub fn has_double_purchase(&self) -> bool {
        self.strategies.iter().enumerate().any(|(u, s)| {
            s.iter()
                .any(|&v| self.strategies[v as usize].contains(&(u as NodeId)))
        })
    }

    /// Builds the network `G(s)` with host weights from `game`.
    pub fn build_network(&self, game: &Game) -> AdjacencyList {
        let mut g = AdjacencyList::new(self.n());
        for (u, v) in self.edges() {
            g.add_edge(u, v, game.w(u, v));
        }
        g
    }

    /// The owned edges of `u` as (removable) undirected pairs: pairs whose
    /// presence in `G(s)` depends solely on `u`'s strategy (i.e. not also
    /// bought by the other endpoint).
    pub fn sole_owned_edges(&self, u: NodeId) -> Vec<(NodeId, NodeId)> {
        self.strategies[u as usize]
            .iter()
            .filter(|&&v| !self.owns(v, u))
            .map(|&v| (u, v))
            .collect()
    }

    /// Removes double purchases: whenever both endpoints buy an edge, the
    /// larger-id endpoint drops it. The built network is unchanged and no
    /// agent's cost increases (footnote 1 of the paper: double-bought
    /// edges never survive in equilibria or optima). Returns the number of
    /// purchases dropped.
    pub fn canonicalize(&mut self) -> usize {
        let n = self.n() as NodeId;
        let mut dropped = 0;
        for u in 0..n {
            let doubles: Vec<NodeId> = self.strategies[u as usize]
                .iter()
                .copied()
                .filter(|&v| v < u && self.strategies[v as usize].contains(&u))
                .collect();
            for v in doubles {
                self.strategies[u as usize].remove(&v);
                dropped += 1;
            }
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gncg_graph::SymMatrix;

    fn unit_game(n: usize) -> Game {
        Game::new(SymMatrix::filled(n, 1.0), 1.0)
    }

    #[test]
    fn empty_profile() {
        let p = Profile::empty(4);
        assert_eq!(p.n(), 4);
        assert!(p.edges().is_empty());
        assert_eq!(p.purchases(), 0);
    }

    #[test]
    fn buy_and_unbuy() {
        let mut p = Profile::empty(3);
        p.buy(0, 1);
        assert!(p.owns(0, 1));
        assert!(!p.owns(1, 0));
        assert!(p.has_edge(1, 0));
        assert!(p.unbuy(0, 1));
        assert!(!p.has_edge(0, 1));
        assert!(!p.unbuy(0, 1));
    }

    #[test]
    #[should_panic]
    fn self_buy_panics() {
        Profile::empty(3).buy(1, 1);
    }

    #[test]
    fn star_profile() {
        let p = Profile::star(5, 0);
        assert_eq!(p.edges().len(), 4);
        assert_eq!(p.purchases(), 4);
        let g = p.build_network(&unit_game(5));
        assert!(g.is_tree());
        assert_eq!(g.degree(0), 4);
    }

    #[test]
    fn double_purchase_detected_and_edges_deduped() {
        let mut p = Profile::empty(2);
        p.buy(0, 1);
        p.buy(1, 0);
        assert!(p.has_double_purchase());
        assert_eq!(p.edges(), vec![(0, 1)]);
        assert_eq!(p.purchases(), 2);
        let g = p.build_network(&unit_game(2));
        assert_eq!(g.m(), 1);
    }

    #[test]
    fn sole_owned_edges() {
        let mut p = Profile::empty(3);
        p.buy(0, 1);
        p.buy(0, 2);
        p.buy(2, 0);
        assert_eq!(p.sole_owned_edges(0), vec![(0, 1)]);
        assert!(p.sole_owned_edges(1).is_empty());
        assert!(p.sole_owned_edges(2).is_empty());
    }

    #[test]
    fn from_owned_edges_builds() {
        let p = Profile::from_owned_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let g = p.build_network(&unit_game(4));
        assert!(g.is_tree());
        assert_eq!(g.m(), 3);
    }

    #[test]
    fn canonicalize_removes_double_purchases() {
        let mut p = Profile::empty(3);
        p.buy(0, 1);
        p.buy(1, 0);
        p.buy(1, 2);
        assert!(p.has_double_purchase());
        let dropped = p.canonicalize();
        assert_eq!(dropped, 1);
        assert!(!p.has_double_purchase());
        // Network unchanged.
        assert!(p.has_edge(0, 1));
        assert!(p.has_edge(1, 2));
        // Exactly one side still owns (0,1).
        assert!(p.owns(0, 1) ^ p.owns(1, 0));
        // Idempotent.
        assert_eq!(p.canonicalize(), 0);
    }

    #[test]
    fn canonicalize_reduces_social_cost() {
        let game = unit_game(3);
        let mut p = Profile::empty(3);
        p.buy(0, 1);
        p.buy(1, 0);
        p.buy(1, 2);
        let before = crate::cost::social_cost(&game, &p);
        p.canonicalize();
        let after = crate::cost::social_cost(&game, &p);
        assert!(after < before);
    }

    #[test]
    fn profiles_hashable_and_eq() {
        let a = Profile::from_owned_edges(3, &[(0, 1)]);
        let b = Profile::from_owned_edges(3, &[(0, 1)]);
        let c = Profile::from_owned_edges(3, &[(1, 0)]);
        assert_eq!(a, b);
        assert_ne!(a, c); // ownership matters, not just the built edge set
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
        assert!(!set.contains(&c));
    }
}
