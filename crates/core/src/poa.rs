//! Price-of-Anarchy bookkeeping and the paper's bound formulas.
//!
//! The PoA of an instance is `max_NE cost(NE) / cost(OPT)`; experiments
//! measure the ratio achieved by specific equilibria (a lower bound on the
//! instance PoA) and compare against the paper's theorems.

/// The ratio `cost(equilibrium) / cost(opt)`.
///
/// # Panics
/// Panics if `cost_opt <= 0` or either cost is not finite.
pub fn ratio(cost_eq: f64, cost_opt: f64) -> f64 {
    assert!(cost_opt > 0.0, "OPT cost must be positive");
    assert!(cost_eq.is_finite() && cost_opt.is_finite());
    cost_eq / cost_opt
}

/// Theorem 1: the PoA of the M–GNCG is at most `(α+2)/2`.
pub fn metric_upper_bound(alpha: f64) -> f64 {
    (alpha + 2.0) / 2.0
}

/// Theorem 20: the PoA of the general GNCG is at most `((α+2)/2)²`.
pub fn general_upper_bound(alpha: f64) -> f64 {
    let b = metric_upper_bound(alpha);
    b * b
}

/// Theorems 7–9: the tight PoA of the 1-2–GNCG for `α ≤ 1`:
/// `1` for `α < 1/2`, `3/(α+2)` for `1/2 ≤ α < 1`, `3/2` at `α = 1`.
pub fn one_two_poa_low_alpha(alpha: f64) -> f64 {
    assert!((0.0..=1.0).contains(&alpha));
    if alpha < 0.5 {
        1.0
    } else if alpha < 1.0 {
        3.0 / (alpha + 2.0)
    } else {
        1.5
    }
}

/// Theorem 15: PoA lower bound `(α+2)/2 − ε` for the T–GNCG — the
/// asymptotic ratio of the star construction (Fig. 6). Equal to
/// [`metric_upper_bound`]; the construction witnesses tightness.
pub fn tree_lower_bound(alpha: f64) -> f64 {
    metric_upper_bound(alpha)
}

/// Theorem 18: PoA lower bound for the Rd–GNCG with any p-norm, p ≥ 1:
/// `(3α³ + 24α² + 40α + 24) / (α³ + 10α² + 32α + 24)`.
pub fn rd_pnorm_lower_bound(alpha: f64) -> f64 {
    let a = alpha;
    (3.0 * a.powi(3) + 24.0 * a.powi(2) + 40.0 * a + 24.0)
        / (a.powi(3) + 10.0 * a.powi(2) + 32.0 * a + 24.0)
}

/// Theorem 19: PoA lower bound for the 1-norm in `R^d`:
/// `1 + α / (2 + α/(2d−1))`.
pub fn l1_lower_bound(alpha: f64, d: usize) -> f64 {
    assert!(d >= 1);
    1.0 + alpha / (2.0 + alpha / (2.0 * d as f64 - 1.0))
}

/// Fabrikant et al.'s general NCG upper bound `O(√α)` specialized with the
/// constant from Theorem 11's diameter argument: returns `√α` as the
/// reference curve the 1-2 experiments compare against (shape, not
/// constant).
pub fn sqrt_alpha_reference(alpha: f64) -> f64 {
    alpha.sqrt()
}

/// Demaine et al.'s tight 1-∞–GNCG PoA curve `Θ(⁵√α)` (achieved at
/// `α = n^{5/3}`): the `⁵√α` reference shape for the 1-∞ row of Table 1.
pub fn demaine_one_inf_reference(alpha: f64) -> f64 {
    alpha.powf(0.2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_basics() {
        assert_eq!(ratio(6.0, 3.0), 2.0);
        assert_eq!(ratio(3.0, 3.0), 1.0);
    }

    #[test]
    #[should_panic]
    fn ratio_rejects_zero_opt() {
        ratio(1.0, 0.0);
    }

    #[test]
    fn metric_bound_values() {
        assert_eq!(metric_upper_bound(2.0), 2.0);
        assert_eq!(metric_upper_bound(0.0), 1.0);
        assert_eq!(general_upper_bound(2.0), 4.0);
    }

    #[test]
    fn one_two_piecewise() {
        assert_eq!(one_two_poa_low_alpha(0.3), 1.0);
        assert!((one_two_poa_low_alpha(0.5) - 3.0 / 2.5).abs() < 1e-12);
        assert_eq!(one_two_poa_low_alpha(1.0), 1.5);
        // Continuity at α → 1⁻: 3/(1+2) = 1 vs 3/2 at α = 1 — the paper's
        // bound jumps because the α = 1 NE keeps cost-neutral 1-edges.
        assert!((one_two_poa_low_alpha(0.999) - 3.0 / 2.999).abs() < 1e-9);
    }

    #[test]
    fn rd_pnorm_limits() {
        // α → 0: ratio → 24/24 = 1. α → ∞: → 3.
        assert!((rd_pnorm_lower_bound(0.0) - 1.0).abs() < 1e-12);
        assert!((rd_pnorm_lower_bound(1e9) - 3.0).abs() < 1e-6);
        // Monotone increasing in α on a grid.
        let mut prev = 0.0;
        for i in 0..100 {
            let v = rd_pnorm_lower_bound(i as f64 * 0.5);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn l1_bound_approaches_metric_bound() {
        // As d → ∞ the Theorem 19 bound tends to 1 + α/2 = (α+2)/2.
        let alpha = 6.0;
        let b_small = l1_lower_bound(alpha, 1);
        let b_big = l1_lower_bound(alpha, 10_000);
        assert!(b_small < b_big);
        assert!((b_big - metric_upper_bound(alpha)).abs() < 1e-3);
        assert!(b_big < metric_upper_bound(alpha));
    }

    #[test]
    fn lower_bounds_below_upper_bounds() {
        for i in 1..60 {
            let alpha = i as f64 * 0.37;
            assert!(rd_pnorm_lower_bound(alpha) <= metric_upper_bound(alpha) + 1e-12);
            for d in [1, 2, 3, 8] {
                assert!(l1_lower_bound(alpha, d) <= metric_upper_bound(alpha) + 1e-12);
            }
            assert!(metric_upper_bound(alpha) <= general_upper_bound(alpha) + 1e-12);
        }
    }
}
