//! Best responses: exact (incremental branch-and-bound) and greedy single
//! moves.
//!
//! Computing an exact best response is NP-hard in every variant of the
//! game (Corollary 1, Theorems 13 and 16), so the exact solver here is an
//! exponential branch-and-bound over candidate edge subsets, effective for
//! the instance sizes of the experiments (n ≲ 20) and for the structured
//! reduction gadgets where the pruning bound collapses the search space.
//!
//! # The incremental engine
//!
//! The historical implementation ([`exact_best_response_reference`]) priced
//! every *leaf* of the include/exclude tree with a from-scratch Dijkstra.
//! The current engine ([`exact_best_response`]) instead maintains the
//! agent's distance vector *incrementally* along the DFS: including
//! candidate edge `(u, v)` can only decrease distances, so the include
//! branch relaxes outward from `v` through an
//! [`DynamicSssp`] undo log and restores
//! the exact previous vector on backtrack. Consequences:
//!
//! * **every partial set is fully priced for free** — the live vector *is*
//!   the distance cost of the chosen set, so each subset is evaluated at
//!   the moment its last edge is included (`O(n)` sum, zero Dijkstras at
//!   leaves) and the incumbent tightens at internal nodes instead of only
//!   at depth `n−1`;
//! * the DFS allocates nothing per node (the undo log, heap, and chosen
//!   stack are reused; only incumbent improvements clone a strategy).
//!
//! # Why the partial-network bound is admissible
//!
//! A branch at depth `idx` has committed `chosen ⊆ {candidates[..idx]}`
//! and may still add edges only towards `R = candidates[idx..]`. Every
//! shortest path from `u` in any completion either
//!
//! 1. uses no still-addable edge — all new edges are incident to `u`, a
//!    path visits `u` once, so the whole path lies in `base ∪ chosen` and
//!    its length is ≥ the live incremental distance `D[x]`, or
//! 2. starts with a new edge `(u, v)`, `v ∈ R` — the remainder avoids `u`,
//!    hence uses no new edge, so the path length is
//!    ≥ `w(u,v) + d_{B*}(v, x)`, where `B* = base ∪ {(u,c) : c candidate}`
//!    is the *optimistic network* (a supergraph of every reachable
//!    network, so its distances lower-bound all of them).
//!
//! Therefore `Σ_x min(D[x], min_{v∈R}(w(u,v) + d_{B*}(v, x)))` is an
//! admissible distance lower bound — strictly stronger than the host
//! closure bound the reference engine uses (`B*` is a subgraph of the
//! host, so `d_H ≤ d_{B*}`, and the live `D` tightens it further as the
//! DFS descends). The inner `min_{v∈R}` depends only on `idx` (remaining
//! candidates form a suffix), so it is precomputed once per search as a
//! suffix-min table (`via`), making the bound `O(n)` per node.
//!
//! Costs are **bit-identical** to the reference engine on any instance
//! whose distinct candidate subsets are not tied within
//! [`EPS`](gncg_graph::EPS): the incremental vector equals a from-scratch
//! Dijkstra's exactly (both take exact minima over the same sets of path
//! prefix sums — see `gncg_graph::csr`), and both sum it in index order.
//! On adversarial sub-`EPS` near-ties the engines may legitimately settle
//! on either member of the tie (they visit subsets in different orders
//! and both accept/prune with `EPS` tolerance), so reported costs can
//! differ by up to `EPS` — the paper's constructions and the random
//! metrics of the equivalence suites clear the tolerance by orders of
//! magnitude, which is what licenses the exact `assert_eq!` there.

use std::collections::BTreeSet;

use gncg_graph::{
    strictly_less, AdjacencyList, Csr, DijkstraScratch, DynamicSssp, MaskedEdges, NodeId,
};

use crate::cost::{
    agent_cost_in, base_graph_from, base_graph_without, candidate_cost, CostBreakdown,
};
use crate::{Game, Move, Profile};

/// Result of a best-response computation.
#[derive(Clone, Debug)]
pub struct BestResponse {
    /// The optimal strategy found.
    pub strategy: BTreeSet<NodeId>,
    /// Its cost for the agent.
    pub cost: f64,
    /// The agent's current cost before deviating.
    pub current_cost: f64,
    /// Number of candidate subsets fully evaluated (diagnostic).
    pub evaluated: usize,
}

impl BestResponse {
    /// Whether the best response strictly improves on the current strategy.
    pub fn improves(&self) -> bool {
        strictly_less(self.cost, self.current_cost)
    }
}

/// Read-only state shared by every branch of one best-response search.
struct BrSearch<'g> {
    game: &'g Game,
    agent: NodeId,
    n: usize,
    /// CSR snapshot of the base graph (network minus the agent's
    /// sole-owned edges); all incremental relaxation runs on it.
    csr: Csr,
    /// Candidates sorted by increasing host weight from the agent.
    candidates: Vec<NodeId>,
    /// `w(agent, candidates[i])`, parallel to `candidates`.
    cand_w: Vec<f64>,
    /// Distances from the agent in the bare base graph.
    d0: Vec<f64>,
    /// Suffix-min table of the optimistic bound:
    /// `via[idx·n + x] = min_{i ≥ idx} (cand_w[i] + d_{B*}(candidates[i], x))`,
    /// with row `len` all-∞ (no candidates left).
    via: Vec<f64>,
    /// The host's weight class, installed as the bucket-queue hint on
    /// every SSSP engine this search spawns ([`Game::weight_class`]).
    weight_class: Option<(f64, f64)>,
}

/// Mutable per-branch state (per worker in the parallel search).
struct BrWorker {
    inc: DynamicSssp,
    chosen: Vec<NodeId>,
    /// Membership bitmap of `chosen` (indexed by node id): evaluation sums
    /// edge weights in ascending id order, matching the `BTreeSet`
    /// iteration order of [`candidate_cost`] bit for bit.
    in_set: Vec<bool>,
    best_cost: f64,
    best_set: BTreeSet<NodeId>,
    evaluated: usize,
}

impl BrWorker {
    fn fresh(search: &BrSearch<'_>, current: f64, current_set: &BTreeSet<NodeId>) -> Self {
        let mut worker = BrWorker {
            inc: DynamicSssp::new(),
            chosen: Vec::with_capacity(search.candidates.len()),
            in_set: vec![false; search.n],
            best_cost: current,
            best_set: current_set.clone(),
            evaluated: 0,
        };
        worker.inc.set_weight_class(search.weight_class);
        worker.inc.reset_from(search.agent, &search.d0);
        worker
    }
}

impl<'g> BrSearch<'g> {
    /// Builds the shared search state from a prebuilt base graph.
    fn new(game: &'g Game, agent: NodeId, base: &AdjacencyList) -> Self {
        let n = game.n();
        let mut candidates: Vec<NodeId> = (0..n as NodeId).filter(|&v| v != agent).collect();
        candidates.sort_by(|&a, &b| game.w(agent, a).total_cmp(&game.w(agent, b)));
        let cand_w: Vec<f64> = candidates.iter().map(|&v| game.w(agent, v)).collect();

        let weight_class = game.weight_class();
        let csr = Csr::from_adjacency(base);
        let mut scratch = DijkstraScratch::new();
        scratch.set_weight_class(weight_class);
        scratch.run(&csr, agent, &[]);
        let d0 = scratch.to_vec(n);

        // The optimistic network B*: base plus every candidate edge.
        let mut bstar = base.clone();
        for &v in &candidates {
            if !bstar.has_edge(agent, v) {
                bstar.add_edge(agent, v, game.w(agent, v));
            }
        }
        let bstar_csr = Csr::from_adjacency(&bstar);

        // Suffix-min bound table, built back to front.
        let len = candidates.len();
        let mut via = vec![f64::INFINITY; (len + 1) * n];
        for i in (0..len).rev() {
            scratch.run(&bstar_csr, candidates[i], &[]);
            let (lo, hi) = (i * n, (i + 1) * n);
            for x in 0..n {
                let through = cand_w[i] + scratch.dist(x as NodeId);
                via[lo + x] = through.min(via[hi + x]);
            }
        }

        BrSearch {
            game,
            agent,
            n,
            csr,
            candidates,
            cand_w,
            d0,
            via,
            weight_class,
        }
    }

    /// The admissible lower bound at a node: committed edge cost plus
    /// `Σ_x min(live dist, optimistic completion dist)`.
    #[inline]
    fn lower_bound(&self, worker: &BrWorker, idx: usize, edge_w_sum: f64) -> f64 {
        let via_row = &self.via[idx * self.n..(idx + 1) * self.n];
        let dist = worker.inc.dist();
        let mut lb = 0.0;
        for x in 0..self.n {
            lb += dist[x].min(via_row[x]);
        }
        self.game.alpha() * edge_w_sum + lb
    }

    /// Prices the worker's current chosen set off the live vector and
    /// tightens the incumbent. The edge sum is re-accumulated in ascending
    /// node-id order (not DFS order) so totals match [`candidate_cost`]
    /// exactly — f64 addition is order-sensitive.
    #[inline]
    fn evaluate_current(&self, worker: &mut BrWorker) {
        let mut edge_sum = 0.0;
        for v in 0..self.n {
            if worker.in_set[v] {
                edge_sum += self.game.w(self.agent, v as NodeId);
            }
        }
        let cost = self.game.alpha() * edge_sum + worker.inc.sum();
        worker.evaluated += 1;
        if strictly_less(cost, worker.best_cost) {
            worker.best_cost = cost;
            worker.best_set = worker.chosen.iter().copied().collect();
        }
    }

    /// DFS over include/exclude decisions from `idx` onward. The chosen
    /// set at entry has already been evaluated; `worker.inc` holds its
    /// exact distance vector.
    fn dfs(&self, worker: &mut BrWorker, idx: usize, edge_w_sum: f64) {
        if self.lower_bound(worker, idx, edge_w_sum) >= worker.best_cost - gncg_graph::EPS {
            // No completion below this node can strictly beat the
            // incumbent; every subset under it is dominated.
            return;
        }
        if idx == self.candidates.len() {
            return;
        }
        let v = self.candidates[idx];
        let w = self.cand_w[idx];
        // Branch 1: include v — relax incrementally, price the new set.
        worker.inc.add_edge(&self.csr, self.agent, v, w);
        worker.chosen.push(v);
        worker.in_set[v as usize] = true;
        self.evaluate_current(worker);
        self.dfs(worker, idx + 1, edge_w_sum + w);
        worker.in_set[v as usize] = false;
        worker.chosen.pop();
        worker.inc.undo();
        // Branch 2: exclude v.
        self.dfs(worker, idx + 1, edge_w_sum);
    }
}

/// Exact best response of `agent` via incremental depth-first
/// branch-and-bound over subsets of `V \ {agent}` (see the module docs for
/// the engine's invariants). The agent's *current* strategy seeds the
/// incumbent, so the search also certifies equilibria quickly.
pub fn exact_best_response(game: &Game, profile: &Profile, agent: NodeId) -> BestResponse {
    let network = profile.build_network(game);
    exact_best_response_in(game, profile, &network, agent)
}

/// [`exact_best_response`] reusing an already-built network `G(s)` — the
/// entry point for the dynamics engine's cached-network evaluation.
pub fn exact_best_response_in(
    game: &Game,
    profile: &Profile,
    network: &AdjacencyList,
    agent: NodeId,
) -> BestResponse {
    let current = agent_cost_in(game, profile, network, agent).total();
    exact_best_response_given_current(game, profile, network, agent, current)
}

/// [`exact_best_response_in`] with the agent's current cost supplied by
/// the caller — the entry point for the dynamics engine's warm per-agent
/// distance vectors, which price the current strategy without the
/// per-activation Dijkstra `agent_cost_in` would run.
///
/// `current` must equal `agent_cost_in(game, profile, network, agent)
/// .total()` exactly (it seeds the incumbent, so a too-low value could
/// prune the true optimum).
pub fn exact_best_response_given_current(
    game: &Game,
    profile: &Profile,
    network: &AdjacencyList,
    agent: NodeId,
    current: f64,
) -> BestResponse {
    let base = base_graph_from(network, profile, agent);
    let search = BrSearch::new(game, agent, &base);

    let mut worker = BrWorker::fresh(&search, current, profile.strategy(agent));
    // The empty set is the one subset with no include step: price it here.
    search.evaluate_current(&mut worker);
    search.dfs(&mut worker, 0, 0.0);

    BestResponse {
        strategy: worker.best_set,
        cost: worker.best_cost,
        current_cost: current,
        evaluated: worker.evaluated,
    }
}

/// Fewest candidates (`n − 1`) for which [`exact_best_response_parallel`]
/// actually splits. Below this the whole pruned DFS is tens of
/// microseconds, so per-subtree incumbent re-seeding plus spawn overhead
/// outweigh any core the split could recruit (`BENCH_hotpath.json`
/// measured the split 15–30% *slower* at n = 12–16).
pub const MIN_PARALLEL_CANDIDATES: usize = 18;

/// Rayon-parallel exact best response: the include/exclude tree is split
/// at the first `SPLIT_DEPTH` candidate decisions into `2^SPLIT_DEPTH`
/// independent subtree searches that run on the rayon pool, each with its
/// own incumbent seeded by the agent's current cost; results reduce to the
/// global optimum. Produces exactly the same *cost* as
/// [`exact_best_response`] (the strategy may differ among ties).
///
/// Splitting has a real cost even on a real pool: each subtree re-seeds
/// its incumbent from the agent's current cost instead of sharing the
/// global one, so the split prices leaves the shared-incumbent DFS would
/// have pruned. Below [`MIN_PARALLEL_CANDIDATES`] candidates — or when
/// the pool has a single thread — that overhead cannot be bought back,
/// and this function runs the plain [`exact_best_response`] search
/// inline, making it never slower than the sequential solver
/// (`bench_snapshot.sh` asserts the relation at every measured `n`).
pub fn exact_best_response_parallel(game: &Game, profile: &Profile, agent: NodeId) -> BestResponse {
    use rayon::prelude::*;
    const SPLIT_DEPTH: usize = 4;

    let network = profile.build_network(game);
    // The candidate count is n − 1; check it before paying for the search
    // state (the via table costs n Dijkstras) the sequential path would
    // rebuild anyway.
    if game.n().saturating_sub(1) < MIN_PARALLEL_CANDIDATES || rayon::current_num_threads() == 1 {
        return exact_best_response_in(game, profile, &network, agent);
    }
    let current = agent_cost_in(game, profile, &network, agent).total();
    let base = base_graph_from(&network, profile, agent);
    let search = BrSearch::new(game, agent, &base);

    let split = SPLIT_DEPTH;
    let results: Vec<(f64, BTreeSet<NodeId>, usize)> = (0u32..(1 << split))
        .into_par_iter()
        .map(|prefix_mask| {
            let mut worker = BrWorker::fresh(&search, current, profile.strategy(agent));
            let mut edge_w_sum = 0.0;
            for i in 0..split {
                if prefix_mask & (1 << i) != 0 {
                    let v = search.candidates[i];
                    let w = search.cand_w[i];
                    worker.inc.add_edge(&search.csr, agent, v, w);
                    worker.chosen.push(v);
                    worker.in_set[v as usize] = true;
                    edge_w_sum += w;
                }
            }
            // Each prefix set is a complete subset in exactly this task:
            // price it before descending (subsets with includes past the
            // split are priced at their last include inside the DFS).
            search.evaluate_current(&mut worker);
            search.dfs(&mut worker, split, edge_w_sum);
            (worker.best_cost, worker.best_set, worker.evaluated)
        })
        .collect();

    let mut best_cost = current;
    let mut best_set: BTreeSet<NodeId> = profile.strategy(agent).clone();
    let mut evaluated = 0usize;
    for (c, s, e) in results {
        evaluated += e;
        if strictly_less(c, best_cost) {
            best_cost = c;
            best_set = s;
        }
    }
    BestResponse {
        strategy: best_set,
        cost: best_cost,
        current_cost: current,
        evaluated,
    }
}

/// The historical from-scratch engine: one Dijkstra per leaf, pruned only
/// by the static host-closure bound. Kept as the equivalence oracle for
/// the incremental engine (the `br_equivalence` proptests) and as the
/// baseline the `best_response` bench measures speedups against.
pub fn exact_best_response_reference(
    game: &Game,
    profile: &Profile,
    agent: NodeId,
) -> BestResponse {
    let n = game.n();
    let base = base_graph_without(game, profile, agent);
    let network = profile.build_network(game);
    let current = agent_cost_in(game, profile, &network, agent).total();

    // Distance lower bound: Σ_v d_H(agent, v).
    let dist_lb: f64 = game.host_distances().row(agent).iter().sum();

    let mut candidates: Vec<NodeId> = (0..n as NodeId).filter(|&v| v != agent).collect();
    candidates.sort_by(|&a, &b| game.w(agent, a).total_cmp(&game.w(agent, b)));

    let mut best_cost = current;
    let mut best_set: BTreeSet<NodeId> = profile.strategy(agent).clone();
    let mut evaluated = 0usize;
    let mut chosen: Vec<NodeId> = Vec::new();
    dfs_reference(
        game,
        &base,
        agent,
        &candidates,
        0,
        &mut chosen,
        0.0,
        dist_lb,
        &mut best_cost,
        &mut best_set,
        &mut evaluated,
    );

    BestResponse {
        strategy: best_set,
        cost: best_cost,
        current_cost: current,
        evaluated,
    }
}

#[allow(clippy::too_many_arguments)]
fn dfs_reference(
    game: &Game,
    base: &AdjacencyList,
    agent: NodeId,
    candidates: &[NodeId],
    idx: usize,
    chosen: &mut Vec<NodeId>,
    edge_cost: f64,
    dist_lb: f64,
    best_cost: &mut f64,
    best_set: &mut BTreeSet<NodeId>,
    evaluated: &mut usize,
) {
    // Admissible bound: committed α-weighted edge cost + host-distance LB.
    if game.alpha() * edge_cost + dist_lb >= *best_cost - gncg_graph::EPS {
        return;
    }
    if idx == candidates.len() {
        let set: BTreeSet<NodeId> = chosen.iter().copied().collect();
        let c = candidate_cost(game, base, agent, &set);
        *evaluated += 1;
        if strictly_less(c.total(), *best_cost) {
            *best_cost = c.total();
            *best_set = set;
        }
        return;
    }
    let v = candidates[idx];
    chosen.push(v);
    dfs_reference(
        game,
        base,
        agent,
        candidates,
        idx + 1,
        chosen,
        edge_cost + game.w(agent, v),
        dist_lb,
        best_cost,
        best_set,
        evaluated,
    );
    chosen.pop();
    dfs_reference(
        game,
        base,
        agent,
        candidates,
        idx + 1,
        chosen,
        edge_cost,
        dist_lb,
        best_cost,
        best_set,
        evaluated,
    );
}

/// The best single greedy move (add / delete / swap) of `agent`, if any
/// strictly improving one exists. Returns the move together with the cost
/// it achieves.
pub fn best_greedy_move(game: &Game, profile: &Profile, agent: NodeId) -> Option<(Move, f64)> {
    best_move_among(game, profile, agent, &Move::greedy_moves(profile, agent))
}

/// [`best_greedy_move`] reusing an already-built network.
pub fn best_greedy_move_in(
    game: &Game,
    profile: &Profile,
    network: &AdjacencyList,
    agent: NodeId,
) -> Option<(Move, f64)> {
    best_greedy_move_in_costed(game, profile, network, agent).1
}

/// [`best_greedy_move_in`] that also returns the agent's current cost —
/// the move scan computes it anyway, and the dynamics engine needs both
/// (one SSSP instead of two per activation).
pub fn best_greedy_move_in_costed(
    game: &Game,
    profile: &Profile,
    network: &AdjacencyList,
    agent: NodeId,
) -> (f64, Option<(Move, f64)>) {
    best_move_among_in_costed(
        game,
        profile,
        network,
        agent,
        &Move::greedy_moves(profile, agent),
    )
}

/// The best single edge *addition* of `agent`, if an improving one exists
/// (the move space of Add-only Equilibria).
pub fn best_add_move(game: &Game, profile: &Profile, agent: NodeId) -> Option<(Move, f64)> {
    best_move_among(game, profile, agent, &Move::add_moves(profile, agent))
}

/// [`best_add_move`] reusing an already-built network.
pub fn best_add_move_in(
    game: &Game,
    profile: &Profile,
    network: &AdjacencyList,
    agent: NodeId,
) -> Option<(Move, f64)> {
    best_add_move_in_costed(game, profile, network, agent).1
}

/// [`best_add_move_in`] that also returns the agent's current cost.
pub fn best_add_move_in_costed(
    game: &Game,
    profile: &Profile,
    network: &AdjacencyList,
    agent: NodeId,
) -> (f64, Option<(Move, f64)>) {
    best_move_among_in_costed(
        game,
        profile,
        network,
        agent,
        &Move::add_moves(profile, agent),
    )
}

/// Evaluates a set of moves and returns the best strictly-improving one.
pub fn best_move_among(
    game: &Game,
    profile: &Profile,
    agent: NodeId,
    moves: &[Move],
) -> Option<(Move, f64)> {
    let network = profile.build_network(game);
    best_move_among_in(game, profile, &network, agent, moves)
}

/// [`best_move_among`] reusing an already-built network: the network is
/// built (or cached) once and the base graph is derived from it, instead
/// of the historical double build per evaluation.
pub fn best_move_among_in(
    game: &Game,
    profile: &Profile,
    network: &AdjacencyList,
    agent: NodeId,
    moves: &[Move],
) -> Option<(Move, f64)> {
    best_move_among_in_costed(game, profile, network, agent, moves).1
}

/// [`best_move_among_in`] that also returns the agent's current cost,
/// which the incumbent comparison computes anyway.
pub fn best_move_among_in_costed(
    game: &Game,
    profile: &Profile,
    network: &AdjacencyList,
    agent: NodeId,
    moves: &[Move],
) -> (f64, Option<(Move, f64)>) {
    let current = agent_cost_in(game, profile, network, agent).total();
    (
        current,
        best_move_among_given_current(game, profile, network, agent, current, moves),
    )
}

/// [`best_move_among_in_costed`] with the agent's current cost supplied
/// by the caller (see [`exact_best_response_given_current`] for the
/// contract on `current`).
///
/// Prices every candidate with a masked from-scratch Dijkstra
/// ([`candidate_cost`]) — the historical scan, kept as the equivalence
/// **oracle** and measured baseline of the speculative scan
/// ([`best_move_among_speculative`]), which produces bitwise-identical
/// choices and totals off a warm distance vector.
pub fn best_move_among_given_current(
    game: &Game,
    profile: &Profile,
    network: &AdjacencyList,
    agent: NodeId,
    current: f64,
    moves: &[Move],
) -> Option<(Move, f64)> {
    let base = base_graph_from(network, profile, agent);
    let own = profile.strategy(agent);
    let mut best: Option<(Move, f64)> = None;
    for m in moves {
        let cand = m.apply(agent, own);
        let c = candidate_cost(game, &base, agent, &cand).total();
        let incumbent = best.as_ref().map_or(current, |&(_, b)| b);
        if strictly_less(c, incumbent) {
            best = Some((m.clone(), c));
        }
    }
    best
}

/// [`best_move_among_given_current`] evaluated **speculatively** against
/// the agent's warm distance vector instead of one masked Dijkstra per
/// candidate.
///
/// `warm` must hold the agent's exact distance vector in `network`
/// (source `agent`, bitwise what a fresh Dijkstra produces — e.g. the
/// dynamics engine's warm per-agent vector), and `current` the agent's
/// exact current total cost. Each single-edge candidate is priced by the
/// speculation-frame lifecycle of `gncg_graph::csr`:
///
/// 1. **apply** — open a frame and stage the move's network-level edge
///    delta on the vector: a dropped sole-owned edge is a logged
///    Ramalingam–Reps repair over a [`MaskedEdges`] view of `network`
///    (the graph itself is never mutated), a genuinely new edge is a
///    logged source-incident relaxation;
/// 2. **read** — the candidate's distance cost is the warm sum, in the
///    same index order the oracle sums its Dijkstra vector, and its edge
///    cost re-accumulates in ascending node-id order, matching
///    [`candidate_cost`]'s `BTreeSet` iteration bit for bit;
/// 3. **rollback** — the frame restores the pre-move vector bitwise, so
///    the next candidate starts from the same warm state.
///
/// Degenerate deltas (dropping a co-owned edge, gaining an
/// already-present one) change no distances and read the current sum
/// directly. [`Move::Replace`] candidates are not single-edge deltas and
/// fall back to the oracle's [`candidate_cost`] pricing.
///
/// Returns exactly what [`best_move_among_given_current`] returns — the
/// same chosen move and the same cost bits (debug-asserted against the
/// oracle, alongside the bitwise restoration of `warm`).
///
/// Every move must be *valid for `profile`* in the [`Move::apply`] sense
/// (deletes and swap-drops name owned edges, adds and swap-gains name
/// non-owned ones) — the shape [`Move::greedy_moves`] /
/// [`Move::add_moves`] enumerate. The oracle enforces this with
/// assertions inside `Move::apply`; this path relies on it (an invalid
/// move may panic on a missing network edge or price the edge term
/// differently from a set-based candidate).
///
/// This entry point always prices with [`SpeculativePricing::FullSum`];
/// [`best_move_among_speculative_priced`] exposes the bounded-horizon
/// [`SpeculativePricing::RegionDelta`] policy.
pub fn best_move_among_speculative(
    game: &Game,
    profile: &Profile,
    network: &AdjacencyList,
    warm: &mut DynamicSssp,
    agent: NodeId,
    current: f64,
    moves: &[Move],
) -> Option<(Move, f64)> {
    best_move_among_speculative_priced(
        game,
        profile,
        network,
        warm,
        agent,
        current,
        moves,
        SpeculativePricing::FullSum,
    )
}

/// How the speculative move scan reads a candidate's distance cost off
/// the warm vector.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SpeculativePricing {
    /// Re-sum the whole `n`-length vector per candidate — `O(n)` per
    /// move, bitwise-identical to the masked-Dijkstra oracle, the
    /// policy every pre-existing golden was recorded under.
    #[default]
    FullSum,
    /// Bounded-horizon pricing: one full sum per scan, then each
    /// candidate is priced as `sum₀ + Σ_{v touched} (dist(v) − dist₀(v))`
    /// over the speculation undo log, with the speculative relaxation
    /// itself truncated after [`PRICE_HORIZON`] settled nodes — `O(horizon)`
    /// per move instead of the `O(n)` re-sum *or* the `Θ(n)` exact region
    /// repair a good candidate edge floods through a mid-run network.
    /// Truncated prices are sound upper bounds (the abandoned frontier
    /// keeps its valid pre-insert distances), so ranking is approximate;
    /// the winner is re-priced with the horizon cleared and an exact full
    /// sum (and re-gated against `current`) before being returned, so
    /// the *reported* move cost is always oracle-exact. A candidate whose
    /// upper bound never beats the incumbent can be missed — a distinct
    /// deterministic dynamics, not a bitwise re-expression of
    /// [`Self::FullSum`] — which is why it is opt-in, participates in
    /// scenario digests, and carries its own goldens. Below `n ≈
    /// PRICE_HORIZON` the truncation can never trigger and only sub-ulp
    /// delta re-association separates the two policies.
    RegionDelta,
}

/// Settle budget of [`SpeculativePricing::RegionDelta`]'s per-candidate
/// speculative relaxations (see [`DynamicSssp::set_price_horizon`]). A
/// fixed constant of the policy — it shapes which moves the bounded
/// dynamics chooses, so tuning it is a byte-stream-breaking change.
pub const PRICE_HORIZON: usize = 16;

/// [`best_move_among_speculative`] with an explicit pricing policy —
/// see [`SpeculativePricing`] for the contract of each mode.
#[allow(clippy::too_many_arguments)]
pub fn best_move_among_speculative_priced(
    game: &Game,
    profile: &Profile,
    network: &AdjacencyList,
    warm: &mut DynamicSssp,
    agent: NodeId,
    current: f64,
    moves: &[Move],
    pricing: SpeculativePricing,
) -> Option<(Move, f64)> {
    #[cfg(debug_assertions)]
    let before: Vec<f64> = warm.dist().to_vec();
    // One O(n) sum for the whole scan under RegionDelta; FullSum keeps
    // its historical lazy reads (degenerate deltas only).
    let sum0 = match pricing {
        SpeculativePricing::FullSum => 0.0,
        SpeculativePricing::RegionDelta => warm.sum(),
    };
    // Bounded horizon: candidate relaxations settle at most PRICE_HORIZON
    // nodes (upper-bound prices); cleared again before the winner's exact
    // re-price below. Only speculation frames consult the budget, so a
    // stray setting could never leak into committed repairs.
    if pricing == SpeculativePricing::RegionDelta {
        warm.set_price_horizon(Some(PRICE_HORIZON));
    }
    let own = profile.strategy(agent);
    let alpha = game.alpha();
    // Replace moves price through the oracle path; its base graph is
    // derived at most once.
    let mut base: Option<AdjacencyList> = None;
    let mut best: Option<(Move, f64)> = None;
    let update = |m: &Move, c: f64, best: &mut Option<(Move, f64)>| {
        let incumbent = best.as_ref().map_or(current, |&(_, b)| b);
        if strictly_less(c, incumbent) {
            *best = Some((m.clone(), c));
        }
    };
    let mut i = 0;
    while i < moves.len() {
        // Consecutive swaps dropping the same sole-owned edge (the shape
        // `Move::greedy_moves` enumerates) share one removal repair:
        // frames nest, so the dropped edge is repaired once in an outer
        // frame and each add target is an inner insert + rollback —
        // `k` removals for `k·(n−1−k)` swap candidates, not one each.
        if let Move::Swap(d, _) = moves[i] {
            if !profile.owns(d, agent) {
                let run = moves[i..]
                    .iter()
                    .take_while(|m| matches!(m, Move::Swap(dd, _) if *dd == d))
                    .count();
                let w = network
                    .edge_weight(agent, d)
                    .expect("sole-owned strategy edge must be in the network");
                let mask = [(agent, d)];
                let view = MaskedEdges::new(network, &mask);
                // The mark is taken before the outer removal frame, so a
                // RegionDelta price covers the removal repair *and* the
                // inner insert in one undo-log suffix.
                let mark = warm.undo_len();
                warm.begin_speculation();
                warm.remove_edge(&view, agent, d, w);
                for m in &moves[i..i + run] {
                    let &Move::Swap(_, a) = m else { unreachable!() };
                    let dist = if network.has_edge(agent, a) {
                        // Gained edge already present: the removal repair
                        // is the whole delta.
                        frame_price(warm, pricing, sum0, mark)
                    } else {
                        warm.begin_speculation();
                        warm.speculate_insert(&view, agent, a, game.w(agent, a));
                        let s = frame_price(warm, pricing, sum0, mark);
                        warm.rollback();
                        s
                    };
                    let c = alpha * candidate_edge_sum(game, agent, own, m) + dist;
                    update(m, c, &mut best);
                }
                warm.rollback();
                i += run;
                continue;
            }
        }
        let m = &moves[i];
        let c = match m {
            Move::Replace(cand) => {
                let base = base.get_or_insert_with(|| base_graph_from(network, profile, agent));
                candidate_cost(game, base, agent, cand).total()
            }
            _ => {
                let dist =
                    speculative_distance_sum(game, profile, network, warm, agent, m, pricing, sum0);
                alpha * candidate_edge_sum(game, agent, own, m) + dist
            }
        };
        update(m, c, &mut best);
        i += 1;
    }
    // RegionDelta ranked the candidates on approximate prices; the
    // reported cost must be oracle-exact, so the winner is re-priced
    // with a full sum and re-gated against `current` (a sub-ulp
    // "improvement" that was an artifact of delta re-association must
    // not be reported as improving).
    if pricing == SpeculativePricing::RegionDelta {
        warm.set_price_horizon(None);
        best = best.and_then(|(m, c)| match m {
            // Replace moves were priced exactly by the oracle path.
            Move::Replace(_) => strictly_less(c, current).then_some((m, c)),
            _ => {
                let dist = speculative_distance_sum(
                    game,
                    profile,
                    network,
                    warm,
                    agent,
                    &m,
                    SpeculativePricing::FullSum,
                    0.0,
                );
                let exact = alpha * candidate_edge_sum(game, agent, own, &m) + dist;
                strictly_less(exact, current).then_some((m, exact))
            }
        });
    }
    #[cfg(debug_assertions)]
    {
        debug_assert!(
            warm.dist() == before.as_slice() && warm.depth() == 0 && warm.speculation_depth() == 0,
            "speculative scan must leave the warm vector bitwise untouched"
        );
        match pricing {
            SpeculativePricing::FullSum => {
                let oracle =
                    best_move_among_given_current(game, profile, network, agent, current, moves);
                debug_assert_eq!(
                    best, oracle,
                    "speculative scan drifted from the masked-Dijkstra oracle"
                );
            }
            SpeculativePricing::RegionDelta => {
                // The chosen move may legitimately differ from FullSum on
                // sub-ulp ties, but the reported cost of whatever *was*
                // chosen must be bitwise what the oracle prices it at.
                if let Some((m, c)) = &best {
                    let oracle = best_move_among_given_current(
                        game,
                        profile,
                        network,
                        agent,
                        current,
                        std::slice::from_ref(m),
                    );
                    debug_assert_eq!(
                        oracle,
                        Some((m.clone(), *c)),
                        "region-delta winner's exact re-price drifted from the oracle"
                    );
                }
            }
        }
    }
    best
}

/// Reads the current candidate's distance cost off an open speculation
/// frame according to the pricing policy. `mark` is the undo-log length
/// from just before the frame (chain) opened; `sum0` the pre-scan full
/// sum (RegionDelta only). A non-finite delta price (∞ − ∞ churn from
/// disconnections) falls back to the exact full sum for that candidate.
fn frame_price(warm: &mut DynamicSssp, pricing: SpeculativePricing, sum0: f64, mark: usize) -> f64 {
    match pricing {
        SpeculativePricing::FullSum => warm.sum(),
        SpeculativePricing::RegionDelta => {
            let p = sum0 + warm.delta_sum_since(mark);
            if p.is_finite() {
                p
            } else {
                warm.sum()
            }
        }
    }
}

/// The distance cost of single-edge move `m`, read off `warm` after
/// speculatively applying the move's network-level edge delta (an owned
/// edge leaves the network only when the other endpoint does not also own
/// it; a new edge enters only when not already present — the same rules
/// the dynamics engine applies to committed moves).
#[allow(clippy::too_many_arguments)]
fn speculative_distance_sum(
    game: &Game,
    profile: &Profile,
    network: &AdjacencyList,
    warm: &mut DynamicSssp,
    agent: NodeId,
    m: &Move,
    pricing: SpeculativePricing,
    sum0: f64,
) -> f64 {
    let (dropped, gained) = match *m {
        Move::Add(v) => (None, Some(v)),
        Move::Delete(v) => (Some(v), None),
        Move::Swap(d, a) => (Some(d), Some(a)),
        Move::Replace(_) => unreachable!("Replace moves are priced by the oracle path"),
    };
    let dropped = dropped.filter(|&v| !profile.owns(v, agent));
    let gained = gained.filter(|&v| !network.has_edge(agent, v));
    if dropped.is_none() && gained.is_none() {
        // Degenerate delta: the network (hence the vector) is unchanged,
        // so the pre-scan sum *is* the exact price under either policy.
        return match pricing {
            SpeculativePricing::FullSum => warm.sum(),
            SpeculativePricing::RegionDelta => sum0,
        };
    }
    let mask_buf;
    let mask: &[(NodeId, NodeId)] = match dropped {
        Some(v) => {
            mask_buf = [(agent, v)];
            &mask_buf
        }
        None => &[],
    };
    let view = MaskedEdges::new(network, mask);
    let mark = warm.undo_len();
    warm.begin_speculation();
    if let Some(v) = dropped {
        let w = network
            .edge_weight(agent, v)
            .expect("sole-owned strategy edge must be in the network");
        warm.remove_edge(&view, agent, v, w);
    }
    if let Some(v) = gained {
        warm.speculate_insert(&view, agent, v, game.w(agent, v));
    }
    let sum = frame_price(warm, pricing, sum0, mark);
    warm.rollback();
    sum
}

/// `Σ w(agent, x)` over the candidate set `m` produces from `own`,
/// accumulated in ascending node-id order — the `BTreeSet` iteration
/// order [`candidate_cost`]'s edge term uses, so totals agree bitwise
/// (f64 addition is order-sensitive).
fn candidate_edge_sum(game: &Game, agent: NodeId, own: &BTreeSet<NodeId>, m: &Move) -> f64 {
    let (drop, add) = match *m {
        Move::Add(v) => (None, Some(v)),
        Move::Delete(v) => (Some(v), None),
        Move::Swap(d, a) => (Some(d), Some(a)),
        Move::Replace(_) => unreachable!("Replace moves are priced by the oracle path"),
    };
    let mut sum = 0.0;
    let mut pending = add;
    for &x in own {
        if Some(x) == drop {
            continue;
        }
        if let Some(a) = pending {
            if a < x {
                sum += game.w(agent, a);
                pending = None;
            }
        }
        sum += game.w(agent, x);
    }
    if let Some(a) = pending {
        sum += game.w(agent, a);
    }
    sum
}

/// Prices an explicit move without applying it.
pub fn move_cost(game: &Game, profile: &Profile, agent: NodeId, m: &Move) -> CostBreakdown {
    let base = base_graph_without(game, profile, agent);
    let cand = m.apply(agent, profile.strategy(agent));
    candidate_cost(game, &base, agent, &cand)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gncg_graph::SymMatrix;

    fn unit_game(n: usize, alpha: f64) -> Game {
        Game::new(SymMatrix::filled(n, 1.0), alpha)
    }

    #[test]
    fn isolated_agent_buys_exactly_one_edge_into_a_star() {
        // Star on 4 nodes around 0 (owned by 0); agent 3 removed from the
        // star and isolated. Its best response for α = 1 is to buy the
        // cheapest connection, via the center (all weights 1, so any single
        // edge to the center is optimal: dist 1 + 2 + 2 vs edge 1).
        let game = unit_game(4, 5.0);
        let mut p = Profile::empty(4);
        p.buy(0, 1);
        p.buy(0, 2);
        let br = exact_best_response(&game, &p, 3);
        assert!(br.improves()); // currently disconnected, cost ∞
        assert_eq!(br.strategy.len(), 1);
        assert!(br.strategy.contains(&0));
        // α·1 + (1 + 2 + 2) = 10.
        assert_eq!(br.cost, 10.0);
    }

    #[test]
    fn low_alpha_buys_everything() {
        // For tiny α the best response is to connect directly to everyone.
        let game = unit_game(5, 0.01);
        let p = Profile::star(5, 0);
        let br = exact_best_response(&game, &p, 2);
        assert_eq!(
            br.strategy.len(),
            3,
            "buy direct edges to all non-neighbors"
        );
        assert!(br.improves());
    }

    #[test]
    fn high_alpha_keeps_nothing_extra() {
        // Star center 0 owns all edges; leaf 1 should buy nothing at high α.
        let game = unit_game(5, 100.0);
        let p = Profile::star(5, 0);
        let br = exact_best_response(&game, &p, 1);
        assert!(!br.improves());
        assert!(br.strategy.is_empty());
    }

    #[test]
    fn exact_br_at_least_as_good_as_greedy() {
        let host = gncg_metrics::arbitrary::random_metric(8, 1.0, 4.0, 17);
        let game = Game::new(host, 1.5);
        let mut p = Profile::star(8, 0);
        p.buy(3, 4);
        for agent in 0..8 {
            let br = exact_best_response(&game, &p, agent);
            if let Some((_, g)) = best_greedy_move(&game, &p, agent) {
                assert!(
                    br.cost <= g + 1e-9,
                    "agent {agent}: BR {} > greedy {g}",
                    br.cost
                );
            }
            assert!(br.cost <= br.current_cost + 1e-9);
        }
    }

    #[test]
    fn incremental_matches_reference_cost_exactly() {
        // Bit-for-bit equivalence of the incremental engine against the
        // historical from-scratch engine, across α regimes.
        for seed in 0..4u64 {
            let host = gncg_metrics::arbitrary::random_metric(8, 1.0, 4.0, seed);
            for alpha in [0.05, 0.6, 1.5, 4.0, 50.0] {
                let game = Game::new(host.clone(), alpha);
                let mut p = Profile::star(8, (seed % 8) as NodeId);
                p.buy(2, 5);
                for agent in 0..8u32 {
                    let inc = exact_best_response(&game, &p, agent);
                    let refr = exact_best_response_reference(&game, &p, agent);
                    assert_eq!(
                        inc.cost, refr.cost,
                        "seed {seed} α {alpha} agent {agent}: {} vs {}",
                        inc.cost, refr.cost
                    );
                    assert_eq!(inc.current_cost, refr.current_cost);
                }
            }
        }
    }

    #[test]
    fn incremental_strategy_achieves_reported_cost() {
        for seed in 0..3u64 {
            let host = gncg_metrics::arbitrary::random_metric(7, 1.0, 5.0, seed + 100);
            let game = Game::new(host, 1.1);
            let mut p = Profile::star(7, 0);
            p.buy(4, 6);
            for agent in 0..7u32 {
                let br = exact_best_response(&game, &p, agent);
                let mut p2 = p.clone();
                p2.set_strategy(agent, br.strategy.clone());
                let real = crate::cost::agent_cost(&game, &p2, agent).total();
                assert!(
                    gncg_graph::approx_eq(real, br.cost),
                    "agent {agent}: {real} vs {}",
                    br.cost
                );
            }
        }
    }

    #[test]
    fn best_greedy_move_finds_add() {
        // Path 0-1-2-3 with unit weights, α = 0.1: endpoints want shortcuts.
        let game = unit_game(4, 0.1);
        let p = Profile::from_owned_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let (m, c) = best_greedy_move(&game, &p, 0).expect("improving move exists");
        match m {
            Move::Add(v) => assert!(v == 2 || v == 3),
            other => panic!("expected Add, got {other:?}"),
        }
        assert!(c < agent_cost_in(&game, &p, &p.build_network(&game), 0).total());
    }

    #[test]
    fn best_greedy_move_finds_delete() {
        // Triangle where 0 owns a redundant heavy edge.
        let mut w = SymMatrix::filled(3, 1.0);
        w.set(0, 2, 1.5);
        let game = Game::new(w, 10.0);
        let p = Profile::from_owned_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let (m, _) = best_greedy_move(&game, &p, 0).expect("delete should improve");
        assert_eq!(m, Move::Delete(2));
    }

    #[test]
    fn move_cost_matches_application() {
        let game = unit_game(5, 2.0);
        let p = Profile::star(5, 0);
        let m = Move::Add(2);
        let predicted = move_cost(&game, &p, 1, &m).total();
        let mut p2 = p.clone();
        p2.buy(1, 2);
        let real = crate::cost::agent_cost(&game, &p2, 1).total();
        assert!(gncg_graph::approx_eq(predicted, real));
    }

    #[test]
    fn speculative_scan_matches_oracle_bitwise() {
        // Every greedy move of every agent, across α regimes, with a
        // co-owned edge in play: the speculative scan must return exactly
        // the oracle's chosen move and cost bits, and leave the warm
        // vector untouched.
        for seed in 0..4u64 {
            let host = gncg_metrics::arbitrary::random_metric(8, 1.0, 4.0, seed);
            for alpha in [0.3, 1.5, 6.0] {
                let game = Game::new(host.clone(), alpha);
                let mut p = Profile::star(8, (seed % 8) as NodeId);
                p.buy(2, 5);
                if !p.owns(5, 2) {
                    p.buy(5, 2); // co-owned: its Delete is a degenerate delta
                }
                let network = p.build_network(&game);
                for agent in 0..8u32 {
                    let moves = Move::greedy_moves(&p, agent);
                    let current = agent_cost_in(&game, &p, &network, agent).total();
                    let mut warm = DynamicSssp::new();
                    warm.reset_from(agent, &gncg_graph::dijkstra::dijkstra(&network, agent));
                    let spec = best_move_among_speculative(
                        &game, &p, &network, &mut warm, agent, current, &moves,
                    );
                    let oracle =
                        best_move_among_given_current(&game, &p, &network, agent, current, &moves);
                    assert_eq!(spec, oracle, "seed {seed} α {alpha} agent {agent}");
                }
            }
        }
    }

    #[test]
    fn region_delta_pricing_matches_oracle_on_clear_instances() {
        // On hosts whose move costs are separated far beyond an ulp, the
        // bounded-horizon policy must choose the oracle's move and report
        // the oracle's exact cost bits — with and without the bucket-queue
        // weight-class hint installed on the warm vector.
        for seed in 0..4u64 {
            let host = gncg_metrics::arbitrary::random_metric(8, 1.0, 4.0, seed);
            for alpha in [0.3, 1.5, 6.0] {
                let game = Game::new(host.clone(), alpha);
                let mut p = Profile::star(8, (seed % 8) as NodeId);
                p.buy(2, 5);
                if !p.owns(5, 2) {
                    p.buy(5, 2);
                }
                let network = p.build_network(&game);
                for agent in 0..8u32 {
                    let moves = Move::greedy_moves(&p, agent);
                    let current = agent_cost_in(&game, &p, &network, agent).total();
                    let mut warm = DynamicSssp::new();
                    warm.set_weight_class(game.weight_class());
                    warm.reset_from(agent, &gncg_graph::dijkstra::dijkstra(&network, agent));
                    let rd = best_move_among_speculative_priced(
                        &game,
                        &p,
                        &network,
                        &mut warm,
                        agent,
                        current,
                        &moves,
                        SpeculativePricing::RegionDelta,
                    );
                    let oracle =
                        best_move_among_given_current(&game, &p, &network, agent, current, &moves);
                    assert_eq!(rd, oracle, "seed {seed} α {alpha} agent {agent}");
                }
            }
        }
    }

    #[test]
    fn region_delta_pricing_survives_disconnection() {
        // ∞ churn in the undo log makes the delta price non-finite; the
        // per-candidate fallback must recover the exact full sum.
        let game = unit_game(4, 0.1);
        let p = Profile::from_owned_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let network = p.build_network(&game);
        for agent in 0..4u32 {
            let moves = Move::greedy_moves(&p, agent);
            let current = agent_cost_in(&game, &p, &network, agent).total();
            let mut warm = DynamicSssp::new();
            warm.reset_from(agent, &gncg_graph::dijkstra::dijkstra(&network, agent));
            let rd = best_move_among_speculative_priced(
                &game,
                &p,
                &network,
                &mut warm,
                agent,
                current,
                &moves,
                SpeculativePricing::RegionDelta,
            );
            let oracle = best_move_among_given_current(&game, &p, &network, agent, current, &moves);
            assert_eq!(rd, oracle, "agent {agent}");
        }
        // Isolated agent: the pre-scan sum is ∞ (sum0 itself non-finite).
        let mut q = Profile::empty(4);
        q.buy(0, 1);
        q.buy(1, 2);
        let network = q.build_network(&game);
        let moves = Move::greedy_moves(&q, 3);
        let current = agent_cost_in(&game, &q, &network, 3).total();
        let mut warm = DynamicSssp::new();
        warm.reset_from(3, &gncg_graph::dijkstra::dijkstra(&network, 3));
        let rd = best_move_among_speculative_priced(
            &game,
            &q,
            &network,
            &mut warm,
            3,
            current,
            &moves,
            SpeculativePricing::RegionDelta,
        );
        let oracle = best_move_among_given_current(&game, &q, &network, 3, current, &moves);
        assert_eq!(rd, oracle);
        assert!(rd.is_some(), "connecting must improve on ∞");
    }

    #[test]
    fn speculative_scan_handles_disconnection_both_ways() {
        // Deleting a bridge prices candidates at ∞; an isolated agent
        // prices its current cost at ∞. Both must match the oracle.
        let game = unit_game(4, 0.1);
        let p = Profile::from_owned_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let network = p.build_network(&game);
        for agent in 0..4u32 {
            let moves = Move::greedy_moves(&p, agent);
            let current = agent_cost_in(&game, &p, &network, agent).total();
            let mut warm = DynamicSssp::new();
            warm.reset_from(agent, &gncg_graph::dijkstra::dijkstra(&network, agent));
            let spec =
                best_move_among_speculative(&game, &p, &network, &mut warm, agent, current, &moves);
            let oracle = best_move_among_given_current(&game, &p, &network, agent, current, &moves);
            assert_eq!(spec, oracle, "agent {agent}");
        }
        // Isolated agent 3: every distance but its own is ∞.
        let mut q = Profile::empty(4);
        q.buy(0, 1);
        q.buy(1, 2);
        let network = q.build_network(&game);
        let moves = Move::greedy_moves(&q, 3);
        let current = agent_cost_in(&game, &q, &network, 3).total();
        assert!(current.is_infinite());
        let mut warm = DynamicSssp::new();
        warm.reset_from(3, &gncg_graph::dijkstra::dijkstra(&network, 3));
        let spec = best_move_among_speculative(&game, &q, &network, &mut warm, 3, current, &moves);
        let oracle = best_move_among_given_current(&game, &q, &network, 3, current, &moves);
        assert_eq!(spec, oracle);
        assert!(spec.is_some(), "connecting must improve on ∞");
    }

    #[test]
    fn parallel_br_matches_sequential_cost() {
        for seed in 0..3u64 {
            let host = gncg_metrics::arbitrary::random_metric(9, 1.0, 4.0, seed);
            let game = Game::new(host, 1.2);
            let mut p = Profile::star(9, 0);
            p.buy(2, 5);
            p.buy(7, 3);
            for agent in 0..9u32 {
                let seq = exact_best_response(&game, &p, agent);
                let par = exact_best_response_parallel(&game, &p, agent);
                assert_eq!(
                    seq.cost, par.cost,
                    "agent {agent} seed {seed}: {} vs {}",
                    seq.cost, par.cost
                );
                assert_eq!(seq.current_cost, par.current_cost);
                // The parallel strategy must achieve its reported cost.
                let mut p2 = p.clone();
                p2.set_strategy(agent, par.strategy.clone());
                let real = crate::cost::agent_cost(&game, &p2, agent).total();
                assert!(gncg_graph::approx_eq(real, par.cost));
            }
        }
    }

    #[test]
    fn parallel_br_tiny_instance_falls_back() {
        let game = unit_game(4, 1.0);
        let p = Profile::star(4, 0);
        let par = exact_best_response_parallel(&game, &p, 1);
        let seq = exact_best_response(&game, &p, 1);
        assert!(gncg_graph::approx_eq(par.cost, seq.cost));
    }

    #[test]
    fn br_in_matches_br_with_fresh_network() {
        let host = gncg_metrics::arbitrary::random_metric(6, 1.0, 3.0, 5);
        let game = Game::new(host, 2.0);
        let p = Profile::star(6, 2);
        let network = p.build_network(&game);
        for agent in 0..6u32 {
            let a = exact_best_response(&game, &p, agent);
            let b = exact_best_response_in(&game, &p, &network, agent);
            assert_eq!(a.cost, b.cost);
            assert_eq!(a.strategy, b.strategy);
        }
    }

    #[test]
    fn br_on_weighted_path_prefers_cheap_edges() {
        // Host: metric from a path with increasing weights. Agent n-1
        // disconnected; best single edge should weigh cheapness vs centrality.
        let t = gncg_graph::WeightedTree::path(&[1.0, 1.0, 10.0]);
        let host = t.metric_closure();
        let game = Game::new(host, 1.0);
        let mut p = Profile::empty(4);
        p.buy(0, 1);
        p.buy(1, 2);
        let br = exact_best_response(&game, &p, 3);
        // Buying (3,2) costs α·10 + dist (10 + 11 + 12) — best option is
        // still a connection; exact solver must find the cheapest total.
        assert!(br.cost.is_finite());
        assert!(!br.strategy.is_empty());
        // Verify optimality against brute force over all 7 nonempty subsets.
        let base = base_graph_without(&game, &p, 3);
        let mut brute = f64::INFINITY;
        for mask in 1u32..8 {
            let set: BTreeSet<NodeId> = (0..3)
                .filter(|&i| mask & (1 << i) != 0)
                .map(|i| i as NodeId)
                .collect();
            let c = candidate_cost(&game, &base, 3, &set).total();
            brute = brute.min(c);
        }
        assert!(gncg_graph::approx_eq(br.cost, brute));
    }
}
